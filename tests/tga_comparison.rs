//! Integration tests of the algorithm comparison (§7): 6Gen vs Entropy/IP
//! vs the pattern baselines on the CDN datasets, at reduced scale.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sixgen::addr::NybbleAddr;
use sixgen::baselines::ullrich::BitRange;
use sixgen::baselines::{low_byte_targets, ullrich_targets};
use sixgen::core::{Config, SixGen};
use sixgen::datasets::{cdn_internet, cdn_seed_sample, inverse_kfold, split_groups, Cdn};
use sixgen::entropy_ip::{EntropyIpConfig, EntropyIpModel};
use std::collections::HashSet;

fn train_test(cdn: Cdn, hosts: usize, sample: usize) -> (sixgen::simnet::Internet, Vec<NybbleAddr>, Vec<NybbleAddr>) {
    let internet = cdn_internet(cdn, hosts, 1000 + cdn as u64);
    let mut rng = StdRng::seed_from_u64(2000 + cdn as u64);
    let seeds = cdn_seed_sample(&internet, sample, &mut rng);
    let folds = inverse_kfold(&split_groups(&seeds, 10, &mut rng));
    let (train, test) = folds.into_iter().next().expect("fold");
    (internet, train, test)
}

fn recovery(targets: &[NybbleAddr], test: &[NybbleAddr]) -> f64 {
    let set: HashSet<_> = targets.iter().collect();
    test.iter().filter(|t| set.contains(t)).count() as f64 / test.len() as f64
}

#[test]
fn sixgen_matches_or_beats_entropy_ip_on_every_cdn() {
    for cdn in Cdn::ALL {
        let (_, train, test) = train_test(cdn, 5_000, 2_000);
        let budget = 120_000u64;
        let six = SixGen::new(train.iter().copied(), Config::with_budget(budget))
            .run()
            .targets
            .into_vec();
        let model = EntropyIpModel::fit(&train, &EntropyIpConfig::default());
        let mut rng = StdRng::seed_from_u64(9);
        let eip = model.generate(budget as usize, &mut rng);
        let (r_six, r_eip) = (recovery(&six, &test), recovery(&eip, &test));
        // The paper's headline: 6Gen recovers 1–8x as many addresses.
        // Tolerate a sliver of noise on the near-saturated datasets.
        assert!(
            r_six >= r_eip * 0.95,
            "{}: 6Gen {r_six:.4} vs E/IP {r_eip:.4}",
            cdn.label()
        );
    }
}

#[test]
fn unpredictable_cdn1_defeats_both_algorithms() {
    let (_, train, test) = train_test(Cdn::One, 5_000, 2_000);
    let six = SixGen::new(train.iter().copied(), Config::with_budget(100_000))
        .run()
        .targets
        .into_vec();
    let model = EntropyIpModel::fit(&train, &EntropyIpConfig::default());
    let mut rng = StdRng::seed_from_u64(10);
    let eip = model.generate(100_000, &mut rng);
    assert!(recovery(&six, &test) < 0.01);
    assert!(recovery(&eip, &test) < 0.01);
}

#[test]
fn dense_cdn4_recovery_is_high_for_sixgen() {
    let (_, train, test) = train_test(Cdn::Four, 5_000, 2_000);
    let six = SixGen::new(train.iter().copied(), Config::with_budget(300_000))
        .run()
        .targets
        .into_vec();
    let r = recovery(&six, &test);
    assert!(r > 0.9, "6Gen recovered only {r:.4} of CDN 4");
}

#[test]
fn sixgen_beats_fixed_size_ullrich_and_low_byte_on_structure() {
    let (internet, train, test) = train_test(Cdn::Three, 5_000, 2_000);
    let routed = internet.networks()[0].spec().prefix;
    let budget = 80_000u64;
    let six = SixGen::new(train.iter().copied(), Config::with_budget(budget))
        .run()
        .targets
        .into_vec();
    let ull = ullrich_targets(
        &train,
        BitRange::from_prefix(routed.network(), routed.len()),
        16,
    )
    .targets();
    let low = low_byte_targets(&train, budget as usize, 8);
    let (r_six, r_ull, r_low) = (
        recovery(&six, &test),
        recovery(&ull, &test),
        recovery(&low, &test),
    );
    assert!(
        r_six > r_ull && r_six > r_low,
        "6Gen {r_six:.4}, Ullrich {r_ull:.4}, low-byte {r_low:.4}"
    );
    // Ullrich's fixed output size (2^16) caps what it can ever recover.
    assert_eq!(ull.len(), 65_536);
}

#[test]
fn entropy_ip_targets_respect_learned_support() {
    // On the dense CDN 4, every Entropy/IP target stays inside the routed
    // prefix and mirrors the learned subnet structure.
    let (internet, train, _) = train_test(Cdn::Four, 5_000, 2_000);
    let routed = internet.networks()[0].spec().prefix;
    let model = EntropyIpModel::fit(&train, &EntropyIpConfig::default());
    let mut rng = StdRng::seed_from_u64(12);
    let targets = model.generate(5_000, &mut rng);
    assert!(!targets.is_empty());
    for t in &targets {
        assert!(routed.contains(*t), "{t} escaped {routed}");
    }
}
