//! Cross-crate integration tests: the complete §6 pipeline at small scale,
//! asserting the paper's qualitative results hold end-to-end.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sixgen::core::{Config, SixGen, Termination};
use sixgen::datasets::world::{build_world, WorldConfig};
use sixgen::report::percent;
use sixgen::simnet::dealias::{dealias_hits, DealiasConfig};
use sixgen::simnet::{ProbeConfig, Prober, SeedExtraction};
use std::collections::HashSet;

fn world() -> sixgen::simnet::Internet {
    build_world(&WorldConfig {
        scale: 0.08,
        rng_seed: 77,
    })
}

/// The full pipeline: seeds → 6Gen per prefix → scan → dealias.
#[test]
fn pipeline_discovers_new_hosts_and_filters_aliases() {
    let internet = world();
    let mut rng = StdRng::seed_from_u64(1);
    let seeds = internet.extract_seeds(&SeedExtraction::default(), &mut rng);
    let seed_set: HashSet<_> = seeds.iter().map(|r| r.addr).collect();
    let (grouped, unrouted) = internet.table().group_by_prefix(seed_set.iter().copied());
    assert!(unrouted.is_empty());

    let mut prober = Prober::new(&internet, ProbeConfig::default()).expect("valid probe config");
    let mut hits = Vec::new();
    for (_, prefix_seeds) in grouped {
        if prefix_seeds.len() < 2 {
            continue;
        }
        let outcome = SixGen::new(prefix_seeds, Config::with_budget(4_000)).run();
        hits.extend(prober.scan(outcome.targets.iter(), 80).hits);
    }
    assert!(!hits.is_empty());

    let (report, clean, aliased) =
        dealias_hits(&mut prober, &hits, 80, &DealiasConfig::default());
    // Aliasing dominates raw hits (98% in the paper; the simulated world
    // reproduces the dominance, not the exact figure).
    assert!(
        aliased.len() > 2 * clean.len(),
        "aliased {} vs clean {}",
        aliased.len(),
        clean.len()
    );
    assert!(report.tested > 0);

    // 6Gen discovers hosts that were NOT seeds (new discoveries, §6.6).
    let new_discoveries = clean.iter().filter(|h| !seed_set.contains(h)).count();
    assert!(
        new_discoveries > 50,
        "only {new_discoveries} new non-aliased discoveries ({})",
        percent(new_discoveries as u64, clean.len() as u64)
    );

    // Every non-aliased hit is genuinely responsive ground truth.
    for hit in &clean {
        assert!(internet.is_responsive(*hit, 80));
    }
}

/// 6Gen outperforms brute-force guessing by orders of magnitude on a
/// structured network (the paper's core premise).
#[test]
fn sixgen_beats_random_guessing() {
    let internet = world();
    let mut rng = StdRng::seed_from_u64(2);
    let seeds = internet.extract_seeds(
        &SeedExtraction {
            visibility: 0.5,
            stale_visibility: 0.0,
        },
        &mut rng,
    );
    // Pick the Linode-like prefix (structured, honest).
    let prefix: sixgen::addr::Prefix = "2600:3c00::/32".parse().unwrap();
    let prefix_seeds: Vec<_> = seeds
        .iter()
        .map(|r| r.addr)
        .filter(|a| prefix.contains(*a))
        .collect();
    assert!(prefix_seeds.len() > 20);

    let budget = 5_000u64;
    let outcome = SixGen::new(prefix_seeds.clone(), Config::with_budget(budget)).run();
    let mut prober = Prober::new(&internet, ProbeConfig::default()).expect("valid probe config");
    let sixgen_hits = prober.scan(outcome.targets.iter(), 80).hits.len();

    let random = sixgen::baselines::random_prefix_targets(prefix, budget as usize, &mut rng);
    let random_hits = prober.scan(random, 80).hits.len();
    assert!(
        sixgen_hits > 50 && sixgen_hits > random_hits * 10,
        "6Gen {sixgen_hits} vs random {random_hits}"
    );
}

/// Hits rediscover active seeds but exclude churned ones.
#[test]
fn churned_seeds_do_not_respond() {
    let internet = world();
    let mut rng = StdRng::seed_from_u64(3);
    let seeds = internet.extract_seeds(
        &SeedExtraction {
            visibility: 0.0,
            stale_visibility: 1.0,
        },
        &mut rng,
    );
    assert!(!seeds.is_empty());
    let mut prober = Prober::new(&internet, ProbeConfig::default()).expect("valid probe config");
    let scan = prober.scan(seeds.iter().map(|r| r.addr), 80);
    // Churned addresses in honest networks never respond; only those that
    // happen to sit inside aliased regions can.
    for hit in &scan.hits {
        let net = internet.network_of(*hit).expect("routed");
        assert!(
            net.aliased_regions().iter().any(|r| r.prefix.contains(*hit)),
            "churned seed {hit} responded outside an aliased region"
        );
    }
}

/// Budget semantics across the whole stack: unique targets, exact
/// consumption, determinism.
#[test]
fn budget_contract_holds_at_scale() {
    let internet = world();
    let mut rng = StdRng::seed_from_u64(4);
    let seeds: Vec<_> = internet
        .extract_seeds(&SeedExtraction::default(), &mut rng)
        .into_iter()
        .map(|r| r.addr)
        .collect();
    let (grouped, _) = internet.table().group_by_prefix(seeds);
    for (prefix, prefix_seeds) in grouped {
        if prefix_seeds.len() < 2 {
            continue;
        }
        let budget = 1_000;
        let outcome = SixGen::new(prefix_seeds.clone(), Config::with_budget(budget)).run();
        assert!(outcome.targets.len() as u64 <= budget, "{prefix}");
        if outcome.stats.termination == Termination::BudgetExhausted {
            assert_eq!(outcome.targets.len() as u64, budget, "{prefix}");
        }
        let uniq: HashSet<_> = outcome.targets.iter().collect();
        assert_eq!(uniq.len(), outcome.targets.len(), "{prefix}");
        // Deterministic rerun.
        let again = SixGen::new(prefix_seeds, Config::with_budget(budget)).run();
        assert_eq!(outcome.targets.as_slice(), again.targets.as_slice(), "{prefix}");
    }
}
