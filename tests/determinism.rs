//! Regression tests for repeated-run determinism of the grouped-prefix
//! scan pattern (the `alias_hunter` bug): iterating `group_by_prefix`'s
//! `HashMap` directly while sharing one stateful `Prober` makes hit counts
//! vary across runs even at fixed RNG seeds. Sorting the prefixes first
//! restores determinism.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sixgen::addr::{NybbleAddr, Prefix};
use sixgen::core::{Config, SixGen};
use sixgen::simnet::{
    HostScheme, Internet, NetworkSpec, ProbeConfig, Prober, SeedExtraction,
};

fn build_internet() -> Internet {
    let mut rng = StdRng::seed_from_u64(7);
    Internet::build(
        vec![
            NetworkSpec::simple(
                "2001:db8::/32".parse().unwrap(),
                64496,
                "NetA",
                HostScheme::LowByteSequential,
                60,
            ),
            NetworkSpec::simple(
                "2600:aa00::/32".parse().unwrap(),
                64497,
                "NetB",
                HostScheme::LowByteRandom { nybbles: 3 },
                60,
            ),
            NetworkSpec::simple(
                "2606:4700::/32".parse().unwrap(),
                64498,
                "NetC",
                HostScheme::LowByteRandom { nybbles: 2 },
                60,
            ),
        ],
        &mut rng,
    )
    .expect("unique prefixes")
}

/// One full seed → generate → scan pass with a shared stateful prober,
/// prefixes visited in sorted order. Returns the hits in scan order.
fn grouped_scan(internet: &Internet) -> Vec<NybbleAddr> {
    let mut rng = StdRng::seed_from_u64(21);
    let seeds = internet.extract_seeds(
        &SeedExtraction {
            visibility: 0.5,
            stale_visibility: 0.0,
        },
        &mut rng,
    );
    let (mut grouped, _) = internet
        .table()
        .group_by_prefix(seeds.iter().map(|r| r.addr));
    let mut prober =
        Prober::new(internet, ProbeConfig { loss: 0.2, ..ProbeConfig::default() })
            .expect("valid probe config");
    let mut prefixes: Vec<Prefix> = grouped.keys().copied().collect();
    prefixes.sort();
    let mut hits = Vec::new();
    for prefix in prefixes {
        let prefix_seeds = grouped.remove(&prefix).expect("listed prefix");
        let outcome = SixGen::new(prefix_seeds, Config::with_budget(5_000)).run();
        hits.extend(prober.scan(outcome.targets.iter(), 80).hits);
    }
    hits
}

#[test]
fn grouped_prefix_scan_with_shared_prober_is_deterministic() {
    let internet = build_internet();
    let first = grouped_scan(&internet);
    assert!(!first.is_empty(), "scan found no hits; test is vacuous");
    for _ in 0..3 {
        assert_eq!(first, grouped_scan(&internet), "hits differ across runs");
    }
}
