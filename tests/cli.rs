//! Integration tests for the `sixgen` command-line binary, driven through
//! the real executable (`CARGO_BIN_EXE_sixgen`).

use std::path::PathBuf;
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_sixgen"))
}

fn workdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sixgen-cli-{name}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

fn write_seeds(dir: &std::path::Path) -> PathBuf {
    let path = dir.join("seeds.txt");
    let mut text = String::from("# test seeds\n\n");
    for i in 1..=40u32 {
        text.push_str(&format!("2001:db8::{:x}\n", i));
    }
    for i in 1..=10u32 {
        text.push_str(&format!("2001:db8:0:5::{:x}\n", i * 3));
    }
    std::fs::write(&path, text).expect("write seeds");
    path
}

#[test]
fn generate_writes_targets_within_budget() {
    let dir = workdir("generate");
    let seeds = write_seeds(&dir);
    let out = dir.join("targets.txt");
    let status = bin()
        .args(["generate", "--seeds"])
        .arg(&seeds)
        .args(["--budget", "200", "--out"])
        .arg(&out)
        .status()
        .expect("run sixgen");
    assert!(status.success());
    let targets = std::fs::read_to_string(&out).expect("read targets");
    let lines: Vec<&str> = targets.lines().collect();
    assert!(!lines.is_empty() && lines.len() <= 200, "{} targets", lines.len());
    // Every line parses as an address; seeds are covered.
    for line in &lines {
        line.parse::<sixgen::addr::NybbleAddr>().expect("valid address");
    }
    assert!(lines.contains(&"2001:db8::1"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn generate_binary_roundtrips() {
    let dir = workdir("binary");
    let seeds = write_seeds(&dir);
    let out = dir.join("targets.bin");
    let status = bin()
        .args(["generate", "--seeds"])
        .arg(&seeds)
        .args(["--budget", "100", "--binary", "--out"])
        .arg(&out)
        .status()
        .expect("run sixgen");
    assert!(status.success());
    let targets = sixgen::datasets::io::read_hitlist_binary_file(&out).expect("decode");
    assert!(!targets.is_empty() && targets.len() <= 100);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn generate_is_deterministic_across_invocations() {
    let dir = workdir("deterministic");
    let seeds = write_seeds(&dir);
    let run = |out: &std::path::Path| {
        let status = bin()
            .args(["generate", "--seeds"])
            .arg(&seeds)
            .args(["--budget", "150", "--rng-seed", "42", "--out"])
            .arg(out)
            .status()
            .expect("run sixgen");
        assert!(status.success());
        std::fs::read_to_string(out).expect("read")
    };
    let a = run(&dir.join("a.txt"));
    let b = run(&dir.join("b.txt"));
    assert_eq!(a, b);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn analyze_prints_entropy_and_clusters() {
    let dir = workdir("analyze");
    let seeds = write_seeds(&dir);
    let output = bin()
        .args(["analyze", "--seeds"])
        .arg(&seeds)
        .args(["--budget", "500"])
        .output()
        .expect("run sixgen");
    assert!(output.status.success());
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("per-nybble entropy"), "{stdout}");
    assert!(stdout.contains("6Gen clusters"), "{stdout}");
    assert!(stdout.contains("nybble 32"), "{stdout}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn split_partitions_hitlist() {
    let dir = workdir("split");
    let seeds = write_seeds(&dir);
    let prefix = dir.join("part");
    let status = bin()
        .args(["split", "--seeds"])
        .arg(&seeds)
        .args(["--groups", "5", "--out-prefix"])
        .arg(&prefix)
        .status()
        .expect("run sixgen");
    assert!(status.success());
    let mut total = 0;
    for i in 0..5 {
        let part = PathBuf::from(format!("{}.{i}.txt", prefix.display()));
        let addrs = sixgen::datasets::io::read_hitlist_file(&part).expect("read part");
        assert_eq!(addrs.len(), 10);
        total += addrs.len();
    }
    assert_eq!(total, 50);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn entropy_ip_subcommand_generates() {
    let dir = workdir("eip");
    let seeds = write_seeds(&dir);
    let out = dir.join("eip.txt");
    let status = bin()
        .args(["entropy-ip", "--seeds"])
        .arg(&seeds)
        .args(["--budget", "300", "--out"])
        .arg(&out)
        .status()
        .expect("run sixgen");
    assert!(status.success());
    let targets = sixgen::datasets::io::read_hitlist_file(&out).expect("read");
    assert!(!targets.is_empty() && targets.len() <= 300);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn simulate_runs_fault_injected_scan() {
    let output = bin()
        .args([
            "simulate",
            "--hosts",
            "200",
            "--budget",
            "2000",
            "--bursty",
            "--rate-limit",
            "500",
            "--retries",
            "2",
            "--backoff",
            "100ms",
            "--retransmit-budget",
            "1000",
            "--rate-pps",
            "5000",
        ])
        .output()
        .expect("run sixgen");
    assert!(output.status.success());
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("hit rate"), "{stdout}");
    assert!(stdout.contains("retransmits"), "{stdout}");
    assert!(stdout.contains("simulated duration"), "{stdout}");
}

#[test]
fn simulate_rejects_invalid_loss() {
    let output = bin()
        .args(["simulate", "--hosts", "50", "--loss", "1.5"])
        .output()
        .expect("run sixgen");
    assert_eq!(output.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("loss"), "{stderr}");
}

#[test]
fn generate_respects_time_limit_flag() {
    let dir = workdir("deadline");
    let seeds = write_seeds(&dir);
    let output = bin()
        .args(["generate", "--seeds"])
        .arg(&seeds)
        .args(["--budget", "100000", "--time-limit", "0ms"])
        .output()
        .expect("run sixgen");
    assert!(output.status.success());
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("Deadline"), "{stderr}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn generate_metrics_out_emits_deterministic_json() {
    let dir = workdir("metrics");
    let seeds = write_seeds(&dir);
    let run = |tag: &str| {
        let out = dir.join(format!("targets-{tag}.txt"));
        let metrics = dir.join(format!("metrics-{tag}.json"));
        let status = bin()
            .args(["generate", "--seeds"])
            .arg(&seeds)
            .args(["--budget", "300", "--rng-seed", "42", "--out"])
            .arg(&out)
            .arg("--metrics-out")
            .arg(&metrics)
            .status()
            .expect("run sixgen");
        assert!(status.success());
        std::fs::read_to_string(&metrics).expect("read metrics json")
    };
    let a = run("a");
    let b = run("b");

    // The export carries the expected sections and engine metrics.
    for key in [
        "\"deterministic\"",
        "\"timing\"",
        "\"engine/budget_used\"",
        "\"engine/runs\"",
        "\"engine/candidate_set_size\"",
        "\"engine/cache_fill\"",
        "\"engine/select\"",
        "\"engine/commit\"",
        "\"engine/subsume\"",
    ] {
        assert!(a.contains(key), "missing {key} in {a}");
    }

    // The deterministic section (everything before the timing namespace)
    // is byte-identical across same-seed invocations.
    let det = |s: &str| s.split("\"timing\"").next().expect("has timing split").to_owned();
    assert_eq!(det(&a), det(&b), "deterministic metrics differ across runs");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn generate_trace_out_emits_valid_chrome_json() {
    let dir = workdir("trace");
    let seeds = write_seeds(&dir);
    let out = dir.join("targets.txt");
    let trace = dir.join("run.trace.json");
    let status = bin()
        .args(["generate", "--seeds"])
        .arg(&seeds)
        .args(["--budget", "300", "--rng-seed", "42", "--out"])
        .arg(&out)
        .arg("--trace-out")
        .arg(&trace)
        .status()
        .expect("run sixgen");
    assert!(status.success());
    let body = std::fs::read_to_string(&trace).expect("read trace json");
    sixgen::obs::validate_json(&body).expect("trace parses as JSON");
    // The export is a Chrome trace-event document with nested engine spans.
    assert!(body.contains("\"traceEvents\""), "{body}");
    for name in ["\"run\"", "\"cache_fill\"", "\"select\"", "\"growth_eval\""] {
        assert!(body.contains(name), "missing span {name}");
    }
    assert!(body.contains("\"cat\":\"engine\""), "{body}");
    assert!(body.contains("\"dropped_spans\""), "{body}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn tracing_does_not_perturb_generated_targets() {
    let dir = workdir("trace-determinism");
    let seeds = write_seeds(&dir);
    let run = |tag: &str, traced: bool| {
        let out = dir.join(format!("targets-{tag}.txt"));
        let mut cmd = bin();
        cmd.args(["generate", "--seeds"])
            .arg(&seeds)
            .args(["--budget", "200", "--rng-seed", "7", "--out"])
            .arg(&out);
        if traced {
            cmd.arg("--trace-out").arg(dir.join(format!("{tag}.trace.json")));
        }
        let status = cmd.status().expect("run sixgen");
        assert!(status.success());
        std::fs::read_to_string(&out).expect("read targets")
    };
    let plain = run("plain", false);
    let traced = run("traced", true);
    assert_eq!(plain, traced, "tracing changed the generated targets");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn generate_trace_summary_prints_table() {
    let dir = workdir("trace-summary");
    let seeds = write_seeds(&dir);
    let output = bin()
        .args(["generate", "--seeds"])
        .arg(&seeds)
        .args(["--budget", "200", "--trace-summary", "--out"])
        .arg(dir.join("targets.txt"))
        .output()
        .expect("run sixgen");
    assert!(output.status.success());
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("engine/run"), "{stdout}");
    assert!(stdout.contains("p99"), "{stdout}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn metrics_out_prom_extension_selects_prometheus() {
    let dir = workdir("prom");
    let seeds = write_seeds(&dir);
    let metrics = dir.join("metrics.prom");
    let status = bin()
        .args(["generate", "--seeds"])
        .arg(&seeds)
        .args(["--budget", "300", "--out"])
        .arg(dir.join("targets.txt"))
        .arg("--metrics-out")
        .arg(&metrics)
        .status()
        .expect("run sixgen");
    assert!(status.success());
    let body = std::fs::read_to_string(&metrics).expect("read prom");
    assert!(body.contains("# TYPE sixgen_engine_runs_total counter"), "{body}");
    assert!(body.contains("sixgen_engine_candidate_set_size_bucket"), "{body}");
    assert!(body.contains("le=\"+Inf\""), "{body}");
    assert!(body.contains("_sum"), "{body}");
    assert!(body.contains("_count"), "{body}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn metrics_format_flag_overrides_extension() {
    let dir = workdir("prom-flag");
    let seeds = write_seeds(&dir);
    let metrics = dir.join("metrics.json");
    let status = bin()
        .args(["generate", "--seeds"])
        .arg(&seeds)
        .args(["--budget", "200", "--metrics-format", "prom", "--out"])
        .arg(dir.join("targets.txt"))
        .arg("--metrics-out")
        .arg(&metrics)
        .status()
        .expect("run sixgen");
    assert!(status.success());
    let body = std::fs::read_to_string(&metrics).expect("read prom");
    assert!(body.starts_with("# "), "not prometheus text: {body}");
    assert!(body.contains("sixgen_engine_runs_total"), "{body}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn simulate_trace_covers_prober_spans() {
    let dir = workdir("sim-trace");
    let trace = dir.join("sim.trace.json");
    let output = bin()
        .args(["simulate", "--hosts", "100", "--budget", "1000", "--trace-out"])
        .arg(&trace)
        .output()
        .expect("run sixgen");
    assert!(output.status.success());
    let body = std::fs::read_to_string(&trace).expect("read trace");
    sixgen::obs::validate_json(&body).expect("trace parses as JSON");
    assert!(body.contains("\"cat\":\"prober\""), "{body}");
    assert!(body.contains("\"scan\""), "{body}");
    assert!(body.contains("\"cat\":\"engine\""), "{body}");
    std::fs::remove_dir_all(&dir).ok();
}

/// Seeds in pairwise-distant dense groups: a multi-round run with one
/// growth per group, good for interrupting at many boundaries.
fn write_ladder_seeds(dir: &std::path::Path) -> PathBuf {
    let path = dir.join("ladder.txt");
    let mut text = String::new();
    for group in 1..=9u32 {
        for host in 0..3u32 {
            text.push_str(&format!("2001:db8::{group}{group}{group}{host:x}\n"));
        }
    }
    std::fs::write(&path, text).expect("write seeds");
    path
}

#[test]
fn checkpointed_run_resumes_byte_identical() {
    let dir = workdir("checkpoint");
    let seeds = write_ladder_seeds(&dir);
    let baseline = dir.join("baseline.txt");
    let status = bin()
        .args(["generate", "--seeds"])
        .arg(&seeds)
        .args(["--budget", "300", "--out"])
        .arg(&baseline)
        .status()
        .expect("run sixgen");
    assert!(status.success());

    // Checkpointed run: every round snapshots to the same file.
    let ckpt = dir.join("run.ckpt");
    let full = dir.join("full.txt");
    let output = bin()
        .args(["generate", "--seeds"])
        .arg(&seeds)
        .args(["--budget", "300", "--checkpoint-out"])
        .arg(&ckpt)
        .args(["--checkpoint-every", "1", "--out"])
        .arg(&full)
        .output()
        .expect("run sixgen");
    assert!(output.status.success());
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("checkpoint(s) written"), "{stderr}");
    assert!(ckpt.exists(), "checkpoint file persisted");
    assert_eq!(
        std::fs::read_to_string(&baseline).unwrap(),
        std::fs::read_to_string(&full).unwrap(),
        "checkpointing changed the targets"
    );

    // Resume from the last boundary: no --seeds needed, same targets.
    let resumed = dir.join("resumed.txt");
    let output = bin()
        .args(["generate", "--resume"])
        .arg(&ckpt)
        .arg("--out")
        .arg(&resumed)
        .output()
        .expect("run sixgen");
    assert!(output.status.success());
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("resuming from"), "{stderr}");
    assert_eq!(
        std::fs::read_to_string(&baseline).unwrap(),
        std::fs::read_to_string(&resumed).unwrap(),
        "resumed run diverged from the uninterrupted one"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn resume_tops_up_budget_but_refuses_lowering_it() {
    let dir = workdir("resume-budget");
    let seeds = write_ladder_seeds(&dir);
    let ckpt = dir.join("run.ckpt");
    let status = bin()
        .args(["generate", "--seeds"])
        .arg(&seeds)
        .args(["--budget", "300", "--checkpoint-out"])
        .arg(&ckpt)
        .arg("--out")
        .arg(dir.join("full.txt"))
        .status()
        .expect("run sixgen");
    assert!(status.success());

    // Topping up continues past the original budget.
    let topped = dir.join("topped.txt");
    let status = bin()
        .args(["generate", "--resume"])
        .arg(&ckpt)
        .args(["--budget", "400", "--out"])
        .arg(&topped)
        .status()
        .expect("run sixgen");
    assert!(status.success());
    let count = std::fs::read_to_string(&topped).unwrap().lines().count();
    assert_eq!(count, 400, "topped-up budget fully consumed");

    // A budget below what was already generated is refused.
    let output = bin()
        .args(["generate", "--resume"])
        .arg(&ckpt)
        .args(["--budget", "1"])
        .output()
        .expect("run sixgen");
    assert_eq!(output.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("below"), "{stderr}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn resume_rejects_garbage_checkpoint() {
    let dir = workdir("resume-garbage");
    let ckpt = dir.join("bogus.ckpt");
    std::fs::write(&ckpt, b"not a checkpoint").unwrap();
    let output = bin()
        .args(["generate", "--resume"])
        .arg(&ckpt)
        .output()
        .expect("run sixgen");
    assert_eq!(output.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("cannot load checkpoint"), "{stderr}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn checkpoint_every_requires_checkpoint_out() {
    let dir = workdir("every-without-out");
    let seeds = write_ladder_seeds(&dir);
    let output = bin()
        .args(["generate", "--seeds"])
        .arg(&seeds)
        .args(["--checkpoint-every", "2"])
        .output()
        .expect("run sixgen");
    assert_eq!(output.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("--checkpoint-out"), "{stderr}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn trace_stream_writes_incremental_document() {
    let dir = workdir("trace-stream");
    let seeds = write_ladder_seeds(&dir);
    let stream = dir.join("stream.json");
    let output = bin()
        .args(["generate", "--seeds"])
        .arg(&seeds)
        .args(["--budget", "300", "--trace-stream"])
        .arg(&stream)
        .arg("--out")
        .arg(dir.join("targets.txt"))
        .output()
        .expect("run sixgen");
    assert!(output.status.success());
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("trace streamed to"), "{stderr}");
    let body = std::fs::read_to_string(&stream).expect("read streamed trace");
    sixgen::obs::validate_json(body.trim_end()).expect("streamed trace parses as JSON");
    for key in [
        "\"traceEvents\"",
        "\"cat\":\"engine\"",
        "\"spans_streamed\"",
        "\"stream_write_errors\":0",
    ] {
        assert!(body.contains(key), "missing {key}");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bad_usage_exits_nonzero() {
    let status = bin().status().expect("run sixgen");
    assert_eq!(status.code(), Some(2));
    let status = bin().args(["generate"]).status().expect("run");
    assert_eq!(status.code(), Some(1), "--seeds missing is an error");
    let status = bin()
        .args(["generate", "--seeds", "/definitely/missing/file.txt"])
        .status()
        .expect("run");
    assert_eq!(status.code(), Some(1));
    let status = bin().args(["frobnicate"]).status().expect("run");
    assert_eq!(status.code(), Some(2));
}
