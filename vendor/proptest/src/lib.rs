//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! The build environment has no crates.io access, so this vendored crate
//! implements the subset of the proptest API the workspace's property tests
//! use: the [`proptest!`] macro, `prop_assert*`/`prop_assume` assertions,
//! [`strategy::Strategy`] with `prop_map`, [`prop_oneof!`], [`arbitrary::any`],
//! [`strategy::Just`], numeric-range strategies, tuple strategies, and
//! `prop::collection::vec`.
//!
//! Differences from real proptest: cases are drawn from a deterministic
//! per-test RNG (seeded from the test name), and failing cases are **not
//! shrunk** — the assertion failure reports the failing values via the
//! panic message instead.

#![forbid(unsafe_code)]

pub use rand as __rand;

/// Test-runner types ([`ProptestConfig`], rejection bookkeeping).
pub mod test_runner {
    /// Subset of proptest's run configuration.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of successful cases required for the test to pass.
        pub cases: u32,
        /// Maximum rejected (via `prop_assume!`) cases before giving up.
        pub max_global_rejects: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` successful cases.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig {
                cases,
                ..ProptestConfig::default()
            }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: 96,
                max_global_rejects: 65_536,
            }
        }
    }

    /// Marker returned by `prop_assume!` when a case is rejected.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct Rejected;
}

/// Strategies: composable random-value generators.
pub mod strategy {
    use rand::rngs::StdRng;
    use rand::{Rng, SampleRange};

    /// A generator of values of type [`Strategy::Value`].
    ///
    /// Unlike real proptest there is no shrinking: a strategy simply draws
    /// one value per case from the run's RNG.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Boxes the strategy, erasing its concrete type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy {
                inner: Box::new(move |rng: &mut StdRng| self.sample(rng)),
            }
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<T> {
        inner: Box<dyn Fn(&mut StdRng) -> T>,
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn sample(&self, rng: &mut StdRng) -> T {
            (self.inner)(rng)
        }
    }

    /// Strategy producing a fixed value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    /// [`Strategy::prop_map`] adapter.
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, F, U> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn sample(&self, rng: &mut StdRng) -> U {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// [`crate::prop_oneof!`] support: uniform choice among boxed
    /// strategies of a common value type.
    pub struct OneOf<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> OneOf<T> {
        /// Builds from the already-boxed options. Panics if empty.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> OneOf<T> {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            OneOf { options }
        }
    }

    impl<T> Strategy for OneOf<T> {
        type Value = T;
        fn sample(&self, rng: &mut StdRng) -> T {
            let index = rng.gen_range(0..self.options.len());
            self.options[index].sample(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StdRng) -> $t {
                    SampleRange::sample_in(self.clone(), rng)
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StdRng) -> $t {
                    SampleRange::sample_in(self.clone(), rng)
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, u128, usize, f64);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn sample(&self, rng: &mut StdRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
}

/// `any::<T>()`: draw from a type's whole domain.
pub mod arbitrary {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::SampleStandard;
    use std::marker::PhantomData;

    /// Strategy over the full domain of `T`.
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(PhantomData<fn() -> T>);

    impl<T: SampleStandard> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut StdRng) -> T {
            T::sample_standard(rng)
        }
    }

    /// Returns the full-domain strategy for `T`.
    pub fn any<T: SampleStandard>() -> Any<T> {
        Any(PhantomData)
    }
}

/// The `prop::` namespace (collection strategies).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::strategy::Strategy;
        use rand::rngs::StdRng;
        use rand::Rng;

        /// Strategy for `Vec<T>` with a length drawn from a range.
        pub struct VecStrategy<S> {
            element: S,
            len: std::ops::Range<usize>,
        }

        /// `vec(element, len_range)`: vectors of `element` samples.
        pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, len }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
                let len = if self.len.is_empty() {
                    0
                } else {
                    rng.gen_range(self.len.clone())
                };
                (0..len).map(|_| self.element.sample(rng)).collect()
            }
        }
    }
}

/// Commonly imported items, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};
}

#[doc(hidden)]
pub fn __rng_for(test_name: &str, case: u64) -> rand::rngs::StdRng {
    use rand::SeedableRng;
    // FNV-1a over the test name keeps per-test streams independent.
    let mut hash: u64 = 0xCBF2_9CE4_8422_2325;
    for byte in test_name.bytes() {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    rand::rngs::StdRng::seed_from_u64(hash ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Defines property tests: `fn name(pattern in strategy, ...) { body }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{
            cfg = $crate::test_runner::ProptestConfig::default(); $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $(
        $(#[$attr:meta])*
        fn $name:ident( $($pat:pat in $strat:expr),* $(,)? ) $body:block
    )*) => {$(
        $(#[$attr])*
        #[allow(clippy::redundant_closure_call)]
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let mut __passed: u32 = 0;
            let mut __rejected: u32 = 0;
            let mut __draw: u64 = 0;
            while __passed < __config.cases {
                let mut __rng = $crate::__rng_for(stringify!($name), __draw);
                __draw += 1;
                let __outcome: ::std::result::Result<(), $crate::test_runner::Rejected> =
                    (|| {
                        let ($($pat,)*) = (
                            $($crate::strategy::Strategy::sample(&($strat), &mut __rng),)*
                        );
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    })();
                match __outcome {
                    Ok(()) => __passed += 1,
                    Err($crate::test_runner::Rejected) => {
                        __rejected += 1;
                        assert!(
                            __rejected <= __config.max_global_rejects,
                            "prop_assume! rejected too many cases ({} rejects)",
                            __rejected
                        );
                    }
                }
            }
        }
    )*};
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Rejects the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)*)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::Rejected);
        }
    };
}

/// Uniform choice among strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $($crate::strategy::Strategy::boxed($strat),)+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_even() -> impl Strategy<Value = u64> {
        (0u64..1000).prop_map(|n| n * 2)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 10u32..20, y in 0.0f64..=1.0) {
            prop_assert!((10..20).contains(&x));
            prop_assert!((0.0..=1.0).contains(&y));
        }

        #[test]
        fn mapped_values_even(n in arb_even()) {
            prop_assert_eq!(n % 2, 0);
        }

        #[test]
        fn oneof_and_just(v in prop_oneof![Just(1u8), Just(2u8), 5u8..7]) {
            prop_assert!(v == 1 || v == 2 || v == 5 || v == 6);
        }

        #[test]
        fn tuples_and_vecs(
            (a, b) in (0u8..4, 4u8..8),
            items in prop::collection::vec(any::<u16>(), 0..5),
        ) {
            prop_assert!(a < 4 && (4..8).contains(&b));
            prop_assert!(items.len() < 5);
        }

        #[test]
        fn assume_rejects(n in 0u8..8) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    #[test]
    fn rng_streams_differ_by_test_name() {
        use rand::Rng;
        let mut a = crate::__rng_for("alpha", 0);
        let mut b = crate::__rng_for("beta", 0);
        assert_ne!(a.gen::<u64>(), b.gen::<u64>());
    }
}
