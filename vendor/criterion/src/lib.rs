//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! Implements just enough of the criterion 0.5 API for this workspace's
//! benches to compile and run without registry access: `Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`, `BenchmarkId`,
//! `Bencher::iter`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros. Timing is a simple best-of-N wall-clock
//! measurement printed to stdout — no statistics, plots, or baselines.

#![forbid(unsafe_code)]

use std::fmt;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer value passthrough.
pub fn black_box<T>(value: T) -> T {
    hint::black_box(value)
}

/// A benchmark identifier: function name plus a parameter value.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            name: format!("{}/{}", name.into(), parameter),
        }
    }
}

/// Runs one benchmark body repeatedly and records the best observed rate.
pub struct Bencher {
    iters: u64,
    best: Duration,
}

impl Bencher {
    /// Times `body`, keeping the fastest of a few batched measurement
    /// rounds (after one warm-up round).
    pub fn iter<T, F: FnMut() -> T>(&mut self, mut body: F) {
        // Warm-up and batch sizing: aim for ~10ms per round.
        let start = Instant::now();
        black_box(body());
        let once = start.elapsed().max(Duration::from_nanos(20));
        let per_round = (Duration::from_millis(10).as_nanos() / once.as_nanos()).clamp(1, 10_000);
        let rounds = 5u32;
        let mut best = Duration::MAX;
        let mut total_iters = 1u64;
        for _ in 0..rounds {
            let start = Instant::now();
            for _ in 0..per_round {
                black_box(body());
            }
            let elapsed = start.elapsed() / per_round as u32;
            best = best.min(elapsed);
            total_iters += per_round as u64;
        }
        self.iters = total_iters;
        self.best = best;
    }
}

/// Groups related benchmarks under a common prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    prefix: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stand-in sizes batches itself.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Benchmarks `body` with a borrowed input under `prefix/id`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut body: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let name = format!("{}/{}", self.prefix, id.name);
        self.criterion.run_named(&name, |b| body(b, input));
        self
    }

    /// Finishes the group (no-op; reporting is per-bench).
    pub fn finish(self) {}
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion;

impl Criterion {
    /// Honors criterion's CLI contract loosely: accepted but ignored.
    pub fn configure_from_args(self) -> Criterion {
        self
    }

    /// Starts a named group.
    pub fn benchmark_group(&mut self, prefix: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            prefix: prefix.into(),
        }
    }

    /// Benchmarks a single function.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, body: F) -> &mut Self {
        self.run_named(name, body);
        self
    }

    fn run_named<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut body: F) {
        let mut bencher = Bencher {
            iters: 0,
            best: Duration::ZERO,
        };
        body(&mut bencher);
        println!(
            "bench {:<44} {:>12.1?}/iter ({} iters)",
            name, bencher.best, bencher.iters
        );
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
