//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment for this repository has no access to the crates.io
//! registry, so the workspace vendors the *small* part of the rand 0.8 API
//! it actually uses: a seedable deterministic generator ([`rngs::StdRng`],
//! here xoshiro256++ seeded via SplitMix64), the [`Rng`] extension methods
//! `gen`, `gen_range`, and `gen_bool`, and [`seq::SliceRandom::shuffle`].
//!
//! The value *streams* differ from crates.io rand (a different core
//! generator), but every property the workspace relies on holds:
//! determinism for a fixed seed, uniformity good enough for simulation, and
//! the same panics on invalid arguments (`gen_bool` with `p ∉ [0,1]`,
//! `gen_range` on an empty range).

#![forbid(unsafe_code)]

/// A source of random 64-bit words. Mirrors `rand_core::RngCore` closely
/// enough for this workspace (no byte-filling API is needed).
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types samplable uniformly over their whole domain (the `Standard`
/// distribution of real rand).
pub trait SampleStandard {
    /// Draws one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_uint {
    ($($t:ty),*) => {$(
        impl SampleStandard for $t {
            #[allow(clippy::cast_lossless, clippy::unnecessary_cast)]
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleStandard for u128 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl SampleStandard for i128 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        u128::sample_standard(rng) as i128
    }
}

impl SampleStandard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl SampleStandard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl SampleStandard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl<T: SampleStandard + Default + Copy, const N: usize> SampleStandard for [T; N] {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        let mut out = [T::default(); N];
        for slot in &mut out {
            *slot = T::sample_standard(rng);
        }
        out
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range. Panics if the range is empty.
    fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u128;
                self.start + (u128::sample_standard(rng) % span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u128 + 1;
                if span == 0 {
                    // Full u128 domain.
                    return u128::sample_standard(rng) as $t;
                }
                lo + (u128::sample_standard(rng) % span) as $t
            }
        }
    )*};
}
impl_sample_range_uint!(u8, u16, u32, u64, u128, usize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        lo + f64::sample_standard(rng) * (hi - lo)
    }
}

/// Convenience extension methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a value uniformly over the type's whole domain.
    fn gen<T: SampleStandard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`. Panics on an empty range.
    fn gen_range<T, Rr: SampleRange<T>>(&mut self, range: Rr) -> T {
        range.sample_in(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is not in `[0, 1]` (as real rand does).
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool: p = {p} is outside [0, 1]"
        );
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable generators, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed. Deterministic.
    fn seed_from_u64(seed: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Concrete generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ (Blackman &
    /// Vigna), seeded from a `u64` via SplitMix64. Not the same stream as
    /// crates.io `StdRng` (ChaCha12), but deterministic and statistically
    /// strong, which is all the simulation needs.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // An all-zero state would be a fixed point; SplitMix64 cannot
            // produce four zero outputs in a row, but keep the guard cheap.
            if s == [0; 4] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl StdRng {
        /// Exports the generator's full internal state (four xoshiro256++
        /// words). Together with [`StdRng::from_state`] this makes the
        /// stream checkpointable: a generator restored from an exported
        /// state continues the exact value sequence.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from a previously exported state. The
        /// all-zero state (a xoshiro fixed point that [`seed_from_u64`]
        /// can never produce) is replaced by a SplitMix64-expanded state,
        /// fully mixed across all four words, so the generator always
        /// progresses. (A single non-zero word is not enough: with
        /// `s1 = s3 = 0` the first two outputs coincide.)
        ///
        /// [`seed_from_u64`]: super::SeedableRng::seed_from_u64
        pub fn from_state(s: [u64; 4]) -> StdRng {
            if s == [0; 4] {
                return StdRng::seed_from_u64(0x9E37_79B9_7F4A_7C15);
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence helpers, mirroring `rand::seq`.
pub mod seq {
    use super::{Rng, RngCore};

    /// Slice shuffling (the only `SliceRandom` method this workspace uses).
    pub trait SliceRandom {
        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

/// Commonly imported items, mirroring `rand::prelude`.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn state_round_trip_continues_stream() {
        let mut a = StdRng::seed_from_u64(7);
        for _ in 0..17 {
            a.gen::<u64>();
        }
        let mut b = StdRng::from_state(a.state());
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        // The all-zero fixed point is rejected.
        let mut z = StdRng::from_state([0; 4]);
        assert_ne!(z.gen::<u64>(), z.gen::<u64>());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(5usize..=5);
            assert_eq!(w, 5);
            let x = rng.gen_range(0u64..1u64 << 40);
            assert!(x < 1u64 << 40);
        }
    }

    #[test]
    fn gen_bool_extremes_and_rates() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "{hits}");
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn gen_bool_rejects_invalid_probability() {
        StdRng::seed_from_u64(3).gen_bool(1.5);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..1000 {
            let v = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "astronomically unlikely to be identity");
    }
}
