//! Offline stand-in for the [`bytes`](https://crates.io/crates/bytes)
//! crate, providing the small API surface this workspace uses for binary
//! hitlist I/O: `Bytes`/`BytesMut` buffers and the `Buf`/`BufMut` cursor
//! traits (big-endian `u128`, little-endian `u64`, raw slices).
//!
//! Unlike the real crate, buffers are plain `Vec<u8>`s — no refcounted
//! zero-copy slicing — which is fully sufficient for file encode/decode.

#![forbid(unsafe_code)]

use std::ops::{Deref, DerefMut};

/// An immutable byte buffer with a read cursor.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
    pos: usize,
}

impl Bytes {
    /// Wraps a static byte string.
    pub fn from_static(data: &'static [u8]) -> Bytes {
        Bytes {
            data: data.to_vec(),
            pos: 0,
        }
    }

    /// Remaining (unconsumed) length.
    pub fn len(&self) -> usize {
        self.data.len() - self.pos
    }

    /// `true` if nothing remains.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A new buffer over a subrange of the remaining bytes.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        Bytes {
            data: self.as_slice()[range].to_vec(),
            pos: 0,
        }
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.pos..]
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Bytes {
        Bytes { data, pos: 0 }
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Bytes {
        Bytes {
            data: data.to_vec(),
            pos: 0,
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

/// A growable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer with reserved capacity.
    pub fn with_capacity(capacity: usize) -> BytesMut {
        BytesMut {
            data: Vec::with_capacity(capacity),
        }
    }

    /// Buffer length.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` if empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: self.data,
            pos: 0,
        }
    }
}

impl From<&[u8]> for BytesMut {
    fn from(data: &[u8]) -> BytesMut {
        BytesMut {
            data: data.to_vec(),
        }
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

/// Read cursor over a byte buffer (big-endian unless suffixed `_le`).
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;

    /// Consumes `dst.len()` bytes into `dst`.
    ///
    /// # Panics
    /// Panics if fewer than `dst.len()` bytes remain.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Consumes 8 bytes as a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut raw = [0u8; 8];
        self.copy_to_slice(&mut raw);
        u64::from_le_bytes(raw)
    }

    /// Consumes 16 bytes as a big-endian (network-order) `u128`.
    fn get_u128(&mut self) -> u128 {
        let mut raw = [0u8; 16];
        self.copy_to_slice(&mut raw);
        u128::from_be_bytes(raw)
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(dst.len() <= self.remaining(), "buffer underflow");
        dst.copy_from_slice(&self.data[self.pos..self.pos + dst.len()]);
        self.pos += dst.len();
    }
}

/// Write cursor appending to a byte buffer.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, value: u64) {
        self.put_slice(&value.to_le_bytes());
    }

    /// Appends a big-endian (network-order) `u128`.
    fn put_u128(&mut self, value: u128) {
        self.put_slice(&value.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut buf = BytesMut::with_capacity(32);
        buf.put_slice(b"hdr!");
        buf.put_u64_le(0x0102_0304_0506_0708);
        buf.put_u128(0xDEAD_BEEF);
        let mut bytes = buf.freeze();
        assert_eq!(bytes.len(), 4 + 8 + 16);
        let mut hdr = [0u8; 4];
        bytes.copy_to_slice(&mut hdr);
        assert_eq!(&hdr, b"hdr!");
        assert_eq!(bytes.get_u64_le(), 0x0102_0304_0506_0708);
        assert_eq!(bytes.get_u128(), 0xDEAD_BEEF);
        assert_eq!(bytes.remaining(), 0);
    }

    #[test]
    fn slice_and_index() {
        let bytes = Bytes::from(vec![1u8, 2, 3, 4]);
        let sub = bytes.slice(1..3);
        assert_eq!(&sub[..], &[2, 3]);
        let mut m = BytesMut::from(&b"abc"[..]);
        m[0] ^= 0xFF;
        assert_eq!(m[0], b'a' ^ 0xFF);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn underflow_panics() {
        let mut bytes = Bytes::from_static(b"xy");
        let mut dst = [0u8; 4];
        bytes.copy_to_slice(&mut dst);
    }
}
