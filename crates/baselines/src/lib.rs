//! # sixgen-baselines — pattern-based target generation baselines
//!
//! The comparison algorithms discussed in §3.3 of the paper besides
//! Entropy/IP:
//!
//! * [`ullrich`] — the recursive bit-fixing algorithm of Ullrich et al.
//!   (ARES 2015): starting from a user-supplied address range, repeatedly
//!   fix the (bit, value) pair matching the most seeds until only `N`
//!   undetermined bits remain; the final range is the target list. Unlike
//!   6Gen it "can only output ranges of constant size … and requires an
//!   initial range as input".
//! * [`low_byte`] — RFC 7707-style low-order-byte prediction: vary the low
//!   bits of each seed address.
//! * [`dense_prefix`] — Plonka & Berger-style density-ranked prefix
//!   aggregates (Multi-Resolution Aggregate analysis, §3.2).
//! * [`random_prefix_targets`] — brute-force guessing inside a prefix, the
//!   strawman both papers compare against.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dense_prefix;
pub mod low_byte;
pub mod ullrich;

pub use dense_prefix::{aggregate_counts, dense_prefix_targets, mra_profile};
pub use low_byte::low_byte_targets;
pub use ullrich::{ullrich_targets, BitRange, UllrichOutcome};

use rand::rngs::StdRng;
use rand::Rng;
use sixgen_addr::{NybbleAddr, Prefix};
use std::collections::HashSet;

/// Brute-force baseline: `budget` distinct uniformly-random addresses
/// inside `prefix`. On any realistically-sized prefix its hit rate is
/// effectively zero — the paper's motivating observation that "a
/// brute-force approach does not scale to IPv6" (§1).
pub fn random_prefix_targets(prefix: Prefix, budget: usize, rng: &mut StdRng) -> Vec<NybbleAddr> {
    let host_bits = 128 - prefix.len() as u32;
    let space = if host_bits >= 128 {
        u128::MAX
    } else {
        1u128 << host_bits
    };
    let mut out = Vec::with_capacity(budget.min(space.min(1 << 24) as usize));
    let mut seen = HashSet::new();
    let want = (budget as u128).min(space) as usize;
    let mut attempts: u64 = 0;
    let max_attempts = (want as u64).saturating_mul(64).max(4096);
    while out.len() < want && attempts < max_attempts {
        attempts += 1;
        let noise = if host_bits == 0 {
            0
        } else if host_bits >= 128 {
            rng.gen::<u128>()
        } else {
            rng.gen::<u128>() & ((1u128 << host_bits) - 1)
        };
        let addr = NybbleAddr::from_bits(prefix.network().bits() | noise);
        if seen.insert(addr) {
            out.push(addr);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn random_prefix_targets_distinct_and_contained() {
        let prefix: Prefix = "2001:db8::/64".parse().unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let targets = random_prefix_targets(prefix, 500, &mut rng);
        assert_eq!(targets.len(), 500);
        let uniq: HashSet<_> = targets.iter().collect();
        assert_eq!(uniq.len(), 500);
        assert!(targets.iter().all(|t| prefix.contains(*t)));
    }

    #[test]
    fn random_prefix_exhausts_tiny_prefixes() {
        let prefix: Prefix = "2001:db8::/126".parse().unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let targets = random_prefix_targets(prefix, 100, &mut rng);
        assert_eq!(targets.len(), 4, "a /126 has four addresses");
    }
}
