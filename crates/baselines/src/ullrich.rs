//! The recursive bit-fixing algorithm of Ullrich et al. (ARES 2015), as
//! described in §3.3 of the 6Gen paper:
//!
//! > "The algorithm requires a user-specified address range to start, with
//! > at least one bit determined. Then in each level of recursion, the
//! > algorithm finds all seed addresses encapsulated by the current range,
//! > and identifies which bit and value pair matches the largest number of
//! > such seeds. It sets that bit in the current range to the corresponding
//! > value, and recurses until only N undetermined bits remain. The
//! > addresses in the final range are used as scan targets."

use rand::rngs::StdRng;
use rand::Rng;
use sixgen_addr::NybbleAddr;

/// A bit-granular address range: `mask` marks determined bits and `value`
/// their values (undetermined bits of `value` are zero).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BitRange {
    /// 1-bits are determined.
    pub mask: u128,
    /// Values of the determined bits.
    pub value: u128,
}

impl BitRange {
    /// A range with all 128 bits undetermined (the whole address space).
    pub const UNDETERMINED: BitRange = BitRange { mask: 0, value: 0 };

    /// Builds a range from a CIDR-style prefix: the top `len` bits of
    /// `network` are determined.
    pub fn from_prefix(network: NybbleAddr, len: u8) -> BitRange {
        assert!(len <= 128);
        let mask = if len == 0 {
            0
        } else {
            u128::MAX << (128 - len as u32)
        };
        BitRange {
            mask,
            value: network.bits() & mask,
        }
    }

    /// Number of undetermined bits.
    pub fn undetermined_bits(self) -> u32 {
        self.mask.count_zeros()
    }

    /// Number of addresses in the range (saturates at `u128::MAX` for the
    /// fully undetermined range).
    pub fn size(self) -> u128 {
        match self.undetermined_bits() {
            128 => u128::MAX,
            n => 1u128 << n,
        }
    }

    /// Membership test.
    pub fn contains(self, addr: NybbleAddr) -> bool {
        addr.bits() & self.mask == self.value
    }

    /// The range with bit `bit` (0 = most significant) fixed to `bit_value`.
    pub fn with_bit(self, bit: u32, bit_value: bool) -> BitRange {
        let m = 1u128 << (127 - bit);
        BitRange {
            mask: self.mask | m,
            value: if bit_value { self.value | m } else { self.value & !m },
        }
    }

    /// Enumerates every address in the range. Intended for final ranges
    /// with few undetermined bits (2^N targets).
    pub fn addresses(self) -> Vec<NybbleAddr> {
        let free: Vec<u32> = (0..128).filter(|&b| self.mask & (1u128 << (127 - b)) == 0).collect();
        assert!(
            free.len() <= 24,
            "refusing to enumerate 2^{} addresses",
            free.len()
        );
        let mut out = Vec::with_capacity(1 << free.len());
        for combo in 0..(1u64 << free.len()) {
            let mut bits = self.value;
            for (i, &b) in free.iter().enumerate() {
                if combo & (1 << i) != 0 {
                    bits |= 1u128 << (127 - b);
                }
            }
            out.push(NybbleAddr::from_bits(bits));
        }
        out
    }

    /// Draws one address uniformly from the range.
    pub fn sample(self, rng: &mut StdRng) -> NybbleAddr {
        let noise = rng.gen::<u128>() & !self.mask;
        NybbleAddr::from_bits(self.value | noise)
    }
}

/// Result of a run: the final range and the number of seeds it retained.
#[derive(Debug, Clone)]
pub struct UllrichOutcome {
    /// The fully-narrowed range (2^N addresses).
    pub range: BitRange,
    /// Seeds still encapsulated by the final range.
    pub seeds_in_range: usize,
}

impl UllrichOutcome {
    /// The target addresses (all addresses of the final range).
    pub fn targets(&self) -> Vec<NybbleAddr> {
        self.range.addresses()
    }
}

/// Runs the recursive narrowing from `start` until only
/// `undetermined_bits` remain undetermined.
///
/// Ties between equally-matching (bit, value) pairs resolve toward the
/// most significant bit and value 0, making runs deterministic.
///
/// # Panics
/// Panics if `start` has no determined bit (the paper requires at least
/// one) or `undetermined_bits > 24` (enumerating more than 2²⁴ targets is
/// refused).
pub fn ullrich_targets(
    seeds: &[NybbleAddr],
    start: BitRange,
    undetermined_bits: u32,
) -> UllrichOutcome {
    assert!(start.mask != 0, "start range must have a determined bit");
    assert!(undetermined_bits <= 24, "final range too large to enumerate");
    let mut range = start;
    let mut inside: Vec<NybbleAddr> = seeds.iter().copied().filter(|s| range.contains(*s)).collect();
    while range.undetermined_bits() > undetermined_bits {
        // Count, for every undetermined bit, how many in-range seeds have
        // it set; the best (bit, value) pair maximizes matches.
        let mut best_bit = 0u32;
        let mut best_value = false;
        let mut best_matches = -1i64;
        for bit in 0..128u32 {
            let m = 1u128 << (127 - bit);
            if range.mask & m != 0 {
                continue;
            }
            let ones = inside.iter().filter(|s| s.bits() & m != 0).count() as i64;
            let zeros = inside.len() as i64 - ones;
            for (value, matches) in [(false, zeros), (true, ones)] {
                if matches > best_matches {
                    best_matches = matches;
                    best_bit = bit;
                    best_value = value;
                }
            }
        }
        range = range.with_bit(best_bit, best_value);
        inside.retain(|s| range.contains(*s));
    }
    UllrichOutcome {
        range,
        seeds_in_range: inside.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn a(s: &str) -> NybbleAddr {
        s.parse().unwrap()
    }

    #[test]
    fn bitrange_basics() {
        let r = BitRange::from_prefix(a("2001:db8::"), 32);
        assert_eq!(r.undetermined_bits(), 96);
        assert_eq!(r.size(), 1u128 << 96);
        assert!(r.contains(a("2001:db8::1")));
        assert!(!r.contains(a("2001:db9::1")));
        assert_eq!(BitRange::UNDETERMINED.size(), u128::MAX);
    }

    #[test]
    fn with_bit_fixes_one_bit() {
        let r = BitRange::from_prefix(a("2001:db8::"), 32).with_bit(127, true);
        assert!(r.contains(a("2001:db8::1")));
        assert!(!r.contains(a("2001:db8::2")));
        assert_eq!(r.undetermined_bits(), 95);
    }

    #[test]
    fn addresses_enumerates_final_range() {
        let r = BitRange::from_prefix(a("2001:db8::"), 126);
        let addrs = r.addresses();
        assert_eq!(addrs.len(), 4);
        assert!(addrs.contains(&a("2001:db8::")));
        assert!(addrs.contains(&a("2001:db8::3")));
    }

    #[test]
    fn narrows_to_dense_region() {
        // 20 seeds in 2001:db8::1xx, 2 stragglers elsewhere: narrowing to
        // 8 undetermined bits must land on the ::1xx region.
        let mut seeds: Vec<NybbleAddr> = (0..20u32)
            .map(|i| NybbleAddr::from_bits(0x2001_0db8u128 << 96 | 0x100 | i as u128))
            .collect();
        seeds.push(a("2001:db8::9999"));
        seeds.push(a("2001:db8:ffff::1"));
        let start = BitRange::from_prefix(a("2001:db8::"), 32);
        let outcome = ullrich_targets(&seeds, start, 8);
        assert_eq!(outcome.range.undetermined_bits(), 8);
        assert_eq!(outcome.seeds_in_range, 20);
        let targets = outcome.targets();
        assert_eq!(targets.len(), 256);
        // All 20 dense seeds are covered.
        for i in 0..20u32 {
            let s = NybbleAddr::from_bits(0x2001_0db8u128 << 96 | 0x100 | i as u128);
            assert!(outcome.range.contains(s));
        }
    }

    #[test]
    fn respects_fixed_output_size_limitation() {
        // §3.3: "it can only output ranges of constant size (dependent on
        // the parameter N)" — whatever the seeds, the output is 2^N.
        let seeds = vec![a("2001:db8::1")];
        let start = BitRange::from_prefix(a("2001:db8::"), 32);
        for n in [0u32, 4, 10] {
            let outcome = ullrich_targets(&seeds, start, n);
            assert_eq!(outcome.range.size(), 1u128 << n);
        }
    }

    #[test]
    fn empty_seed_set_still_narrows_deterministically() {
        let start = BitRange::from_prefix(a("2001:db8::"), 32);
        let outcome = ullrich_targets(&[], start, 4);
        assert_eq!(outcome.range.undetermined_bits(), 4);
        assert_eq!(outcome.seeds_in_range, 0);
        // Tie-breaking fixes bits to zero from the most significant side.
        assert!(outcome.range.contains(a("2001:db8::")));
    }

    #[test]
    fn sample_stays_in_range() {
        let r = BitRange::from_prefix(a("2001:db8::"), 48);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..50 {
            assert!(r.contains(r.sample(&mut rng)));
        }
    }

    #[test]
    #[should_panic(expected = "determined bit")]
    fn start_without_determined_bits_rejected() {
        ullrich_targets(&[], BitRange::UNDETERMINED, 4);
    }

    #[test]
    #[should_panic(expected = "refusing to enumerate")]
    fn oversized_enumeration_rejected() {
        BitRange::from_prefix(a("2001:db8::"), 32).addresses();
    }
}
