//! RFC 7707 low-byte prediction: "varying the low-order bytes of seed
//! addresses" (§3.3 of the paper), the simplest useful TGA.

use sixgen_addr::NybbleAddr;
use std::collections::HashSet;

/// Generates up to `budget` distinct targets by sweeping the low
/// `span_bits` bits of every seed.
///
/// Seeds are processed round-robin in increasing offset order (offset 0,
/// then 1, …) so the budget spreads evenly over seeds rather than
/// exhausting the first seed's neighborhood — matching how RFC 7707
/// reconnaissance is performed in practice. Seed addresses themselves are
/// included (offset layouts usually cover them).
///
/// # Panics
/// Panics if `span_bits > 24` (the neighborhood would exceed 2²⁴ per
/// seed).
pub fn low_byte_targets(seeds: &[NybbleAddr], budget: usize, span_bits: u32) -> Vec<NybbleAddr> {
    assert!(span_bits <= 24, "low-byte span too large");
    if budget == 0 || seeds.is_empty() {
        return Vec::new();
    }
    let span: u64 = 1 << span_bits;
    let mut out = Vec::with_capacity(budget.min(seeds.len() << span_bits.min(16)));
    let mut seen: HashSet<NybbleAddr> = HashSet::new();
    // Distinct seed neighborhoods (two seeds in the same low-span window
    // generate the same block).
    let mut bases: Vec<u128> = seeds
        .iter()
        .map(|s| s.bits() & !((span as u128) - 1))
        .collect();
    bases.sort_unstable();
    bases.dedup();
    'outer: for offset in 0..span {
        for &base in &bases {
            let addr = NybbleAddr::from_bits(base | offset as u128);
            if seen.insert(addr) {
                out.push(addr);
                if out.len() >= budget {
                    break 'outer;
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(s: &str) -> NybbleAddr {
        s.parse().unwrap()
    }

    #[test]
    fn sweeps_low_bits_of_each_seed() {
        let seeds = vec![a("2001:db8::42"), a("2001:db8:1::99")];
        let targets = low_byte_targets(&seeds, 1000, 8);
        assert_eq!(targets.len(), 512, "two /120 windows");
        assert!(targets.contains(&a("2001:db8::")));
        assert!(targets.contains(&a("2001:db8::ff")));
        assert!(targets.contains(&a("2001:db8:1::")));
        assert!(targets.contains(&a("2001:db8:1::ff")));
        assert!(targets.contains(&a("2001:db8::42")), "seed covered");
    }

    #[test]
    fn budget_spreads_round_robin() {
        let seeds = vec![a("2001:db8::42"), a("2001:db8:1::99")];
        let targets = low_byte_targets(&seeds, 10, 8);
        assert_eq!(targets.len(), 10);
        // Both neighborhoods are touched despite the tiny budget.
        let first = targets.iter().filter(|t| t.bits() >> 64 == 0x2001_0db8_0000_0000).count();
        let second = targets.len() - first;
        assert_eq!(first, 5);
        assert_eq!(second, 5);
    }

    #[test]
    fn overlapping_windows_deduplicate() {
        // Two seeds in the same /120: one window only.
        let seeds = vec![a("2001:db8::1"), a("2001:db8::fe")];
        let targets = low_byte_targets(&seeds, 1000, 8);
        assert_eq!(targets.len(), 256);
    }

    #[test]
    fn empty_seeds_empty_targets() {
        assert!(low_byte_targets(&[], 100, 8).is_empty());
    }

    #[test]
    fn zero_budget() {
        assert!(low_byte_targets(&[a("::1")], 0, 8).is_empty());
    }
}
