//! Dense-prefix target generation in the style of Plonka & Berger's
//! Multi-Resolution Aggregate analysis (§3.2 of the paper):
//!
//! > "They also introduced a method for identifying dense network prefixes
//! > from the given addresses that can be leveraged for scanning. We note
//! > that while 6Gen is similarly density-driven, it considers any address
//! > space region, beyond just network prefixes."
//!
//! [`aggregate_counts`] computes the MRA-style seed counts per aggregate at
//! one prefix length; [`dense_prefix_targets`] ranks aggregates by density
//! and spends a budget on the densest prefixes first. The contrast with
//! 6Gen is exactly the paper's: aggregates must sit on power-of-two prefix
//! boundaries, while 6Gen's nybble rectangles can capture, e.g., a port
//! embedded in the low 16 bits across many subnets.

use rand::rngs::StdRng;
use sixgen_addr::{NybbleAddr, Prefix, Range, RangeSampler};
use std::collections::HashMap;

/// Counts seeds per aggregate (prefix of length `len`), the core of an MRA
/// row. Returned sorted by descending count, then by prefix.
pub fn aggregate_counts(seeds: &[NybbleAddr], len: u8) -> Vec<(Prefix, usize)> {
    let mut counts: HashMap<Prefix, usize> = HashMap::new();
    for &seed in seeds {
        *counts.entry(Prefix::of(seed, len)).or_default() += 1;
    }
    let mut out: Vec<(Prefix, usize)> = counts.into_iter().collect();
    out.sort_by_key(|&(prefix, count)| (std::cmp::Reverse(count), prefix));
    out
}

/// The full multi-resolution profile: the number of distinct aggregates at
/// each of the given prefix lengths. A sharp drop between adjacent lengths
/// reveals the allocation boundary (e.g. many /64s collapsing into few
/// /48s exposes per-customer /48 delegation).
pub fn mra_profile(seeds: &[NybbleAddr], lens: &[u8]) -> Vec<(u8, usize)> {
    lens.iter()
        .map(|&len| {
            let mut prefixes: Vec<Prefix> =
                seeds.iter().map(|&s| Prefix::of(s, len)).collect();
            prefixes.sort_unstable();
            prefixes.dedup();
            (len, prefixes.len())
        })
        .collect()
}

/// Generates up to `budget` distinct targets by scanning aggregates of
/// length `len` in descending seed-density order. Aggregates small enough
/// to enumerate are enumerated; larger ones are sampled uniformly, with
/// each aggregate receiving a budget share proportional to its seed count.
///
/// # Panics
/// Panics if `len` is not a multiple of 4 (aggregates must be
/// nybble-aligned to convert to ranges) or `len > 128`.
pub fn dense_prefix_targets(
    seeds: &[NybbleAddr],
    len: u8,
    budget: usize,
    rng: &mut StdRng,
) -> Vec<NybbleAddr> {
    assert!(len <= 128 && len.is_multiple_of(4), "aggregate length must be nybble-aligned");
    if budget == 0 || seeds.is_empty() {
        return Vec::new();
    }
    let ranked = aggregate_counts(seeds, len);
    let total_seeds: usize = ranked.iter().map(|&(_, c)| c).sum();
    let mut out: Vec<NybbleAddr> = Vec::with_capacity(budget);
    let mut seen: std::collections::HashSet<NybbleAddr> = std::collections::HashSet::new();
    for (prefix, count) in ranked {
        if out.len() >= budget {
            break;
        }
        let share = ((budget as f64 * count as f64 / total_seeds as f64).ceil() as usize)
            .min(budget - out.len());
        let range: Range = prefix
            .to_range()
            .expect("nybble-aligned aggregate converts to a range");
        if range.size() <= share as u128 {
            for addr in range.iter() {
                if seen.insert(addr) {
                    out.push(addr);
                }
            }
        } else {
            let mut sampler = RangeSampler::new(range);
            for addr in sampler.draw(rng, share, |a| seen.contains(&a)) {
                seen.insert(addr);
                out.push(addr);
            }
        }
    }
    out.truncate(budget);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn a(s: &str) -> NybbleAddr {
        s.parse().unwrap()
    }

    fn seeds() -> Vec<NybbleAddr> {
        let mut v = Vec::new();
        // Dense /120: 30 seeds.
        for i in 0..30u32 {
            v.push(NybbleAddr::from_bits(0x2001_0db8u128 << 96 | i as u128));
        }
        // Sparse /120 elsewhere: 2 seeds.
        v.push(a("2001:db8:ffff::1"));
        v.push(a("2001:db8:ffff::2"));
        v
    }

    #[test]
    fn aggregate_counts_ranks_by_density() {
        let ranked = aggregate_counts(&seeds(), 120);
        assert_eq!(ranked[0].1, 30);
        assert_eq!(ranked[0].0, "2001:db8::/120".parse().unwrap());
        assert_eq!(ranked[1].1, 2);
    }

    #[test]
    fn mra_profile_shows_aggregation_boundary() {
        let profile = mra_profile(&seeds(), &[128, 120, 48, 32]);
        assert_eq!(profile[0], (128, 32), "all addresses distinct");
        assert_eq!(profile[1], (120, 2), "two /120 aggregates");
        assert_eq!(profile[2], (48, 2));
        assert_eq!(profile[3], (32, 1), "one routed /32");
    }

    #[test]
    fn dense_prefix_targets_prioritize_dense_aggregates() {
        let mut rng = StdRng::seed_from_u64(1);
        let targets = dense_prefix_targets(&seeds(), 120, 256, &mut rng);
        assert_eq!(targets.len(), 256);
        let dense: Prefix = "2001:db8::/120".parse().unwrap();
        let in_dense = targets.iter().filter(|t| dense.contains(**t)).count();
        assert!(in_dense >= 230, "only {in_dense} targets in the dense /120");
        // Distinct.
        let uniq: std::collections::HashSet<_> = targets.iter().collect();
        assert_eq!(uniq.len(), targets.len());
    }

    #[test]
    fn small_aggregates_are_enumerated_fully() {
        let mut rng = StdRng::seed_from_u64(1);
        // /124 aggregates (16 addresses) with generous budget: both
        // aggregates fully enumerated.
        let two = vec![a("2001:db8::1"), a("2001:db8::2"), a("2001:db8:f::8")];
        let targets = dense_prefix_targets(&two, 124, 1000, &mut rng);
        assert_eq!(targets.len(), 32);
        assert!(targets.contains(&a("2001:db8::f")));
        assert!(targets.contains(&a("2001:db8:f::0")));
    }

    #[test]
    fn budget_zero_and_empty_seeds() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(dense_prefix_targets(&seeds(), 120, 0, &mut rng).is_empty());
        assert!(dense_prefix_targets(&[], 120, 10, &mut rng).is_empty());
    }

    #[test]
    #[should_panic(expected = "nybble-aligned")]
    fn non_aligned_length_rejected() {
        let mut rng = StdRng::seed_from_u64(1);
        dense_prefix_targets(&seeds(), 99, 10, &mut rng);
    }
}
