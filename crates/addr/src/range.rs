//! [`Range`]: a rectangular region of IPv6 address space, one value set per
//! nybble position.
//!
//! 6Gen clusters are *defined* by a range (§5.3 of the paper): every nybble
//! position independently admits a set of values. A fully dynamic position
//! is the paper's `?` wildcard; a bounded position is the `[1-2,8-a]`
//! notation. The paper distinguishes **loose** ranges (every dynamic nybble
//! is a full wildcard) from **tight** ranges (dynamic nybbles carry exactly
//! the observed values); both are instances of this one type, produced by
//! the two expansion operations [`Range::expand_loose`] and
//! [`Range::expand_tight`].

use crate::address::NybbleAddr;
use crate::error::AddrParseError;
use crate::nybble::{count_nonzero_nybbles, nybble_nonzero_positions, NybbleSet, NYBBLE_COUNT};
use rand::Rng;
use std::collections::HashSet;
use std::str::FromStr;

/// A rectangular IPv6 address region: the Cartesian product of one
/// [`NybbleSet`] per nybble position.
///
/// Invariant: every position's set is non-empty, so a range always contains
/// at least one address.
///
/// The type caches a packed representation of its *fixed* positions
/// (positions admitting exactly one value) so that membership tests and
/// Hamming distances run in a handful of word operations — the dominant cost
/// of 6Gen's candidate-seed search. Positions that are neither fixed nor
/// full wildcards ("partial" positions, which only arise in tight
/// clustering) are tracked in a short side list and checked in a loop.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Range {
    sets: [NybbleSet; NYBBLE_COUNT],
    /// `0xF` at each fixed position, `0` elsewhere.
    fixed_mask: u128,
    /// The fixed value at each fixed position, `0` elsewhere.
    fixed_values: u128,
    /// Positions that are neither fixed nor full (sorted, ascending).
    partial: Vec<u8>,
}

impl Range {
    /// The range containing exactly one address.
    pub fn from_address(addr: NybbleAddr) -> Range {
        let mut sets = [NybbleSet::EMPTY; NYBBLE_COUNT];
        for (i, set) in sets.iter_mut().enumerate() {
            *set = NybbleSet::single(addr.nybble(i));
        }
        Range {
            sets,
            fixed_mask: u128::MAX,
            fixed_values: addr.bits(),
            partial: Vec::new(),
        }
    }

    /// The range covering the entire IPv6 address space (all positions `?`).
    pub fn full() -> Range {
        Range::from_sets([NybbleSet::FULL; NYBBLE_COUNT])
    }

    /// Builds a range from explicit per-position sets.
    ///
    /// # Panics
    /// Panics if any set is empty (the range would contain no address).
    pub fn from_sets(sets: [NybbleSet; NYBBLE_COUNT]) -> Range {
        let mut fixed_mask = 0u128;
        let mut fixed_values = 0u128;
        let mut partial = Vec::new();
        for (i, set) in sets.iter().enumerate() {
            assert!(!set.is_empty(), "empty nybble set at position {i}");
            if let Some(v) = set.as_single() {
                let sh = NybbleAddr::shift(i);
                fixed_mask |= 0xFu128 << sh;
                fixed_values |= (v as u128) << sh;
            } else if !set.is_full() {
                partial.push(i as u8);
            }
        }
        Range {
            sets,
            fixed_mask,
            fixed_values,
            partial,
        }
    }

    /// The value set at nybble position `index`.
    ///
    /// # Panics
    /// Panics if `index >= 32`.
    #[inline]
    pub fn set(&self, index: usize) -> NybbleSet {
        self.sets[index]
    }

    /// All 32 per-position sets, most significant first.
    #[inline]
    pub fn sets(&self) -> &[NybbleSet; NYBBLE_COUNT] {
        &self.sets
    }

    /// Exports the range as 32 per-position set masks, most significant
    /// position first — the range's canonical wire form, used by the
    /// engine checkpoint format. Two equal ranges always export identical
    /// words, and [`Range::from_mask_words`] rebuilds an identical range
    /// (the packed fixed-position caches are re-derived, not serialized).
    pub fn mask_words(&self) -> [u16; NYBBLE_COUNT] {
        let mut words = [0u16; NYBBLE_COUNT];
        for (word, set) in words.iter_mut().zip(&self.sets) {
            *word = set.mask();
        }
        words
    }

    /// Rebuilds a range from [`Range::mask_words`] output. Returns `None`
    /// if any word is zero (an empty per-position set — the range would
    /// contain no address), so untrusted bytes cannot violate the
    /// non-empty invariant or panic.
    pub fn from_mask_words(words: [u16; NYBBLE_COUNT]) -> Option<Range> {
        if words.contains(&0) {
            return None;
        }
        let mut sets = [NybbleSet::EMPTY; NYBBLE_COUNT];
        for (set, &word) in sets.iter_mut().zip(&words) {
            *set = NybbleSet::from_mask(word);
        }
        Some(Range::from_sets(sets))
    }

    /// Packed mask of the *fixed* (single-value) positions: nybble `i` is
    /// `0xF` iff position `i`'s set holds exactly one value. With
    /// [`fixed_values`], supports word-parallel mismatch tests over many
    /// addresses.
    ///
    /// [`fixed_values`]: Range::fixed_values
    #[inline]
    pub fn fixed_mask(&self) -> u128 {
        self.fixed_mask
    }

    /// The single allowed value at every fixed position, packed at the
    /// position's nybble (zero elsewhere). See [`Range::fixed_mask`].
    #[inline]
    pub fn fixed_values(&self) -> u128 {
        self.fixed_values
    }

    /// The *partial* positions — more than one value allowed but not a
    /// full wildcard — ascending. Usually a handful: scan these
    /// one-by-one after a word-parallel pass over the fixed positions.
    #[inline]
    pub fn partial_positions(&self) -> &[u8] {
        &self.partial
    }

    /// The number of *dynamic* positions (sets with more than one value).
    pub fn dynamic_count(&self) -> u32 {
        (u128::MAX ^ self.fixed_mask).count_ones() / 4
    }

    /// Iterator over the indices of dynamic positions.
    pub fn dynamic_positions(&self) -> impl Iterator<Item = usize> + '_ {
        (0..NYBBLE_COUNT).filter(|&i| !self.sets[i].is_single())
    }

    /// `true` if every dynamic position is a full wildcard — the paper's
    /// *loose* range form (§5.3).
    pub fn is_loose(&self) -> bool {
        self.partial.is_empty()
    }

    /// The number of addresses in the range: the product of per-position set
    /// sizes. The only value that exceeds `u128` is the full address space
    /// (16³² = 2¹²⁸, all positions `?`), which saturates to `u128::MAX`;
    /// callers that can encounter the full space should treat `u128::MAX`
    /// as "entire space".
    pub fn size(&self) -> u128 {
        let mut acc: u128 = 1;
        for set in &self.sets {
            match acc.checked_mul(set.len() as u128) {
                Some(v) => acc = v,
                None => return u128::MAX,
            }
        }
        acc
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, addr: NybbleAddr) -> bool {
        if (addr.bits() ^ self.fixed_values) & self.fixed_mask != 0 {
            return false;
        }
        self.partial
            .iter()
            .all(|&i| self.sets[i as usize].contains(addr.nybble(i as usize)))
    }

    /// Nybble-level Hamming distance from the range to an address: the
    /// number of positions whose set does not contain the address's value.
    /// Distance from a wildcard position is zero (§5.2). Equivalently, the
    /// number of positions that would become (more) dynamic if the address
    /// were clustered into the range.
    #[inline]
    pub fn distance(&self, addr: NybbleAddr) -> u32 {
        let mut d = count_nonzero_nybbles((addr.bits() ^ self.fixed_values) & self.fixed_mask);
        for &i in &self.partial {
            if !self.sets[i as usize].contains(addr.nybble(i as usize)) {
                d += 1;
            }
        }
        d
    }

    /// The *mismatch signature* of `addr` against this range: a 32-bit
    /// position mask with bit `31 - i` set iff nybble position `i`'s set
    /// does not contain the address's value (so bit `k` covers the nybble
    /// at bit-shift `4*k` of the packed `u128`, and
    /// `signature.count_ones() == self.distance(addr)`).
    ///
    /// The fixed positions are resolved word-parallel (XOR + nybble
    /// collapse, no per-nybble loop); only the short partial-position list
    /// is checked iteratively. Two addresses with equal signatures induce
    /// the same [`Range::expand_loose`] result, which is what lets growth
    /// evaluation dedup candidate seeds at the tree level.
    #[inline]
    pub fn mismatch_signature(&self, addr: NybbleAddr) -> u32 {
        let mut sig = nybble_nonzero_positions((addr.bits() ^ self.fixed_values) & self.fixed_mask);
        for &i in &self.partial {
            let i = i as usize;
            if !self.sets[i].contains(addr.nybble(i)) {
                sig |= 1 << (NYBBLE_COUNT - 1 - i);
            }
        }
        sig
    }

    /// Widens every position named by `signature` (same bit convention as
    /// [`Range::mismatch_signature`]) to a full `?` wildcard — the loose
    /// expansion induced by any address with that mismatch signature.
    ///
    /// A zero signature returns a clone.
    pub fn widen_positions(&self, signature: u32) -> Range {
        if signature == 0 {
            return self.clone();
        }
        let mut sets = self.sets;
        let mut bits = signature;
        while bits != 0 {
            let k = bits.trailing_zeros() as usize;
            sets[NYBBLE_COUNT - 1 - k] = NybbleSet::FULL;
            bits &= bits - 1;
        }
        Range::from_sets(sets)
    }

    /// Inserts, at every position named by `signature`, the corresponding
    /// nybble of the packed address `bits` — the tight expansion induced by
    /// any address matching `bits` at those positions (bit `k` of the
    /// signature selects the nybble at bit-shift `4*k`).
    ///
    /// A zero signature returns a clone.
    pub fn insert_position_values(&self, signature: u32, bits: u128) -> Range {
        if signature == 0 {
            return self.clone();
        }
        let mut sets = self.sets;
        let mut sig = signature;
        while sig != 0 {
            let k = sig.trailing_zeros() as usize;
            let i = NYBBLE_COUNT - 1 - k;
            sets[i] = sets[i].insert(((bits >> (4 * k)) & 0xF) as u8);
            sig &= sig - 1;
        }
        Range::from_sets(sets)
    }

    /// Expands the range to cover `addr`, turning every mismatching
    /// position into a **full wildcard** — loose clustering (§5.3/§6.3).
    ///
    /// Positions that already contain the address's value are unchanged, so
    /// expanding by a member address returns a clone.
    pub fn expand_loose(&self, addr: NybbleAddr) -> Range {
        self.widen_positions(self.mismatch_signature(addr))
    }

    /// Expands the range to cover `addr`, inserting only the address's value
    /// at each mismatching position — tight clustering (§5.3/§6.3).
    pub fn expand_tight(&self, addr: NybbleAddr) -> Range {
        self.insert_position_values(self.mismatch_signature(addr), addr.bits())
    }

    /// Converts to the loose form: every dynamic position becomes a full
    /// wildcard.
    pub fn loosen(&self) -> Range {
        if self.is_loose() {
            return self.clone();
        }
        let mut sets = self.sets;
        for set in sets.iter_mut() {
            if !set.is_single() {
                *set = NybbleSet::FULL;
            }
        }
        Range::from_sets(sets)
    }

    /// Per-position union of two ranges (the smallest rectangle covering
    /// both).
    pub fn union(&self, other: &Range) -> Range {
        let mut sets = self.sets;
        for (i, set) in sets.iter_mut().enumerate() {
            *set = set.union(other.sets[i]);
        }
        Range::from_sets(sets)
    }

    /// `true` if every address of `self` lies in `other` (per-position
    /// subset test). Used by 6Gen's subsumed-cluster deletion (§5.4).
    pub fn is_subset(&self, other: &Range) -> bool {
        self.sets
            .iter()
            .zip(other.sets.iter())
            .all(|(a, b)| a.is_subset(*b))
    }

    /// Packs the 32 per-position membership masks into four 128-bit words
    /// for word-parallel subset tests (see [`PackedMasks`]).
    pub fn packed_masks(&self) -> PackedMasks {
        let mut words = [0u128; 4];
        for (i, set) in self.sets.iter().enumerate() {
            words[i / 8] |= (set.mask() as u128) << ((i % 8) * 16);
        }
        PackedMasks { words }
    }

    /// `true` if the two ranges share at least one address.
    pub fn intersects(&self, other: &Range) -> bool {
        self.sets
            .iter()
            .zip(other.sets.iter())
            .all(|(a, b)| !a.intersection(*b).is_empty())
    }

    /// The rectangle of addresses common to both ranges, if any.
    pub fn intersection(&self, other: &Range) -> Option<Range> {
        let mut sets = [NybbleSet::EMPTY; NYBBLE_COUNT];
        for (i, slot) in sets.iter_mut().enumerate() {
            let s = self.sets[i].intersection(other.sets[i]);
            if s.is_empty() {
                return None;
            }
            *slot = s;
        }
        Some(Range::from_sets(sets))
    }

    /// The `index`-th address of the range in lexicographic (most-
    /// significant-position-first) order.
    ///
    /// # Panics
    /// Panics if `index >= self.size()`.
    pub fn nth(&self, index: u128) -> NybbleAddr {
        let mut idx = index;
        let mut nybbles = [0u8; NYBBLE_COUNT];
        // Decompose in mixed radix, least significant position first.
        for i in (0..NYBBLE_COUNT).rev() {
            let radix = self.sets[i].len() as u128;
            nybbles[i] = self.sets[i].nth_value((idx % radix) as u32);
            idx /= radix;
        }
        assert!(idx == 0, "range index out of bounds");
        NybbleAddr::from_nybbles(nybbles)
    }

    /// The lexicographic rank of `addr` within the range, if it is a member.
    pub fn index_of(&self, addr: NybbleAddr) -> Option<u128> {
        let mut index: u128 = 0;
        for i in 0..NYBBLE_COUNT {
            let rank = self.sets[i].rank_of(addr.nybble(i))?;
            index = index * self.sets[i].len() as u128 + rank as u128;
        }
        Some(index)
    }

    /// The smallest address in the range.
    pub fn min_address(&self) -> NybbleAddr {
        let mut nybbles = [0u8; NYBBLE_COUNT];
        for (i, slot) in nybbles.iter_mut().enumerate() {
            *slot = self.sets[i].min_value().expect("range sets are non-empty");
        }
        NybbleAddr::from_nybbles(nybbles)
    }

    /// The largest address in the range. Every member lies numerically in
    /// `[min_address(), max_address()]` (per-position nybbles are
    /// independent), so any address outside that interval is outside the
    /// range — the basis for sorted-neighbour distance bounds.
    pub fn max_address(&self) -> NybbleAddr {
        let mut nybbles = [0u8; NYBBLE_COUNT];
        for (i, slot) in nybbles.iter_mut().enumerate() {
            *slot = self.sets[i].max_value().expect("range sets are non-empty");
        }
        NybbleAddr::from_nybbles(nybbles)
    }

    /// Iterates every address in the range in lexicographic order.
    pub fn iter(&self) -> RangeIter<'_> {
        RangeIter::new(self)
    }

    /// Draws one address uniformly at random. Per-position independent
    /// sampling is exactly uniform over the rectangle, so this works even
    /// for ranges whose size saturates `u128`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> NybbleAddr {
        let mut nybbles = [0u8; NYBBLE_COUNT];
        for (i, slot) in nybbles.iter_mut().enumerate() {
            let set = self.sets[i];
            *slot = match set.as_single() {
                Some(v) => v,
                None => set.nth_value(rng.gen_range(0..set.len())),
            };
        }
        NybbleAddr::from_nybbles(nybbles)
    }
}

impl FromStr for Range {
    type Err = AddrParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        crate::parse::parse_range(s)
    }
}

impl core::fmt::Display for Range {
    /// Formats using group notation with RFC 5952-style `::` compression of
    /// the longest run (≥ 2) of all-zero groups. Dynamic nybbles render as
    /// `?` or `[..]` sets; groups containing them are never compressed.
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        // A group is "zero" if all four sets are the single value 0.
        let group_is_zero = |g: usize| {
            (0..4).all(|k| self.sets[g * 4 + k] == NybbleSet::single(0))
        };
        // Find the leftmost longest run of >= 2 zero groups.
        let (mut best_start, mut best_len) = (0usize, 0usize);
        let mut g = 0;
        while g < 8 {
            if group_is_zero(g) {
                let start = g;
                while g < 8 && group_is_zero(g) {
                    g += 1;
                }
                if g - start > best_len {
                    best_start = start;
                    best_len = g - start;
                }
            } else {
                g += 1;
            }
        }
        let compress = best_len >= 2;
        let write_group = |f: &mut core::fmt::Formatter<'_>, g: usize| -> core::fmt::Result {
            // Skip leading fixed zeros, but print at least one token.
            let mut started = false;
            for k in 0..4 {
                let set = self.sets[g * 4 + k];
                if !started && k < 3 && set == NybbleSet::single(0) {
                    continue;
                }
                started = true;
                write!(f, "{set}")?;
            }
            Ok(())
        };
        let mut g = 0;
        let mut first = true;
        while g < 8 {
            if compress && g == best_start {
                f.write_str("::")?;
                g += best_len;
                first = true; // '::' already provides the separator
                if g == 8 {
                    return Ok(());
                }
                continue;
            }
            if !first {
                f.write_str(":")?;
            }
            first = false;
            write_group(f, g)?;
            g += 1;
        }
        Ok(())
    }
}

/// Lexicographic iterator over a [`Range`]'s addresses (an odometer over the
/// per-position value sets; the least significant position varies fastest).
#[derive(Debug, Clone)]
pub struct RangeIter<'a> {
    range: &'a Range,
    /// Per-position rank of the next address, or `None` when exhausted.
    ranks: Option<[u32; NYBBLE_COUNT]>,
}

impl<'a> RangeIter<'a> {
    fn new(range: &'a Range) -> Self {
        RangeIter {
            range,
            ranks: Some([0; NYBBLE_COUNT]),
        }
    }
}

impl Iterator for RangeIter<'_> {
    type Item = NybbleAddr;

    fn next(&mut self) -> Option<NybbleAddr> {
        let ranks = self.ranks.as_mut()?;
        let mut nybbles = [0u8; NYBBLE_COUNT];
        for i in 0..NYBBLE_COUNT {
            nybbles[i] = self.range.sets[i].nth_value(ranks[i]);
        }
        // Advance the odometer.
        let mut i = NYBBLE_COUNT;
        loop {
            if i == 0 {
                self.ranks = None;
                break;
            }
            i -= 1;
            ranks[i] += 1;
            if ranks[i] < self.range.sets[i].len() {
                break;
            }
            ranks[i] = 0;
        }
        Some(NybbleAddr::from_nybbles(nybbles))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        match &self.ranks {
            None => (0, Some(0)),
            Some(_) => {
                let sz = self.range.size();
                if sz <= usize::MAX as u128 {
                    (sz as usize, Some(sz as usize))
                } else {
                    (usize::MAX, None)
                }
            }
        }
    }
}

/// Samples **distinct** addresses from a range, optionally excluding a set
/// of already-used addresses.
///
/// 6Gen's final cluster growth must "consume the budget exactly by randomly
/// selecting addresses in the newly grown cluster's range that were not in
/// the cluster's pre-growth range" (§5.4). For ranges not much larger than
/// the number of draws, rejection sampling degrades, so the sampler switches
/// to enumerate-and-shuffle below a density threshold.
#[derive(Debug)]
pub struct RangeSampler {
    range: Range,
    drawn: HashSet<NybbleAddr>,
}

/// A [`Range`]'s 32 per-position membership masks packed into four 128-bit
/// words (eight 16-bit nybble-set masks per word).
///
/// Per position, `a ⊆ b` is `mask_a & !mask_b == 0`; packing tests eight
/// positions per `u128` AND-NOT, so a full subset test is four word ops
/// instead of a 32-iteration loop. The engine's subsumption scan — every
/// live cluster tested against each newly grown range, every round — keeps
/// one `PackedMasks` per cluster to make that scan cheap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PackedMasks {
    words: [u128; 4],
}

impl PackedMasks {
    /// `true` if every per-position set of `self` is a subset of the
    /// corresponding set of `other`. Agrees exactly with
    /// [`Range::is_subset`] on the source ranges.
    #[inline]
    pub fn is_subset(&self, other: &PackedMasks) -> bool {
        self.words
            .iter()
            .zip(other.words.iter())
            .all(|(a, b)| a & !b == 0)
    }
}

impl RangeSampler {
    /// Creates a sampler over `range`.
    pub fn new(range: Range) -> RangeSampler {
        RangeSampler {
            range,
            drawn: HashSet::new(),
        }
    }

    /// Draws up to `count` distinct addresses from the range, each not
    /// previously drawn by this sampler and for which `exclude` returns
    /// `false`. Returns fewer than `count` only if the range is exhausted.
    pub fn draw<R: Rng + ?Sized>(
        &mut self,
        rng: &mut R,
        count: usize,
        mut exclude: impl FnMut(NybbleAddr) -> bool,
    ) -> Vec<NybbleAddr> {
        let size = self.range.size();
        let mut out = Vec::with_capacity(count);
        // Dense regime: enumerating the whole range costs at most 4x the
        // requested draw, so do that and shuffle for exact uniformity.
        let dense = size <= (count as u128).saturating_mul(4).max(1024);
        if dense {
            let mut pool: Vec<NybbleAddr> = self
                .range
                .iter()
                .filter(|a| !self.drawn.contains(a) && !exclude(*a))
                .collect();
            // Partial Fisher–Yates: only the first `count` slots matter.
            let take = count.min(pool.len());
            for i in 0..take {
                let j = rng.gen_range(i..pool.len());
                pool.swap(i, j);
            }
            pool.truncate(take);
            for a in &pool {
                self.drawn.insert(*a);
            }
            out.extend(pool);
            return out;
        }
        // Sparse regime: rejection sampling; collisions are rare because the
        // range dwarfs the draw count.
        let mut attempts: u64 = 0;
        let max_attempts = (count as u64).saturating_mul(64).max(4096);
        while out.len() < count && attempts < max_attempts {
            attempts += 1;
            let a = self.range.sample(rng);
            if self.drawn.contains(&a) || exclude(a) {
                continue;
            }
            self.drawn.insert(a);
            out.push(a);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn r(s: &str) -> Range {
        s.parse().unwrap()
    }

    fn a(s: &str) -> NybbleAddr {
        s.parse().unwrap()
    }

    #[test]
    fn paper_example_range() {
        // §2: 2001:db8::?:100? represents 256 addresses, including
        // 2001:db8::5:1000, 2001:db8::8:100a, and 2001:db8::1003.
        let range = r("2001:db8::?:100?");
        assert_eq!(range.size(), 256);
        assert!(range.contains(a("2001:db8::5:1000")));
        assert!(range.contains(a("2001:db8::8:100a")));
        assert!(range.contains(a("2001:db8::1003")));
        assert!(!range.contains(a("2001:db8::5:2000")));
    }

    #[test]
    fn singleton_range() {
        let range = Range::from_address(a("2001:db8::1"));
        assert_eq!(range.size(), 1);
        assert!(range.contains(a("2001:db8::1")));
        assert!(!range.contains(a("2001:db8::2")));
        assert_eq!(range.dynamic_count(), 0);
        assert!(range.is_loose());
        assert_eq!(range.to_string(), "2001:db8::1");
    }

    #[test]
    fn full_range_saturates_size() {
        let range = Range::full();
        assert_eq!(range.size(), u128::MAX);
        assert!(range.contains(a("::")));
        assert!(range.contains(a("ffff:ffff:ffff:ffff:ffff:ffff:ffff:ffff")));
        assert_eq!(range.dynamic_count(), 32);
    }

    #[test]
    fn almost_full_range_size_is_exact() {
        // One fixed position: 16^31 exactly.
        let mut sets = [NybbleSet::FULL; NYBBLE_COUNT];
        sets[0] = NybbleSet::single(2);
        assert_eq!(Range::from_sets(sets).size(), 1u128 << 124);
    }

    #[test]
    fn distance_examples_from_paper() {
        // §5.2: distance between 2001:db8::51 and 2001:db8::5? is zero.
        let range = r("2001:db8::5?");
        assert_eq!(range.distance(a("2001:db8::51")), 0);
        assert_eq!(range.distance(a("2001:db8::61")), 1);
        assert_eq!(range.distance(a("2001:db8::161")), 2);
        let singleton = Range::from_address(a("2001:db8::58"));
        assert_eq!(singleton.distance(a("2001:db8::51")), 1);
    }

    #[test]
    fn distance_counts_partial_positions() {
        let range = r("2001:db8::[1-3]");
        assert_eq!(range.distance(a("2001:db8::2")), 0);
        assert_eq!(range.distance(a("2001:db8::5")), 1);
        assert_eq!(range.distance(a("2002:db8::5")), 2);
    }

    #[test]
    fn expand_loose_makes_full_wildcards() {
        let range = Range::from_address(a("2001:db8::1230"));
        let grown = range.expand_loose(a("2001:db8::1204"));
        // Positions 29 and 31 differ.
        assert_eq!(grown.size(), 256);
        assert!(grown.contains(a("2001:db8::12ff")));
        assert!(grown.is_loose());
        assert_eq!(grown.to_string(), "2001:db8::12??");
    }

    #[test]
    fn expand_tight_inserts_single_values() {
        let range = Range::from_address(a("2001:db8::1230"));
        let grown = range.expand_tight(a("2001:db8::1204"));
        assert_eq!(grown.size(), 4); // {3,0} x {0,4}
        assert!(grown.contains(a("2001:db8::1230")));
        assert!(grown.contains(a("2001:db8::1204")));
        assert!(grown.contains(a("2001:db8::1200")));
        assert!(grown.contains(a("2001:db8::1234")));
        assert!(!grown.contains(a("2001:db8::1231")));
        assert!(!grown.is_loose());
    }

    #[test]
    fn mismatch_signature_matches_per_position_scan() {
        for (range_text, addr_text) in [
            ("2001:db8::5?", "2001:db8::51"),
            ("2001:db8::5?", "2001:db8::161"),
            ("2001:db8::[1-3]", "2002:db8::5"),
            ("2001:db8::1230", "2001:db8::1204"),
            ("::", "ffff:ffff:ffff:ffff:ffff:ffff:ffff:ffff"),
            ("?:2::3:?", "4:2::9:1"),
        ] {
            let range = r(range_text);
            let addr = a(addr_text);
            let mut expected = 0u32;
            for i in 0..NYBBLE_COUNT {
                if !range.set(i).contains(addr.nybble(i)) {
                    expected |= 1 << (NYBBLE_COUNT - 1 - i);
                }
            }
            let sig = range.mismatch_signature(addr);
            assert_eq!(sig, expected, "{range_text} vs {addr_text}");
            assert_eq!(sig.count_ones(), range.distance(addr));
        }
    }

    #[test]
    fn signature_expansions_match_address_expansions() {
        for (range_text, addr_text) in [
            ("2001:db8::1230", "2001:db8::1204"),
            ("2001:db8::5?", "2001:db8::161"),
            ("2001:db8::[1-3]", "2002:db8::5"),
        ] {
            let range = r(range_text);
            let addr = a(addr_text);
            let sig = range.mismatch_signature(addr);
            assert_eq!(range.widen_positions(sig), range.expand_loose(addr));
            assert_eq!(
                range.insert_position_values(sig, addr.bits()),
                range.expand_tight(addr)
            );
        }
        // Zero signature: both are clones.
        let range = r("2001:db8::?");
        assert_eq!(range.widen_positions(0), range);
        assert_eq!(range.insert_position_values(0, u128::MAX), range);
    }

    #[test]
    fn expand_by_member_is_identity() {
        let range = r("2001:db8::?");
        assert_eq!(range.expand_loose(a("2001:db8::7")), range);
        assert_eq!(range.expand_tight(a("2001:db8::7")), range);
    }

    #[test]
    fn loosen_widens_partials() {
        let tight = r("2001:db8::[1-3]");
        let loose = tight.loosen();
        assert_eq!(loose, r("2001:db8::?"));
        assert!(tight.is_subset(&loose));
    }

    #[test]
    fn subset_and_intersection() {
        let big = r("2001:db8::?:?");
        let small = r("2001:db8::5:?");
        assert!(small.is_subset(&big));
        assert!(!big.is_subset(&small));
        assert!(big.intersects(&small));
        assert_eq!(big.intersection(&small).unwrap(), small);

        let other = r("2001:db9::?");
        assert!(!big.intersects(&other));
        assert!(big.intersection(&other).is_none());

        let left = r("2001:db8::[1-4]");
        let right = r("2001:db8::[3-8]");
        let mid = left.intersection(&right).unwrap();
        assert_eq!(mid, r("2001:db8::[3-4]"));
    }

    #[test]
    fn union_covers_both() {
        let x = Range::from_address(a("2001:db8::1"));
        let y = Range::from_address(a("2001:db8::9"));
        let u = x.union(&y);
        assert_eq!(u, r("2001:db8::[1,9]"));
        assert!(x.is_subset(&u) && y.is_subset(&u));
    }

    #[test]
    fn nth_and_index_roundtrip() {
        let range = r("2001:db8::?:100[0-3]");
        let size = range.size();
        assert_eq!(size, 64);
        for idx in 0..size {
            let addr = range.nth(idx);
            assert!(range.contains(addr));
            assert_eq!(range.index_of(addr), Some(idx));
        }
        assert_eq!(range.index_of(a("2001:db8::1004")), None);
    }

    #[test]
    fn iteration_matches_nth() {
        let range = r("::[a-b]0[1,5]");
        let via_iter: Vec<_> = range.iter().collect();
        assert_eq!(via_iter.len(), range.size() as usize);
        for (i, addr) in via_iter.iter().enumerate() {
            assert_eq!(*addr, range.nth(i as u128));
        }
        // Lexicographic order.
        let mut sorted = via_iter.clone();
        sorted.sort();
        assert_eq!(via_iter, sorted);
    }

    #[test]
    fn min_address() {
        assert_eq!(r("2001:db8::?").min_address(), a("2001:db8::"));
        assert_eq!(r("2001:db8::[4-6]").min_address(), a("2001:db8::4"));
    }

    #[test]
    fn sampling_is_within_range() {
        let range = r("2001:db8::?:?");
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            assert!(range.contains(range.sample(&mut rng)));
        }
    }

    #[test]
    fn sampling_covers_all_values_eventually() {
        let range = r("::[0-3]");
        let mut rng = StdRng::seed_from_u64(7);
        let mut seen = HashSet::new();
        for _ in 0..200 {
            seen.insert(range.sample(&mut rng));
        }
        assert_eq!(seen.len(), 4);
    }

    #[test]
    fn sampler_draws_distinct_dense() {
        let range = r("::?"); // 16 addresses
        let mut s = RangeSampler::new(range.clone());
        let mut rng = StdRng::seed_from_u64(3);
        let drawn = s.draw(&mut rng, 10, |_| false);
        assert_eq!(drawn.len(), 10);
        let uniq: HashSet<_> = drawn.iter().collect();
        assert_eq!(uniq.len(), 10);
        // Draw the rest; never repeats, exhausts at 16.
        let rest = s.draw(&mut rng, 100, |_| false);
        assert_eq!(rest.len(), 6);
    }

    #[test]
    fn sampler_respects_exclusion() {
        let range = r("::?");
        let mut s = RangeSampler::new(range);
        let mut rng = StdRng::seed_from_u64(3);
        // Exclude even last nybbles.
        let drawn = s.draw(&mut rng, 16, |addr| addr.nybble(31) % 2 == 0);
        assert_eq!(drawn.len(), 8);
        assert!(drawn.iter().all(|a| a.nybble(31) % 2 == 1));
    }

    #[test]
    fn sampler_sparse_regime() {
        let range = r("2001:db8::?:?:?:?"); // 16^16 addresses
        let mut s = RangeSampler::new(range.clone());
        let mut rng = StdRng::seed_from_u64(3);
        let drawn = s.draw(&mut rng, 1000, |_| false);
        assert_eq!(drawn.len(), 1000);
        let uniq: HashSet<_> = drawn.iter().collect();
        assert_eq!(uniq.len(), 1000);
        assert!(drawn.iter().all(|a| range.contains(*a)));
    }

    #[test]
    fn mask_words_round_trip() {
        for s in [
            "2001:db8::?:100?",
            "::",
            "2001:db8::[1-2,8-a]",
            "?:2::3:?",
        ] {
            let range = r(s);
            let rebuilt = Range::from_mask_words(range.mask_words()).unwrap();
            assert_eq!(rebuilt, range, "round trip of {s}");
            assert_eq!(rebuilt.mask_words(), range.mask_words());
            // The derived caches must match too: subset/contains behave
            // identically on the rebuilt range.
            assert!(rebuilt.packed_masks().is_subset(&range.packed_masks()));
        }
        // An empty per-position set is rejected, not asserted on.
        let mut words = r("::").mask_words();
        words[7] = 0;
        assert!(Range::from_mask_words(words).is_none());
    }

    #[test]
    fn display_roundtrips_through_parse() {
        for s in [
            "2001:db8::?:100?",
            "::",
            "2001:db8::[1-2,8-a]",
            "?:2::3:?",
            "2001:db8:0:?::5",
        ] {
            let range = r(s);
            let printed = range.to_string();
            assert_eq!(r(&printed), range, "roundtrip of {s} via {printed}");
        }
    }
}
