//! Nybble-level IPv6 address model for target generation algorithms.
//!
//! This crate provides the address-manipulation substrate used by the 6Gen
//! reproduction (Murdock et al., *Target Generation for Internet-wide IPv6
//! Scanning*, IMC 2017):
//!
//! * [`NybbleAddr`] — a 128-bit IPv6 address viewed as 32 hexadecimal
//!   *nybbles* (4-bit digits), the granularity at which 6Gen reasons about
//!   address similarity.
//! * [`NybbleSet`] — the set of values a single nybble position may take,
//!   from a fixed digit through a bounded set (`[1-2,8-a]`) up to the full
//!   wildcard `?`.
//! * [`Range`] — a rectangular region of IPv6 address space: one
//!   [`NybbleSet`] per nybble position. Ranges support exact size
//!   computation, membership tests, nybble-level Hamming distance,
//!   expansion to cover new addresses (both *loose* and *tight*, §5.3 of the
//!   paper), enumeration, and uniform random sampling.
//! * [`Prefix`] — a bit-granularity CIDR prefix, used by the routing
//!   substrate and by /96-granularity alias detection.
//! * [`NybbleTree`] — the 16-ary trie of §5.5 of the paper, supporting
//!   "count/iterate the seeds inside this range" queries without scanning
//!   the full seed set, plus the fused growth-candidate query
//!   ([`NybbleTree::growth_candidates`]) that finds, deduplicates, and
//!   density-counts a cluster's candidate growths in one walk.
//! * [`U256`] — minimal 256-bit unsigned arithmetic so that seed densities
//!   (`count / range size`, with range sizes up to 2¹²⁸) can be compared
//!   *exactly* by cross-multiplication rather than through lossy floats.
//!
//! # Nybble indexing
//!
//! Nybble positions are indexed `0..=31` from the **most significant**
//! (leftmost in the textual form) to the least significant. The paper's
//! figures use 1-based indices; add one when comparing plots.
//!
//! # Textual syntax
//!
//! Plain addresses use RFC 4291 / RFC 5952 notation. Ranges extend it with
//! two wildcard forms inside groups, following the paper's notation:
//!
//! * `?` — a fully dynamic nybble (any of the 16 values);
//! * `[1-2,8-a]` — a bounded nybble that may take any listed value or
//!   value-range.
//!
//! ```
//! use sixgen_addr::{NybbleAddr, Range};
//!
//! let a: NybbleAddr = "2001:db8::11:2222".parse().unwrap();
//! let r: Range = "2001:db8::?:100?".parse().unwrap();
//! assert_eq!(r.size(), 256);
//! assert!(r.contains("2001:db8::5:1000".parse().unwrap()));
//! assert_eq!(a.hamming("2001:db8::11:2229".parse().unwrap()), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod address;
mod error;
mod nybble;
mod parse;
mod prefix;
mod range;
mod tree;
mod u256;

pub use address::NybbleAddr;
pub use error::{AddrParseError, ParseErrorKind};
pub use nybble::{NybbleSet, NYBBLE_COUNT};
pub use prefix::Prefix;
pub use range::{PackedMasks, Range, RangeIter, RangeSampler};
pub use tree::{CandidateGroup, GrowthCandidates, NybbleTree};
pub use u256::U256;


/// Compares two densities `a_count / a_size` and `b_count / b_size` exactly.
///
/// Seed density (cluster seed-set size divided by cluster range size, §5.4 of
/// the paper) drives 6Gen's greedy growth choice. Range sizes reach 2¹²⁸, so
/// the comparison cross-multiplies into 256-bit integers instead of rounding
/// through `f64`.
///
/// Both sizes must be non-zero (a range always contains at least one
/// address).
///
/// ```
/// use std::cmp::Ordering;
/// // 3/8 < 1/2 because 3·2 < 1·8.
/// assert_eq!(sixgen_addr::compare_density(3, 8, 1, 2), Ordering::Less);
/// ```
pub fn compare_density(
    a_count: u64,
    a_size: u128,
    b_count: u64,
    b_size: u128,
) -> core::cmp::Ordering {
    debug_assert!(a_size > 0 && b_size > 0, "range sizes are always positive");
    // Integer fast paths first. Equal counts or equal sizes reduce the
    // cross-multiplication to a single comparison of the other component —
    // and they dominate real workloads: the engine's per-round selection
    // scan compares thousands of cached growths whose counts and sizes
    // collide constantly (every singleton growing into the same-shaped
    // neighborhood ties exactly).
    if a_count == b_count {
        return if a_count == 0 {
            core::cmp::Ordering::Equal
        } else {
            b_size.cmp(&a_size)
        };
    }
    if a_size == b_size {
        return a_count.cmp(&b_count);
    }
    // Next, compare the cross-products in f64. Each computed product
    // carries at most three roundings (two u64/u128→f64 conversions and
    // one multiply), a combined relative error under 4·2⁻⁵³ ≈ 4.5e-16, so
    // a relative gap above 1e-12 between the two products decides the
    // exact comparison with orders of magnitude to spare. Near-ties —
    // including all exact ties, which the engine's selection scan must
    // detect exactly to keep its tie-break stream intact — fall through to
    // the exact 256-bit comparison.
    let lhs_f = a_count as f64 * b_size as f64;
    let rhs_f = b_count as f64 * a_size as f64;
    if (lhs_f - rhs_f).abs() > lhs_f.max(rhs_f) * 1e-12 {
        return if lhs_f > rhs_f {
            core::cmp::Ordering::Greater
        } else {
            core::cmp::Ordering::Less
        };
    }
    let lhs = U256::mul_u128(a_count as u128, b_size);
    let rhs = U256::mul_u128(b_count as u128, a_size);
    lhs.cmp(&rhs)
}

#[cfg(test)]
mod lib_tests {
    use super::*;
    use core::cmp::Ordering;

    #[test]
    fn density_comparison_basic() {
        assert_eq!(compare_density(1, 2, 1, 2), Ordering::Equal);
        assert_eq!(compare_density(1, 2, 1, 4), Ordering::Greater);
        assert_eq!(compare_density(1, 4, 1, 2), Ordering::Less);
        assert_eq!(compare_density(3, 4, 1, 2), Ordering::Greater);
    }

    #[test]
    fn density_comparison_huge_sizes() {
        // 10 seeds in 2^64 addresses is denser than 1000 seeds in 2^127.
        let small = 1u128 << 64;
        let huge = 1u128 << 127;
        assert_eq!(compare_density(10, small, 1000, huge), Ordering::Greater);
    }

    #[test]
    fn density_comparison_would_overflow_u128() {
        // count * size overflows u128 but the comparison must stay exact:
        // (2^63)/(2^127) == (2^62)/(2^126) exactly.
        assert_eq!(
            compare_density(1 << 63, 1 << 127, 1 << 62, 1 << 126),
            Ordering::Equal
        );
        assert_eq!(
            compare_density((1 << 63) + 1, 1 << 127, 1 << 62, 1 << 126),
            Ordering::Greater
        );
    }
}
