//! [`Prefix`]: bit-granularity CIDR prefixes.
//!
//! Routed-prefix grouping (§6.1 of the paper) and /96-granularity alias
//! detection (§6.2) both operate on CIDR prefixes. Unlike [`Range`], a
//! prefix is bit-aligned, not nybble-aligned: the paper notes (§4.2) that
//! operators announce prefixes longer than /64 and that a TGA must not
//! assume standard alignments, so arbitrary lengths `0..=128` are supported.

use crate::address::NybbleAddr;
use crate::error::{AddrParseError, ParseErrorKind};
use crate::nybble::NybbleSet;
use crate::range::Range;
use core::str::FromStr;

/// An IPv6 CIDR prefix: a network address and a length in bits.
///
/// The stored address is always masked to the prefix length (host bits are
/// zero), so two `Prefix` values compare equal iff they denote the same
/// network.
///
/// ```
/// use sixgen_addr::Prefix;
/// let p: Prefix = "2001:db8::/32".parse().unwrap();
/// assert!(p.contains("2001:db8:1234::1".parse().unwrap()));
/// assert!(!p.contains("2001:db9::1".parse().unwrap()));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Prefix {
    /// Network bits, host bits zeroed. Ordered before `len` so that the
    /// derived lexicographic `Ord` sorts by network address first.
    network: NybbleAddr,
    len: u8,
}

impl Prefix {
    /// The zero-length prefix covering the whole address space.
    pub const DEFAULT: Prefix = Prefix {
        network: NybbleAddr::UNSPECIFIED,
        len: 0,
    };

    /// Creates a prefix, masking `addr` down to `len` bits.
    ///
    /// # Panics
    /// Panics if `len > 128`.
    pub fn new(addr: NybbleAddr, len: u8) -> Prefix {
        assert!(len <= 128, "prefix length out of range: {len}");
        Prefix {
            network: NybbleAddr::from_bits(addr.bits() & Self::mask(len)),
            len,
        }
    }

    /// The network-bits mask for a given length.
    #[inline]
    fn mask(len: u8) -> u128 {
        if len == 0 {
            0
        } else {
            u128::MAX << (128 - len as u32)
        }
    }

    /// The network address (host bits zero).
    #[inline]
    pub fn network(&self) -> NybbleAddr {
        self.network
    }

    /// The prefix length in bits. (`len` is CIDR terminology, not a
    /// container size — there is deliberately no `is_empty`; a prefix is
    /// never empty.)
    #[inline]
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> u8 {
        self.len
    }

    /// `true` for the zero-length (default-route) prefix.
    #[inline]
    pub fn is_default(&self) -> bool {
        self.len == 0
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, addr: NybbleAddr) -> bool {
        (addr.bits() & Self::mask(self.len)) == self.network.bits()
    }

    /// `true` if every address of `other` lies within `self`.
    pub fn covers(&self, other: &Prefix) -> bool {
        self.len <= other.len && self.contains(other.network)
    }

    /// The number of addresses in the prefix, saturating at `u128::MAX` for
    /// the default prefix (2¹²⁸ addresses).
    pub fn size(&self) -> u128 {
        if self.len == 0 {
            u128::MAX
        } else {
            1u128
                .checked_shl(128 - self.len as u32)
                .unwrap_or(u128::MAX)
        }
    }

    /// The enclosing prefix containing `addr` at length `len` — shorthand
    /// for `Prefix::new(addr, len)` reading as "the /len of this address".
    pub fn of(addr: NybbleAddr, len: u8) -> Prefix {
        Prefix::new(addr, len)
    }

    /// Converts to a [`Range`] if the length is nybble-aligned (a multiple
    /// of four bits); the dynamic tail nybbles become full wildcards.
    /// Returns `None` for non-aligned lengths, which cannot be represented
    /// as a per-nybble rectangle exactly.
    pub fn to_range(&self) -> Option<Range> {
        if !self.len.is_multiple_of(4) {
            return None;
        }
        let fixed = self.len as usize / 4;
        let mut sets = [NybbleSet::FULL; crate::nybble::NYBBLE_COUNT];
        for (i, set) in sets.iter_mut().enumerate().take(fixed) {
            *set = NybbleSet::single(self.network.nybble(i));
        }
        Some(Range::from_sets(sets))
    }
}

impl FromStr for Prefix {
    type Err = AddrParseError;

    /// Parses `address/len` CIDR notation.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (addr_text, len_text) = s
            .split_once('/')
            .ok_or_else(|| AddrParseError::new(ParseErrorKind::InvalidPrefixLength, s))?;
        let addr: NybbleAddr = addr_text
            .parse()
            .map_err(|_| AddrParseError::invalid_address(s))?;
        let len: u8 = len_text
            .parse()
            .map_err(|_| AddrParseError::new(ParseErrorKind::InvalidPrefixLength, s))?;
        if len > 128 {
            return Err(AddrParseError::new(ParseErrorKind::InvalidPrefixLength, s));
        }
        Ok(Prefix::new(addr, len))
    }
}

impl core::fmt::Display for Prefix {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}/{}", self.network, self.len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    fn a(s: &str) -> NybbleAddr {
        s.parse().unwrap()
    }

    #[test]
    fn parse_and_display() {
        assert_eq!(p("2001:db8::/32").to_string(), "2001:db8::/32");
        assert_eq!(p("::/0").to_string(), "::/0");
        assert_eq!(
            p("ffff:ffff:ffff:ffff:ffff:ffff:ffff:ffff/128").to_string(),
            "ffff:ffff:ffff:ffff:ffff:ffff:ffff:ffff/128"
        );
    }

    #[test]
    fn parse_masks_host_bits() {
        assert_eq!(p("2001:db8:dead:beef::1/32"), p("2001:db8::/32"));
        assert_eq!(p("2001:db8::1/127"), p("2001:db8::/127"));
        assert_ne!(p("2001:db8::1/128"), p("2001:db8::/128"));
    }

    #[test]
    fn parse_errors() {
        assert!("2001:db8::".parse::<Prefix>().is_err());
        assert!("2001:db8::/129".parse::<Prefix>().is_err());
        assert!("2001:db8::/x".parse::<Prefix>().is_err());
        assert!("2001:db8::/-1".parse::<Prefix>().is_err());
        assert!("zzz/32".parse::<Prefix>().is_err());
    }

    #[test]
    fn contains_at_bit_granularity() {
        // /45 is not nybble aligned; containment must still be exact.
        let pre = p("2001:db8:8000::/33");
        assert!(pre.contains(a("2001:db8:8000::1")));
        assert!(pre.contains(a("2001:db8:ffff::1")));
        assert!(!pre.contains(a("2001:db8:7fff::1")));
        let deflt = p("::/0");
        assert!(deflt.contains(a("::")));
        assert!(deflt.contains(a("ffff::")));
    }

    #[test]
    fn covers_nesting() {
        assert!(p("2001:db8::/32").covers(&p("2001:db8:1::/48")));
        assert!(p("2001:db8::/32").covers(&p("2001:db8::/32")));
        assert!(!p("2001:db8:1::/48").covers(&p("2001:db8::/32")));
        assert!(!p("2001:db8::/32").covers(&p("2001:db9::/48")));
        assert!(Prefix::DEFAULT.covers(&p("2001:db8::/32")));
    }

    #[test]
    fn size() {
        assert_eq!(p("2001:db8::/128").size(), 1);
        assert_eq!(p("2001:db8::/96").size(), 1u128 << 32);
        assert_eq!(p("2001:db8::/64").size(), 1u128 << 64);
        assert_eq!(p("::/0").size(), u128::MAX);
    }

    #[test]
    fn to_range_alignment() {
        let range = p("2001:db8::/32").to_range().unwrap();
        assert_eq!(range.size(), 1u128 << 96);
        assert!(range.contains(a("2001:db8:1234::1")));
        assert!(!range.contains(a("2001:db9::")));
        assert!(p("2001:db8::/33").to_range().is_none());
        assert_eq!(p("::/0").to_range().unwrap(), Range::full());
    }

    #[test]
    fn of_helper() {
        assert_eq!(
            Prefix::of(a("2001:db8:1:2:3:4:5:6"), 96),
            p("2001:db8:1:2:3:4::/96")
        );
    }
}
