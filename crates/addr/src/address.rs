//! [`NybbleAddr`]: a 128-bit IPv6 address addressed by nybble.

use crate::error::AddrParseError;
use crate::nybble::{count_nonzero_nybbles, NYBBLE_COUNT};
use core::net::Ipv6Addr;
use core::str::FromStr;

/// An IPv6 address viewed as 32 hexadecimal nybbles.
///
/// The paper's distance metric, clustering ranges, and the nybble tree all
/// operate at nybble (4-bit) granularity (§5.2: "addressing schemes are
/// potentially allocated at this specificity"). Internally the address is a
/// single `u128` in network order; nybble `0` is the most significant digit
/// (leftmost in text form) and nybble `31` the least significant.
///
/// ```
/// use sixgen_addr::NybbleAddr;
/// let a: NybbleAddr = "2001:db8::1".parse().unwrap();
/// assert_eq!(a.nybble(0), 0x2);
/// assert_eq!(a.nybble(3), 0x1);
/// assert_eq!(a.nybble(31), 0x1);
/// assert_eq!(a.to_string(), "2001:db8::1");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct NybbleAddr(u128);

impl NybbleAddr {
    /// The all-zeros address `::`.
    pub const UNSPECIFIED: NybbleAddr = NybbleAddr(0);

    /// Constructs from the raw 128-bit value (network order: the first text
    /// group is the most significant 16 bits).
    #[inline]
    pub const fn from_bits(bits: u128) -> NybbleAddr {
        NybbleAddr(bits)
    }

    /// The raw 128-bit value.
    #[inline]
    pub const fn bits(self) -> u128 {
        self.0
    }

    /// The shift amount that places nybble `index` in the low 4 bits.
    #[inline]
    pub(crate) const fn shift(index: usize) -> u32 {
        ((NYBBLE_COUNT - 1 - index) * 4) as u32
    }

    /// Reads nybble `index` (0 = most significant).
    ///
    /// # Panics
    /// Panics if `index >= 32`.
    #[inline]
    pub fn nybble(self, index: usize) -> u8 {
        assert!(index < NYBBLE_COUNT, "nybble index out of range: {index}");
        ((self.0 >> Self::shift(index)) & 0xF) as u8
    }

    /// Returns a copy with nybble `index` set to `value`.
    ///
    /// # Panics
    /// Panics if `index >= 32` or `value > 0xF`.
    #[inline]
    pub fn with_nybble(self, index: usize, value: u8) -> NybbleAddr {
        assert!(index < NYBBLE_COUNT, "nybble index out of range: {index}");
        assert!(value <= 0xF, "nybble value out of range: {value}");
        let sh = Self::shift(index);
        NybbleAddr((self.0 & !(0xFu128 << sh)) | ((value as u128) << sh))
    }

    /// The 32 nybbles in order, most significant first.
    pub fn nybbles(self) -> [u8; NYBBLE_COUNT] {
        let mut out = [0u8; NYBBLE_COUNT];
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = ((self.0 >> Self::shift(i)) & 0xF) as u8;
        }
        out
    }

    /// Builds an address from 32 nybbles, most significant first.
    ///
    /// # Panics
    /// Panics if any nybble exceeds `0xF`.
    pub fn from_nybbles(nybbles: [u8; NYBBLE_COUNT]) -> NybbleAddr {
        let mut bits = 0u128;
        for (i, &n) in nybbles.iter().enumerate() {
            assert!(n <= 0xF, "nybble value out of range: {n}");
            bits |= (n as u128) << Self::shift(i);
        }
        NybbleAddr(bits)
    }

    /// Nybble-level Hamming distance: the number of nybble positions at
    /// which the two addresses differ (§5.2 of the paper).
    ///
    /// ```
    /// use sixgen_addr::NybbleAddr;
    /// let a: NybbleAddr = "2001:db8::58".parse().unwrap();
    /// let b: NybbleAddr = "2001:db8::51".parse().unwrap();
    /// assert_eq!(a.hamming(b), 1);
    /// ```
    #[inline]
    pub fn hamming(self, other: NybbleAddr) -> u32 {
        count_nonzero_nybbles(self.0 ^ other.0)
    }

    /// Bit-level Hamming distance, provided for the §5.2 comparison between
    /// nybble- and bit-granularity similarity.
    #[inline]
    pub fn hamming_bits(self, other: NybbleAddr) -> u32 {
        (self.0 ^ other.0).count_ones()
    }
}

impl From<Ipv6Addr> for NybbleAddr {
    fn from(a: Ipv6Addr) -> Self {
        NybbleAddr(u128::from(a))
    }
}

impl From<NybbleAddr> for Ipv6Addr {
    fn from(a: NybbleAddr) -> Self {
        Ipv6Addr::from(a.0)
    }
}

impl From<u128> for NybbleAddr {
    fn from(bits: u128) -> Self {
        NybbleAddr(bits)
    }
}

impl FromStr for NybbleAddr {
    type Err = AddrParseError;

    /// Parses RFC 4291 text (including `::` compression and embedded IPv4
    /// dotted-quad forms), delegating to the standard library parser.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Ipv6Addr::from_str(s)
            .map(NybbleAddr::from)
            .map_err(|_| AddrParseError::invalid_address(s))
    }
}

impl core::fmt::Display for NybbleAddr {
    /// Formats in RFC 5952 canonical form (lowercase, `::` compression of
    /// the longest zero-group run), via the standard library.
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        Ipv6Addr::from(*self).fmt(f)
    }
}

impl core::fmt::LowerHex for NybbleAddr {
    /// Formats as 32 contiguous hex digits (no colons), useful in logs and
    /// fixed-width dataset files.
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(s: &str) -> NybbleAddr {
        s.parse().unwrap()
    }

    #[test]
    fn nybble_indexing_is_msb_first() {
        let addr = a("2001:0db8::11:2222");
        assert_eq!(addr.nybble(0), 0x2);
        assert_eq!(addr.nybble(1), 0x0);
        assert_eq!(addr.nybble(4), 0x0);
        assert_eq!(addr.nybble(5), 0xd);
        assert_eq!(addr.nybble(6), 0xb);
        assert_eq!(addr.nybble(7), 0x8);
        assert_eq!(addr.nybble(31), 0x2);
        assert_eq!(addr.nybble(26), 0x1);
    }

    #[test]
    fn with_nybble_roundtrip() {
        let addr = a("::");
        let addr = addr.with_nybble(0, 0xf).with_nybble(31, 0x3);
        assert_eq!(addr.to_string(), "f000::3");
        assert_eq!(addr.with_nybble(0, 0).to_string(), "::3");
    }

    #[test]
    fn nybbles_array_roundtrip() {
        let addr = a("2001:db8:85a3::8a2e:370:7334");
        assert_eq!(NybbleAddr::from_nybbles(addr.nybbles()), addr);
    }

    #[test]
    fn hamming_examples_from_paper() {
        // §5.2: distance(2001:db8::58, 2001:db8::51) == 1.
        assert_eq!(a("2001:db8::58").hamming(a("2001:db8::51")), 1);
        // §5.2's point: pairs with equal *bit* distance can differ in
        // intuitive similarity, which nybble distance captures. (The paper's
        // literal first pair, 2::20 vs 201::, is actually 4 bits apart — we
        // use 2::20 vs 202::, which is 2 bits / 2 nybbles as intended.)
        assert_eq!(a("2::20").hamming_bits(a("202::")), 2);
        assert_eq!(a("2::20").hamming(a("202::")), 2);
        assert_eq!(a("2::").hamming_bits(a("2::3")), 2);
        assert_eq!(a("2::").hamming(a("2::3")), 1);
    }

    #[test]
    fn hamming_is_metric_like() {
        let x = a("2001:db8::1");
        let y = a("2001:db8::ff");
        let z = a("fe80::1");
        assert_eq!(x.hamming(x), 0);
        assert_eq!(x.hamming(y), y.hamming(x));
        assert!(x.hamming(z) <= x.hamming(y) + y.hamming(z));
        assert_eq!(a("::").hamming(a("ffff:ffff:ffff:ffff:ffff:ffff:ffff:ffff")), 32);
    }

    #[test]
    fn parse_and_display_roundtrip() {
        for s in [
            "::",
            "::1",
            "2001:db8::11:2222",
            "fe80::1ff:fe23:4567:890a",
            "2001:db8:85a3:8d3:1319:8a2e:370:7348",
        ] {
            assert_eq!(a(s).to_string(), s);
        }
    }

    #[test]
    fn parse_uncompressed_and_uppercase() {
        assert_eq!(
            a("2001:0DB8:0000:0000:0000:0000:0011:2222"),
            a("2001:db8::11:2222")
        );
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("2001:db8::1::2".parse::<NybbleAddr>().is_err());
        assert!("not an address".parse::<NybbleAddr>().is_err());
        assert!("1.2.3.4".parse::<NybbleAddr>().is_err());
        assert!("".parse::<NybbleAddr>().is_err());
    }

    #[test]
    fn ipv6addr_conversions() {
        let addr = a("2001:db8::1");
        let std6: Ipv6Addr = addr.into();
        assert_eq!(std6.to_string(), "2001:db8::1");
        assert_eq!(NybbleAddr::from(std6), addr);
    }

    #[test]
    fn lower_hex_is_fixed_width() {
        assert_eq!(
            format!("{:x}", a("2001:db8::1")),
            "20010db8000000000000000000000001"
        );
        assert_eq!(format!("{:x}", a("::")), "0".repeat(32));
    }
}
