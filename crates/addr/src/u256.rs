//! Minimal 256-bit unsigned integer support.
//!
//! 6Gen compares cluster densities `count / size` where `size` can occupy the
//! full 128-bit range. Comparing `a_count · b_size` against `b_count ·
//! a_size` therefore needs a 256-bit product. Rather than pull in a bignum
//! dependency for one operation, this module implements exactly the widening
//! multiply and comparison required, plus addition/subtraction used by the
//! unique-address budget accounting.

/// A 256-bit unsigned integer as a `(high, low)` pair of `u128` limbs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct U256 {
    /// Most-significant 128 bits.
    pub hi: u128,
    /// Least-significant 128 bits.
    pub lo: u128,
}

impl U256 {
    /// The value zero.
    pub const ZERO: U256 = U256 { hi: 0, lo: 0 };
    /// The maximum representable value, 2²⁵⁶ − 1.
    pub const MAX: U256 = U256 {
        hi: u128::MAX,
        lo: u128::MAX,
    };

    /// Creates a `U256` from a `u128` value.
    pub const fn from_u128(v: u128) -> U256 {
        U256 { hi: 0, lo: v }
    }

    /// Full 128×128→256-bit widening multiplication.
    pub fn mul_u128(a: u128, b: u128) -> U256 {
        const MASK: u128 = (1u128 << 64) - 1;
        let (a_hi, a_lo) = (a >> 64, a & MASK);
        let (b_hi, b_lo) = (b >> 64, b & MASK);

        let ll = a_lo * b_lo;
        let lh = a_lo * b_hi;
        let hl = a_hi * b_lo;
        let hh = a_hi * b_hi;

        // Sum the three middle contributions into (carry, mid).
        let (mid, c1) = lh.overflowing_add(hl);
        let mid_carry = (c1 as u128) << 64;

        let (lo, c2) = ll.overflowing_add(mid << 64);
        let hi = hh + (mid >> 64) + mid_carry + c2 as u128;
        U256 { hi, lo }
    }

    /// Checked addition; `None` on overflow past 2²⁵⁶ − 1.
    pub fn checked_add(self, rhs: U256) -> Option<U256> {
        let (lo, carry) = self.lo.overflowing_add(rhs.lo);
        let hi = self.hi.checked_add(rhs.hi)?.checked_add(carry as u128)?;
        Some(U256 { hi, lo })
    }

    /// Saturating addition.
    pub fn saturating_add(self, rhs: U256) -> U256 {
        self.checked_add(rhs).unwrap_or(U256::MAX)
    }

    /// Checked subtraction; `None` if `rhs > self`.
    pub fn checked_sub(self, rhs: U256) -> Option<U256> {
        if rhs > self {
            return None;
        }
        let (lo, borrow) = self.lo.overflowing_sub(rhs.lo);
        let hi = self.hi - rhs.hi - borrow as u128;
        Some(U256 { hi, lo })
    }

    /// Converts to `u128` if the value fits.
    pub fn to_u128(self) -> Option<u128> {
        (self.hi == 0).then_some(self.lo)
    }

    /// Returns `true` if the value is zero.
    pub fn is_zero(self) -> bool {
        self.hi == 0 && self.lo == 0
    }
}

impl From<u128> for U256 {
    fn from(v: u128) -> Self {
        U256::from_u128(v)
    }
}

impl core::fmt::Display for U256 {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        if self.hi == 0 {
            return write!(f, "{}", self.lo);
        }
        // Decimal formatting via repeated division by 10^19 (largest power
        // of ten below 2^64). Only used in diagnostics; speed is irrelevant.
        const CHUNK: u128 = 10_000_000_000_000_000_000; // 10^19
        let mut digits = Vec::new();
        let mut n = *self;
        while !n.is_zero() {
            let (q, r) = n.div_rem_small(CHUNK);
            n = q;
            digits.push(r);
        }
        let mut s = String::new();
        for (i, d) in digits.iter().rev().enumerate() {
            if i == 0 {
                s.push_str(&d.to_string());
            } else {
                s.push_str(&format!("{:019}", d));
            }
        }
        f.write_str(&s)
    }
}

impl U256 {
    /// Divides by a small (`< 2¹²⁸`) divisor, returning `(quotient,
    /// remainder)`. Long division over 64-bit half-limbs.
    fn div_rem_small(self, d: u128) -> (U256, u128) {
        assert!(d > 0, "division by zero");
        // Process the four 64-bit limbs from most to least significant,
        // carrying the remainder. Works when d < 2^64... for d up to 2^128
        // we need 128-bit chunks with u128 remainder; use the schoolbook
        // method over 64-bit limbs with a 128-bit running remainder, which
        // requires d < 2^64 to avoid overflow. The only caller uses 10^19.
        assert!(d < 1u128 << 64, "div_rem_small requires divisor < 2^64");
        let limbs = [
            (self.hi >> 64) as u64,
            self.hi as u64,
            (self.lo >> 64) as u64,
            self.lo as u64,
        ];
        let mut out = [0u64; 4];
        let mut rem: u128 = 0;
        for (i, &limb) in limbs.iter().enumerate() {
            let cur = (rem << 64) | limb as u128;
            out[i] = (cur / d) as u64;
            rem = cur % d;
        }
        let q = U256 {
            hi: ((out[0] as u128) << 64) | out[1] as u128,
            lo: ((out[2] as u128) << 64) | out[3] as u128,
        };
        (q, rem)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mul_small_values() {
        assert_eq!(U256::mul_u128(0, 12345), U256::ZERO);
        assert_eq!(U256::mul_u128(7, 6), U256::from_u128(42));
        assert_eq!(
            U256::mul_u128(u128::from(u64::MAX), u128::from(u64::MAX)),
            U256::from_u128(u128::from(u64::MAX) * u128::from(u64::MAX))
        );
    }

    #[test]
    fn mul_max_values() {
        // (2^128 - 1)^2 = 2^256 - 2^129 + 1
        let m = U256::mul_u128(u128::MAX, u128::MAX);
        assert_eq!(m.lo, 1);
        assert_eq!(m.hi, u128::MAX - 1);
    }

    #[test]
    fn mul_powers_of_two() {
        let m = U256::mul_u128(1 << 100, 1 << 100);
        assert_eq!(m.hi, 1 << 72);
        assert_eq!(m.lo, 0);
    }

    #[test]
    fn ordering_is_lexicographic_on_limbs() {
        let a = U256 { hi: 1, lo: 0 };
        let b = U256 {
            hi: 0,
            lo: u128::MAX,
        };
        assert!(a > b);
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = U256::mul_u128(u128::MAX, 3);
        let b = U256::mul_u128(u128::MAX, 5);
        let s = a.checked_add(b).unwrap();
        assert_eq!(s.checked_sub(b).unwrap(), a);
        assert_eq!(s.checked_sub(a).unwrap(), b);
        assert_eq!(U256::MAX.checked_add(U256::from_u128(1)), None);
        assert_eq!(U256::ZERO.checked_sub(U256::from_u128(1)), None);
        assert_eq!(U256::MAX.saturating_add(U256::from_u128(1)), U256::MAX);
    }

    #[test]
    fn display_small_and_large() {
        assert_eq!(U256::from_u128(0).to_string(), "0");
        assert_eq!(U256::from_u128(12345).to_string(), "12345");
        // 2^128 = 340282366920938463463374607431768211456
        let v = U256 { hi: 1, lo: 0 };
        assert_eq!(v.to_string(), "340282366920938463463374607431768211456");
        // 2^200 computed independently.
        let v = U256::mul_u128(1 << 100, 1 << 100);
        assert_eq!(
            v.to_string(),
            "1606938044258990275541962092341162602522202993782792835301376"
        );
    }

    #[test]
    fn to_u128_boundaries() {
        assert_eq!(U256::from_u128(u128::MAX).to_u128(), Some(u128::MAX));
        assert_eq!(U256 { hi: 1, lo: 0 }.to_u128(), None);
    }
}
