//! Nybble-granularity primitives: constants, bit-trick helpers over packed
//! `u128` nybble vectors, and [`NybbleSet`].

/// Number of nybbles (4-bit hexadecimal digits) in an IPv6 address.
pub const NYBBLE_COUNT: usize = 32;

/// A `u128` with the lowest bit of every nybble set (`0x1111…1`).
pub(crate) const NYBBLE_LSB: u128 = 0x1111_1111_1111_1111_1111_1111_1111_1111;

/// Folds each nybble of `x` down to its lowest bit: the result has bit
/// `4*k` set iff nybble `k` of `x` is non-zero, and all other bits clear.
#[inline]
pub(crate) fn nybble_nonzero_lsb(x: u128) -> u128 {
    let y = x | (x >> 1);
    let y = y | (y >> 2);
    y & NYBBLE_LSB
}

/// Counts the non-zero nybbles of `x`.
///
/// `count_nonzero_nybbles(a ^ b)` is the nybble-level Hamming distance
/// between two packed addresses (§5.2 of the paper).
#[inline]
pub(crate) fn count_nonzero_nybbles(x: u128) -> u32 {
    nybble_nonzero_lsb(x).count_ones()
}

/// Expands each non-zero nybble of `x` to `0xF` (and zero nybbles stay `0`),
/// producing a per-nybble mask.
#[inline]
#[cfg_attr(not(test), allow(dead_code))]
pub(crate) fn nybble_nonzero_mask(x: u128) -> u128 {
    nybble_nonzero_lsb(x) * 0xF
}

/// Compresses the non-zero nybbles of `x` into a 32-bit position mask: bit
/// `k` of the result is set iff the nybble at bit-shift `4*k` of `x` is
/// non-zero. In [`NybbleAddr`](crate::NybbleAddr) terms bit `k` corresponds
/// to nybble *position* `31 - k` (position 0 is the most significant
/// nybble).
///
/// This is the word-parallel half of a range *mismatch signature*
/// ([`Range::mismatch_signature`](crate::Range::mismatch_signature)):
/// applied to `(addr ^ fixed_values) & fixed_mask` it yields, in ~15 word
/// operations, the set of fixed positions at which `addr` deviates from a
/// range — no per-nybble loop.
#[inline]
pub(crate) fn nybble_nonzero_positions(x: u128) -> u32 {
    // One flag bit per nybble, at bit 4k.
    let y = nybble_nonzero_lsb(x);
    // Successive gather: halve the stride of the flag bits each step.
    // After step i, each 2^(i+3)-bit lane holds its flags contiguously at
    // its low end.
    let y = (y | (y >> 3)) & 0x0303_0303_0303_0303_0303_0303_0303_0303; // 2 bits / u8
    let y = (y | (y >> 6)) & 0x000F_000F_000F_000F_000F_000F_000F_000F; // 4 bits / u16
    let y = (y | (y >> 12)) & 0x0000_00FF_0000_00FF_0000_00FF_0000_00FF; // 8 bits / u32
    let y = (y | (y >> 24)) & 0x0000_0000_0000_FFFF_0000_0000_0000_FFFF; // 16 bits / u64
    ((y | (y >> 48)) & 0xFFFF_FFFF) as u32
}

/// Inverse of [`nybble_nonzero_positions`] as a mask: expands each set bit
/// `k` of a 32-bit position mask to a `0xF` nybble at bit-shift `4*k`.
#[inline]
#[cfg_attr(not(test), allow(dead_code))]
pub(crate) fn position_nybble_mask(positions: u32) -> u128 {
    let mut mask = 0u128;
    let mut bits = positions;
    while bits != 0 {
        let k = bits.trailing_zeros();
        mask |= 0xFu128 << (4 * k);
        bits &= bits - 1;
    }
    mask
}

/// The set of hexadecimal values a single nybble position may take.
///
/// Represented as a 16-bit bitmask: bit `v` set means digit `v` is allowed.
/// A [`Range`](crate::Range) holds one `NybbleSet` per position. The paper's
/// notations map as:
///
/// * a concrete digit `a` → [`NybbleSet::single`]`(0xa)`,
/// * the wildcard `?` → [`NybbleSet::FULL`],
/// * a bounded wildcard `[1-2,8-a]` → the union of those values.
///
/// Invariant maintained by `Range`: a set inside a range is never empty
/// (every position admits at least one value).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NybbleSet(u16);

impl NybbleSet {
    /// The empty set. Never appears inside a valid [`Range`](crate::Range),
    /// but useful as an accumulator.
    pub const EMPTY: NybbleSet = NybbleSet(0);
    /// The full wildcard `?`: all 16 values allowed.
    pub const FULL: NybbleSet = NybbleSet(0xFFFF);

    /// A set containing exactly one value.
    ///
    /// # Panics
    /// Panics if `value > 0xF`.
    #[inline]
    pub fn single(value: u8) -> NybbleSet {
        assert!(value <= 0xF, "nybble value out of range: {value}");
        NybbleSet(1 << value)
    }

    /// Builds a set from a raw 16-bit mask (bit `v` ⇒ value `v` allowed).
    #[inline]
    pub const fn from_mask(mask: u16) -> NybbleSet {
        NybbleSet(mask)
    }

    /// The raw 16-bit mask.
    #[inline]
    pub const fn mask(self) -> u16 {
        self.0
    }

    /// Number of values in the set.
    #[inline]
    pub const fn len(self) -> u32 {
        self.0.count_ones()
    }

    /// `true` if no value is allowed.
    #[inline]
    pub const fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// `true` if every value `0..=0xF` is allowed (the `?` wildcard).
    #[inline]
    pub const fn is_full(self) -> bool {
        self.0 == 0xFFFF
    }

    /// `true` if exactly one value is allowed (a fixed nybble).
    #[inline]
    pub const fn is_single(self) -> bool {
        self.0.count_ones() == 1
    }

    /// If the set is a single value, returns it.
    #[inline]
    pub fn as_single(self) -> Option<u8> {
        self.is_single().then(|| self.0.trailing_zeros() as u8)
    }

    /// Membership test.
    ///
    /// # Panics
    /// Panics if `value > 0xF`.
    #[inline]
    pub fn contains(self, value: u8) -> bool {
        assert!(value <= 0xF, "nybble value out of range: {value}");
        self.0 & (1 << value) != 0
    }

    /// Returns the set with `value` inserted.
    #[inline]
    pub fn insert(self, value: u8) -> NybbleSet {
        assert!(value <= 0xF, "nybble value out of range: {value}");
        NybbleSet(self.0 | (1 << value))
    }

    /// Set union.
    #[inline]
    pub const fn union(self, other: NybbleSet) -> NybbleSet {
        NybbleSet(self.0 | other.0)
    }

    /// Set intersection.
    #[inline]
    pub const fn intersection(self, other: NybbleSet) -> NybbleSet {
        NybbleSet(self.0 & other.0)
    }

    /// `true` if `self` is a (non-strict) subset of `other`.
    #[inline]
    pub const fn is_subset(self, other: NybbleSet) -> bool {
        self.0 & !other.0 == 0
    }

    /// The smallest allowed value, if the set is non-empty.
    #[inline]
    pub fn min_value(self) -> Option<u8> {
        (!self.is_empty()).then(|| self.0.trailing_zeros() as u8)
    }

    /// The largest allowed value, if the set is non-empty.
    #[inline]
    pub fn max_value(self) -> Option<u8> {
        (!self.is_empty()).then(|| (15 - self.0.leading_zeros()) as u8)
    }

    /// Iterates the allowed values in increasing order.
    pub fn values(self) -> impl Iterator<Item = u8> + Clone {
        (0u8..16).filter(move |&v| self.0 & (1 << v) != 0)
    }

    /// The `index`-th allowed value in increasing order (0-based).
    ///
    /// # Panics
    /// Panics if `index >= self.len()`.
    #[inline]
    pub fn nth_value(self, index: u32) -> u8 {
        let mut remaining = index;
        let mut bits = self.0;
        loop {
            assert!(bits != 0, "nth_value index out of range");
            let v = bits.trailing_zeros() as u8;
            if remaining == 0 {
                return v;
            }
            remaining -= 1;
            bits &= bits - 1;
        }
    }

    /// The 0-based rank of `value` among the allowed values, if present.
    #[inline]
    pub fn rank_of(self, value: u8) -> Option<u32> {
        if !self.contains(value) {
            return None;
        }
        Some((self.0 & ((1u16 << value) - 1)).count_ones())
    }
}

impl core::fmt::Display for NybbleSet {
    /// Formats as the range syntax: a bare digit for singles, `?` for the
    /// full wildcard, and `[..]` grouping runs (e.g. `[1-2,8-a]`) otherwise.
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        if let Some(v) = self.as_single() {
            return write!(f, "{:x}", v);
        }
        if self.is_full() {
            return f.write_str("?");
        }
        if self.is_empty() {
            return f.write_str("[]");
        }
        f.write_str("[")?;
        let mut first = true;
        let mut v = 0u8;
        while v < 16 {
            if self.contains(v) {
                let start = v;
                while v + 1 < 16 && self.contains(v + 1) {
                    v += 1;
                }
                if !first {
                    f.write_str(",")?;
                }
                first = false;
                if start == v {
                    write!(f, "{:x}", start)?;
                } else {
                    write!(f, "{:x}-{:x}", start, v)?;
                }
            }
            v += 1;
        }
        f.write_str("]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_tricks_count_nybbles() {
        assert_eq!(count_nonzero_nybbles(0), 0);
        assert_eq!(count_nonzero_nybbles(1), 1);
        assert_eq!(count_nonzero_nybbles(0xF0), 1);
        assert_eq!(count_nonzero_nybbles(0xF1), 2);
        assert_eq!(count_nonzero_nybbles(u128::MAX), 32);
        assert_eq!(count_nonzero_nybbles(0x8000 << 112), 1);
    }

    #[test]
    fn bit_tricks_nonzero_mask() {
        assert_eq!(nybble_nonzero_mask(0), 0);
        assert_eq!(nybble_nonzero_mask(0x102), 0xF0F);
        assert_eq!(nybble_nonzero_mask(0x800), 0xF00);
        assert_eq!(nybble_nonzero_mask(u128::MAX), u128::MAX);
    }

    #[test]
    fn bit_tricks_match_naive() {
        // Cross-check the folds against a per-nybble loop on varied values.
        let samples = [
            0u128,
            1,
            u128::MAX,
            0x2001_0db8_0000_0000_0000_0000_0011_2222,
            0x8421_8421_8421_8421_8421_8421_8421_8421,
        ];
        for &x in &samples {
            let mut count = 0;
            let mut mask = 0u128;
            let mut positions = 0u32;
            for k in 0..32 {
                let nyb = (x >> (4 * k)) & 0xF;
                if nyb != 0 {
                    count += 1;
                    mask |= 0xFu128 << (4 * k);
                    positions |= 1 << k;
                }
            }
            assert_eq!(count_nonzero_nybbles(x), count, "count for {x:#x}");
            assert_eq!(nybble_nonzero_mask(x), mask, "mask for {x:#x}");
            assert_eq!(nybble_nonzero_positions(x), positions, "positions for {x:#x}");
        }
    }

    #[test]
    fn nonzero_positions_single_nybbles() {
        // Every single-nybble value maps to exactly its own bit.
        for k in 0..32 {
            for v in 1u128..=0xF {
                assert_eq!(nybble_nonzero_positions(v << (4 * k)), 1 << k);
            }
        }
        assert_eq!(nybble_nonzero_positions(0), 0);
        assert_eq!(nybble_nonzero_positions(u128::MAX), u32::MAX);
    }

    #[test]
    fn set_basics() {
        let s = NybbleSet::single(0xa);
        assert!(s.contains(0xa));
        assert!(!s.contains(0xb));
        assert_eq!(s.len(), 1);
        assert_eq!(s.as_single(), Some(0xa));
        assert!(NybbleSet::FULL.is_full());
        assert_eq!(NybbleSet::FULL.len(), 16);
        assert!(NybbleSet::EMPTY.is_empty());
    }

    #[test]
    fn set_algebra() {
        let a = NybbleSet::single(1).insert(2).insert(8);
        let b = NybbleSet::single(2).insert(9);
        assert_eq!(a.union(b).len(), 4);
        assert_eq!(a.intersection(b), NybbleSet::single(2));
        assert!(NybbleSet::single(2).is_subset(a));
        assert!(!a.is_subset(b));
        assert!(a.is_subset(NybbleSet::FULL));
    }

    #[test]
    fn set_value_iteration_and_rank() {
        let s = NybbleSet::single(3).insert(7).insert(0xf);
        assert_eq!(s.values().collect::<Vec<_>>(), vec![3, 7, 0xf]);
        assert_eq!(s.nth_value(0), 3);
        assert_eq!(s.nth_value(2), 0xf);
        assert_eq!(s.rank_of(7), Some(1));
        assert_eq!(s.rank_of(4), None);
        assert_eq!(s.min_value(), Some(3));
    }

    #[test]
    #[should_panic(expected = "nth_value index out of range")]
    fn nth_value_out_of_range_panics() {
        NybbleSet::single(3).nth_value(1);
    }

    #[test]
    fn set_display_forms() {
        assert_eq!(NybbleSet::single(0xb).to_string(), "b");
        assert_eq!(NybbleSet::FULL.to_string(), "?");
        let s = NybbleSet::single(1).insert(2).insert(8).insert(9).insert(0xa);
        assert_eq!(s.to_string(), "[1-2,8-a]");
        let s = NybbleSet::single(0).insert(5);
        assert_eq!(s.to_string(), "[0,5]");
    }
}
