//! Textual parser for [`Range`] syntax: RFC 4291 group notation extended
//! with `?` wildcards and `[1-2,8-a]` bounded nybble sets (the paper's §2
//! and §5.3 notation).

use crate::error::{AddrParseError, ParseErrorKind};
use crate::nybble::{NybbleSet, NYBBLE_COUNT};
use crate::range::Range;

/// Parses a range such as `2001:db8::?:100?` or `2001:db8::[1-2,8-a]`.
///
/// Plain addresses are valid ranges of size one. Embedded IPv4 dotted-quad
/// notation is not supported in ranges (parse a [`NybbleAddr`] instead and
/// convert with [`Range::from_address`]).
///
/// [`NybbleAddr`]: crate::NybbleAddr
pub(crate) fn parse_range(s: &str) -> Result<Range, AddrParseError> {
    let err = |kind: ParseErrorKind| AddrParseError::new(kind, s);
    if s.is_empty() {
        return Err(err(ParseErrorKind::BadStructure));
    }

    // Split around a single optional "::".
    let mut halves = s.splitn(3, "::");
    let left = halves.next().unwrap_or("");
    let right = halves.next();
    if halves.next().is_some() {
        // More than one "::".
        return Err(err(ParseErrorKind::BadStructure));
    }

    let split_groups = |part: &str| -> Result<Vec<Vec<NybbleSet>>, AddrParseError> {
        if part.is_empty() {
            return Ok(Vec::new());
        }
        part.split(':')
            .map(|g| parse_group(g, s))
            .collect::<Result<Vec<_>, _>>()
    };

    let left_groups = split_groups(left)?;
    let groups: Vec<Vec<NybbleSet>> = match right {
        None => {
            if left_groups.len() != 8 {
                return Err(err(ParseErrorKind::BadStructure));
            }
            left_groups
        }
        Some(right) => {
            let right_groups = split_groups(right)?;
            let known = left_groups.len() + right_groups.len();
            if known > 7 {
                return Err(err(ParseErrorKind::BadStructure));
            }
            let zeros = (0..8 - known).map(|_| vec![NybbleSet::single(0); 4]);
            left_groups
                .into_iter()
                .chain(zeros)
                .chain(right_groups)
                .collect()
        }
    };

    let mut sets = [NybbleSet::EMPTY; NYBBLE_COUNT];
    for (g, group) in groups.iter().enumerate() {
        // Pad with leading zeros to 4 tokens, exactly like hex groups.
        let pad = 4 - group.len();
        for k in 0..pad {
            sets[g * 4 + k] = NybbleSet::single(0);
        }
        for (k, &set) in group.iter().enumerate() {
            sets[g * 4 + pad + k] = set;
        }
    }
    Ok(Range::from_sets(sets))
}

/// Parses one colon-separated group into 1–4 nybble tokens.
fn parse_group(group: &str, whole: &str) -> Result<Vec<NybbleSet>, AddrParseError> {
    let err = |kind: ParseErrorKind| AddrParseError::new(kind, whole);
    if group.is_empty() {
        return Err(err(ParseErrorKind::BadStructure));
    }
    let mut tokens = Vec::with_capacity(4);
    let mut chars = group.chars();
    while let Some(c) = chars.next() {
        let token = match c {
            '?' => NybbleSet::FULL,
            '[' => {
                let mut body = String::new();
                loop {
                    match chars.next() {
                        Some(']') => break,
                        Some(c) => body.push(c),
                        None => return Err(err(ParseErrorKind::InvalidSet)),
                    }
                }
                parse_set_body(&body, whole)?
            }
            c => match c.to_digit(16) {
                Some(v) => NybbleSet::single(v as u8),
                None => return Err(err(ParseErrorKind::InvalidCharacter(c))),
            },
        };
        if tokens.len() == 4 {
            return Err(err(ParseErrorKind::GroupTooLong));
        }
        tokens.push(token);
    }
    Ok(tokens)
}

/// Parses the interior of a `[..]` token: comma-separated digits or
/// digit ranges, e.g. `1-2,8-a`.
fn parse_set_body(body: &str, whole: &str) -> Result<NybbleSet, AddrParseError> {
    let err = |kind: ParseErrorKind| AddrParseError::new(kind, whole);
    let digit = |text: &str| -> Result<u8, AddrParseError> {
        let mut it = text.chars();
        match (it.next().and_then(|c| c.to_digit(16)), it.next()) {
            (Some(v), None) => Ok(v as u8),
            _ => Err(err(ParseErrorKind::InvalidSet)),
        }
    };
    let mut set = NybbleSet::EMPTY;
    for item in body.split(',') {
        match item.split_once('-') {
            None => set = set.insert(digit(item)?),
            Some((lo, hi)) => {
                let (lo, hi) = (digit(lo)?, digit(hi)?);
                if lo > hi {
                    return Err(err(ParseErrorKind::InvalidSet));
                }
                for v in lo..=hi {
                    set = set.insert(v);
                }
            }
        }
    }
    if set.is_empty() {
        return Err(err(ParseErrorKind::EmptySet));
    }
    Ok(set)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NybbleAddr;

    fn r(s: &str) -> Range {
        parse_range(s).unwrap()
    }

    fn kind(s: &str) -> ParseErrorKind {
        parse_range(s).unwrap_err().kind().clone()
    }

    #[test]
    fn parses_plain_addresses() {
        let range = r("2001:db8::11:2222");
        assert_eq!(range.size(), 1);
        assert!(range.contains("2001:db8::11:2222".parse::<NybbleAddr>().unwrap()));
        assert_eq!(r("::").size(), 1);
        assert_eq!(r("::1").size(), 1);
        assert_eq!(r("1::").size(), 1);
    }

    #[test]
    fn parses_full_uncompressed_form() {
        let range = r("2001:0db8:0000:0000:0000:0000:0011:2222");
        assert_eq!(range, r("2001:db8::11:2222"));
    }

    #[test]
    fn parses_wildcards() {
        let range = r("2001:db8::?:100?");
        assert_eq!(range.size(), 256);
        // '?' in its own group means 000?.
        let range = r("2001:db8::?");
        assert_eq!(range.size(), 16);
        assert!(range.contains("2001:db8::f".parse::<NybbleAddr>().unwrap()));
        assert!(!range.contains("2001:db8::1f".parse::<NybbleAddr>().unwrap()));
        // Four wildcards cover the whole group.
        assert_eq!(r("2001:db8::????").size(), 65536);
    }

    #[test]
    fn parses_bounded_sets() {
        let range = r("2001:db8::[1-2,8-a]");
        assert_eq!(range.size(), 5);
        for v in ["1", "2", "8", "9", "a"] {
            let addr: NybbleAddr = format!("2001:db8::{v}").parse().unwrap();
            assert!(range.contains(addr), "{v}");
        }
        let addr: NybbleAddr = "2001:db8::3".parse().unwrap();
        assert!(!range.contains(addr));
    }

    #[test]
    fn bracket_set_counts_as_one_token() {
        // [0-f] + three digits = 4 tokens: legal.
        let range = r("2001:db8::[0-f]123");
        assert_eq!(range.size(), 16);
        // Five tokens: illegal.
        assert_eq!(kind("2001:db8::[0-f]1234"), ParseErrorKind::GroupTooLong);
    }

    #[test]
    fn mixed_case_hex() {
        assert_eq!(r("2001:DB8::A"), r("2001:db8::a"));
        assert_eq!(r("::[A-B]"), r("::[a-b]"));
    }

    #[test]
    fn rejects_bad_structure() {
        assert_eq!(kind(""), ParseErrorKind::BadStructure);
        assert_eq!(kind("1:2:3"), ParseErrorKind::BadStructure);
        assert_eq!(kind("1:2:3:4:5:6:7:8:9"), ParseErrorKind::BadStructure);
        assert_eq!(kind("1::2::3"), ParseErrorKind::BadStructure);
        assert_eq!(kind("1:::2"), ParseErrorKind::BadStructure);
        assert_eq!(kind(":1::2"), ParseErrorKind::BadStructure);
        // '::' plus 8 explicit groups is over-specified.
        assert_eq!(kind("1:2:3:4:5:6:7:8::"), ParseErrorKind::BadStructure);
    }

    #[test]
    fn rejects_bad_tokens() {
        assert_eq!(kind("2001:dg8::"), ParseErrorKind::InvalidCharacter('g'));
        assert_eq!(kind("2001:db8::12345"), ParseErrorKind::GroupTooLong);
        assert_eq!(kind("2001:db8::[1-"), ParseErrorKind::InvalidSet);
        assert_eq!(kind("2001:db8::[2-1]"), ParseErrorKind::InvalidSet);
        assert_eq!(kind("2001:db8::[]"), ParseErrorKind::InvalidSet);
        assert_eq!(kind("2001:db8::[,]"), ParseErrorKind::InvalidSet);
        assert_eq!(kind("1.2.3.4"), ParseErrorKind::InvalidCharacter('.'));
    }

    #[test]
    fn double_colon_expands_to_zero_groups() {
        let range = r("1::2");
        let addr: NybbleAddr = "1:0:0:0:0:0:0:2".parse().unwrap();
        assert!(range.contains(addr));
        assert_eq!(range.size(), 1);
    }

    #[test]
    fn trailing_and_leading_double_colon() {
        assert_eq!(r("2001:db8::").size(), 1);
        assert_eq!(r("::db8:1").size(), 1);
        assert_eq!(r("?::").size(), 16);
    }
}
