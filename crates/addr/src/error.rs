//! Error types for address, range, and prefix parsing.

/// Why a textual address, range, or prefix failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ParseErrorKind {
    /// Not a valid IPv6 address.
    InvalidAddress,
    /// A group held more than four nybble tokens.
    GroupTooLong,
    /// Wrong number of groups / `::` usage.
    BadStructure,
    /// A character that is not a hex digit, `?`, or a bracket set.
    InvalidCharacter(char),
    /// A malformed `[...]` bounded-set token.
    InvalidSet,
    /// An empty `[...]` set (no value would be admitted).
    EmptySet,
    /// A prefix length outside `0..=128` or malformed `/len` suffix.
    InvalidPrefixLength,
}

/// Error returned when parsing a [`NybbleAddr`](crate::NybbleAddr),
/// [`Range`](crate::Range), or [`Prefix`](crate::Prefix) from text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AddrParseError {
    kind: ParseErrorKind,
    input: String,
}

impl AddrParseError {
    pub(crate) fn new(kind: ParseErrorKind, input: &str) -> Self {
        AddrParseError {
            kind,
            input: input.to_owned(),
        }
    }

    pub(crate) fn invalid_address(input: &str) -> Self {
        Self::new(ParseErrorKind::InvalidAddress, input)
    }

    /// The failure category.
    pub fn kind(&self) -> &ParseErrorKind {
        &self.kind
    }

    /// The offending input text.
    pub fn input(&self) -> &str {
        &self.input
    }
}

impl core::fmt::Display for AddrParseError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let what = match &self.kind {
            ParseErrorKind::InvalidAddress => "invalid IPv6 address".to_owned(),
            ParseErrorKind::GroupTooLong => "group longer than four nybbles".to_owned(),
            ParseErrorKind::BadStructure => "malformed group structure".to_owned(),
            ParseErrorKind::InvalidCharacter(c) => format!("invalid character {c:?}"),
            ParseErrorKind::InvalidSet => "malformed [..] nybble set".to_owned(),
            ParseErrorKind::EmptySet => "empty [..] nybble set".to_owned(),
            ParseErrorKind::InvalidPrefixLength => "invalid prefix length".to_owned(),
        };
        write!(f, "{what} in {:?}", self.input)
    }
}

impl std::error::Error for AddrParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_input_and_reason() {
        let e = AddrParseError::new(ParseErrorKind::InvalidCharacter('z'), "2001:zb8::");
        let msg = e.to_string();
        assert!(msg.contains("'z'"), "{msg}");
        assert!(msg.contains("2001:zb8::"), "{msg}");
        assert_eq!(e.kind(), &ParseErrorKind::InvalidCharacter('z'));
        assert_eq!(e.input(), "2001:zb8::");
    }
}
