//! [`NybbleTree`]: the 16-ary seed trie of §5.5 of the paper.
//!
//! 6Gen stores all seeds in a *nybble tree* — "a 16-ary tree where each
//! level in the tree represents a nybble position and branching corresponds
//! to that position's nybble value. This allows us to quickly iterate over
//! the seeds that fall within a given range instead of iterating over all
//! seeds," and lets a cluster's seed set be reconstructed from its range so
//! that only the range and seed-set size need be stored.
//!
//! Beyond the paper's queries, the tree also supports a branch-and-bound
//! *nearest-seed* search ([`NybbleTree::nearest_outside`]) used to find the
//! candidate seeds minimally distant from a cluster range without scanning
//! the full seed list.

use crate::address::NybbleAddr;
use crate::nybble::NYBBLE_COUNT;
use crate::range::Range;

/// Index of a node in the arena. `u32` keeps nodes compact; 4 G nodes is
/// far beyond any realistic seed corpus.
type NodeId = u32;

#[derive(Debug, Clone, Default)]
struct Node {
    /// `(nybble value, child id)`, sorted by value. At most 16 entries.
    children: Vec<(u8, NodeId)>,
    /// Number of addresses stored in this subtree.
    count: u32,
}

/// A set of IPv6 addresses stored as a 16-ary trie over nybbles.
///
/// Supports insertion, membership, exact counting and iteration of the
/// addresses inside an arbitrary [`Range`], and nearest-neighbour search by
/// nybble Hamming distance.
///
/// ```
/// use sixgen_addr::{NybbleTree, Range};
///
/// let mut tree = NybbleTree::new();
/// tree.insert("2001:db8::1".parse().unwrap());
/// tree.insert("2001:db8::7".parse().unwrap());
/// tree.insert("2001:db9::1".parse().unwrap());
/// let range: Range = "2001:db8::?".parse().unwrap();
/// assert_eq!(tree.count_in_range(&range), 2);
/// ```
#[derive(Debug, Clone)]
pub struct NybbleTree {
    nodes: Vec<Node>,
}

impl Default for NybbleTree {
    fn default() -> Self {
        Self::new()
    }
}

impl NybbleTree {
    /// Creates an empty tree.
    pub fn new() -> NybbleTree {
        NybbleTree {
            nodes: vec![Node::default()],
        }
    }

    /// Builds a tree from an iterator of addresses (duplicates are stored
    /// once).
    pub fn from_addresses(addresses: impl IntoIterator<Item = NybbleAddr>) -> NybbleTree {
        let mut tree = NybbleTree::new();
        for addr in addresses {
            tree.insert(addr);
        }
        tree
    }

    /// Number of distinct addresses stored.
    pub fn len(&self) -> usize {
        self.nodes[0].count as usize
    }

    /// `true` if the tree stores no address.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of arena nodes (diagnostic; proportional to memory use).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    fn child(&self, node: NodeId, value: u8) -> Option<NodeId> {
        let children = &self.nodes[node as usize].children;
        children
            .binary_search_by_key(&value, |&(v, _)| v)
            .ok()
            .map(|i| children[i].1)
    }

    /// Inserts an address; returns `true` if it was not already present.
    pub fn insert(&mut self, addr: NybbleAddr) -> bool {
        if self.contains(addr) {
            return false;
        }
        let mut node: NodeId = 0;
        self.nodes[0].count += 1;
        for depth in 0..NYBBLE_COUNT {
            let value = addr.nybble(depth);
            let next = match self.child(node, value) {
                Some(c) => c,
                None => {
                    let id = self.nodes.len() as NodeId;
                    self.nodes.push(Node::default());
                    let children = &mut self.nodes[node as usize].children;
                    let pos = children.partition_point(|&(v, _)| v < value);
                    children.insert(pos, (value, id));
                    id
                }
            };
            self.nodes[next as usize].count += 1;
            node = next;
        }
        true
    }

    /// Membership test.
    pub fn contains(&self, addr: NybbleAddr) -> bool {
        let mut node: NodeId = 0;
        for depth in 0..NYBBLE_COUNT {
            match self.child(node, addr.nybble(depth)) {
                Some(c) => node = c,
                None => return false,
            }
        }
        true
    }

    /// Counts the stored addresses that lie within `range`, without
    /// enumerating them. Subtrees below the range's last constrained
    /// position are counted in O(1) from cached subtree sizes.
    pub fn count_in_range(&self, range: &Range) -> u64 {
        // Deepest position that is not a full wildcard; below it every
        // stored address matches and node counts can be used directly.
        let last_constrained = (0..NYBBLE_COUNT)
            .rev()
            .find(|&i| !range.set(i).is_full())
            .map(|i| i + 1)
            .unwrap_or(0);
        self.count_rec(0, 0, range, last_constrained)
    }

    fn count_rec(&self, node: NodeId, depth: usize, range: &Range, last: usize) -> u64 {
        if depth >= last {
            return self.nodes[node as usize].count as u64;
        }
        let set = range.set(depth);
        let mut total = 0u64;
        for &(value, child) in &self.nodes[node as usize].children {
            if set.contains(value) {
                total += self.count_rec(child, depth + 1, range, last);
            }
        }
        total
    }

    /// Calls `f` for every stored address inside `range`, in increasing
    /// address order.
    pub fn for_each_in_range(&self, range: &Range, mut f: impl FnMut(NybbleAddr)) {
        let mut path = NybbleAddr::UNSPECIFIED;
        self.visit_rec(0, 0, range, &mut path, &mut f);
    }

    /// Collects the stored addresses inside `range`.
    pub fn collect_in_range(&self, range: &Range) -> Vec<NybbleAddr> {
        let mut out = Vec::new();
        self.for_each_in_range(range, |a| out.push(a));
        out
    }

    fn visit_rec(
        &self,
        node: NodeId,
        depth: usize,
        range: &Range,
        path: &mut NybbleAddr,
        f: &mut impl FnMut(NybbleAddr),
    ) {
        if depth == NYBBLE_COUNT {
            f(*path);
            return;
        }
        let set = range.set(depth);
        for &(value, child) in &self.nodes[node as usize].children {
            if set.contains(value) {
                *path = path.with_nybble(depth, value);
                self.visit_rec(child, depth + 1, range, path, f);
            }
        }
        *path = path.with_nybble(depth, 0);
    }

    /// Iterates every stored address in increasing order.
    pub fn addresses(&self) -> Vec<NybbleAddr> {
        self.collect_in_range(&Range::full())
    }

    /// Finds the stored addresses *outside* `range` that are minimally
    /// distant from it (nybble Hamming distance, §5.2), i.e. the paper's
    /// `FindCandidateSeeds`. Returns `(min_distance, seeds)` with
    /// `min_distance ≥ 1`, or `None` if every stored address lies inside the
    /// range.
    ///
    /// Branch-and-bound: a subtree is pruned as soon as its accumulated
    /// mismatch count exceeds the best distance found so far.
    pub fn nearest_outside(&self, range: &Range) -> Option<(u32, Vec<NybbleAddr>)> {
        let mut best = (NYBBLE_COUNT + 1) as u32;
        let mut out = Vec::new();
        let mut path = NybbleAddr::UNSPECIFIED;
        self.nearest_rec(0, 0, 0, range, &mut path, &mut best, &mut out);
        (!out.is_empty()).then_some((best, out))
    }

    #[allow(clippy::too_many_arguments)]
    fn nearest_rec(
        &self,
        node: NodeId,
        depth: usize,
        mismatches: u32,
        range: &Range,
        path: &mut NybbleAddr,
        best: &mut u32,
        out: &mut Vec<NybbleAddr>,
    ) {
        if mismatches > *best {
            return;
        }
        if depth == NYBBLE_COUNT {
            if mismatches == 0 {
                // Inside the range: not a candidate.
                return;
            }
            match mismatches.cmp(best) {
                core::cmp::Ordering::Less => {
                    *best = mismatches;
                    out.clear();
                    out.push(*path);
                }
                core::cmp::Ordering::Equal => out.push(*path),
                core::cmp::Ordering::Greater => {}
            }
            return;
        }
        let set = range.set(depth);
        // Visit matching children first so `best` tightens early.
        for matching in [true, false] {
            for &(value, child) in &self.nodes[node as usize].children {
                if set.contains(value) == matching {
                    let add = u32::from(!matching);
                    if mismatches + add > *best {
                        continue;
                    }
                    *path = path.with_nybble(depth, value);
                    self.nearest_rec(child, depth + 1, mismatches + add, range, path, best, out);
                }
            }
        }
        *path = path.with_nybble(depth, 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn a(s: &str) -> NybbleAddr {
        s.parse().unwrap()
    }

    fn r(s: &str) -> Range {
        s.parse().unwrap()
    }

    #[test]
    fn insert_and_contains() {
        let mut tree = NybbleTree::new();
        assert!(tree.is_empty());
        assert!(tree.insert(a("2001:db8::1")));
        assert!(!tree.insert(a("2001:db8::1")), "duplicate insert");
        assert!(tree.insert(a("2001:db8::2")));
        assert_eq!(tree.len(), 2);
        assert!(tree.contains(a("2001:db8::1")));
        assert!(!tree.contains(a("2001:db8::3")));
    }

    #[test]
    fn count_in_range_basic() {
        let tree = NybbleTree::from_addresses([
            a("2001:db8::1"),
            a("2001:db8::7"),
            a("2001:db8::17"),
            a("2001:db9::1"),
        ]);
        assert_eq!(tree.count_in_range(&r("2001:db8::?")), 2);
        assert_eq!(tree.count_in_range(&r("2001:db8::??")), 3);
        assert_eq!(tree.count_in_range(&Range::full()), 4);
        assert_eq!(tree.count_in_range(&r("2002::?")), 0);
        assert_eq!(tree.count_in_range(&r("2001:db8::7")), 1);
    }

    #[test]
    fn count_uses_subtree_counts_for_wildcard_tails() {
        // Range constrained only in the first half: exercise the O(1)
        // subtree-count path.
        let tree = NybbleTree::from_addresses([
            a("2001:db8::1"),
            a("2001:db8:0:1::9:8:7"),
            a("2001:db9::1"),
        ]);
        let range = r("2001:db8:?:?:?:?:?:?").loosen();
        assert_eq!(tree.count_in_range(&range), 2);
    }

    #[test]
    fn collect_in_range_sorted() {
        let tree = NybbleTree::from_addresses([
            a("2001:db8::9"),
            a("2001:db8::1"),
            a("2001:db8::5"),
            a("fe80::1"),
        ]);
        let got = tree.collect_in_range(&r("2001:db8::?"));
        assert_eq!(got, vec![a("2001:db8::1"), a("2001:db8::5"), a("2001:db8::9")]);
        let all = tree.addresses();
        assert_eq!(all.len(), 4);
        assert!(all.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn nearest_outside_simple() {
        let tree = NybbleTree::from_addresses([
            a("2001:db8::11"),
            a("2001:db8::19"), // distance 1 from ::11 singleton
            a("2001:db8::99"), // distance 2
            a("2001:db8::1b"), // distance 1
        ]);
        let range = Range::from_address(a("2001:db8::11"));
        let (dist, seeds) = tree.nearest_outside(&range).unwrap();
        assert_eq!(dist, 1);
        let mut seeds = seeds;
        seeds.sort();
        assert_eq!(seeds, vec![a("2001:db8::19"), a("2001:db8::1b")]);
    }

    #[test]
    fn nearest_outside_excludes_members() {
        let tree = NybbleTree::from_addresses([a("2001:db8::1"), a("2001:db8::2")]);
        let range = r("2001:db8::?");
        assert!(tree.nearest_outside(&range).is_none());

        let tree =
            NybbleTree::from_addresses([a("2001:db8::1"), a("2001:db8::2"), a("2001:db8::1:0")]);
        let (dist, seeds) = tree.nearest_outside(&range).unwrap();
        assert_eq!(dist, 1);
        assert_eq!(seeds, vec![a("2001:db8::1:0")]);
    }

    #[test]
    fn nearest_outside_matches_naive_scan_randomized() {
        let mut rng = StdRng::seed_from_u64(42);
        for trial in 0..20 {
            // Random seeds clustered in a /96-like region plus stragglers.
            let base: u128 = 0x2001_0db8_0000_0000_0000_0000_0000_0000;
            let addrs: Vec<NybbleAddr> = (0..60)
                .map(|_| {
                    let noise: u128 = rng.gen::<u32>() as u128 | ((rng.gen::<u8>() as u128) << 64);
                    NybbleAddr::from_bits(base | noise)
                })
                .collect();
            let tree = NybbleTree::from_addresses(addrs.iter().copied());
            // A range around one random seed with a couple of wildcards.
            let center = addrs[trial % addrs.len()];
            let range = Range::from_address(center)
                .expand_loose(center.with_nybble(31, center.nybble(31) ^ 1))
                .expand_loose(center.with_nybble(24, center.nybble(24) ^ 3));
            // Naive: min distance over non-members.
            let naive_min = addrs
                .iter()
                .filter(|s| !range.contains(**s))
                .map(|s| range.distance(*s))
                .min();
            let naive_set: Vec<NybbleAddr> = match naive_min {
                None => Vec::new(),
                Some(m) => {
                    let mut v: Vec<NybbleAddr> = addrs
                        .iter()
                        .copied()
                        .filter(|s| !range.contains(*s) && range.distance(*s) == m)
                        .collect();
                    v.sort();
                    v.dedup();
                    v
                }
            };
            match tree.nearest_outside(&range) {
                None => assert!(naive_set.is_empty()),
                Some((dist, mut seeds)) => {
                    seeds.sort();
                    assert_eq!(Some(dist), naive_min, "trial {trial}");
                    assert_eq!(seeds, naive_set, "trial {trial}");
                }
            }
        }
    }

    #[test]
    fn count_matches_naive_scan_randomized() {
        let mut rng = StdRng::seed_from_u64(7);
        let addrs: Vec<NybbleAddr> = (0..200)
            .map(|_| {
                let base: u128 = 0x2001_0db8_0000_0000_0000_0000_0000_0000;
                NybbleAddr::from_bits(base | (rng.gen::<u16>() as u128))
            })
            .collect();
        let tree = NybbleTree::from_addresses(addrs.iter().copied());
        let mut uniq = addrs.clone();
        uniq.sort();
        uniq.dedup();
        for range_text in ["2001:db8::?", "2001:db8::??", "2001:db8::???", "2001:db8::[0-7]?"] {
            let range = r(range_text);
            let naive = uniq.iter().filter(|s| range.contains(**s)).count() as u64;
            assert_eq!(tree.count_in_range(&range), naive, "{range_text}");
            assert_eq!(
                tree.collect_in_range(&range).len() as u64,
                naive,
                "{range_text}"
            );
        }
    }

    #[test]
    fn node_count_shares_prefixes() {
        let tree = NybbleTree::from_addresses([a("2001:db8::1"), a("2001:db8::2")]);
        // 1 root + 31 shared + 2 leaves for the final differing nybble.
        assert_eq!(tree.node_count(), 1 + 31 + 2);
    }
}
