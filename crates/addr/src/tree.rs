//! [`NybbleTree`]: the 16-ary seed trie of §5.5 of the paper.
//!
//! 6Gen stores all seeds in a *nybble tree* — "a 16-ary tree where each
//! level in the tree represents a nybble position and branching corresponds
//! to that position's nybble value. This allows us to quickly iterate over
//! the seeds that fall within a given range instead of iterating over all
//! seeds," and lets a cluster's seed set be reconstructed from its range so
//! that only the range and seed-set size need be stored.
//!
//! Beyond the paper's queries, the tree also supports a branch-and-bound
//! *nearest-seed* search ([`NybbleTree::nearest_outside`]) used to find the
//! candidate seeds minimally distant from a cluster range without scanning
//! the full seed list.

use crate::address::NybbleAddr;
use crate::nybble::NYBBLE_COUNT;
use crate::range::Range;
use std::collections::HashMap;

/// Index of a node in the arena. `u32` keeps nodes compact; 4 G nodes is
/// far beyond any realistic seed corpus.
type NodeId = u32;

#[derive(Debug, Clone, Default)]
struct Node {
    /// `(nybble value, child id)`, sorted by value. At most 16 entries.
    children: Vec<(u8, NodeId)>,
    /// Number of addresses stored in this subtree.
    count: u32,
}

/// A deduplicated group of candidate seeds sharing one growth key, from
/// [`NybbleTree::growth_candidates`]. All candidates in a group induce the
/// same expanded range when clustered into the queried range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CandidateGroup {
    /// The shared mismatch signature against the queried range
    /// ([`Range::mismatch_signature`] bit convention: bit `k` is the nybble
    /// at bit-shift `4*k`).
    pub signature: u32,
    /// The candidates' packed nybble values at the signature positions
    /// (zero elsewhere). Always `0` when the query grouped by signature
    /// alone (loose clustering, where mismatch values do not shape the
    /// expanded range).
    pub values: u128,
    /// Number of stored addresses carrying this key.
    pub count: u64,
}

/// Result of [`NybbleTree::growth_candidates`]: everything one cluster
/// growth evaluation needs, from a single tree walk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GrowthCandidates {
    /// Minimum nybble Hamming distance from the range to a stored address
    /// outside it (`≥ 1`).
    pub distance: u32,
    /// Number of stored addresses *inside* the queried range (signature
    /// `0`), counted in the same walk. Because all candidates sit at
    /// minimum distance, a group's expanded range holds exactly
    /// `members + group.count` stored addresses.
    pub members: u64,
    /// The distinct candidate groups at `distance`, in first-visit order
    /// of the traversal (the order [`NybbleTree::nearest_outside`] yields
    /// candidates).
    pub groups: Vec<CandidateGroup>,
}

/// Mutable traversal state for [`NybbleTree::growth_candidates`].
#[derive(Debug)]
struct GrowthSearch {
    group_by_values: bool,
    /// One past the deepest non-full-wildcard position of the queried
    /// range: below it signatures are final and whole subtrees finalize
    /// from their cached counts.
    last: usize,
    best: u32,
    members: u64,
    groups: Vec<CandidateGroup>,
    /// Growth key → index into `groups`, for O(1) merge without disturbing
    /// first-visit order.
    index: HashMap<(u32, u128), usize, std::hash::BuildHasherDefault<GrowthKeyHasher>>,
}

/// Minimal multiply-rotate hasher for the growth-key map. The keys are
/// short integers hashed once per finalized subtree in the hot traversal;
/// the default SipHash costs more than the rest of the finalization
/// combined. Not DoS-resistant — fine for a bounded, non-adversarial map
/// that lives for one query.
#[derive(Default)]
struct GrowthKeyHasher(u64);

impl GrowthKeyHasher {
    #[inline]
    fn add(&mut self, v: u64) {
        self.0 = (self.0.rotate_left(5) ^ v).wrapping_mul(0x517c_c1b7_2722_0a95);
    }
}

impl std::hash::Hasher for GrowthKeyHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.add(b as u64);
        }
    }
    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(v as u64);
    }
    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }
    #[inline]
    fn write_u128(&mut self, v: u128) {
        self.add(v as u64);
        self.add((v >> 64) as u64);
    }
}

/// A set of IPv6 addresses stored as a 16-ary trie over nybbles.
///
/// Supports insertion, membership, exact counting and iteration of the
/// addresses inside an arbitrary [`Range`], and nearest-neighbour search by
/// nybble Hamming distance.
///
/// ```
/// use sixgen_addr::{NybbleTree, Range};
///
/// let mut tree = NybbleTree::new();
/// tree.insert("2001:db8::1".parse().unwrap());
/// tree.insert("2001:db8::7".parse().unwrap());
/// tree.insert("2001:db9::1".parse().unwrap());
/// let range: Range = "2001:db8::?".parse().unwrap();
/// assert_eq!(tree.count_in_range(&range), 2);
/// ```
#[derive(Debug, Clone)]
pub struct NybbleTree {
    nodes: Vec<Node>,
}

impl Default for NybbleTree {
    fn default() -> Self {
        Self::new()
    }
}

impl NybbleTree {
    /// Creates an empty tree.
    pub fn new() -> NybbleTree {
        NybbleTree {
            nodes: vec![Node::default()],
        }
    }

    /// Builds a tree from an iterator of addresses (duplicates are stored
    /// once).
    pub fn from_addresses(addresses: impl IntoIterator<Item = NybbleAddr>) -> NybbleTree {
        let mut tree = NybbleTree::new();
        for addr in addresses {
            tree.insert(addr);
        }
        tree
    }

    /// Number of distinct addresses stored.
    pub fn len(&self) -> usize {
        self.nodes[0].count as usize
    }

    /// `true` if the tree stores no address.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of arena nodes (diagnostic; proportional to memory use).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    fn child(&self, node: NodeId, value: u8) -> Option<NodeId> {
        let children = &self.nodes[node as usize].children;
        children
            .binary_search_by_key(&value, |&(v, _)| v)
            .ok()
            .map(|i| children[i].1)
    }

    /// Inserts an address; returns `true` if it was not already present.
    pub fn insert(&mut self, addr: NybbleAddr) -> bool {
        if self.contains(addr) {
            return false;
        }
        let mut node: NodeId = 0;
        self.nodes[0].count += 1;
        for depth in 0..NYBBLE_COUNT {
            let value = addr.nybble(depth);
            let next = match self.child(node, value) {
                Some(c) => c,
                None => {
                    let id = self.nodes.len() as NodeId;
                    self.nodes.push(Node::default());
                    let children = &mut self.nodes[node as usize].children;
                    let pos = children.partition_point(|&(v, _)| v < value);
                    children.insert(pos, (value, id));
                    id
                }
            };
            self.nodes[next as usize].count += 1;
            node = next;
        }
        true
    }

    /// Membership test.
    pub fn contains(&self, addr: NybbleAddr) -> bool {
        let mut node: NodeId = 0;
        for depth in 0..NYBBLE_COUNT {
            match self.child(node, addr.nybble(depth)) {
                Some(c) => node = c,
                None => return false,
            }
        }
        true
    }

    /// Counts the stored addresses that lie within `range`, without
    /// enumerating them. Subtrees below the range's last constrained
    /// position are counted in O(1) from cached subtree sizes.
    pub fn count_in_range(&self, range: &Range) -> u64 {
        // Deepest position that is not a full wildcard; below it every
        // stored address matches and node counts can be used directly.
        let last_constrained = (0..NYBBLE_COUNT)
            .rev()
            .find(|&i| !range.set(i).is_full())
            .map(|i| i + 1)
            .unwrap_or(0);
        self.count_rec(0, 0, range, last_constrained)
    }

    fn count_rec(&self, node: NodeId, depth: usize, range: &Range, last: usize) -> u64 {
        if depth >= last {
            return self.nodes[node as usize].count as u64;
        }
        let set = range.set(depth);
        let mut total = 0u64;
        for &(value, child) in &self.nodes[node as usize].children {
            if set.contains(value) {
                total += self.count_rec(child, depth + 1, range, last);
            }
        }
        total
    }

    /// Calls `f` for every stored address inside `range`, in increasing
    /// address order.
    pub fn for_each_in_range(&self, range: &Range, mut f: impl FnMut(NybbleAddr)) {
        let mut path = NybbleAddr::UNSPECIFIED;
        self.visit_rec(0, 0, range, &mut path, &mut f);
    }

    /// Collects the stored addresses inside `range`.
    pub fn collect_in_range(&self, range: &Range) -> Vec<NybbleAddr> {
        let mut out = Vec::new();
        self.for_each_in_range(range, |a| out.push(a));
        out
    }

    fn visit_rec(
        &self,
        node: NodeId,
        depth: usize,
        range: &Range,
        path: &mut NybbleAddr,
        f: &mut impl FnMut(NybbleAddr),
    ) {
        if depth == NYBBLE_COUNT {
            f(*path);
            return;
        }
        let set = range.set(depth);
        for &(value, child) in &self.nodes[node as usize].children {
            if set.contains(value) {
                *path = path.with_nybble(depth, value);
                self.visit_rec(child, depth + 1, range, path, f);
            }
        }
        *path = path.with_nybble(depth, 0);
    }

    /// Iterates every stored address in increasing order.
    pub fn addresses(&self) -> Vec<NybbleAddr> {
        self.collect_in_range(&Range::full())
    }

    /// Finds the stored addresses *outside* `range` that are minimally
    /// distant from it (nybble Hamming distance, §5.2), i.e. the paper's
    /// `FindCandidateSeeds`. Returns `(min_distance, seeds)` with
    /// `min_distance ≥ 1`, or `None` if every stored address lies inside the
    /// range.
    ///
    /// Branch-and-bound: a subtree is pruned as soon as its accumulated
    /// mismatch count exceeds the best distance found so far.
    pub fn nearest_outside(&self, range: &Range) -> Option<(u32, Vec<NybbleAddr>)> {
        let mut best = (NYBBLE_COUNT + 1) as u32;
        let mut out = Vec::new();
        let mut path = NybbleAddr::UNSPECIFIED;
        self.nearest_rec(0, 0, 0, range, &mut path, &mut best, &mut out);
        (!out.is_empty()).then_some((best, out))
    }

    /// Fused candidate search and density counting (§5.5): one
    /// branch-and-bound walk that finds the minimum distance from `range`
    /// to any stored address outside it, **deduplicates** those candidate
    /// addresses by growth key, and counts — in the same walk, from cached
    /// subtree sizes — both the addresses inside `range` and the addresses
    /// behind each key.
    ///
    /// The growth key is the candidate's mismatch *signature* (the set of
    /// positions at which it deviates from the range, as a
    /// [`Range::mismatch_signature`] bitmask), optionally extended by the
    /// candidate's nybble values at those positions (`group_by_values`,
    /// for tight clustering where inserted values shape the grown range).
    /// Every candidate with the same key induces the same expanded range,
    /// so one [`CandidateGroup`] per key replaces the per-candidate address
    /// vector of [`NybbleTree::nearest_outside`] — and because candidates
    /// sit at *minimum* distance, an address lies inside a group's expanded
    /// range iff it is a member of `range` (signature `0`) or carries
    /// exactly the group's key. Each group's expanded-range seed count is
    /// therefore `members + group.count`, with no per-range re-walk.
    ///
    /// Groups are returned in first-visit order of a fixed traversal
    /// (matching children before mismatching ones, values ascending), which
    /// is exactly the candidate order [`NybbleTree::nearest_outside`]
    /// produces — callers that iterate groups in order evaluate ranges in
    /// the same sequence as the unfused search-then-count implementation.
    ///
    /// Returns `None` if every stored address lies inside the range.
    pub fn growth_candidates(
        &self,
        range: &Range,
        group_by_values: bool,
    ) -> Option<GrowthCandidates> {
        // Below the deepest constrained position every set is a full
        // wildcard: no further mismatch is possible, the signature is
        // final, and the whole subtree contributes its cached count.
        let last = (0..NYBBLE_COUNT)
            .rev()
            .find(|&i| !range.set(i).is_full())
            .map(|i| i + 1)
            .unwrap_or(0);
        let mut state = GrowthSearch {
            group_by_values,
            last,
            best: (NYBBLE_COUNT + 1) as u32,
            members: 0,
            groups: Vec::new(),
            index: HashMap::default(),
        };
        self.growth_rec(0, 0, 0, 0, range, &mut state);
        (!state.groups.is_empty()).then_some(GrowthCandidates {
            distance: state.best,
            members: state.members,
            groups: state.groups,
        })
    }

    fn growth_rec(
        &self,
        node: NodeId,
        depth: usize,
        sig: u32,
        values: u128,
        range: &Range,
        state: &mut GrowthSearch,
    ) {
        let mismatches = sig.count_ones();
        if mismatches > state.best {
            return;
        }
        if depth >= state.last {
            let count = self.nodes[node as usize].count as u64;
            if mismatches == 0 {
                state.members += count;
                return;
            }
            let key = (sig, if state.group_by_values { values } else { 0 });
            match mismatches.cmp(&state.best) {
                core::cmp::Ordering::Less => {
                    state.best = mismatches;
                    state.groups.clear();
                    state.index.clear();
                    state.index.insert(key, 0);
                    state.groups.push(CandidateGroup {
                        signature: key.0,
                        values: key.1,
                        count,
                    });
                }
                core::cmp::Ordering::Equal => match state.index.entry(key) {
                    std::collections::hash_map::Entry::Occupied(slot) => {
                        state.groups[*slot.get()].count += count;
                    }
                    std::collections::hash_map::Entry::Vacant(slot) => {
                        slot.insert(state.groups.len());
                        state.groups.push(CandidateGroup {
                            signature: key.0,
                            values: key.1,
                            count,
                        });
                    }
                },
                core::cmp::Ordering::Greater => {}
            }
            return;
        }
        let set = range.set(depth);
        let bit = 1u32 << (NYBBLE_COUNT - 1 - depth);
        let shift = (NYBBLE_COUNT - 1 - depth) * 4;
        // Matching children first so the distance bound tightens early —
        // and so group order matches `nearest_outside`'s candidate order.
        // One pass over the child list: matching children recurse
        // immediately, mismatching ones are deferred to a fixed stack
        // buffer (at most 16 children) and visited afterwards in the same
        // ascending-value order the two-pass formulation produced.
        let mut deferred = [(0u8, 0 as NodeId); 16];
        let mut deferred_len = 0;
        for &(value, child) in &self.nodes[node as usize].children {
            if set.contains(value) {
                self.growth_rec(child, depth + 1, sig, values, range, state);
            } else {
                deferred[deferred_len] = (value, child);
                deferred_len += 1;
            }
        }
        for &(value, child) in &deferred[..deferred_len] {
            // `best` only tightens, so once a one-more-mismatch descent is
            // hopeless every remaining deferred child is too.
            if mismatches + 1 > state.best {
                break;
            }
            self.growth_rec(
                child,
                depth + 1,
                sig | bit,
                values | (value as u128) << shift,
                range,
                state,
            );
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn nearest_rec(
        &self,
        node: NodeId,
        depth: usize,
        mismatches: u32,
        range: &Range,
        path: &mut NybbleAddr,
        best: &mut u32,
        out: &mut Vec<NybbleAddr>,
    ) {
        if mismatches > *best {
            return;
        }
        if depth == NYBBLE_COUNT {
            if mismatches == 0 {
                // Inside the range: not a candidate.
                return;
            }
            match mismatches.cmp(best) {
                core::cmp::Ordering::Less => {
                    *best = mismatches;
                    out.clear();
                    out.push(*path);
                }
                core::cmp::Ordering::Equal => out.push(*path),
                core::cmp::Ordering::Greater => {}
            }
            return;
        }
        let set = range.set(depth);
        // Visit matching children first so `best` tightens early.
        for matching in [true, false] {
            for &(value, child) in &self.nodes[node as usize].children {
                if set.contains(value) == matching {
                    let add = u32::from(!matching);
                    if mismatches + add > *best {
                        continue;
                    }
                    *path = path.with_nybble(depth, value);
                    self.nearest_rec(child, depth + 1, mismatches + add, range, path, best, out);
                }
            }
        }
        *path = path.with_nybble(depth, 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn a(s: &str) -> NybbleAddr {
        s.parse().unwrap()
    }

    fn r(s: &str) -> Range {
        s.parse().unwrap()
    }

    #[test]
    fn insert_and_contains() {
        let mut tree = NybbleTree::new();
        assert!(tree.is_empty());
        assert!(tree.insert(a("2001:db8::1")));
        assert!(!tree.insert(a("2001:db8::1")), "duplicate insert");
        assert!(tree.insert(a("2001:db8::2")));
        assert_eq!(tree.len(), 2);
        assert!(tree.contains(a("2001:db8::1")));
        assert!(!tree.contains(a("2001:db8::3")));
    }

    #[test]
    fn count_in_range_basic() {
        let tree = NybbleTree::from_addresses([
            a("2001:db8::1"),
            a("2001:db8::7"),
            a("2001:db8::17"),
            a("2001:db9::1"),
        ]);
        assert_eq!(tree.count_in_range(&r("2001:db8::?")), 2);
        assert_eq!(tree.count_in_range(&r("2001:db8::??")), 3);
        assert_eq!(tree.count_in_range(&Range::full()), 4);
        assert_eq!(tree.count_in_range(&r("2002::?")), 0);
        assert_eq!(tree.count_in_range(&r("2001:db8::7")), 1);
    }

    #[test]
    fn count_uses_subtree_counts_for_wildcard_tails() {
        // Range constrained only in the first half: exercise the O(1)
        // subtree-count path.
        let tree = NybbleTree::from_addresses([
            a("2001:db8::1"),
            a("2001:db8:0:1::9:8:7"),
            a("2001:db9::1"),
        ]);
        let range = r("2001:db8:?:?:?:?:?:?").loosen();
        assert_eq!(tree.count_in_range(&range), 2);
    }

    #[test]
    fn collect_in_range_sorted() {
        let tree = NybbleTree::from_addresses([
            a("2001:db8::9"),
            a("2001:db8::1"),
            a("2001:db8::5"),
            a("fe80::1"),
        ]);
        let got = tree.collect_in_range(&r("2001:db8::?"));
        assert_eq!(got, vec![a("2001:db8::1"), a("2001:db8::5"), a("2001:db8::9")]);
        let all = tree.addresses();
        assert_eq!(all.len(), 4);
        assert!(all.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn nearest_outside_simple() {
        let tree = NybbleTree::from_addresses([
            a("2001:db8::11"),
            a("2001:db8::19"), // distance 1 from ::11 singleton
            a("2001:db8::99"), // distance 2
            a("2001:db8::1b"), // distance 1
        ]);
        let range = Range::from_address(a("2001:db8::11"));
        let (dist, seeds) = tree.nearest_outside(&range).unwrap();
        assert_eq!(dist, 1);
        let mut seeds = seeds;
        seeds.sort();
        assert_eq!(seeds, vec![a("2001:db8::19"), a("2001:db8::1b")]);
    }

    #[test]
    fn nearest_outside_excludes_members() {
        let tree = NybbleTree::from_addresses([a("2001:db8::1"), a("2001:db8::2")]);
        let range = r("2001:db8::?");
        assert!(tree.nearest_outside(&range).is_none());

        let tree =
            NybbleTree::from_addresses([a("2001:db8::1"), a("2001:db8::2"), a("2001:db8::1:0")]);
        let (dist, seeds) = tree.nearest_outside(&range).unwrap();
        assert_eq!(dist, 1);
        assert_eq!(seeds, vec![a("2001:db8::1:0")]);
    }

    #[test]
    fn nearest_outside_matches_naive_scan_randomized() {
        let mut rng = StdRng::seed_from_u64(42);
        for trial in 0..20 {
            // Random seeds clustered in a /96-like region plus stragglers.
            let base: u128 = 0x2001_0db8_0000_0000_0000_0000_0000_0000;
            let addrs: Vec<NybbleAddr> = (0..60)
                .map(|_| {
                    let noise: u128 = rng.gen::<u32>() as u128 | ((rng.gen::<u8>() as u128) << 64);
                    NybbleAddr::from_bits(base | noise)
                })
                .collect();
            let tree = NybbleTree::from_addresses(addrs.iter().copied());
            // A range around one random seed with a couple of wildcards.
            let center = addrs[trial % addrs.len()];
            let range = Range::from_address(center)
                .expand_loose(center.with_nybble(31, center.nybble(31) ^ 1))
                .expand_loose(center.with_nybble(24, center.nybble(24) ^ 3));
            // Naive: min distance over non-members.
            let naive_min = addrs
                .iter()
                .filter(|s| !range.contains(**s))
                .map(|s| range.distance(*s))
                .min();
            let naive_set: Vec<NybbleAddr> = match naive_min {
                None => Vec::new(),
                Some(m) => {
                    let mut v: Vec<NybbleAddr> = addrs
                        .iter()
                        .copied()
                        .filter(|s| !range.contains(*s) && range.distance(*s) == m)
                        .collect();
                    v.sort();
                    v.dedup();
                    v
                }
            };
            match tree.nearest_outside(&range) {
                None => assert!(naive_set.is_empty()),
                Some((dist, mut seeds)) => {
                    seeds.sort();
                    assert_eq!(Some(dist), naive_min, "trial {trial}");
                    assert_eq!(seeds, naive_set, "trial {trial}");
                }
            }
        }
    }

    #[test]
    fn count_matches_naive_scan_randomized() {
        let mut rng = StdRng::seed_from_u64(7);
        let addrs: Vec<NybbleAddr> = (0..200)
            .map(|_| {
                let base: u128 = 0x2001_0db8_0000_0000_0000_0000_0000_0000;
                NybbleAddr::from_bits(base | (rng.gen::<u16>() as u128))
            })
            .collect();
        let tree = NybbleTree::from_addresses(addrs.iter().copied());
        let mut uniq = addrs.clone();
        uniq.sort();
        uniq.dedup();
        for range_text in ["2001:db8::?", "2001:db8::??", "2001:db8::???", "2001:db8::[0-7]?"] {
            let range = r(range_text);
            let naive = uniq.iter().filter(|s| range.contains(**s)).count() as u64;
            assert_eq!(tree.count_in_range(&range), naive, "{range_text}");
            assert_eq!(
                tree.collect_in_range(&range).len() as u64,
                naive,
                "{range_text}"
            );
        }
    }

    /// Reference implementation of the fused query: candidate search via
    /// `nearest_outside`, grouping via per-candidate signatures, counting
    /// via one `count_in_range` per expanded range.
    fn naive_growth_candidates(
        tree: &NybbleTree,
        range: &Range,
        group_by_values: bool,
    ) -> Option<GrowthCandidates> {
        let (distance, seeds) = tree.nearest_outside(range)?;
        let mut groups: Vec<CandidateGroup> = Vec::new();
        for seed in seeds {
            let sig = range.mismatch_signature(seed);
            let values = if group_by_values {
                seed.bits() & crate::nybble::position_nybble_mask(sig)
            } else {
                0
            };
            match groups
                .iter_mut()
                .find(|g| g.signature == sig && g.values == values)
            {
                Some(g) => g.count += 1,
                None => groups.push(CandidateGroup {
                    signature: sig,
                    values,
                    count: 1,
                }),
            }
        }
        Some(GrowthCandidates {
            distance,
            members: tree.count_in_range(range),
            groups,
        })
    }

    #[test]
    fn growth_candidates_simple() {
        // Cluster at ::11: candidates ::19 and ::1b share the mismatch
        // signature (last nybble), ::99 is farther.
        let tree = NybbleTree::from_addresses([
            a("2001:db8::11"),
            a("2001:db8::19"),
            a("2001:db8::99"),
            a("2001:db8::1b"),
        ]);
        let range = Range::from_address(a("2001:db8::11"));
        let got = tree.growth_candidates(&range, false).unwrap();
        assert_eq!(got.distance, 1);
        assert_eq!(got.members, 1);
        assert_eq!(got.groups.len(), 1, "one signature group");
        assert_eq!(got.groups[0].signature, 1, "last nybble is bit 0");
        assert_eq!(got.groups[0].count, 2);
        assert_eq!(got.groups[0].values, 0, "values zeroed without grouping");
        // Grouped by values, the two candidates split.
        let got = tree.growth_candidates(&range, true).unwrap();
        assert_eq!(got.groups.len(), 2);
        assert_eq!(got.groups[0].values, 0x9, "::19 visits first");
        assert_eq!(got.groups[1].values, 0xb);
        assert!(got.groups.iter().all(|g| g.count == 1));
    }

    #[test]
    fn growth_candidates_counts_match_expanded_range_counts() {
        let tree = NybbleTree::from_addresses([
            a("2001:db8::100"),
            a("2001:db8::105"),
            a("2001:db8::109"),
            a("2001:db8::205"),
        ]);
        let range = Range::from_address(a("2001:db8::100"));
        let got = tree.growth_candidates(&range, false).unwrap();
        for group in &got.groups {
            let expanded = range.widen_positions(group.signature);
            assert_eq!(
                got.members + group.count,
                tree.count_in_range(&expanded),
                "fused count must equal a fresh count of {expanded}"
            );
        }
        let got = tree.growth_candidates(&range, true).unwrap();
        for group in &got.groups {
            let expanded = range.insert_position_values(group.signature, group.values);
            assert_eq!(got.members + group.count, tree.count_in_range(&expanded));
        }
    }

    #[test]
    fn growth_candidates_none_when_all_inside() {
        let tree = NybbleTree::from_addresses([a("2001:db8::1"), a("2001:db8::2")]);
        assert!(tree.growth_candidates(&r("2001:db8::?"), false).is_none());
        assert!(tree.growth_candidates(&Range::full(), false).is_none());
        assert!(NybbleTree::new()
            .growth_candidates(&r("2001:db8::?"), false)
            .is_none());
    }

    #[test]
    fn growth_candidates_matches_naive_randomized() {
        let mut rng = StdRng::seed_from_u64(99);
        for trial in 0..40 {
            let base: u128 = 0x2001_0db8_0000_0000_0000_0000_0000_0000;
            let addrs: Vec<NybbleAddr> = (0..80)
                .map(|_| {
                    let noise: u128 =
                        rng.gen::<u32>() as u128 | ((rng.gen::<u8>() as u128) << 64);
                    NybbleAddr::from_bits(base | noise)
                })
                .collect();
            let tree = NybbleTree::from_addresses(addrs.iter().copied());
            let center = addrs[trial % addrs.len()];
            let range = if trial % 2 == 0 {
                Range::from_address(center)
                    .expand_loose(center.with_nybble(31, center.nybble(31) ^ 1))
            } else {
                Range::from_address(center)
                    .expand_tight(center.with_nybble(24, center.nybble(24) ^ 3))
            };
            for group_by_values in [false, true] {
                let fused = tree.growth_candidates(&range, group_by_values);
                let naive = naive_growth_candidates(&tree, &range, group_by_values);
                // The naive reference visits candidates in the same
                // traversal order, so entire structs must agree — including
                // group order.
                assert_eq!(fused, naive, "trial {trial} values={group_by_values}");
            }
        }
    }

    #[test]
    fn node_count_shares_prefixes() {
        let tree = NybbleTree::from_addresses([a("2001:db8::1"), a("2001:db8::2")]);
        // 1 root + 31 shared + 2 leaves for the final differing nybble.
        assert_eq!(tree.node_count(), 1 + 31 + 2);
    }
}
