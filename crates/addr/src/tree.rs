//! [`NybbleTree`]: the 16-ary seed trie of §5.5 of the paper.
//!
//! 6Gen stores all seeds in a *nybble tree* — "a 16-ary tree where each
//! level in the tree represents a nybble position and branching corresponds
//! to that position's nybble value. This allows us to quickly iterate over
//! the seeds that fall within a given range instead of iterating over all
//! seeds," and lets a cluster's seed set be reconstructed from its range so
//! that only the range and seed-set size need be stored.
//!
//! Beyond the paper's queries, the tree also supports a branch-and-bound
//! *nearest-seed* search ([`NybbleTree::nearest_outside`]) used to find the
//! candidate seeds minimally distant from a cluster range without scanning
//! the full seed list.

use crate::address::NybbleAddr;
use crate::nybble::NYBBLE_COUNT;
use crate::range::Range;
use std::collections::HashMap;

/// Index of a node in the arena. `u32` keeps nodes compact; 4 G nodes is
/// far beyond any realistic seed corpus.
type NodeId = u32;

/// Children beyond this count spill from the node into a heap vector.
const INLINE_CHILDREN: usize = 3;

/// Child list storage: inline for up to [`INLINE_CHILDREN`] entries,
/// heap-spilled beyond that.
///
/// The overwhelming majority of trie nodes are chain links with a single
/// child (long shared prefixes, sparse low nybbles). Storing those inline
/// turns a downward walk into a scan of the contiguous node arena —
/// sorted insertion lays nodes out in preorder, so a chain's successor is
/// usually the next arena element — instead of a dependent pointer chase
/// through one heap block per node. On large corpora that halves the
/// walk's working set and removes one cache miss per visited node, which
/// is what the branch-and-bound growth search is bound by.
#[derive(Debug, Clone)]
enum Children {
    /// `(nybble value, child id)`, sorted by value.
    Inline {
        /// Entries in use.
        len: u8,
        /// Backing storage; `entries[..len]` is the live prefix.
        entries: [(u8, NodeId); INLINE_CHILDREN],
    },
    /// `(nybble value, child id)`, sorted by value. At most 16 entries.
    Spilled(Vec<(u8, NodeId)>),
    /// Burst-trie leaf bin; see [`BinLeaf`]. Produced only by
    /// [`NybbleTree::compress_bins`], which collapses sparse subtrees into
    /// flat lists so that queries scan a handful of contiguous words with
    /// direct nybble arithmetic instead of chasing dozens of interior
    /// nodes. A binned node's former descendants remain in the arena as
    /// unreachable orphans. Bins are immutable: `insert`/`remove` must not
    /// run on a compressed tree. Boxed to keep the hot arena nodes slim.
    Bin(Box<BinLeaf>),
}

/// A collapsed sparse subtree: the full address bits of its members plus
/// precomputed agreement masks that let queries reject or score the whole
/// bin with a few word ops.
#[derive(Debug, Clone)]
struct BinLeaf {
    /// `0xF` at every position where members differ; `0` where they all
    /// agree.
    vary: u128,
    /// The members' shared nybble values at the non-varying positions
    /// (zero at varying ones). Any mismatch between `common` and a query
    /// at a non-varying position is shared by *every* member, so
    /// `common`-level mismatches lower-bound each member's distance —
    /// often proving the whole bin prunable without touching `entries`.
    common: u128,
    /// Full address bits of every member, ascending.
    entries: Vec<u128>,
}

impl Default for Children {
    fn default() -> Children {
        Children::Inline {
            len: 0,
            entries: [(0, 0); INLINE_CHILDREN],
        }
    }
}

#[derive(Debug, Clone, Default)]
struct Node {
    /// Path-compressed run of nybbles consumed on entry to this node,
    /// *left-aligned*: the `k`-th prefix nybble lives at bit shift
    /// `124 - 4k`. A node entered at position `d` (via its parent's child
    /// key at `d - 1`) covers positions `d .. d + prefix_len`, and its
    /// children branch at `d + prefix_len`. Single-child chains —
    /// long shared prefixes and sparse leaf tails, the bulk of a
    /// 32-level nybble trie — collapse into one node, so a downward walk
    /// costs one arena visit per *branching* level instead of one per
    /// nybble. That cuts both the hop count and the resident size of the
    /// branch-and-bound growth search by several times on large corpora.
    prefix: u128,
    /// Number of nybbles of `prefix` in use (`≤ 31`; bits past it are
    /// stale and must not be read).
    prefix_len: u8,
    children: Children,
    /// Number of addresses stored in this subtree.
    count: u32,
}

/// Reads the `k`-th nybble of a left-aligned prefix.
#[inline]
fn prefix_nybble(prefix: u128, k: usize) -> u8 {
    ((prefix >> (124 - 4 * k)) & 0xF) as u8
}

/// `addr` shifted so that its nybble at `position` becomes a left-aligned
/// prefix's nybble 0. Position 32 (an empty tail) yields an empty prefix.
#[inline]
fn tail_prefix(bits: u128, position: usize) -> u128 {
    if position >= NYBBLE_COUNT {
        0
    } else {
        bits << (4 * position)
    }
}

/// `true` if all `plen` prefix nybbles equal `addr`'s nybbles starting at
/// `position` — one XOR/shift word compare instead of a nybble loop.
/// (`plen ≥ 1` implies `position ≤ 31`, so the shifts stay in range.)
#[inline]
fn prefix_matches(prefix: u128, plen: usize, bits: u128, position: usize) -> bool {
    plen == 0 || ((prefix ^ (bits << (4 * position))) >> (128 - 4 * plen)) == 0
}

/// A node's prefix re-aligned to absolute address positions: nybble `k`
/// of a prefix entered at `depth` lands at address position `depth + k`.
/// Stale bits past `plen` are masked off.
#[inline]
fn aligned_prefix(prefix: u128, plen: usize, depth: usize) -> u128 {
    if plen == 0 {
        0
    } else {
        (prefix & (!0u128 << (128 - 4 * plen))) >> (4 * depth)
    }
}

/// Reads the nybble of full address bits at address `position`
/// (position 0 is the most significant nybble).
#[inline]
fn bits_nybble(bits: u128, position: usize) -> u8 {
    ((bits >> (4 * (NYBBLE_COUNT - 1 - position))) & 0xF) as u8
}

/// Packed mask covering address positions `from..to` (nybble 0xF at each
/// covered position, most significant nybble is position 0).
#[inline]
fn region_mask(from: usize, to: usize) -> u128 {
    let hi = if from >= NYBBLE_COUNT { 0 } else { !0u128 >> (4 * from) };
    let lo = if to >= NYBBLE_COUNT { 0 } else { !0u128 >> (4 * to) };
    hi & !lo
}

/// Number of nonzero nybbles in `x` — with `x = (bits ^ fixed_values) &
/// fixed_mask`, the mismatch count over a range's fixed positions in a
/// handful of word ops instead of a 32-step loop.
#[inline]
fn nonzero_nybbles(x: u128) -> u32 {
    let y = x | (x >> 1);
    let y = y | (y >> 2);
    (y & 0x1111_1111_1111_1111_1111_1111_1111_1111u128).count_ones()
}

/// Widens every nonzero nybble of `x` to `0xF`.
#[inline]
fn smear_nybbles(x: u128) -> u128 {
    let y = x | (x >> 1);
    let y = y | (y >> 2);
    (y & 0x1111_1111_1111_1111_1111_1111_1111_1111u128) * 0xF
}

/// Orders two addresses the way the trie's branch-and-bound traversal
/// visits them against `range`: position by position, *matching* nybbles
/// before mismatching ones, values ascending within each class. Bin
/// members fed to the candidate state machines in this order reproduce
/// the DFS visit order of the subtree the bin replaced — which is what
/// keeps group first-visit order byte-identical under compression.
///
/// Only the first differing nybble decides (equal values imply equal
/// match bits), so one XOR locates it.
#[inline]
fn dfs_order(a: u128, b: u128, range: &Range) -> core::cmp::Ordering {
    let x = a ^ b;
    if x == 0 {
        return core::cmp::Ordering::Equal;
    }
    let p = (x.leading_zeros() / 4) as usize;
    let va = bits_nybble(a, p);
    let vb = bits_nybble(b, p);
    let set = range.set(p);
    (!set.contains(va), va).cmp(&(!set.contains(vb), vb))
}

impl Node {
    #[inline]
    fn children(&self) -> &[(u8, NodeId)] {
        match &self.children {
            Children::Inline { len, entries } => &entries[..*len as usize],
            Children::Spilled(v) => v,
            Children::Bin(_) => &[],
        }
    }

    /// The leaf bin, if this node was collapsed by
    /// [`NybbleTree::compress_bins`].
    #[inline]
    fn bin(&self) -> Option<&BinLeaf> {
        match &self.children {
            Children::Bin(b) => Some(b),
            _ => None,
        }
    }

    /// Inserts `entry` at sorted position `pos`, spilling to the heap when
    /// the inline capacity is exceeded.
    fn insert_child(&mut self, pos: usize, entry: (u8, NodeId)) {
        match &mut self.children {
            Children::Inline { len, entries } => {
                let n = *len as usize;
                if n < INLINE_CHILDREN {
                    entries.copy_within(pos..n, pos + 1);
                    entries[pos] = entry;
                    *len += 1;
                } else {
                    let mut spilled: Vec<(u8, NodeId)> = Vec::with_capacity(n + 1);
                    spilled.extend_from_slice(&entries[..n]);
                    spilled.insert(pos, entry);
                    self.children = Children::Spilled(spilled);
                }
            }
            Children::Spilled(v) => v.insert(pos, entry),
            Children::Bin(_) => unreachable!("insert on a compress_bins-compressed tree"),
        }
    }
}

/// A deduplicated group of candidate seeds sharing one growth key, from
/// [`NybbleTree::growth_candidates`]. All candidates in a group induce the
/// same expanded range when clustered into the queried range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CandidateGroup {
    /// The shared mismatch signature against the queried range
    /// ([`Range::mismatch_signature`] bit convention: bit `k` is the nybble
    /// at bit-shift `4*k`).
    pub signature: u32,
    /// The candidates' packed nybble values at the signature positions
    /// (zero elsewhere). Always `0` when the query grouped by signature
    /// alone (loose clustering, where mismatch values do not shape the
    /// expanded range).
    pub values: u128,
    /// Number of stored addresses carrying this key.
    pub count: u64,
}

/// Result of [`NybbleTree::growth_candidates`]: everything one cluster
/// growth evaluation needs, from a single tree walk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GrowthCandidates {
    /// Minimum nybble Hamming distance from the range to a stored address
    /// outside it (`≥ 1`).
    pub distance: u32,
    /// Number of stored addresses *inside* the queried range (signature
    /// `0`), counted in the same walk. Because all candidates sit at
    /// minimum distance, a group's expanded range holds exactly
    /// `members + group.count` stored addresses.
    pub members: u64,
    /// The distinct candidate groups at `distance`, in first-visit order
    /// of the traversal (the order [`NybbleTree::nearest_outside`] yields
    /// candidates).
    pub groups: Vec<CandidateGroup>,
}

/// Mutable traversal state for [`NybbleTree::growth_candidates`].
#[derive(Debug)]
struct GrowthSearch {
    group_by_values: bool,
    /// One past the deepest non-full-wildcard position of the queried
    /// range: below it signatures are final and whole subtrees finalize
    /// from their cached counts.
    last: usize,
    best: u32,
    members: u64,
    groups: Vec<CandidateGroup>,
    /// Growth key → index into `groups`, for O(1) merge without disturbing
    /// first-visit order.
    index: HashMap<(u32, u128), usize, std::hash::BuildHasherDefault<GrowthKeyHasher>>,
}

impl GrowthSearch {
    /// Feeds one candidate event — `count` addresses sharing a final
    /// growth key at `mismatches` — through the best-distance state
    /// machine: a new minimum resets the groups, a tie merges by key
    /// preserving first-visit order, a worse distance is ignored.
    fn record(&mut self, sig: u32, values: u128, mismatches: u32, count: u64) {
        let key = (sig, if self.group_by_values { values } else { 0 });
        match mismatches.cmp(&self.best) {
            core::cmp::Ordering::Less => {
                self.best = mismatches;
                self.groups.clear();
                self.index.clear();
                self.index.insert(key, 0);
                self.groups.push(CandidateGroup {
                    signature: key.0,
                    values: key.1,
                    count,
                });
            }
            core::cmp::Ordering::Equal => match self.index.entry(key) {
                std::collections::hash_map::Entry::Occupied(slot) => {
                    self.groups[*slot.get()].count += count;
                }
                std::collections::hash_map::Entry::Vacant(slot) => {
                    slot.insert(self.groups.len());
                    self.groups.push(CandidateGroup {
                        signature: key.0,
                        values: key.1,
                        count,
                    });
                }
            },
            core::cmp::Ordering::Greater => {}
        }
    }
}

/// Minimal multiply-rotate hasher for the growth-key map. The keys are
/// short integers hashed once per finalized subtree in the hot traversal;
/// the default SipHash costs more than the rest of the finalization
/// combined. Not DoS-resistant — fine for a bounded, non-adversarial map
/// that lives for one query.
#[derive(Default)]
struct GrowthKeyHasher(u64);

impl GrowthKeyHasher {
    #[inline]
    fn add(&mut self, v: u64) {
        self.0 = (self.0.rotate_left(5) ^ v).wrapping_mul(0x517c_c1b7_2722_0a95);
    }
}

impl std::hash::Hasher for GrowthKeyHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.add(b as u64);
        }
    }
    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(v as u64);
    }
    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }
    #[inline]
    fn write_u128(&mut self, v: u128) {
        self.add(v as u64);
        self.add((v >> 64) as u64);
    }
}

/// A set of IPv6 addresses stored as a 16-ary trie over nybbles.
///
/// Supports insertion, membership, exact counting and iteration of the
/// addresses inside an arbitrary [`Range`], and nearest-neighbour search by
/// nybble Hamming distance.
///
/// ```
/// use sixgen_addr::{NybbleTree, Range};
///
/// let mut tree = NybbleTree::new();
/// tree.insert("2001:db8::1".parse().unwrap());
/// tree.insert("2001:db8::7".parse().unwrap());
/// tree.insert("2001:db9::1".parse().unwrap());
/// let range: Range = "2001:db8::?".parse().unwrap();
/// assert_eq!(tree.count_in_range(&range), 2);
/// ```
#[derive(Debug, Clone)]
pub struct NybbleTree {
    nodes: Vec<Node>,
}

impl Default for NybbleTree {
    fn default() -> Self {
        Self::new()
    }
}


impl NybbleTree {
    /// Creates an empty tree.
    pub fn new() -> NybbleTree {
        NybbleTree {
            nodes: vec![Node::default()],
        }
    }

    /// Builds a tree from an iterator of addresses (duplicates are stored
    /// once).
    pub fn from_addresses(addresses: impl IntoIterator<Item = NybbleAddr>) -> NybbleTree {
        let mut tree = NybbleTree::new();
        for addr in addresses {
            tree.insert(addr);
        }
        tree
    }

    /// Number of distinct addresses stored.
    pub fn len(&self) -> usize {
        self.nodes[0].count as usize
    }

    /// `true` if the tree stores no address.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of arena nodes (diagnostic; proportional to memory use).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    fn child(&self, node: NodeId, value: u8) -> Option<NodeId> {
        let children = self.nodes[node as usize].children();
        children
            .binary_search_by_key(&value, |&(v, _)| v)
            .ok()
            .map(|i| children[i].1)
    }

    /// Inserts an address; returns `true` if it was not already present.
    ///
    /// Insertion is the classic radix-tree surgery: descend matching
    /// prefixes; a mismatch mid-prefix *splits* the node (the existing
    /// subtree moves under a new tail node carrying the rest of the old
    /// prefix, the new address becomes a sibling leaf); a missing child at
    /// a branch point adds a leaf whose prefix is the address's whole
    /// remaining tail.
    pub fn insert(&mut self, addr: NybbleAddr) -> bool {
        if self.contains(addr) {
            return false;
        }
        let bits = addr.bits();
        let mut node: NodeId = 0;
        let mut depth = 0usize;
        loop {
            debug_assert!(
                self.nodes[node as usize].bin().is_none(),
                "insert on a compress_bins-compressed tree"
            );
            self.nodes[node as usize].count += 1;
            let plen = self.nodes[node as usize].prefix_len as usize;
            let prefix = self.nodes[node as usize].prefix;
            let mut k = 0;
            while k < plen && prefix_nybble(prefix, k) == addr.nybble(depth + k) {
                k += 1;
            }
            if k < plen {
                // Split at prefix offset `k` (address position `depth + k`):
                // this node keeps prefix[..k] and becomes a two-way branch
                // over the old subtree (under `tail`) and the new leaf.
                let count_before = self.nodes[node as usize].count - 1;
                let tail = Node {
                    prefix: tail_prefix(prefix, k + 1),
                    prefix_len: (plen - k - 1) as u8,
                    children: std::mem::take(&mut self.nodes[node as usize].children),
                    count: count_before,
                };
                let tail_id = self.nodes.len() as NodeId;
                self.nodes.push(tail);
                let leaf = Node {
                    prefix: tail_prefix(bits, depth + k + 1),
                    prefix_len: (NYBBLE_COUNT - depth - k - 1) as u8,
                    children: Children::default(),
                    count: 1,
                };
                let leaf_id = self.nodes.len() as NodeId;
                self.nodes.push(leaf);
                let old_key = prefix_nybble(prefix, k);
                let new_key = addr.nybble(depth + k);
                let (lo, hi) = if old_key < new_key {
                    ((old_key, tail_id), (new_key, leaf_id))
                } else {
                    ((new_key, leaf_id), (old_key, tail_id))
                };
                let n = &mut self.nodes[node as usize];
                n.prefix_len = k as u8; // bits past k go stale, not cleared
                n.children = Children::Inline {
                    len: 2,
                    entries: [lo, hi, (0, 0)],
                };
                return true;
            }
            depth += plen;
            if depth == NYBBLE_COUNT {
                // Full path already present: reviving an address removed
                // earlier (the count increments along the way did it).
                return true;
            }
            let value = addr.nybble(depth);
            match self.child(node, value) {
                Some(c) => {
                    node = c;
                    depth += 1;
                }
                None => {
                    let leaf = Node {
                        prefix: tail_prefix(bits, depth + 1),
                        prefix_len: (NYBBLE_COUNT - depth - 1) as u8,
                        children: Children::default(),
                        count: 1,
                    };
                    let id = self.nodes.len() as NodeId;
                    self.nodes.push(leaf);
                    let pos = self.nodes[node as usize]
                        .children()
                        .partition_point(|&(v, _)| v < value);
                    self.nodes[node as usize].insert_child(pos, (value, id));
                    return true;
                }
            }
        }
    }

    /// Removes an address; returns `true` if it was present.
    ///
    /// Removal only decrements the subtree counts along the address's
    /// path — nodes are never reclaimed. Every query skips zero-count
    /// subtrees, so a removed address is invisible, and re-inserting it
    /// revives the existing path without allocating. This makes removal
    /// O(32) and keeps long-lived mutable trees (e.g. the engine's
    /// min-address subsumption index) free of arena compaction; the
    /// zombie-node memory is bounded by total insertions.
    pub fn remove(&mut self, addr: NybbleAddr) -> bool {
        if !self.contains(addr) {
            return false;
        }
        let mut node: NodeId = 0;
        let mut depth = 0usize;
        loop {
            debug_assert!(
                self.nodes[node as usize].bin().is_none(),
                "remove on a compress_bins-compressed tree"
            );
            self.nodes[node as usize].count -= 1;
            depth += self.nodes[node as usize].prefix_len as usize;
            if depth == NYBBLE_COUNT {
                return true;
            }
            node = self
                .child(node, addr.nybble(depth))
                .expect("contains() verified the path");
            depth += 1;
        }
    }

    /// Membership test.
    pub fn contains(&self, addr: NybbleAddr) -> bool {
        let bits = addr.bits();
        let mut node: NodeId = 0;
        let mut depth = 0usize;
        loop {
            let n = &self.nodes[node as usize];
            if !prefix_matches(n.prefix, n.prefix_len as usize, bits, depth) {
                return false;
            }
            depth += n.prefix_len as usize;
            if depth == NYBBLE_COUNT {
                // A structurally present path may be a zombie left by
                // `remove`.
                return n.count > 0;
            }
            if let Some(bin) = n.bin() {
                return bin.entries.binary_search(&bits).is_ok();
            }
            match self.child(node, addr.nybble(depth)) {
                Some(c) => {
                    node = c;
                    depth += 1;
                }
                None => return false,
            }
        }
    }

    /// Collapses every sparse subtree — at least 2 and at most `max_bin`
    /// stored addresses, with branching below it — into a flat
    /// [`Children::Bin`] of full address bits, ascending.
    ///
    /// Sparse regions (isolated addresses differing in a few scattered
    /// nybbles) dominate the node count of a 16-ary trie, and the
    /// branch-and-bound growth search must *enumerate* them whenever a
    /// query range sits within its current distance bound — on large
    /// corpora that interior walk is the whole cost. A bin replaces dozens
    /// of dependent node hops with a linear scan of a few contiguous
    /// words scored by direct nybble arithmetic.
    ///
    /// Compression is a post-build step for trees that are no longer
    /// mutated (the engine's seed tree): `insert` and `remove` must not be
    /// called afterwards (debug-asserted). Binned subtrees' former
    /// interior nodes stay in the arena as unreachable orphans, so node
    /// ids — and external count arrays from [`subtree_counts`] — remain
    /// valid. Every query returns results byte-identical to the
    /// uncompressed tree, including candidate-group and nearest-seed
    /// *order* (bin survivors are replayed in the traversal's visit
    /// order — see [`dfs_order`]).
    ///
    /// [`subtree_counts`]: NybbleTree::subtree_counts
    pub fn compress_bins(&mut self, max_bin: usize) {
        self.compress_rec(0, 0, 0, max_bin);
    }

    fn compress_rec(&mut self, node: NodeId, depth: usize, acc: u128, max_bin: usize) {
        let n = &self.nodes[node as usize];
        if n.count == 0 || n.children().is_empty() {
            // Dead subtree, fully-compressed leaf, or an existing bin:
            // nothing to collapse.
            return;
        }
        let count = n.count as usize;
        if count >= 2 && count <= max_bin {
            let mut bits = Vec::with_capacity(count);
            self.collect_bits(node, depth, acc, &mut bits);
            debug_assert_eq!(bits.len(), count, "bins hold exactly the live addresses");
            debug_assert!(bits.windows(2).all(|w| w[0] < w[1]), "bins are ascending");
            let or_all = bits.iter().fold(0u128, |a, &b| a | b);
            let and_all = bits.iter().fold(!0u128, |a, &b| a & b);
            let vary = smear_nybbles(or_all ^ and_all);
            self.nodes[node as usize].children = Children::Bin(Box::new(BinLeaf {
                vary,
                common: and_all & !vary,
                entries: bits,
            }));
            return;
        }
        let plen = n.prefix_len as usize;
        let acc = acc | aligned_prefix(n.prefix, plen, depth);
        let d = depth + plen;
        let kids: Vec<(u8, NodeId)> = self.nodes[node as usize].children().to_vec();
        for (value, child) in kids {
            let child_acc = acc | ((value as u128) << (4 * (NYBBLE_COUNT - 1 - d)));
            self.compress_rec(child, d + 1, child_acc, max_bin);
        }
    }

    /// Collects the full address bits of every live address in `node`'s
    /// subtree, ascending. `acc` holds the path bits for positions before
    /// `depth`.
    fn collect_bits(&self, node: NodeId, depth: usize, acc: u128, out: &mut Vec<u128>) {
        let n = &self.nodes[node as usize];
        if n.count == 0 {
            return;
        }
        let plen = n.prefix_len as usize;
        let acc = acc | aligned_prefix(n.prefix, plen, depth);
        let d = depth + plen;
        if d == NYBBLE_COUNT {
            out.push(acc);
            return;
        }
        if let Some(bin) = n.bin() {
            out.extend_from_slice(&bin.entries);
            return;
        }
        for &(value, child) in n.children() {
            let child_acc = acc | ((value as u128) << (4 * (NYBBLE_COUNT - 1 - d)));
            self.collect_bits(child, d + 1, child_acc, out);
        }
    }

    /// Snapshot of every node's subtree count, indexed like the arena
    /// (`counts.len() == node_count()`). Callers that track a shrinking
    /// *subset* of the stored addresses — e.g. the engine's "still a live
    /// singleton cluster" view over the seed tree — start from this
    /// snapshot and walk it down with [`adjust_path_count`], then
    /// enumerate with [`for_each_in_range_pruned`] so dead regions cost
    /// nothing to skip.
    ///
    /// [`adjust_path_count`]: NybbleTree::adjust_path_count
    /// [`for_each_in_range_pruned`]: NybbleTree::for_each_in_range_pruned
    pub fn subtree_counts(&self) -> Vec<u32> {
        self.nodes.iter().map(|n| n.count).collect()
    }

    /// Applies `delta` to the external per-node counter along `addr`'s
    /// path (root included). Returns `false` — touching nothing — if the
    /// address is not stored.
    ///
    /// On a [`compress_bins`]-compressed tree the path ends at the bin
    /// node: external counts track bins at whole-bin granularity, and
    /// callers of [`for_each_in_range_pruned`] filter individual bin
    /// members themselves.
    ///
    /// [`compress_bins`]: NybbleTree::compress_bins
    /// [`for_each_in_range_pruned`]: NybbleTree::for_each_in_range_pruned
    pub fn adjust_path_count(&self, addr: NybbleAddr, counts: &mut [u32], delta: i32) -> bool {
        if !self.contains(addr) {
            return false;
        }
        debug_assert_eq!(counts.len(), self.nodes.len());
        let mut node: NodeId = 0;
        let mut depth = 0usize;
        loop {
            counts[node as usize] = counts[node as usize].wrapping_add_signed(delta);
            depth += self.nodes[node as usize].prefix_len as usize;
            if depth == NYBBLE_COUNT {
                return true;
            }
            if self.nodes[node as usize].bin().is_some() {
                return true;
            }
            node = self
                .child(node, addr.nybble(depth))
                .expect("contains() verified the path");
            depth += 1;
        }
    }

    /// Counts the stored addresses that lie within `range`, without
    /// enumerating them. Subtrees below the range's last constrained
    /// position are counted in O(1) from cached subtree sizes.
    pub fn count_in_range(&self, range: &Range) -> u64 {
        // Deepest position that is not a full wildcard; below it every
        // stored address matches and node counts can be used directly.
        let last_constrained = (0..NYBBLE_COUNT)
            .rev()
            .find(|&i| !range.set(i).is_full())
            .map(|i| i + 1)
            .unwrap_or(0);
        self.count_rec(0, 0, range, last_constrained)
    }

    fn count_rec(&self, node: NodeId, depth: usize, range: &Range, last: usize) -> u64 {
        let n = &self.nodes[node as usize];
        // Consume the compressed prefix: every nybble must match its
        // position's set. Positions at or past `last` are full wildcards
        // and need no check.
        let plen = n.prefix_len as usize;
        for k in 0..plen {
            let d = depth + k;
            if d >= last {
                break;
            }
            if !range.set(d).contains(prefix_nybble(n.prefix, k)) {
                return 0;
            }
        }
        let d = depth + plen;
        if d >= last {
            return n.count as u64;
        }
        if let Some(bin) = n.bin() {
            // A fixed-position mismatch at a non-varying position is
            // shared by every member: the whole bin misses the range.
            if (bin.common ^ range.fixed_values()) & range.fixed_mask() & !bin.vary != 0 {
                return 0;
            }
            // Positions before `d` are guaranteed by the path and those at
            // or past `last` are wildcards, so the full membership test is
            // equivalent — and word-parallel over fixed positions.
            return bin
                .entries
                .iter()
                .filter(|&&b| range.contains(NybbleAddr::from_bits(b)))
                .count() as u64;
        }
        let set = range.set(d);
        let mut total = 0u64;
        for &(value, child) in n.children() {
            if set.contains(value) {
                total += self.count_rec(child, d + 1, range, last);
            }
        }
        total
    }

    /// Calls `f` for every stored address inside `range`, in increasing
    /// address order.
    pub fn for_each_in_range(&self, range: &Range, mut f: impl FnMut(NybbleAddr)) {
        let mut path = NybbleAddr::UNSPECIFIED;
        self.visit_rec(0, 0, range, &mut path, &mut f);
    }

    /// Like [`for_each_in_range`], but additionally prunes every subtree
    /// whose entry in the caller-maintained `counts` array (see
    /// [`subtree_counts`] / [`adjust_path_count`]) is zero — enumerating
    /// only the *live* stored addresses inside `range`, in increasing
    /// order, at a cost proportional to the live matches rather than to
    /// everything the range covers.
    ///
    /// [`for_each_in_range`]: NybbleTree::for_each_in_range
    /// [`subtree_counts`]: NybbleTree::subtree_counts
    /// [`adjust_path_count`]: NybbleTree::adjust_path_count
    pub fn for_each_in_range_pruned(
        &self,
        range: &Range,
        counts: &[u32],
        mut f: impl FnMut(NybbleAddr),
    ) {
        debug_assert_eq!(counts.len(), self.nodes.len());
        let mut path = NybbleAddr::UNSPECIFIED;
        self.visit_pruned_rec(0, 0, range, counts, &mut path, &mut f);
    }

    fn visit_pruned_rec(
        &self,
        node: NodeId,
        depth: usize,
        range: &Range,
        counts: &[u32],
        path: &mut NybbleAddr,
        f: &mut impl FnMut(NybbleAddr),
    ) {
        if counts[node as usize] == 0 {
            return;
        }
        let n = &self.nodes[node as usize];
        let plen = n.prefix_len as usize;
        for k in 0..plen {
            let v = prefix_nybble(n.prefix, k);
            if !range.set(depth + k).contains(v) {
                return;
            }
            *path = path.with_nybble(depth + k, v);
        }
        let d = depth + plen;
        if d == NYBBLE_COUNT {
            f(*path);
            return;
        }
        if let Some(bin) = n.bin() {
            // A fixed-position mismatch at a non-varying position rules
            // out every member at once. Otherwise: bin members are stored
            // ascending, and range enumeration's
            // matching-children-ascending order is plain address order
            // among full matches. Positions before `d` are guaranteed by
            // the path, so the full membership test is equivalent.
            if (bin.common ^ range.fixed_values()) & range.fixed_mask() & !bin.vary != 0 {
                return;
            }
            for &b in &bin.entries {
                let addr = NybbleAddr::from_bits(b);
                if range.contains(addr) {
                    f(addr);
                }
            }
            return;
        }
        let set = range.set(d);
        for &(value, child) in n.children() {
            if set.contains(value) {
                *path = path.with_nybble(d, value);
                self.visit_pruned_rec(child, d + 1, range, counts, path, f);
            }
        }
    }

    /// Collects the stored addresses inside `range`.
    pub fn collect_in_range(&self, range: &Range) -> Vec<NybbleAddr> {
        let mut out = Vec::new();
        self.for_each_in_range(range, |a| out.push(a));
        out
    }

    fn visit_rec(
        &self,
        node: NodeId,
        depth: usize,
        range: &Range,
        path: &mut NybbleAddr,
        f: &mut impl FnMut(NybbleAddr),
    ) {
        let n = &self.nodes[node as usize];
        if n.count == 0 {
            return;
        }
        // Every path position is rewritten before descent, so no reset of
        // `path` is needed when backtracking.
        let plen = n.prefix_len as usize;
        for k in 0..plen {
            let v = prefix_nybble(n.prefix, k);
            if !range.set(depth + k).contains(v) {
                return;
            }
            *path = path.with_nybble(depth + k, v);
        }
        let d = depth + plen;
        if d == NYBBLE_COUNT {
            f(*path);
            return;
        }
        if let Some(bin) = n.bin() {
            // A fixed-position mismatch at a non-varying position rules
            // out every member at once. Otherwise: bin members are stored
            // ascending, and range enumeration's
            // matching-children-ascending order is plain address order
            // among full matches. Positions before `d` are guaranteed by
            // the path, so the full membership test is equivalent.
            if (bin.common ^ range.fixed_values()) & range.fixed_mask() & !bin.vary != 0 {
                return;
            }
            for &b in &bin.entries {
                let addr = NybbleAddr::from_bits(b);
                if range.contains(addr) {
                    f(addr);
                }
            }
            return;
        }
        let set = range.set(d);
        for &(value, child) in n.children() {
            if set.contains(value) {
                *path = path.with_nybble(d, value);
                self.visit_rec(child, d + 1, range, path, f);
            }
        }
    }

    /// Iterates every stored address in increasing order.
    pub fn addresses(&self) -> Vec<NybbleAddr> {
        self.collect_in_range(&Range::full())
    }

    /// Finds the stored addresses *outside* `range` that are minimally
    /// distant from it (nybble Hamming distance, §5.2), i.e. the paper's
    /// `FindCandidateSeeds`. Returns `(min_distance, seeds)` with
    /// `min_distance ≥ 1`, or `None` if every stored address lies inside the
    /// range.
    ///
    /// Branch-and-bound: a subtree is pruned as soon as its accumulated
    /// mismatch count exceeds the best distance found so far.
    pub fn nearest_outside(&self, range: &Range) -> Option<(u32, Vec<NybbleAddr>)> {
        let mut best = (NYBBLE_COUNT + 1) as u32;
        let mut out = Vec::new();
        let mut path = NybbleAddr::UNSPECIFIED;
        self.nearest_rec(0, 0, 0, range, &mut path, &mut best, &mut out);
        (!out.is_empty()).then_some((best, out))
    }

    /// Fused candidate search and density counting (§5.5): one
    /// branch-and-bound walk that finds the minimum distance from `range`
    /// to any stored address outside it, **deduplicates** those candidate
    /// addresses by growth key, and counts — in the same walk, from cached
    /// subtree sizes — both the addresses inside `range` and the addresses
    /// behind each key.
    ///
    /// The growth key is the candidate's mismatch *signature* (the set of
    /// positions at which it deviates from the range, as a
    /// [`Range::mismatch_signature`] bitmask), optionally extended by the
    /// candidate's nybble values at those positions (`group_by_values`,
    /// for tight clustering where inserted values shape the grown range).
    /// Every candidate with the same key induces the same expanded range,
    /// so one [`CandidateGroup`] per key replaces the per-candidate address
    /// vector of [`NybbleTree::nearest_outside`] — and because candidates
    /// sit at *minimum* distance, an address lies inside a group's expanded
    /// range iff it is a member of `range` (signature `0`) or carries
    /// exactly the group's key. Each group's expanded-range seed count is
    /// therefore `members + group.count`, with no per-range re-walk.
    ///
    /// Groups are returned in first-visit order of a fixed traversal
    /// (matching children before mismatching ones, values ascending), which
    /// is exactly the candidate order [`NybbleTree::nearest_outside`]
    /// produces — callers that iterate groups in order evaluate ranges in
    /// the same sequence as the unfused search-then-count implementation.
    ///
    /// Returns `None` if every stored address lies inside the range.
    pub fn growth_candidates(
        &self,
        range: &Range,
        group_by_values: bool,
    ) -> Option<GrowthCandidates> {
        self.growth_candidates_bounded(range, group_by_values, (NYBBLE_COUNT + 1) as u32)
    }

    /// [`growth_candidates`] seeded with a known *achievable* upper bound on
    /// the minimum distance — the distance from `range` to some stored
    /// address outside it, typically obtained from the sorted seed list's
    /// numeric neighbours of the range's `[min_address, max_address]`
    /// interval.
    ///
    /// The bound is pruning-only: branch-and-bound discards a subtree once
    /// its path mismatch count exceeds the best distance seen, and any
    /// subtree discarded against an achievable bound `b ≥ min distance`
    /// contains no minimum-distance candidate. The surviving candidates,
    /// their first-visit order, the member count, and the returned distance
    /// are therefore *identical* for every valid bound — only the number of
    /// visited nodes changes. Passing a bound below the true minimum
    /// distance (not achievable) would lose candidates; callers must derive
    /// it from a real stored outside address.
    ///
    /// [`growth_candidates`]: NybbleTree::growth_candidates
    pub fn growth_candidates_bounded(
        &self,
        range: &Range,
        group_by_values: bool,
        distance_bound: u32,
    ) -> Option<GrowthCandidates> {
        // Below the deepest constrained position every set is a full
        // wildcard: no further mismatch is possible, the signature is
        // final, and the whole subtree contributes its cached count.
        let last = (0..NYBBLE_COUNT)
            .rev()
            .find(|&i| !range.set(i).is_full())
            .map(|i| i + 1)
            .unwrap_or(0);
        let mut state = GrowthSearch {
            group_by_values,
            last,
            best: distance_bound.min((NYBBLE_COUNT + 1) as u32),
            members: 0,
            groups: Vec::new(),
            index: HashMap::default(),
        };
        self.growth_rec(0, 0, 0, 0, range, &mut state);
        (!state.groups.is_empty()).then_some(GrowthCandidates {
            distance: state.best,
            members: state.members,
            groups: state.groups,
        })
    }

    fn growth_rec(
        &self,
        node: NodeId,
        depth: usize,
        sig: u32,
        values: u128,
        range: &Range,
        state: &mut GrowthSearch,
    ) {
        let n = &self.nodes[node as usize];
        let mut mismatches = sig.count_ones();
        if mismatches > state.best || n.count == 0 {
            return;
        }
        // Consume the compressed prefix, accumulating mismatches exactly as
        // the per-level descent would: a chain has no branching choice, so
        // traversal order — and thus group first-visit order — is
        // unchanged. Positions at or past `last` are full wildcards.
        let mut sig = sig;
        let mut values = values;
        let plen = n.prefix_len as usize;
        let prefix_end = (depth + plen).min(state.last);
        if plen > 0
            && mismatches == state.best
            && range
                .partial_positions()
                .iter()
                .all(|&p| (p as usize) < depth || (p as usize) >= prefix_end)
        {
            // At-bound fast path: one more mismatch anywhere in the
            // prefix overruns the distance budget, so the prefix either
            // matches the range's fixed values exactly over the covered
            // constrained window (no partial positions in it — checked
            // above) or the whole subtree is pruned. One masked compare
            // replaces the per-nybble walk; `sig`/`values` are unchanged
            // on the match path, exactly as the loop would leave them.
            let window = region_mask(depth, prefix_end) & range.fixed_mask();
            let aligned = aligned_prefix(n.prefix, plen, depth);
            if (aligned ^ range.fixed_values()) & window != 0 {
                return;
            }
        } else {
            for k in 0..plen {
                let d = depth + k;
                if d >= state.last {
                    break;
                }
                let v = prefix_nybble(n.prefix, k);
                if !range.set(d).contains(v) {
                    sig |= 1u32 << (NYBBLE_COUNT - 1 - d);
                    values |= (v as u128) << ((NYBBLE_COUNT - 1 - d) * 4);
                    mismatches += 1;
                    if mismatches > state.best {
                        return;
                    }
                }
            }
        }
        let depth = depth + plen;
        if depth >= state.last {
            if mismatches == 0 {
                state.members += n.count as u64;
            } else {
                state.record(sig, values, mismatches, n.count as u64);
            }
            return;
        }
        if let Some(bin) = n.bin() {
            // Leaf bin: score every member over the remaining constrained
            // positions — a word-parallel mismatch count over the range's
            // fixed positions plus a short loop over its partial ones.
            // Members (no mismatch anywhere) tally into `members`;
            // candidates at most the entry bound get their signature
            // extracted (rare, slow path) and replay through the same
            // `record` state machine, in [`dfs_order`] — the visit order
            // of the subtree this bin replaced — so groups, counts, and
            // first-visit order are identical to the uncompressed walk.
            // (Entries dropped by the entry-bound filter would be
            // `Greater`-skips: `best` only tightens during the replay.)
            let region = region_mask(depth, state.last);
            let fixed = range.fixed_mask() & region;
            let goal = range.fixed_values() & region;
            // Mismatches at non-varying positions are shared by every
            // member, so they lower-bound each member's distance: prune
            // the whole bin in O(1) when they already exceed the bound.
            // (Positions before `depth` are excluded by `region` —
            // they're accounted for in the inherited `mismatches`.)
            if mismatches + nonzero_nybbles((bin.common ^ goal) & fixed & !bin.vary) > state.best
            {
                return;
            }
            let partials = range.partial_positions();
            let lo = partials.partition_point(|&p| (p as usize) < depth);
            let hi = partials.partition_point(|&p| (p as usize) < state.last);
            let partials = &partials[lo..hi];
            let mut survivors: Vec<(u128, u32, u128, u32)> = Vec::new();
            if mismatches == state.best && partials.is_empty() && fixed == region {
                // At-bound, hole-free window: survivors must equal `goal`
                // on *every* position of `[depth, last)`. Entries are
                // sorted and share all bits above `depth` (the bin sits at
                // the end of one root path), so the window is the primary
                // sort key and the matching entries form one contiguous
                // run — two binary searches replace the linear scan. The
                // run is exactly the set the masked scan below would keep,
                // so groups, counts, and order are unchanged.
                let above_window = !region_mask(state.last, NYBBLE_COUNT);
                let key = (bin.entries[0] & region_mask(0, depth)) | goal;
                let lo = bin.entries.partition_point(|&b| b & above_window < key);
                let hi = bin.entries.partition_point(|&b| b & above_window <= key);
                // Window positions are all fixed, so a matching entry adds
                // no mismatch: signature and values pass through as-is.
                for &b in &bin.entries[lo..hi] {
                    survivors.push((b, sig, values, mismatches));
                }
            } else if mismatches == state.best && partials.is_empty() {
                // At-bound fast path: the inherited path mismatches
                // already consume the whole distance budget, so an entry
                // survives only with *zero* further mismatches — an exact
                // match on every remaining fixed position. (Membership is
                // impossible: `m == 0` needs `mismatches == 0`, and the
                // bound is at least 1.) The filter collapses to one
                // masked compare per entry, which matters because
                // branch-and-bound funnels most scanned entries through
                // exactly this case: every deferred (one-more-mismatch)
                // descent taken at the bound lands here. Survivors are
                // identical to the general scan below — `m` would come
                // out `mismatches + 0` — so groups, counts, and order are
                // unchanged.
                for &b in &bin.entries {
                    if (b ^ goal) & fixed == 0 {
                        let mut bsig = sig;
                        let mut bvalues = values;
                        for p in depth..state.last {
                            let v = bits_nybble(b, p);
                            if !range.set(p).contains(v) {
                                bsig |= 1u32 << (NYBBLE_COUNT - 1 - p);
                                bvalues |= (v as u128) << ((NYBBLE_COUNT - 1 - p) * 4);
                            }
                        }
                        survivors.push((b, bsig, bvalues, mismatches));
                    }
                }
            } else {
                for &b in &bin.entries {
                    let mut m = mismatches + nonzero_nybbles((b ^ goal) & fixed);
                    // Skipping the partial scan when `m` already exceeds
                    // the bound can only undercount an entry that is
                    // filtered either way (and `m > 0` rules out
                    // membership).
                    if m <= state.best {
                        for &p in partials {
                            if !range.set(p as usize).contains(bits_nybble(b, p as usize)) {
                                m += 1;
                            }
                        }
                    }
                    if m == 0 {
                        state.members += 1;
                    } else if m <= state.best {
                        let mut bsig = sig;
                        let mut bvalues = values;
                        for p in depth..state.last {
                            let v = bits_nybble(b, p);
                            if !range.set(p).contains(v) {
                                bsig |= 1u32 << (NYBBLE_COUNT - 1 - p);
                                bvalues |= (v as u128) << ((NYBBLE_COUNT - 1 - p) * 4);
                            }
                        }
                        survivors.push((b, bsig, bvalues, m));
                    }
                }
            }
            survivors.sort_unstable_by(|x, y| dfs_order(x.0, y.0, range));
            for &(_, bsig, bvalues, m) in &survivors {
                state.record(bsig, bvalues, m, 1);
            }
            return;
        }
        let set = range.set(depth);
        let bit = 1u32 << (NYBBLE_COUNT - 1 - depth);
        let shift = (NYBBLE_COUNT - 1 - depth) * 4;
        // Matching children first so the distance bound tightens early —
        // and so group order matches `nearest_outside`'s candidate order.
        // One pass over the child list: matching children recurse
        // immediately, mismatching ones are deferred to a fixed stack
        // buffer (at most 16 children) and visited afterwards in the same
        // ascending-value order the two-pass formulation produced.
        let mut deferred = [(0u8, 0 as NodeId); 16];
        let mut deferred_len = 0;
        for &(value, child) in n.children() {
            if set.contains(value) {
                self.growth_rec(child, depth + 1, sig, values, range, state);
            } else {
                deferred[deferred_len] = (value, child);
                deferred_len += 1;
            }
        }
        for &(value, child) in &deferred[..deferred_len] {
            // `best` only tightens, so once a one-more-mismatch descent is
            // hopeless every remaining deferred child is too.
            if mismatches + 1 > state.best {
                break;
            }
            self.growth_rec(
                child,
                depth + 1,
                sig | bit,
                values | (value as u128) << shift,
                range,
                state,
            );
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn nearest_rec(
        &self,
        node: NodeId,
        depth: usize,
        mismatches: u32,
        range: &Range,
        path: &mut NybbleAddr,
        best: &mut u32,
        out: &mut Vec<NybbleAddr>,
    ) {
        let n = &self.nodes[node as usize];
        if mismatches > *best || n.count == 0 {
            return;
        }
        // Consume the compressed prefix (forced path: no ordering choice),
        // accumulating mismatches and writing path nybbles.
        let mut mismatches = mismatches;
        let plen = n.prefix_len as usize;
        for k in 0..plen {
            let v = prefix_nybble(n.prefix, k);
            if !range.set(depth + k).contains(v) {
                mismatches += 1;
                if mismatches > *best {
                    return;
                }
            }
            *path = path.with_nybble(depth + k, v);
        }
        let depth = depth + plen;
        if depth == NYBBLE_COUNT {
            if mismatches == 0 {
                // Inside the range: not a candidate.
                return;
            }
            match mismatches.cmp(best) {
                core::cmp::Ordering::Less => {
                    *best = mismatches;
                    out.clear();
                    out.push(*path);
                }
                core::cmp::Ordering::Equal => out.push(*path),
                core::cmp::Ordering::Greater => {}
            }
            return;
        }
        if let Some(bin) = n.bin() {
            // Leaf bin: score every member to full depth (word-parallel
            // over the range's fixed positions), then replay the
            // survivors in [`dfs_order`] through the same state machine the
            // per-leaf traversal runs — `out`'s candidate order and
            // `best`'s evolution match the uncompressed tree exactly.
            let region = region_mask(depth, NYBBLE_COUNT);
            let fixed = range.fixed_mask() & region;
            let goal = range.fixed_values() & region;
            // Shared-position mismatches lower-bound every member's
            // distance: prune the whole bin in O(1) when possible.
            if mismatches + nonzero_nybbles((bin.common ^ goal) & fixed & !bin.vary) > *best {
                return;
            }
            let partials = range.partial_positions();
            let lo = partials.partition_point(|&p| (p as usize) < depth);
            let partials = &partials[lo..];
            let mut survivors: Vec<(u128, u32)> = Vec::new();
            for &b in &bin.entries {
                let mut m = mismatches + nonzero_nybbles((b ^ goal) & fixed);
                if m <= *best {
                    for &p in partials {
                        if !range.set(p as usize).contains(bits_nybble(b, p as usize)) {
                            m += 1;
                        }
                    }
                }
                // `m == 0` is a member of the range, not a candidate.
                if m > 0 && m <= *best {
                    survivors.push((b, m));
                }
            }
            survivors.sort_unstable_by(|x, y| dfs_order(x.0, y.0, range));
            for &(b, m) in &survivors {
                match m.cmp(best) {
                    core::cmp::Ordering::Less => {
                        *best = m;
                        out.clear();
                        out.push(NybbleAddr::from_bits(b));
                    }
                    core::cmp::Ordering::Equal => out.push(NybbleAddr::from_bits(b)),
                    core::cmp::Ordering::Greater => {}
                }
            }
            return;
        }
        let set = range.set(depth);
        // Visit matching children first so `best` tightens early.
        for matching in [true, false] {
            for &(value, child) in n.children() {
                if set.contains(value) == matching {
                    let add = u32::from(!matching);
                    if mismatches + add > *best {
                        continue;
                    }
                    *path = path.with_nybble(depth, value);
                    self.nearest_rec(child, depth + 1, mismatches + add, range, path, best, out);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn a(s: &str) -> NybbleAddr {
        s.parse().unwrap()
    }

    fn r(s: &str) -> Range {
        s.parse().unwrap()
    }

    #[test]
    fn insert_and_contains() {
        let mut tree = NybbleTree::new();
        assert!(tree.is_empty());
        assert!(tree.insert(a("2001:db8::1")));
        assert!(!tree.insert(a("2001:db8::1")), "duplicate insert");
        assert!(tree.insert(a("2001:db8::2")));
        assert_eq!(tree.len(), 2);
        assert!(tree.contains(a("2001:db8::1")));
        assert!(!tree.contains(a("2001:db8::3")));
    }

    #[test]
    fn count_in_range_basic() {
        let tree = NybbleTree::from_addresses([
            a("2001:db8::1"),
            a("2001:db8::7"),
            a("2001:db8::17"),
            a("2001:db9::1"),
        ]);
        assert_eq!(tree.count_in_range(&r("2001:db8::?")), 2);
        assert_eq!(tree.count_in_range(&r("2001:db8::??")), 3);
        assert_eq!(tree.count_in_range(&Range::full()), 4);
        assert_eq!(tree.count_in_range(&r("2002::?")), 0);
        assert_eq!(tree.count_in_range(&r("2001:db8::7")), 1);
    }

    #[test]
    fn count_uses_subtree_counts_for_wildcard_tails() {
        // Range constrained only in the first half: exercise the O(1)
        // subtree-count path.
        let tree = NybbleTree::from_addresses([
            a("2001:db8::1"),
            a("2001:db8:0:1::9:8:7"),
            a("2001:db9::1"),
        ]);
        let range = r("2001:db8:?:?:?:?:?:?").loosen();
        assert_eq!(tree.count_in_range(&range), 2);
    }

    #[test]
    fn collect_in_range_sorted() {
        let tree = NybbleTree::from_addresses([
            a("2001:db8::9"),
            a("2001:db8::1"),
            a("2001:db8::5"),
            a("fe80::1"),
        ]);
        let got = tree.collect_in_range(&r("2001:db8::?"));
        assert_eq!(got, vec![a("2001:db8::1"), a("2001:db8::5"), a("2001:db8::9")]);
        let all = tree.addresses();
        assert_eq!(all.len(), 4);
        assert!(all.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn nearest_outside_simple() {
        let tree = NybbleTree::from_addresses([
            a("2001:db8::11"),
            a("2001:db8::19"), // distance 1 from ::11 singleton
            a("2001:db8::99"), // distance 2
            a("2001:db8::1b"), // distance 1
        ]);
        let range = Range::from_address(a("2001:db8::11"));
        let (dist, seeds) = tree.nearest_outside(&range).unwrap();
        assert_eq!(dist, 1);
        let mut seeds = seeds;
        seeds.sort();
        assert_eq!(seeds, vec![a("2001:db8::19"), a("2001:db8::1b")]);
    }

    #[test]
    fn nearest_outside_excludes_members() {
        let tree = NybbleTree::from_addresses([a("2001:db8::1"), a("2001:db8::2")]);
        let range = r("2001:db8::?");
        assert!(tree.nearest_outside(&range).is_none());

        let tree =
            NybbleTree::from_addresses([a("2001:db8::1"), a("2001:db8::2"), a("2001:db8::1:0")]);
        let (dist, seeds) = tree.nearest_outside(&range).unwrap();
        assert_eq!(dist, 1);
        assert_eq!(seeds, vec![a("2001:db8::1:0")]);
    }

    #[test]
    fn nearest_outside_matches_naive_scan_randomized() {
        let mut rng = StdRng::seed_from_u64(42);
        for trial in 0..20 {
            // Random seeds clustered in a /96-like region plus stragglers.
            let base: u128 = 0x2001_0db8_0000_0000_0000_0000_0000_0000;
            let addrs: Vec<NybbleAddr> = (0..60)
                .map(|_| {
                    let noise: u128 = rng.gen::<u32>() as u128 | ((rng.gen::<u8>() as u128) << 64);
                    NybbleAddr::from_bits(base | noise)
                })
                .collect();
            let tree = NybbleTree::from_addresses(addrs.iter().copied());
            // A range around one random seed with a couple of wildcards.
            let center = addrs[trial % addrs.len()];
            let range = Range::from_address(center)
                .expand_loose(center.with_nybble(31, center.nybble(31) ^ 1))
                .expand_loose(center.with_nybble(24, center.nybble(24) ^ 3));
            // Naive: min distance over non-members.
            let naive_min = addrs
                .iter()
                .filter(|s| !range.contains(**s))
                .map(|s| range.distance(*s))
                .min();
            let naive_set: Vec<NybbleAddr> = match naive_min {
                None => Vec::new(),
                Some(m) => {
                    let mut v: Vec<NybbleAddr> = addrs
                        .iter()
                        .copied()
                        .filter(|s| !range.contains(*s) && range.distance(*s) == m)
                        .collect();
                    v.sort();
                    v.dedup();
                    v
                }
            };
            match tree.nearest_outside(&range) {
                None => assert!(naive_set.is_empty()),
                Some((dist, mut seeds)) => {
                    seeds.sort();
                    assert_eq!(Some(dist), naive_min, "trial {trial}");
                    assert_eq!(seeds, naive_set, "trial {trial}");
                }
            }
        }
    }

    #[test]
    fn count_matches_naive_scan_randomized() {
        let mut rng = StdRng::seed_from_u64(7);
        let addrs: Vec<NybbleAddr> = (0..200)
            .map(|_| {
                let base: u128 = 0x2001_0db8_0000_0000_0000_0000_0000_0000;
                NybbleAddr::from_bits(base | (rng.gen::<u16>() as u128))
            })
            .collect();
        let tree = NybbleTree::from_addresses(addrs.iter().copied());
        let mut uniq = addrs.clone();
        uniq.sort();
        uniq.dedup();
        for range_text in ["2001:db8::?", "2001:db8::??", "2001:db8::???", "2001:db8::[0-7]?"] {
            let range = r(range_text);
            let naive = uniq.iter().filter(|s| range.contains(**s)).count() as u64;
            assert_eq!(tree.count_in_range(&range), naive, "{range_text}");
            assert_eq!(
                tree.collect_in_range(&range).len() as u64,
                naive,
                "{range_text}"
            );
        }
    }

    /// Reference implementation of the fused query: candidate search via
    /// `nearest_outside`, grouping via per-candidate signatures, counting
    /// via one `count_in_range` per expanded range.
    fn naive_growth_candidates(
        tree: &NybbleTree,
        range: &Range,
        group_by_values: bool,
    ) -> Option<GrowthCandidates> {
        let (distance, seeds) = tree.nearest_outside(range)?;
        let mut groups: Vec<CandidateGroup> = Vec::new();
        for seed in seeds {
            let sig = range.mismatch_signature(seed);
            let values = if group_by_values {
                seed.bits() & crate::nybble::position_nybble_mask(sig)
            } else {
                0
            };
            match groups
                .iter_mut()
                .find(|g| g.signature == sig && g.values == values)
            {
                Some(g) => g.count += 1,
                None => groups.push(CandidateGroup {
                    signature: sig,
                    values,
                    count: 1,
                }),
            }
        }
        Some(GrowthCandidates {
            distance,
            members: tree.count_in_range(range),
            groups,
        })
    }

    #[test]
    fn growth_candidates_simple() {
        // Cluster at ::11: candidates ::19 and ::1b share the mismatch
        // signature (last nybble), ::99 is farther.
        let tree = NybbleTree::from_addresses([
            a("2001:db8::11"),
            a("2001:db8::19"),
            a("2001:db8::99"),
            a("2001:db8::1b"),
        ]);
        let range = Range::from_address(a("2001:db8::11"));
        let got = tree.growth_candidates(&range, false).unwrap();
        assert_eq!(got.distance, 1);
        assert_eq!(got.members, 1);
        assert_eq!(got.groups.len(), 1, "one signature group");
        assert_eq!(got.groups[0].signature, 1, "last nybble is bit 0");
        assert_eq!(got.groups[0].count, 2);
        assert_eq!(got.groups[0].values, 0, "values zeroed without grouping");
        // Grouped by values, the two candidates split.
        let got = tree.growth_candidates(&range, true).unwrap();
        assert_eq!(got.groups.len(), 2);
        assert_eq!(got.groups[0].values, 0x9, "::19 visits first");
        assert_eq!(got.groups[1].values, 0xb);
        assert!(got.groups.iter().all(|g| g.count == 1));
    }

    #[test]
    fn growth_candidates_counts_match_expanded_range_counts() {
        let tree = NybbleTree::from_addresses([
            a("2001:db8::100"),
            a("2001:db8::105"),
            a("2001:db8::109"),
            a("2001:db8::205"),
        ]);
        let range = Range::from_address(a("2001:db8::100"));
        let got = tree.growth_candidates(&range, false).unwrap();
        for group in &got.groups {
            let expanded = range.widen_positions(group.signature);
            assert_eq!(
                got.members + group.count,
                tree.count_in_range(&expanded),
                "fused count must equal a fresh count of {expanded}"
            );
        }
        let got = tree.growth_candidates(&range, true).unwrap();
        for group in &got.groups {
            let expanded = range.insert_position_values(group.signature, group.values);
            assert_eq!(got.members + group.count, tree.count_in_range(&expanded));
        }
    }

    #[test]
    fn growth_candidates_none_when_all_inside() {
        let tree = NybbleTree::from_addresses([a("2001:db8::1"), a("2001:db8::2")]);
        assert!(tree.growth_candidates(&r("2001:db8::?"), false).is_none());
        assert!(tree.growth_candidates(&Range::full(), false).is_none());
        assert!(NybbleTree::new()
            .growth_candidates(&r("2001:db8::?"), false)
            .is_none());
    }

    #[test]
    fn growth_candidates_matches_naive_randomized() {
        let mut rng = StdRng::seed_from_u64(99);
        for trial in 0..40 {
            let base: u128 = 0x2001_0db8_0000_0000_0000_0000_0000_0000;
            let addrs: Vec<NybbleAddr> = (0..80)
                .map(|_| {
                    let noise: u128 =
                        rng.gen::<u32>() as u128 | ((rng.gen::<u8>() as u128) << 64);
                    NybbleAddr::from_bits(base | noise)
                })
                .collect();
            let tree = NybbleTree::from_addresses(addrs.iter().copied());
            let center = addrs[trial % addrs.len()];
            let range = if trial % 2 == 0 {
                Range::from_address(center)
                    .expand_loose(center.with_nybble(31, center.nybble(31) ^ 1))
            } else {
                Range::from_address(center)
                    .expand_tight(center.with_nybble(24, center.nybble(24) ^ 3))
            };
            for group_by_values in [false, true] {
                let fused = tree.growth_candidates(&range, group_by_values);
                let naive = naive_growth_candidates(&tree, &range, group_by_values);
                // The naive reference visits candidates in the same
                // traversal order, so entire structs must agree — including
                // group order.
                assert_eq!(fused, naive, "trial {trial} values={group_by_values}");
            }
        }
    }

    #[test]
    fn node_count_shares_prefixes() {
        // Path compression: the 31 shared nybbles collapse into one inner
        // node's prefix. 1 root + 1 shared-prefix inner + 2 empty-tail
        // leaves for the final differing nybble.
        let tree = NybbleTree::from_addresses([a("2001:db8::1"), a("2001:db8::2")]);
        assert_eq!(tree.node_count(), 1 + 1 + 2);
        // A single address is root + one fully-compressed leaf.
        let tree = NybbleTree::from_addresses([a("2001:db8::1")]);
        assert_eq!(tree.node_count(), 2);
    }

    #[test]
    fn children_spill_beyond_inline_capacity() {
        // 16 children under one parent forces the spilled representation;
        // ordering and queries must be unaffected.
        let addrs: Vec<NybbleAddr> = (0..16u128)
            .map(|v| NybbleAddr::from_bits((0x2001_0db8u128 << 96) | v))
            .collect();
        let tree = NybbleTree::from_addresses(addrs.iter().copied());
        assert_eq!(tree.len(), 16);
        let got = tree.addresses();
        assert_eq!(got, addrs, "sorted enumeration survives the spill");
        assert_eq!(tree.count_in_range(&r("2001:db8::?")), 16);
        for &addr in &addrs {
            assert!(tree.contains(addr));
        }
    }

    #[test]
    fn remove_hides_address_and_reinsert_revives_it() {
        let mut tree = NybbleTree::from_addresses([a("2001:db8::1"), a("2001:db8::2")]);
        assert!(tree.remove(a("2001:db8::1")));
        assert!(!tree.remove(a("2001:db8::1")), "double remove");
        assert!(!tree.remove(a("2001:db8::9")), "never stored");
        assert!(!tree.contains(a("2001:db8::1")));
        assert_eq!(tree.len(), 1);
        assert_eq!(tree.count_in_range(&r("2001:db8::?")), 1);
        assert_eq!(tree.addresses(), vec![a("2001:db8::2")]);
        // Queries that walk zombie paths must skip them.
        assert!(tree
            .growth_candidates(&Range::from_address(a("2001:db8::2")), false)
            .is_none());
        let nodes_before = tree.node_count();
        assert!(tree.insert(a("2001:db8::1")), "re-insert revives");
        assert_eq!(tree.node_count(), nodes_before, "revival allocates nothing");
        assert!(tree.contains(a("2001:db8::1")));
        assert_eq!(tree.len(), 2);
    }

    #[test]
    fn remove_then_queries_match_naive_randomized() {
        let mut rng = StdRng::seed_from_u64(21);
        let base: u128 = 0x2001_0db8_0000_0000_0000_0000_0000_0000;
        let addrs: Vec<NybbleAddr> = (0..120)
            .map(|_| NybbleAddr::from_bits(base | (rng.gen::<u16>() as u128)))
            .collect();
        let mut tree = NybbleTree::from_addresses(addrs.iter().copied());
        let mut live: Vec<NybbleAddr> = addrs.clone();
        live.sort();
        live.dedup();
        for step in 0..60 {
            let victim = live[rng.gen::<u64>() as usize % live.len()];
            assert!(tree.remove(victim));
            live.retain(|&x| x != victim);
            if step % 10 == 0 {
                let range = r("2001:db8::[0-7]???");
                let naive = live.iter().filter(|s| range.contains(**s)).count() as u64;
                assert_eq!(tree.count_in_range(&range), naive, "step {step}");
                assert_eq!(tree.collect_in_range(&range).len() as u64, naive);
                assert_eq!(tree.len(), live.len());
            }
        }
    }

    /// Engine-shaped corpus: a handful of subnets under one /64-ish base,
    /// dense structured tails, and scattered high-nybble noise — the mix
    /// that produces both deep shared chains and sparse binnable
    /// subtrees.
    fn structured_addrs(rng: &mut StdRng, n: usize) -> Vec<NybbleAddr> {
        (0..n)
            .map(|i| {
                let subnet = (i % 5) as u128;
                let structured = (i / 5 + 1) as u128;
                let noise: u128 = if i % 3 == 0 { rng.gen::<u16>() as u128 } else { 0 };
                NybbleAddr::from_bits(
                    (0x2600_3c00u128 << 96) | (subnet << 64) | structured | (noise << 16),
                )
            })
            .collect()
    }

    #[test]
    fn compressed_tree_queries_match_uncompressed_randomized() {
        let mut rng = StdRng::seed_from_u64(1234);
        for trial in 0..24 {
            let n = 40 + (trial * 17) % 140;
            let mut plain = NybbleTree::from_addresses(structured_addrs(&mut rng, n));
            let addrs = plain.addresses();
            if trial % 3 == 2 {
                // Zombie paths from pre-compression removals must stay
                // invisible inside bins too.
                for victim in addrs.iter().step_by(11) {
                    assert!(plain.remove(*victim));
                }
            }
            let live = plain.addresses();
            // max_bin 2 forces maximal binning, 16/128 are realistic, and
            // a bin larger than the corpus collapses the whole tree into
            // one root-level bin.
            for max_bin in [2usize, 16, 128, 100_000] {
                let mut packed = plain.clone();
                packed.compress_bins(max_bin);
                assert_eq!(packed.len(), plain.len());
                for &addr in &addrs {
                    assert_eq!(packed.contains(addr), plain.contains(addr));
                }
                for _ in 0..16 {
                    let probe = NybbleAddr::from_bits(
                        live[rng.gen::<u64>() as usize % live.len()].bits()
                            ^ (1u128 << (4 * (rng.gen::<u32>() % 32))),
                    );
                    assert_eq!(packed.contains(probe), plain.contains(probe));
                }
                for t in 0..10 {
                    let center = live[(trial + t * 13) % live.len()];
                    let range = match t % 5 {
                        0 => Range::from_address(center),
                        1 => Range::from_address(center)
                            .expand_loose(center.with_nybble(31, center.nybble(31) ^ 1)),
                        2 => Range::from_address(center)
                            .expand_tight(center.with_nybble(24, center.nybble(24) ^ 3)),
                        3 => Range::from_address(center)
                            .expand_loose(center.with_nybble(17, center.nybble(17) ^ 5))
                            .expand_loose(center.with_nybble(30, center.nybble(30) ^ 2)),
                        _ => Range::full(),
                    };
                    assert_eq!(
                        packed.count_in_range(&range),
                        plain.count_in_range(&range),
                        "trial {trial} t {t} max_bin {max_bin}"
                    );
                    assert_eq!(packed.collect_in_range(&range), plain.collect_in_range(&range));
                    // Exact equality including candidate order: bins must
                    // replay survivors in the traversal's visit order.
                    assert_eq!(
                        packed.nearest_outside(&range),
                        plain.nearest_outside(&range),
                        "trial {trial} t {t} max_bin {max_bin}"
                    );
                    for group_by_values in [false, true] {
                        assert_eq!(
                            packed.growth_candidates(&range, group_by_values),
                            plain.growth_candidates(&range, group_by_values),
                            "trial {trial} t {t} max_bin {max_bin} values {group_by_values}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn compressed_pruned_enumeration_is_bin_granular() {
        let addrs = [
            a("2001:db8::1"),
            a("2001:db8::2"),
            a("2001:db8::3"),
            a("2001:db9::1"),
        ];
        let mut tree = NybbleTree::from_addresses(addrs);
        // The db8 subtree (3 addresses, branching tail) collapses; the
        // db9 single-address chain is already one leaf.
        tree.compress_bins(3);
        let mut counts = tree.subtree_counts();
        // Killing one bin member stops at the bin node: enumeration still
        // yields the whole bin (callers filter individual members).
        assert!(tree.adjust_path_count(a("2001:db8::2"), &mut counts, -1));
        let mut seen = Vec::new();
        tree.for_each_in_range_pruned(&Range::full(), &counts, |x| seen.push(x));
        assert_eq!(seen, addrs.to_vec(), "bin granularity: members not filtered");
        // Killing the remaining members zeroes the bin node and prunes it.
        assert!(tree.adjust_path_count(a("2001:db8::1"), &mut counts, -1));
        assert!(tree.adjust_path_count(a("2001:db8::3"), &mut counts, -1));
        seen.clear();
        tree.for_each_in_range_pruned(&Range::full(), &counts, |x| seen.push(x));
        assert_eq!(seen, vec![a("2001:db9::1")]);
    }

    #[test]
    fn compress_bins_shrinks_reachable_interior() {
        // A sparse subtree of scattered noise collapses into one bin node.
        let mut rng = StdRng::seed_from_u64(5);
        let addrs: Vec<NybbleAddr> = (0..64)
            .map(|_| {
                NybbleAddr::from_bits((0x2600u128 << 112) | (rng.gen::<u64>() as u128))
            })
            .collect();
        let plain = NybbleTree::from_addresses(addrs.iter().copied());
        let mut packed = plain.clone();
        packed.compress_bins(128);
        // The whole corpus fits one bin: the only reachable nodes are the
        // root and the shared-prefix node carrying the bin.
        assert_eq!(packed.len(), plain.len());
        assert_eq!(packed.addresses(), plain.addresses());
    }

    #[test]
    fn pruned_enumeration_skips_externally_dead_subtrees() {
        let addrs = [
            a("2001:db8::1"),
            a("2001:db8::2"),
            a("2001:db8::3"),
            a("2001:db9::1"),
        ];
        let tree = NybbleTree::from_addresses(addrs);
        let mut counts = tree.subtree_counts();
        assert_eq!(counts.len(), tree.node_count());
        // Initially the pruned view equals the full view.
        let mut seen = Vec::new();
        tree.for_each_in_range_pruned(&Range::full(), &counts, |x| seen.push(x));
        assert_eq!(seen, addrs.to_vec());
        // Kill ::2 in the external view only: the tree still stores it.
        assert!(tree.adjust_path_count(a("2001:db8::2"), &mut counts, -1));
        assert!(!tree.adjust_path_count(a("2001:db8::9"), &mut counts, -1));
        seen.clear();
        tree.for_each_in_range_pruned(&r("2001:db8::?"), &counts, |x| seen.push(x));
        assert_eq!(seen, vec![a("2001:db8::1"), a("2001:db8::3")]);
        assert!(tree.contains(a("2001:db8::2")), "tree itself unchanged");
        // Revive it.
        assert!(tree.adjust_path_count(a("2001:db8::2"), &mut counts, 1));
        seen.clear();
        tree.for_each_in_range_pruned(&r("2001:db8::?"), &counts, |x| seen.push(x));
        assert_eq!(seen.len(), 3);
    }
}
