//! Property-based tests for the address/range substrate.

use proptest::prelude::*;
use sixgen_addr::{compare_density, NybbleAddr, NybbleSet, NybbleTree, Prefix, Range, U256};

fn arb_addr() -> impl Strategy<Value = NybbleAddr> {
    any::<u128>().prop_map(NybbleAddr::from_bits)
}

/// Addresses clustered in a common /96 so ranges and trees see realistic
/// shared-prefix structure.
fn arb_clustered_addr() -> impl Strategy<Value = NybbleAddr> {
    any::<u32>().prop_map(|low| {
        NybbleAddr::from_bits(0x2001_0db8_0000_0000_0000_0000_0000_0000u128 | low as u128)
    })
}

fn arb_range() -> impl Strategy<Value = Range> {
    // Build a range by expanding a singleton with a few addresses, randomly
    // loose or tight per expansion.
    (
        arb_clustered_addr(),
        prop::collection::vec((arb_clustered_addr(), any::<bool>()), 0..6),
    )
        .prop_map(|(first, grows)| {
            let mut range = Range::from_address(first);
            for (addr, loose) in grows {
                range = if loose {
                    range.expand_loose(addr)
                } else {
                    range.expand_tight(addr)
                };
            }
            range
        })
}

proptest! {
    #[test]
    fn address_text_roundtrip(addr in arb_addr()) {
        let text = addr.to_string();
        let back: NybbleAddr = text.parse().unwrap();
        prop_assert_eq!(back, addr);
    }

    #[test]
    fn address_nybble_array_roundtrip(addr in arb_addr()) {
        prop_assert_eq!(NybbleAddr::from_nybbles(addr.nybbles()), addr);
    }

    #[test]
    fn hamming_bounds_and_symmetry(a in arb_addr(), b in arb_addr()) {
        let d = a.hamming(b);
        prop_assert_eq!(d, b.hamming(a));
        prop_assert!(d <= 32);
        prop_assert_eq!(d == 0, a == b);
        // Bit distance is between nybble distance and 4x nybble distance.
        let bits = a.hamming_bits(b);
        prop_assert!(bits >= d && bits <= 4 * d);
    }

    #[test]
    fn range_text_roundtrip(range in arb_range()) {
        let text = range.to_string();
        let back: Range = text.parse().unwrap();
        prop_assert_eq!(back, range);
    }

    #[test]
    fn expansion_covers_and_grows(range in arb_range(), addr in arb_clustered_addr()) {
        for grown in [range.expand_loose(addr), range.expand_tight(addr)] {
            prop_assert!(grown.contains(addr));
            prop_assert!(range.is_subset(&grown));
            prop_assert!(grown.size() >= range.size());
            prop_assert_eq!(grown.distance(addr), 0);
        }
        // Tight expansion is minimal: it is a subset of the loose one.
        prop_assert!(range.expand_tight(addr).is_subset(&range.expand_loose(addr)));
    }

    #[test]
    fn membership_iff_distance_zero(range in arb_range(), addr in arb_clustered_addr()) {
        prop_assert_eq!(range.contains(addr), range.distance(addr) == 0);
    }

    #[test]
    fn distance_drops_by_at_most_one_per_expansion(range in arb_range(), addr in arb_clustered_addr()) {
        // Each expansion by some other address can reduce the distance to
        // `addr` by at most the number of positions it wildcards, and the
        // tight expansion by `addr` itself reduces it to zero.
        let d = range.distance(addr);
        let grown = range.expand_tight(addr);
        prop_assert_eq!(grown.distance(addr), 0);
        prop_assert!(grown.size() >= range.size());
        // Distance equals number of positions whose set misses addr.
        let mismatches = (0..32).filter(|&i| !range.set(i).contains(addr.nybble(i))).count() as u32;
        prop_assert_eq!(d, mismatches);
    }

    #[test]
    fn size_matches_enumeration_for_small_ranges(range in arb_range()) {
        prop_assume!(range.size() <= 4096);
        let addrs: Vec<NybbleAddr> = range.iter().collect();
        prop_assert_eq!(addrs.len() as u128, range.size());
        // All members, all distinct, sorted.
        for w in addrs.windows(2) {
            prop_assert!(w[0] < w[1]);
        }
        for a in &addrs {
            prop_assert!(range.contains(*a));
        }
    }

    #[test]
    fn nth_index_roundtrip(range in arb_range(), idx_seed in any::<u64>()) {
        let size = range.size();
        prop_assume!(size < u128::MAX);
        let idx = idx_seed as u128 % size;
        let addr = range.nth(idx);
        prop_assert_eq!(range.index_of(addr), Some(idx));
        prop_assert!(range.contains(addr));
    }

    #[test]
    fn union_is_commutative_cover(r1 in arb_range(), r2 in arb_range()) {
        let u = r1.union(&r2);
        prop_assert_eq!(&u, &r2.union(&r1));
        prop_assert!(r1.is_subset(&u));
        prop_assert!(r2.is_subset(&u));
    }

    #[test]
    fn intersection_agrees_with_membership(r1 in arb_range(), r2 in arb_range(), addr in arb_clustered_addr()) {
        let both = r1.contains(addr) && r2.contains(addr);
        match r1.intersection(&r2) {
            Some(i) => prop_assert_eq!(i.contains(addr), both),
            None => prop_assert!(!both),
        }
        prop_assert_eq!(r1.intersects(&r2), r1.intersection(&r2).is_some());
    }

    #[test]
    fn packed_masks_subset_matches_range_subset(r1 in arb_range(), r2 in arb_range()) {
        let p1 = r1.packed_masks();
        let p2 = r2.packed_masks();
        prop_assert_eq!(p1.is_subset(&p2), r1.is_subset(&r2));
        prop_assert_eq!(p2.is_subset(&p1), r2.is_subset(&r1));
        prop_assert!(p1.is_subset(&p1));
        // A range is always a subset of its loosened form.
        prop_assert!(p1.is_subset(&r1.loosen().packed_masks()));
    }

    #[test]
    fn subset_implies_smaller_size(r1 in arb_range(), r2 in arb_range()) {
        if r1.is_subset(&r2) {
            prop_assert!(r1.size() <= r2.size());
        }
    }

    #[test]
    fn loosen_is_superset_and_loose(range in arb_range()) {
        let loose = range.loosen();
        prop_assert!(range.is_subset(&loose));
        prop_assert!(loose.is_loose());
        // Loosening is idempotent.
        prop_assert_eq!(&loose.loosen(), &loose);
    }

    #[test]
    fn tree_agrees_with_naive_membership_and_counts(
        addrs in prop::collection::vec(arb_clustered_addr(), 1..80),
        range in arb_range(),
    ) {
        let tree = NybbleTree::from_addresses(addrs.iter().copied());
        let mut uniq = addrs.clone();
        uniq.sort();
        uniq.dedup();
        prop_assert_eq!(tree.len(), uniq.len());
        let naive_count = uniq.iter().filter(|a| range.contains(**a)).count() as u64;
        prop_assert_eq!(tree.count_in_range(&range), naive_count);
        let mut collected = tree.collect_in_range(&range);
        collected.sort();
        let naive: Vec<_> = uniq.iter().copied().filter(|a| range.contains(*a)).collect();
        prop_assert_eq!(collected, naive);
    }

    #[test]
    fn tree_nearest_matches_naive(
        addrs in prop::collection::vec(arb_clustered_addr(), 1..60),
        range in arb_range(),
    ) {
        let tree = NybbleTree::from_addresses(addrs.iter().copied());
        let mut uniq = addrs.clone();
        uniq.sort();
        uniq.dedup();
        let naive_min = uniq.iter().filter(|a| !range.contains(**a)).map(|a| range.distance(*a)).min();
        match tree.nearest_outside(&range) {
            None => prop_assert_eq!(naive_min, None),
            Some((d, mut seeds)) => {
                prop_assert_eq!(Some(d), naive_min);
                seeds.sort();
                let expect: Vec<_> = uniq
                    .iter()
                    .copied()
                    .filter(|a| !range.contains(*a) && range.distance(*a) == d)
                    .collect();
                prop_assert_eq!(seeds, expect);
            }
        }
    }

    #[test]
    fn fused_growth_candidates_match_naive(
        addrs in prop::collection::vec(arb_clustered_addr(), 1..60),
        range in arb_range(),
        tight in any::<bool>(),
    ) {
        // The fused single-walk growth query must agree with the naive
        // pipeline it replaces: nearest_outside to find candidates, group
        // them by induced expansion in first-occurrence order, and
        // count_in_range per expanded range. This is the differential
        // property that lets the engine swap implementations without
        // changing a single byte of output.
        let tree = NybbleTree::from_addresses(addrs.iter().copied());
        let fused = tree.growth_candidates(&range, tight);
        match tree.nearest_outside(&range) {
            None => prop_assert!(fused.is_none()),
            Some((d, candidates)) => {
                let fused = fused.expect("candidates exist, so groups exist");
                prop_assert_eq!(fused.distance, d);
                prop_assert_eq!(fused.members, tree.count_in_range(&range));
                let mut order: Vec<Range> = Vec::new();
                let mut counts: Vec<u64> = Vec::new();
                for a in candidates {
                    let expanded = if tight { range.expand_tight(a) } else { range.expand_loose(a) };
                    match order.iter().position(|r| *r == expanded) {
                        Some(i) => counts[i] += 1,
                        None => {
                            order.push(expanded);
                            counts.push(1);
                        }
                    }
                }
                prop_assert_eq!(fused.groups.len(), order.len());
                for (g, (expected_range, expected_count)) in
                    fused.groups.iter().zip(order.iter().zip(&counts))
                {
                    let materialized = if tight {
                        range.insert_position_values(g.signature, g.values)
                    } else {
                        range.widen_positions(g.signature)
                    };
                    prop_assert_eq!(&materialized, expected_range);
                    prop_assert_eq!(g.count, *expected_count);
                    // The fusion theorem: expanded-range seed count equals
                    // members plus the group, with no re-walk.
                    prop_assert_eq!(fused.members + g.count, tree.count_in_range(expected_range));
                }
            }
        }
    }

    #[test]
    fn prefix_contains_consistent_with_range(addr in arb_addr(), len4 in 0u8..=32) {
        let len = len4 * 4;
        let prefix = Prefix::new(addr, len);
        let range = prefix.to_range().unwrap();
        prop_assert_eq!(range.size(), prefix.size());
        prop_assert!(prefix.contains(addr));
        prop_assert!(range.contains(addr));
    }

    #[test]
    fn prefix_text_roundtrip(addr in arb_addr(), len in 0u8..=128) {
        let prefix = Prefix::new(addr, len);
        let back: Prefix = prefix.to_string().parse().unwrap();
        prop_assert_eq!(back, prefix);
    }

    #[test]
    fn u256_mul_matches_u128_when_small(a in any::<u64>(), b in any::<u64>()) {
        let exact = (a as u128) * (b as u128);
        prop_assert_eq!(U256::mul_u128(a as u128, b as u128), U256::from_u128(exact));
    }

    #[test]
    fn u256_add_sub_roundtrip(a in any::<u128>(), b in any::<u128>(), c in any::<u128>(), d in any::<u128>()) {
        let x = U256::mul_u128(a, b);
        let y = U256::mul_u128(c, d);
        if let Some(s) = x.checked_add(y) {
            prop_assert_eq!(s.checked_sub(y), Some(x));
            prop_assert_eq!(s.checked_sub(x), Some(y));
            prop_assert!(s >= x && s >= y);
        }
    }

    #[test]
    fn density_comparison_matches_floats_when_safe(
        c1 in 1u64..1_000_000, s1 in 1u128..1_000_000_000,
        c2 in 1u64..1_000_000, s2 in 1u128..1_000_000_000,
    ) {
        // In ranges where f64 is exact (products < 2^53), the exact
        // comparison must agree with floating point.
        let exact = compare_density(c1, s1, c2, s2);
        let float = (c1 as f64 / s1 as f64).partial_cmp(&(c2 as f64 / s2 as f64)).unwrap();
        if (c1 as u128) * s2 < (1u128 << 53) && (c2 as u128) * s1 < (1u128 << 53) {
            prop_assert_eq!(exact, float);
        }
    }

    #[test]
    fn density_fast_path_matches_exact_comparison(
        a_count in any::<u64>(), a_size_raw in any::<u128>(),
        b_count in any::<u64>(), b_size_raw in any::<u128>(),
        tie_count in 1u64..1_000_000, tie_size in 1u128..1_000_000_000,
        k in 1u64..1_000,
    ) {
        // compare_density's f64 fast path must never contradict the exact
        // 256-bit comparison — on arbitrary inputs and on constructed
        // exact ties/near-ties, which must reach the exact fallback.
        let a_size = a_size_raw.max(1);
        let b_size = b_size_raw.max(1);
        let exact = |ac: u64, asz: u128, bc: u64, bsz: u128| {
            U256::mul_u128(ac as u128, bsz).cmp(&U256::mul_u128(bc as u128, asz))
        };
        prop_assert_eq!(
            compare_density(a_count, a_size, b_count, b_size),
            exact(a_count, a_size, b_count, b_size)
        );
        // Exact tie: (c·k)/(s·k) == c/s.
        let scaled_count = tie_count * k;
        let scaled_size = tie_size * k as u128;
        prop_assert_eq!(
            compare_density(scaled_count, scaled_size, tie_count, tie_size),
            core::cmp::Ordering::Equal
        );
        // Near-tie, off by one in the numerator: must resolve exactly.
        prop_assert_eq!(
            compare_density(scaled_count + 1, scaled_size, tie_count, tie_size),
            core::cmp::Ordering::Greater
        );
        prop_assert_eq!(
            compare_density(scaled_count - 1, scaled_size, tie_count, tie_size),
            core::cmp::Ordering::Less
        );
    }

    #[test]
    fn range_sampling_stays_inside(range in arb_range(), seed in any::<u64>()) {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..8 {
            prop_assert!(range.contains(range.sample(&mut rng)));
        }
    }

    #[test]
    fn nybbleset_display_roundtrip_via_range(mask in 1u16..=0xFFFF) {
        // Wrap a set into a range's last position and round-trip the text.
        let set = NybbleSet::from_mask(mask);
        let mut sets = [NybbleSet::single(0); 32];
        sets[31] = set;
        let range = Range::from_sets(sets);
        let back: Range = range.to_string().parse().unwrap();
        prop_assert_eq!(back.set(31), set);
    }
}
