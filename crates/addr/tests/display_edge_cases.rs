//! Edge-case tests for textual round-tripping of ranges and addresses —
//! the notation corners that RFC 5952 and the paper's wildcard syntax
//! leave easy to get wrong.

use sixgen_addr::{NybbleAddr, NybbleTree, Range};

fn r(s: &str) -> Range {
    s.parse().unwrap()
}

fn roundtrip(s: &str) -> String {
    let range = r(s);
    let printed = range.to_string();
    assert_eq!(
        printed.parse::<Range>().unwrap(),
        range,
        "display of {s} must reparse identically"
    );
    printed
}

#[test]
fn all_zero_range_is_double_colon() {
    assert_eq!(roundtrip("::"), "::");
    assert_eq!(roundtrip("0:0:0:0:0:0:0:0"), "::");
}

#[test]
fn single_zero_group_is_not_compressed() {
    // RFC 5952 §4.2.2: one zero group must not become "::".
    assert_eq!(roundtrip("2001:db8:0:1:1:1:1:1"), "2001:db8:0:1:1:1:1:1");
}

#[test]
fn leftmost_longest_run_wins() {
    // Two equal runs: compress the first.
    assert_eq!(roundtrip("2001:0:0:1:0:0:1:1"), "2001::1:0:0:1:1");
    // Longer second run: compress the second.
    assert_eq!(roundtrip("2001:0:0:1:0:0:0:1"), "2001:0:0:1::1");
}

#[test]
fn wildcard_groups_are_never_compressed() {
    // A group with any wildcard is not a zero group even if it can be 0.
    assert_eq!(roundtrip("::?"), "::?");
    let printed = roundtrip("0:0:?:0:0:0:0:0");
    assert!(printed.contains('?'), "{printed}");
    // The zero groups after the wildcard compress instead.
    assert_eq!(printed, "0:0:?::");
}

#[test]
fn wildcards_at_the_edges() {
    assert_eq!(roundtrip("?::"), "?::");
    assert_eq!(roundtrip("::000?"), "::?");
    assert_eq!(roundtrip("?::?"), "?::?");
    assert_eq!(roundtrip("???0::"), "???0::");
}

#[test]
fn bounded_sets_roundtrip_in_groups() {
    assert_eq!(roundtrip("2001:db8::[1-2,8-a]"), "2001:db8::[1-2,8-a]");
    assert_eq!(roundtrip("[0-7]111::"), "[0-7]111::");
    // A set covering everything prints as the wildcard.
    assert_eq!(roundtrip("2001:db8::[0-f]"), "2001:db8::?");
}

#[test]
fn leading_zero_suppression_inside_groups() {
    // 0?0? keeps its internal zeros but drops the leading one.
    assert_eq!(roundtrip("2001:db8::0?0?"), "2001:db8::?0?");
    // A fixed leading digit keeps everything.
    assert_eq!(roundtrip("2001:db8::1?0?"), "2001:db8::1?0?");
    // All-zero group in an uncompressible position prints as single 0.
    assert_eq!(roundtrip("1:0:1:1:1:1:1:1"), "1:0:1:1:1:1:1:1");
}

#[test]
fn full_wildcard_range() {
    // A bare "?" group means 000? (leading zeros implied, like hex groups),
    // so this is NOT the full address space.
    assert_eq!(roundtrip("?:?:?:?:?:?:?:?"), "?:?:?:?:?:?:?:?");
    assert_eq!(r("?:?:?:?:?:?:?:?").size(), 16u128.pow(8));
    // The real full range needs four wildcards per group.
    assert_eq!(
        Range::full().to_string(),
        "????:????:????:????:????:????:????:????"
    );
    assert_eq!(
        Range::full().to_string().parse::<Range>().unwrap(),
        Range::full()
    );
}

#[test]
fn addresses_with_many_groups_of_one_digit() {
    for text in ["1:2:3:4:5:6:7:8", "::8", "1::", "0:1::2:0"] {
        let addr: NybbleAddr = text.parse().unwrap();
        assert_eq!(addr.to_string().parse::<NybbleAddr>().unwrap(), addr);
    }
}

#[test]
fn empty_tree_has_no_nearest() {
    let tree = NybbleTree::new();
    assert!(tree.nearest_outside(&Range::full()).is_none());
    assert!(tree
        .nearest_outside(&Range::from_address("::1".parse().unwrap()))
        .is_none());
    assert_eq!(tree.count_in_range(&Range::full()), 0);
}

#[test]
fn singleton_range_iteration() {
    let range = r("2001:db8::1");
    let all: Vec<NybbleAddr> = range.iter().collect();
    assert_eq!(all, vec!["2001:db8::1".parse().unwrap()]);
    assert_eq!(range.iter().size_hint(), (1, Some(1)));
}

#[test]
fn range_iterator_size_hint_matches_size() {
    let range = r("2001:db8::[1-4]?");
    assert_eq!(range.iter().size_hint(), (64, Some(64)));
    let mut iter = range.iter();
    iter.next();
    // size_hint after consumption is allowed to stay at the total (it is
    // only a hint), but must never be smaller than the remainder.
    assert!(iter.size_hint().0 >= 1);
}
