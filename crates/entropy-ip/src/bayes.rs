//! The Bayesian network over segment atoms.
//!
//! "Entropy/IP utilizes a Bayesian network to model the statistical
//! dependencies between values of different segments" (§3.3 of the 6Gen
//! paper). The original learned structure with the external BNFinder tool;
//! here the structure is the Chow–Liu tree: the spanning tree over segment
//! variables that maximizes total pairwise mutual information, which is the
//! provably optimal tree-shaped approximation of the joint distribution.

use crate::segment::Segment;
use rand::rngs::StdRng;
use rand::Rng;

/// Conditional probability table of one variable.
#[derive(Debug, Clone)]
enum Cpt {
    /// Root variable: `p[atom]`.
    Marginal(Vec<f64>),
    /// Child variable: `p[parent_atom][atom]`.
    Conditional(Vec<Vec<f64>>),
}

/// A tree-shaped Bayesian network over segment atom assignments.
#[derive(Debug, Clone)]
pub struct BayesNet {
    /// Topological order (root first).
    order: Vec<usize>,
    /// Parent of each variable (None for the root).
    parent: Vec<Option<usize>>,
    /// CPT of each variable.
    tables: Vec<Cpt>,
}

impl BayesNet {
    /// Learns structure (Chow–Liu) and parameters (Laplace-smoothed
    /// counts) from per-address atom assignments.
    ///
    /// `assignments[a][s]` is the atom index of address `a` in segment `s`.
    pub fn chow_liu(segments: &[Segment], assignments: &[Vec<usize>], laplace: f64) -> BayesNet {
        let k = segments.len();
        assert!(k > 0, "at least one segment required");
        assert!(!assignments.is_empty(), "at least one training address required");
        let domains: Vec<usize> = segments.iter().map(|s| s.atoms.len()).collect();

        // Pairwise mutual information between segment variables.
        let mi = |x: usize, y: usize| -> f64 {
            let (dx, dy) = (domains[x], domains[y]);
            let mut joint = vec![0f64; dx * dy];
            let mut px = vec![0f64; dx];
            let mut py = vec![0f64; dy];
            let n = assignments.len() as f64;
            for row in assignments {
                joint[row[x] * dy + row[y]] += 1.0;
                px[row[x]] += 1.0;
                py[row[y]] += 1.0;
            }
            let mut total = 0.0;
            for a in 0..dx {
                for b in 0..dy {
                    let pxy = joint[a * dy + b] / n;
                    if pxy > 0.0 {
                        total += pxy * (pxy / (px[a] / n * py[b] / n)).ln();
                    }
                }
            }
            total
        };

        // Prim's algorithm for the maximum spanning tree, rooted at the
        // first (most significant) segment.
        let mut parent = vec![None; k];
        let mut in_tree = vec![false; k];
        let mut best_edge: Vec<(f64, usize)> = vec![(f64::NEG_INFINITY, 0); k];
        let mut order = Vec::with_capacity(k);
        in_tree[0] = true;
        order.push(0);
        for (other, edge) in best_edge.iter_mut().enumerate().skip(1) {
            *edge = (mi(0, other), 0);
        }
        for _ in 1..k {
            let (next, _) = best_edge
                .iter()
                .enumerate()
                .filter(|(i, _)| !in_tree[*i])
                .max_by(|a, b| a.1 .0.partial_cmp(&b.1 .0).expect("MI is finite"))
                .map(|(i, e)| (i, e.0))
                .expect("a non-tree vertex always exists in the loop");
            in_tree[next] = true;
            parent[next] = Some(best_edge[next].1);
            order.push(next);
            for (other, edge) in best_edge.iter_mut().enumerate() {
                if !in_tree[other] {
                    let w = mi(next, other);
                    if w > edge.0 {
                        *edge = (w, next);
                    }
                }
            }
        }

        // Parameter estimation with Laplace smoothing.
        let tables: Vec<Cpt> = (0..k)
            .map(|v| match parent[v] {
                None => {
                    let mut counts = vec![laplace; domains[v]];
                    for row in assignments {
                        counts[row[v]] += 1.0;
                    }
                    let total: f64 = counts.iter().sum();
                    Cpt::Marginal(counts.into_iter().map(|c| c / total).collect())
                }
                Some(p) => {
                    let mut counts = vec![vec![laplace; domains[v]]; domains[p]];
                    for row in assignments {
                        counts[row[p]][row[v]] += 1.0;
                    }
                    Cpt::Conditional(
                        counts
                            .into_iter()
                            .map(|row| {
                                let total: f64 = row.iter().sum();
                                row.into_iter().map(|c| c / total).collect()
                            })
                            .collect(),
                    )
                }
            })
            .collect();

        BayesNet {
            order,
            parent,
            tables,
        }
    }

    /// The parent of segment `v` in the learned tree.
    pub fn parent_of(&self, v: usize) -> Option<usize> {
        self.parent[v]
    }

    /// The topological order used for sampling (root first; every parent
    /// precedes its children).
    pub fn topological_order(&self) -> &[usize] {
        &self.order
    }

    /// Draws a full atom assignment by ancestral sampling.
    pub fn sample_assignment(&self, rng: &mut StdRng) -> Vec<usize> {
        let mut assignment = vec![usize::MAX; self.parent.len()];
        for &v in &self.order {
            let dist: &[f64] = match &self.tables[v] {
                Cpt::Marginal(p) => p,
                Cpt::Conditional(rows) => {
                    let p = self.parent[v].expect("conditional nodes have parents");
                    &rows[assignment[p]]
                }
            };
            assignment[v] = sample_categorical(dist, rng);
        }
        assignment
    }

    /// The probability of `atom` for variable `v` given a parent atom
    /// (ignored for the root). Exposed for tests and model inspection.
    pub fn probability(&self, v: usize, atom: usize, parent_atom: Option<usize>) -> f64 {
        match &self.tables[v] {
            Cpt::Marginal(p) => p[atom],
            Cpt::Conditional(rows) => rows[parent_atom.expect("parent atom required")][atom],
        }
    }
}

/// Samples an index from an (unnormalized-tolerant) categorical
/// distribution.
fn sample_categorical(dist: &[f64], rng: &mut StdRng) -> usize {
    let total: f64 = dist.iter().sum();
    let mut draw = rng.gen::<f64>() * total;
    for (i, &p) in dist.iter().enumerate() {
        draw -= p;
        if draw <= 0.0 {
            return i;
        }
    }
    dist.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EntropyIpConfig;
    use rand::SeedableRng;
    use sixgen_addr::NybbleAddr;

    /// Builds segments over the last two groups with controlled values.
    fn two_segments(values: &[(u64, u64)]) -> (Vec<Segment>, Vec<Vec<usize>>) {
        let addrs: Vec<NybbleAddr> = values
            .iter()
            .map(|&(a, b)| NybbleAddr::from_bits((a as u128) << 16 | b as u128))
            .collect();
        let cfg = EntropyIpConfig::default();
        let s1 = Segment::mine(&addrs, 24, 28, 0.5, &cfg);
        let s2 = Segment::mine(&addrs, 28, 32, 0.5, &cfg);
        let segments = vec![s1, s2];
        let assignments: Vec<Vec<usize>> = addrs
            .iter()
            .map(|a| segments.iter().map(|s| s.atom_of(*a)).collect())
            .collect();
        (segments, assignments)
    }

    #[test]
    fn perfectly_correlated_variables_learn_dependency() {
        // b == a for a in {1, 2}; 50/50.
        let mut data = vec![(1u64, 1u64); 50];
        data.extend(vec![(2, 2); 50]);
        let (segments, assignments) = two_segments(&data);
        let bn = BayesNet::chow_liu(&segments, &assignments, 0.01);
        assert_eq!(bn.parent_of(0), None);
        assert_eq!(bn.parent_of(1), Some(0));
        // Sampling must produce matched pairs almost always.
        let mut rng = StdRng::seed_from_u64(2);
        let matched = (0..200)
            .filter(|_| {
                let a = bn.sample_assignment(&mut rng);
                a[0] == a[1] // atoms are index-aligned for equal value sets
            })
            .count();
        assert!(matched > 190, "only {matched}/200 matched");
    }

    #[test]
    fn independent_variables_still_sample_marginals() {
        // a uniform over {1,2}, b always 7: independent.
        let mut data = Vec::new();
        for i in 0..100 {
            data.push((1 + (i % 2) as u64, 7u64));
        }
        let (segments, assignments) = two_segments(&data);
        let bn = BayesNet::chow_liu(&segments, &assignments, 0.01);
        let mut rng = StdRng::seed_from_u64(3);
        let mut first_counts = [0u32; 2];
        for _ in 0..400 {
            let a = bn.sample_assignment(&mut rng);
            first_counts[a[0].min(1)] += 1;
        }
        // Roughly balanced marginal for the first variable.
        assert!(first_counts[0] > 120 && first_counts[1] > 120, "{first_counts:?}");
    }

    #[test]
    fn single_variable_network() {
        let data = [(0u64, 5u64); 10];
        let addrs: Vec<NybbleAddr> = data
            .iter()
            .map(|&(_, b)| NybbleAddr::from_bits(b as u128))
            .collect();
        let cfg = EntropyIpConfig::default();
        let seg = Segment::mine(&addrs, 28, 32, 0.0, &cfg);
        let assignments: Vec<Vec<usize>> = addrs
            .iter()
            .map(|a| vec![seg.atom_of(*a)])
            .collect();
        let bn = BayesNet::chow_liu(&[seg], &assignments, 0.01);
        let mut rng = StdRng::seed_from_u64(4);
        assert_eq!(bn.sample_assignment(&mut rng), vec![0]);
        assert!(bn.probability(0, 0, None) > 0.99);
    }

    #[test]
    fn probabilities_are_normalized() {
        let mut data = vec![(1u64, 3u64); 30];
        data.extend(vec![(2, 4); 30]);
        data.extend(vec![(1, 4); 40]);
        let (segments, assignments) = two_segments(&data);
        let bn = BayesNet::chow_liu(&segments, &assignments, 0.05);
        // Root marginal sums to 1.
        let root = bn.order_root();
        let dom = segments[root].atoms.len();
        let total: f64 = (0..dom).map(|a| bn.probability(root, a, None)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    impl BayesNet {
        fn order_root(&self) -> usize {
            self.order[0]
        }
    }

    #[test]
    fn chain_of_three_variables() {
        // v0 → v1 strongly, v1 → v2 strongly, v0 ⟂ v2 given v1 is weaker
        // than direct links: Chow-Liu must recover a chain (or star), never
        // leave a variable parentless besides the root.
        let addrs: Vec<NybbleAddr> = (0..300u32)
            .map(|i| {
                let v = (i % 3) as u128;
                NybbleAddr::from_bits(v << 8 | v << 4 | v)
            })
            .collect();
        let cfg = EntropyIpConfig::default();
        let segs: Vec<Segment> = [(29usize, 30usize), (30, 31), (31, 32)]
            .iter()
            .map(|&(s, e)| Segment::mine(&addrs, s, e, 0.5, &cfg))
            .collect();
        let assignments: Vec<Vec<usize>> = addrs
            .iter()
            .map(|a| segs.iter().map(|s| s.atom_of(*a)).collect())
            .collect();
        let bn = BayesNet::chow_liu(&segs, &assignments, 0.01);
        let parentless = (0..3).filter(|&v| bn.parent_of(v).is_none()).count();
        assert_eq!(parentless, 1, "exactly one root");
        // Sampling preserves the three-way correlation.
        let mut rng = StdRng::seed_from_u64(8);
        let consistent = (0..200)
            .filter(|_| {
                let a = bn.sample_assignment(&mut rng);
                a[0] == a[1] && a[1] == a[2]
            })
            .count();
        assert!(consistent > 180, "{consistent}/200");
    }
}
