//! Per-segment value mining: frequent values, value ranges, and the
//! uniform-random catch-all ("For each segment, it clusters segment values
//! along several metrics", §3.3 of the 6Gen paper).

use crate::EntropyIpConfig;
use std::collections::HashMap;

/// The value model of one atom.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AtomKind {
    /// A single frequent value.
    Value(u64),
    /// A contiguous range of observed values, sampled uniformly.
    Range(u64, u64),
    /// Uniform over the segment's whole value space (high-entropy
    /// segments where no structure is minable).
    Random,
}

/// One mined atom: a value model plus its empirical probability mass.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Atom {
    /// Value model.
    pub kind: AtomKind,
    /// Fraction of training addresses whose segment value this atom
    /// covers.
    pub weight: f64,
}

/// Mines the atom set for one segment.
///
/// * Values whose relative frequency reaches `frequent_threshold` become
///   [`AtomKind::Value`] atoms.
/// * Remaining observed values are sorted and greedily merged into
///   [`AtomKind::Range`] atoms wherever consecutive values are within
///   `range_gap` of each other.
/// * If the segment's entropy exceeds `random_entropy` and no frequent
///   value exists, the whole segment collapses to a single
///   [`AtomKind::Random`] atom (structure is not minable).
///
/// The returned atoms cover every observed value and carry weights that
/// sum to 1 (±ε).
pub(crate) fn mine_atoms(
    values: &[u64],
    width_nybbles: u32,
    entropy: f64,
    config: &EntropyIpConfig,
) -> Vec<Atom> {
    assert!(!values.is_empty(), "mine_atoms requires observed values");
    let n = values.len() as f64;
    let mut counts: HashMap<u64, u64> = HashMap::new();
    for &v in values {
        *counts.entry(v).or_default() += 1;
    }

    let mut frequent: Vec<(u64, u64)> = counts
        .iter()
        .filter(|(_, &c)| c as f64 / n >= config.frequent_threshold)
        .map(|(&v, &c)| (v, c))
        .collect();
    frequent.sort_unstable();

    if frequent.is_empty() && entropy > config.random_entropy {
        // Unminable high-entropy segment: model as uniform noise. Width is
        // capped at 16 nybbles by segmentation so the space is u64-sized.
        let _ = width_nybbles;
        return vec![Atom {
            kind: AtomKind::Random,
            weight: 1.0,
        }];
    }

    let mut atoms: Vec<Atom> = frequent
        .iter()
        .map(|&(v, c)| Atom {
            kind: AtomKind::Value(v),
            weight: c as f64 / n,
        })
        .collect();

    // Residual values: greedy contiguous-range clustering.
    let mut residual: Vec<(u64, u64)> = counts
        .iter()
        .filter(|(v, _)| !frequent.iter().any(|(f, _)| f == *v))
        .map(|(&v, &c)| (v, c))
        .collect();
    residual.sort_unstable();
    let mut i = 0;
    while i < residual.len() {
        let (lo, mut mass) = residual[i];
        let mut hi = lo;
        while i + 1 < residual.len() && residual[i + 1].0 - hi <= config.range_gap {
            i += 1;
            hi = residual[i].0;
            mass += residual[i].1;
        }
        atoms.push(Atom {
            kind: if lo == hi {
                AtomKind::Value(lo)
            } else {
                AtomKind::Range(lo, hi)
            },
            weight: mass as f64 / n,
        });
        i += 1;
    }
    debug_assert!(
        (atoms.iter().map(|a| a.weight).sum::<f64>() - 1.0).abs() < 1e-9,
        "atom weights must sum to 1"
    );
    atoms
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> EntropyIpConfig {
        EntropyIpConfig::default()
    }

    #[test]
    fn single_value_single_atom() {
        let atoms = mine_atoms(&[7; 100], 4, 0.0, &cfg());
        assert_eq!(atoms.len(), 1);
        assert_eq!(atoms[0].kind, AtomKind::Value(7));
        assert!((atoms[0].weight - 1.0).abs() < 1e-12);
    }

    #[test]
    fn frequent_values_become_value_atoms() {
        // 40% zeros, 40% ones, 20% spread over 20 rare values.
        let mut values = vec![0u64; 40];
        values.extend(vec![1u64; 40]);
        values.extend((0..20u64).map(|i| 1000 + i * 2));
        let atoms = mine_atoms(&values, 4, 0.5, &cfg());
        let value_atoms: Vec<u64> = atoms
            .iter()
            .filter_map(|a| match a.kind {
                AtomKind::Value(v) => Some(v),
                _ => None,
            })
            .collect();
        assert!(value_atoms.contains(&0));
        assert!(value_atoms.contains(&1));
        // The rare tail collapses to one range atom (gaps of 2 ≤ 16).
        let ranges: Vec<(u64, u64)> = atoms
            .iter()
            .filter_map(|a| match a.kind {
                AtomKind::Range(lo, hi) => Some((lo, hi)),
                _ => None,
            })
            .collect();
        assert_eq!(ranges, vec![(1000, 1038)]);
        let total: f64 = atoms.iter().map(|a| a.weight).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn gaps_split_ranges() {
        // Two distant clusters of rare values.
        let mut values: Vec<u64> = (0..10).map(|i| 100 + i).collect();
        values.extend((0..10).map(|i| 90_000 + i));
        // Make each value rare: add a dominating frequent value.
        values.extend(vec![5u64; 100]);
        let atoms = mine_atoms(&values, 8, 0.5, &cfg());
        let ranges: Vec<(u64, u64)> = atoms
            .iter()
            .filter_map(|a| match a.kind {
                AtomKind::Range(lo, hi) => Some((lo, hi)),
                _ => None,
            })
            .collect();
        assert_eq!(ranges, vec![(100, 109), (90_000, 90_009)]);
    }

    #[test]
    fn high_entropy_without_frequent_values_is_random() {
        // 1000 distinct values, each frequency 0.1%.
        let values: Vec<u64> = (0..1000u64).map(|i| i * 37).collect();
        let atoms = mine_atoms(&values, 8, 0.95, &cfg());
        assert_eq!(atoms.len(), 1);
        assert_eq!(atoms[0].kind, AtomKind::Random);
    }

    #[test]
    fn low_entropy_rare_values_stay_ranges() {
        // Low entropy estimate keeps structure even without frequent
        // values.
        let values: Vec<u64> = (0..50u64).collect();
        let atoms = mine_atoms(&values, 4, 0.3, &cfg());
        assert_eq!(atoms.len(), 1);
        assert_eq!(atoms[0].kind, AtomKind::Range(0, 49));
    }

    #[test]
    fn isolated_residual_value_becomes_value_atom() {
        let mut values = vec![0u64; 90];
        values.extend([500u64; 5]);
        values.extend([90_000u64; 5]);
        let atoms = mine_atoms(&values, 8, 0.2, &cfg());
        assert!(atoms.contains(&Atom {
            kind: AtomKind::Value(500),
            weight: 0.05
        }));
        assert!(atoms.contains(&Atom {
            kind: AtomKind::Value(90_000),
            weight: 0.05
        }));
    }
}
