//! # sixgen-entropy-ip — the Entropy/IP baseline
//!
//! A from-scratch reimplementation of **Entropy/IP** (Foremski, Plonka &
//! Berger, IMC 2016), the state-of-the-art comparison point in the 6Gen
//! paper (§3.3, §7). The pipeline:
//!
//! 1. **Entropy profile** — per-nybble Shannon entropy across the seed
//!    addresses ([`entropy_profile`]).
//! 2. **Segmentation** — adjacent nybbles with similar entropy are grouped
//!    into segments ([`Segment`]).
//! 3. **Value mining** — each segment's observed values are clustered into
//!    *atoms*: frequent exact values, contiguous value ranges, or a
//!    uniform-random catch-all for high-entropy segments ([`Atom`]).
//! 4. **Bayesian network** — statistical dependencies between segment
//!    atoms are modeled with a tree-shaped network. Where the original
//!    used the BNFinder structure-search tool, this implementation learns
//!    the provably MI-optimal tree with the Chow–Liu algorithm — the same
//!    model family (each variable conditioned on one parent) learned by a
//!    cleaner method (see `DESIGN.md` §3).
//! 5. **Generation** — ancestral sampling from the network produces
//!    de-duplicated candidate addresses; the probe budget only controls
//!    *how many* are drawn (the key §7.1 contrast with 6Gen, which also
//!    uses the budget to pick regions).
//!
//! ```
//! use sixgen_entropy_ip::{EntropyIpConfig, EntropyIpModel};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let seeds: Vec<sixgen_addr::NybbleAddr> = (1..=200u32)
//!     .map(|i| format!("2001:db8::{:x}:1", i).parse().unwrap())
//!     .collect();
//! let model = EntropyIpModel::fit(&seeds, &EntropyIpConfig::default());
//! let mut rng = StdRng::seed_from_u64(1);
//! let targets = model.generate(500, &mut rng);
//! assert!(targets.len() <= 500);
//! // Generated addresses follow the learned structure: ::<x>:1.
//! assert!(targets.iter().all(|t| t.nybble(31) == 1));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bayes;
mod mining;
mod ranked;
mod segment;

pub use bayes::BayesNet;
pub use mining::{Atom, AtomKind};
pub use segment::Segment;

use rand::rngs::StdRng;
use sixgen_addr::{NybbleAddr, NYBBLE_COUNT};
use std::collections::HashSet;

/// Tunables for model fitting. Defaults follow the original paper's
/// published parameters where stated.
#[derive(Debug, Clone)]
pub struct EntropyIpConfig {
    /// Segment boundary threshold: a new segment starts where adjacent
    /// nybbles' normalized entropies differ by more than this.
    pub segment_threshold: f64,
    /// Minimum relative frequency for a value to become an exact-value
    /// atom.
    pub frequent_threshold: f64,
    /// Normalized-entropy level above which an (otherwise unmined)
    /// segment is modeled as uniformly random.
    pub random_entropy: f64,
    /// Maximum gap between consecutive observed values merged into one
    /// range atom.
    pub range_gap: u64,
    /// Laplace smoothing mass for conditional probability tables.
    pub laplace: f64,
    /// Maximum segment width in nybbles (segments wider than 16 nybbles
    /// cannot be represented in a 64-bit value and are split).
    pub max_segment_width: usize,
}

impl Default for EntropyIpConfig {
    fn default() -> Self {
        EntropyIpConfig {
            segment_threshold: 0.05,
            frequent_threshold: 0.10,
            random_entropy: 0.90,
            range_gap: 16,
            laplace: 0.05,
            max_segment_width: 16,
        }
    }
}

/// Computes the normalized (0–1) Shannon entropy of each nybble position
/// over the given addresses. An empty slice yields all zeros.
pub fn entropy_profile(addrs: &[NybbleAddr]) -> [f64; NYBBLE_COUNT] {
    let mut profile = [0.0; NYBBLE_COUNT];
    if addrs.is_empty() {
        return profile;
    }
    let n = addrs.len() as f64;
    for (i, slot) in profile.iter_mut().enumerate() {
        let mut counts = [0u64; 16];
        for addr in addrs {
            counts[addr.nybble(i) as usize] += 1;
        }
        let mut h = 0.0;
        for &c in &counts {
            if c > 0 {
                let p = c as f64 / n;
                h -= p * p.log2();
            }
        }
        *slot = h / 4.0; // 4 bits per nybble.
    }
    profile
}

/// A fitted Entropy/IP model.
#[derive(Debug, Clone)]
pub struct EntropyIpModel {
    profile: [f64; NYBBLE_COUNT],
    segments: Vec<Segment>,
    bayes: BayesNet,
}

impl EntropyIpModel {
    /// Fits the full pipeline to a seed set.
    ///
    /// # Panics
    /// Panics if `seeds` is empty.
    pub fn fit(seeds: &[NybbleAddr], config: &EntropyIpConfig) -> EntropyIpModel {
        assert!(!seeds.is_empty(), "cannot fit Entropy/IP to zero seeds");
        let profile = entropy_profile(seeds);
        let spans = segment::segment_spans(&profile, config);
        let segments: Vec<Segment> = spans
            .into_iter()
            .map(|(start, end)| {
                let h = profile[start..end].iter().sum::<f64>() / (end - start) as f64;
                Segment::mine(seeds, start, end, h, config)
            })
            .collect();
        // Per-address atom assignments feed the structure/CPT learning.
        let assignments: Vec<Vec<usize>> = seeds
            .iter()
            .map(|addr| segments.iter().map(|s| s.atom_of(*addr)).collect())
            .collect();
        let bayes = BayesNet::chow_liu(&segments, &assignments, config.laplace);
        EntropyIpModel {
            profile,
            segments,
            bayes,
        }
    }

    /// The per-nybble entropy profile the model was built from.
    pub fn profile(&self) -> &[f64; NYBBLE_COUNT] {
        &self.profile
    }

    /// The mined segments.
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// The learned dependency structure.
    pub fn bayes(&self) -> &BayesNet {
        &self.bayes
    }

    /// Draws one address from the model (ancestral sampling + atom
    /// decoding). Duplicates across calls are possible; use
    /// [`generate`](Self::generate) for a de-duplicated target list.
    pub fn sample(&self, rng: &mut StdRng) -> NybbleAddr {
        let atoms = self.bayes.sample_assignment(rng);
        let mut bits: u128 = 0;
        for (segment, &atom) in self.segments.iter().zip(atoms.iter()) {
            bits |= segment.decode(atom, rng);
        }
        NybbleAddr::from_bits(bits)
    }

    /// Generates up to `budget` distinct candidate addresses.
    ///
    /// Entropy/IP "uses the budget only to adjust the number of targets
    /// generated" (§7.1): sampling stops at `budget` distinct addresses or
    /// when the model's support is plainly exhausted (a long run of draws
    /// producing no new address).
    pub fn generate(&self, budget: usize, rng: &mut StdRng) -> Vec<NybbleAddr> {
        let mut out = Vec::with_capacity(budget.min(1 << 20));
        let mut seen: HashSet<NybbleAddr> = HashSet::new();
        let mut dry_streak = 0u32;
        // A model over k finite atoms has finite support; stop after many
        // consecutive duplicate draws rather than spinning forever.
        const MAX_DRY_STREAK: u32 = 4096;
        while out.len() < budget && dry_streak < MAX_DRY_STREAK {
            let addr = self.sample(rng);
            if seen.insert(addr) {
                out.push(addr);
                dry_streak = 0;
            } else {
                dry_streak += 1;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn a(s: &str) -> NybbleAddr {
        s.parse().unwrap()
    }

    #[test]
    fn entropy_profile_extremes() {
        // All-identical addresses: zero entropy everywhere.
        let addrs = vec![a("2001:db8::1"); 50];
        let p = entropy_profile(&addrs);
        assert!(p.iter().all(|&h| h == 0.0));
        // Last nybble uniform over 16 values: entropy 1.0 there.
        let addrs: Vec<NybbleAddr> = (0..16u32)
            .map(|i| NybbleAddr::from_bits(0x2001 << 112 | i as u128))
            .collect();
        let p = entropy_profile(&addrs);
        assert!((p[31] - 1.0).abs() < 1e-9);
        assert_eq!(p[30], 0.0);
        // Two equiprobable values: 1 bit = 0.25 normalized.
        let addrs = vec![a("::1"); 8].into_iter().chain(vec![a("::2"); 8]).collect::<Vec<_>>();
        let p = entropy_profile(&addrs);
        assert!((p[31] - 0.25).abs() < 1e-9);
    }

    #[test]
    fn entropy_profile_empty() {
        assert!(entropy_profile(&[]).iter().all(|&h| h == 0.0));
    }

    #[test]
    fn fit_and_generate_structured_addresses() {
        // Structure: fixed prefix, one varying nybble at 27, fixed ::1 tail.
        let seeds: Vec<NybbleAddr> = (0..16u32)
            .map(|i| NybbleAddr::from_bits(0x2001_0db8u128 << 96 | (i as u128) << 16 | 1))
            .collect();
        let model = EntropyIpModel::fit(&seeds, &EntropyIpConfig::default());
        let mut rng = StdRng::seed_from_u64(3);
        let targets = model.generate(64, &mut rng);
        assert!(!targets.is_empty());
        for t in &targets {
            assert_eq!(t.bits() >> 96, 0x2001_0db8, "prefix preserved: {t}");
            assert_eq!(t.nybble(31), 1, "fixed tail preserved: {t}");
        }
        // Support is 16 addresses; generation must stop there.
        assert!(targets.len() <= 16);
    }

    #[test]
    fn generate_respects_budget() {
        let seeds: Vec<NybbleAddr> = (0..200u32)
            .map(|i| NybbleAddr::from_bits(0x2001_0db8u128 << 96 | (i as u128) << 8 | (i % 7) as u128))
            .collect();
        let model = EntropyIpModel::fit(&seeds, &EntropyIpConfig::default());
        let mut rng = StdRng::seed_from_u64(3);
        let targets = model.generate(50, &mut rng);
        assert_eq!(targets.len(), 50);
        let uniq: HashSet<_> = targets.iter().collect();
        assert_eq!(uniq.len(), 50);
    }

    #[test]
    fn model_learns_cross_segment_dependency() {
        // Two dependent nybbles far apart: nybble 24 == nybble 31 always.
        // A model with dependencies generates mostly matching pairs; an
        // independent model would match only 1/4 of the time.
        let seeds: Vec<NybbleAddr> = (0..400u32)
            .map(|i| {
                let v = (i % 4) as u128;
                NybbleAddr::from_bits(0x2001_0db8u128 << 96 | v << 28 | v)
            })
            .collect();
        let model = EntropyIpModel::fit(&seeds, &EntropyIpConfig::default());
        let mut rng = StdRng::seed_from_u64(9);
        let samples: Vec<NybbleAddr> = (0..200).map(|_| model.sample(&mut rng)).collect();
        let matching = samples
            .iter()
            .filter(|s| s.nybble(24) == s.nybble(31))
            .count();
        assert!(
            matching > 150,
            "dependency not learned: only {matching}/200 samples match"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let seeds: Vec<NybbleAddr> = (0..50u32)
            .map(|i| NybbleAddr::from_bits(0xfe80u128 << 112 | (i * 3) as u128))
            .collect();
        let model = EntropyIpModel::fit(&seeds, &EntropyIpConfig::default());
        let t1 = model.generate(30, &mut StdRng::seed_from_u64(5));
        let t2 = model.generate(30, &mut StdRng::seed_from_u64(5));
        assert_eq!(t1, t2);
    }

    #[test]
    #[should_panic(expected = "zero seeds")]
    fn fit_rejects_empty() {
        EntropyIpModel::fit(&[], &EntropyIpConfig::default());
    }

    #[test]
    fn single_seed_model_reproduces_it() {
        let seeds = vec![a("2001:db8::42")];
        let model = EntropyIpModel::fit(&seeds, &EntropyIpConfig::default());
        let mut rng = StdRng::seed_from_u64(1);
        let targets = model.generate(10, &mut rng);
        assert_eq!(targets, vec![a("2001:db8::42")]);
    }
}
