//! Budget-aware, probability-ranked generation — the 6Gen paper's
//! suggested Entropy/IP refinement (§7.1):
//!
//! > "modifying the algorithm to specifically cater to scanning purposes,
//! > such as through factoring in a budget when identifying probable
//! > address patterns, may enhance its applicability to Internet-wide
//! > scanning."
//!
//! Ancestral sampling (the original behaviour) draws targets in
//! probability-*proportional* order and wastes budget on duplicate draws.
//! [`EntropyIpModel::generate_ranked`] instead enumerates atom assignments
//! in strictly **descending joint probability** via best-first search over
//! the tree-shaped Bayesian network, then decodes each assignment's
//! concrete addresses until the budget is filled. Every probe goes to the
//! most probable not-yet-emitted pattern; no duplicates are ever drawn.

use crate::EntropyIpModel;
use rand::rngs::StdRng;
use sixgen_addr::NybbleAddr;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A partial/full atom assignment under best-first expansion.
///
/// Variables are assigned in the network's topological order, so each
/// step's conditional probability is available from the CPTs; the score is
/// the joint log-probability of the assigned prefix, an *exact* value (not
/// a bound) once complete, and — because extending an assignment only
/// multiplies by probabilities ≤ 1 — an upper bound on all completions.
/// Best-first expansion therefore emits complete assignments in exactly
/// descending joint probability.
#[derive(Debug, Clone)]
struct Node {
    /// log P of the assigned prefix.
    score: f64,
    /// Atom per topological position assigned so far.
    assigned: Vec<usize>,
}

impl PartialEq for Node {
    fn eq(&self, other: &Self) -> bool {
        self.score == other.score && self.assigned == other.assigned
    }
}
impl Eq for Node {}
impl PartialOrd for Node {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Node {
    fn cmp(&self, other: &Self) -> Ordering {
        // Max-heap on score; tie-break on the assignment for determinism.
        self.score
            .partial_cmp(&other.score)
            .expect("scores are finite")
            .then_with(|| other.assigned.cmp(&self.assigned))
    }
}

impl EntropyIpModel {
    /// Generates up to `budget` addresses in descending model probability.
    ///
    /// Assignments whose atoms are all exact values decode to a single
    /// address; range atoms enumerate their values in order; `Random`
    /// atoms enumerate their whole space when small and fall back to
    /// seeded uniform draws when vast (they carry no ranking information
    /// either way). Returns fewer than `budget` addresses only if the
    /// model's support is exhausted or the expansion bound trips.
    pub fn generate_ranked(&self, budget: usize, rng: &mut StdRng) -> Vec<NybbleAddr> {
        let bayes = self.bayes();
        let order = bayes.topological_order();
        let segments = self.segments();
        let mut out: Vec<NybbleAddr> = Vec::with_capacity(budget.min(1 << 20));
        let mut seen: std::collections::HashSet<NybbleAddr> = Default::default();

        let mut heap: BinaryHeap<Node> = BinaryHeap::new();
        heap.push(Node {
            score: 0.0,
            assigned: Vec::new(),
        });
        // Safety valve: the heap can hold at most (budget × max-domain)
        // nodes before every emission; bound expansions generously.
        let mut expansions: u64 = 0;
        let max_expansions = (budget as u64).saturating_mul(64).max(1 << 16);

        while let Some(node) = heap.pop() {
            if out.len() >= budget || expansions > max_expansions {
                break;
            }
            expansions += 1;
            let depth = node.assigned.len();
            if depth == order.len() {
                // Complete assignment: decode to concrete addresses. Each
                // assignment receives a budget share proportional to its
                // joint probability (at least one address), so a single
                // vast-support pattern cannot swallow the whole budget —
                // this is precisely the "factor the budget into the
                // patterns" behaviour the paper suggests.
                let share = ((budget as f64) * node.score.exp()).ceil() as usize;
                let share = share.clamp(1, budget - out.len());
                self.decode_assignment(&node, order, share, &mut seen, &mut out, rng);
                // Leftover probability mass: requeue the assignment at a
                // decayed score so it can emit more once higher-probability
                // patterns have been served.
                heap.push(Node {
                    score: node.score + (0.5f64).ln(),
                    assigned: node.assigned.clone(),
                });
                continue;
            }
            // Expand: assign the next topological variable every way.
            let variable = order[depth];
            let parent_atom = bayes
                .parent_of(variable)
                .map(|p| {
                    let pos = order.iter().position(|&v| v == p).expect("parent precedes child");
                    node.assigned[pos]
                });
            for atom in 0..segments[variable].atoms.len() {
                let p = bayes.probability(variable, atom, parent_atom);
                if p <= 0.0 {
                    continue;
                }
                let mut assigned = node.assigned.clone();
                assigned.push(atom);
                heap.push(Node {
                    score: node.score + p.ln(),
                    assigned,
                });
            }
        }
        out
    }

    /// Decodes one complete assignment into addresses, appending at most
    /// `share` new addresses to `out` (or fewer if the assignment's
    /// support is exhausted).
    fn decode_assignment(
        &self,
        node: &Node,
        order: &[usize],
        share: usize,
        seen: &mut std::collections::HashSet<NybbleAddr>,
        out: &mut Vec<NybbleAddr>,
        rng: &mut StdRng,
    ) {
        let segments = self.segments();
        // Atom per segment (undo the topological permutation).
        let mut atom_of_segment = vec![0usize; segments.len()];
        for (pos, &variable) in order.iter().enumerate() {
            atom_of_segment[variable] = node.assigned[pos];
        }
        // Size of the assignment's concrete support; cap enumeration.
        let mut support: u128 = 1;
        for (segment, &atom) in segments.iter().zip(&atom_of_segment) {
            support = support.saturating_mul(segment.atom_cardinality(atom) as u128);
        }
        let want = share.min(support.min(1 << 20) as usize);
        let goal = out.len() + want;
        if support <= want as u128 * 4 {
            // Small support: enumerate exhaustively (odometer over
            // per-segment value lists).
            let mut counters: Vec<u64> = vec![0; segments.len()];
            'emit: loop {
                let mut bits: u128 = 0;
                for ((segment, &atom), &counter) in
                    segments.iter().zip(&atom_of_segment).zip(&counters)
                {
                    bits |= segment.decode_nth(atom, counter);
                }
                let addr = NybbleAddr::from_bits(bits);
                if seen.insert(addr) {
                    out.push(addr);
                    if out.len() >= goal {
                        break 'emit;
                    }
                }
                // Advance the odometer; cardinalities are finite, so the
                // enumeration always terminates.
                let mut i = segments.len();
                loop {
                    if i == 0 {
                        break 'emit;
                    }
                    i -= 1;
                    counters[i] += 1;
                    if counters[i] < segments[i].atom_cardinality(atom_of_segment[i]) {
                        break;
                    }
                    counters[i] = 0;
                }
            }
        } else {
            // Large support: seeded uniform draws within the assignment.
            let mut attempts = 0u32;
            while out.len() < goal && (attempts as usize) < want * 16 {
                attempts += 1;
                let mut bits: u128 = 0;
                for (segment, &atom) in segments.iter().zip(&atom_of_segment) {
                    bits |= segment.decode(atom, rng);
                }
                let addr = NybbleAddr::from_bits(bits);
                if seen.insert(addr) {
                    out.push(addr);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EntropyIpConfig;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(5)
    }

    /// Seeds where value 1 appears 70%, 2 appears 20%, 3 appears 10% in
    /// the last nybble.
    fn skewed_seeds() -> Vec<NybbleAddr> {
        let mut v = Vec::new();
        for _ in 0..70 {
            v.push(NybbleAddr::from_bits(0x2001 << 112 | 1));
        }
        for _ in 0..20 {
            v.push(NybbleAddr::from_bits(0x2001 << 112 | 2));
        }
        for _ in 0..10 {
            v.push(NybbleAddr::from_bits(0x2001 << 112 | 3));
        }
        v
    }

    #[test]
    fn ranked_emits_most_probable_first() {
        let model = EntropyIpModel::fit(&skewed_seeds(), &EntropyIpConfig::default());
        let ranked = model.generate_ranked(3, &mut rng());
        assert_eq!(ranked.len(), 3);
        assert_eq!(ranked[0], NybbleAddr::from_bits(0x2001 << 112 | 1));
        assert_eq!(ranked[1], NybbleAddr::from_bits(0x2001 << 112 | 2));
        assert_eq!(ranked[2], NybbleAddr::from_bits(0x2001 << 112 | 3));
    }

    #[test]
    fn ranked_respects_budget_and_support() {
        let model = EntropyIpModel::fit(&skewed_seeds(), &EntropyIpConfig::default());
        let ranked = model.generate_ranked(100, &mut rng());
        // Support is exactly three addresses.
        assert_eq!(ranked.len(), 3);
        let one = model.generate_ranked(1, &mut rng());
        assert_eq!(one.len(), 1);
    }

    #[test]
    fn ranked_has_no_duplicates_and_respects_structure() {
        let seeds: Vec<NybbleAddr> = (0..400u32)
            .map(|i| NybbleAddr::from_bits(0x2001_0db8u128 << 96 | ((i % 20) as u128) << 8 | (i % 5) as u128))
            .collect();
        let model = EntropyIpModel::fit(&seeds, &EntropyIpConfig::default());
        let ranked = model.generate_ranked(80, &mut rng());
        assert_eq!(ranked.len(), 80);
        let uniq: std::collections::HashSet<_> = ranked.iter().collect();
        assert_eq!(uniq.len(), 80);
        for t in &ranked {
            assert_eq!(t.bits() >> 96, 0x2001_0db8, "prefix preserved: {t}");
        }
    }

    #[test]
    fn ranked_beats_sampled_at_tight_budgets() {
        // With a tight budget, ranked generation must cover at least as
        // many of the true (training) addresses as random sampling.
        let seeds: Vec<NybbleAddr> = (0..1000u32)
            .map(|i| {
                // Zipf-ish skew in the low byte.
                let v = match i % 10 {
                    0..=5 => 1u128,
                    6..=7 => 2,
                    8 => 3,
                    _ => (4 + i % 12) as u128,
                };
                NybbleAddr::from_bits(0x2001u128 << 112 | ((i % 7) as u128) << 8 | v)
            })
            .collect();
        let truth: std::collections::HashSet<_> = seeds.iter().copied().collect();
        let model = EntropyIpModel::fit(&seeds, &EntropyIpConfig::default());
        let budget = 20;
        let hit = |targets: &[NybbleAddr]| targets.iter().filter(|t| truth.contains(t)).count();
        let ranked = model.generate_ranked(budget, &mut rng());
        // Random sampling is noisy at a tight budget: one draw can get
        // lucky, so compare against the mean over several streams.
        let sampled_avg = (0..5)
            .map(|k| hit(&model.generate(budget, &mut StdRng::seed_from_u64(5 + k))) as f64)
            .sum::<f64>()
            / 5.0;
        assert!(
            hit(&ranked) as f64 >= sampled_avg,
            "ranked {} vs sampled mean {sampled_avg}",
            hit(&ranked),
        );
        assert!(hit(&ranked) >= budget / 2, "ranked found only {}", hit(&ranked));
    }

    #[test]
    fn ranked_is_deterministic() {
        let seeds: Vec<NybbleAddr> = (0..100u32)
            .map(|i| NybbleAddr::from_bits(0xfe80u128 << 112 | (i % 13) as u128))
            .collect();
        let model = EntropyIpModel::fit(&seeds, &EntropyIpConfig::default());
        let a = model.generate_ranked(30, &mut StdRng::seed_from_u64(1));
        let b = model.generate_ranked(30, &mut StdRng::seed_from_u64(1));
        assert_eq!(a, b);
    }
}
