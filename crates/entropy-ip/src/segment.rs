//! Entropy-guided segmentation and per-segment value handling.

use crate::mining::{mine_atoms, Atom, AtomKind};
use crate::EntropyIpConfig;
use rand::rngs::StdRng;
use rand::Rng;
use sixgen_addr::{NybbleAddr, NYBBLE_COUNT};

/// Splits the 32 nybble positions into segments of similar entropy:
/// "Entropy/IP identifies adjacent nybbles whose values have similar levels
/// of entropy across the addresses, and groups them together into
/// segments" (§3.3 of the 6Gen paper). A boundary is placed wherever the
/// normalized entropy jumps by more than the configured threshold; segments
/// are additionally capped at `max_segment_width` nybbles.
pub(crate) fn segment_spans(
    profile: &[f64; NYBBLE_COUNT],
    config: &EntropyIpConfig,
) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    let mut start = 0usize;
    for i in 1..NYBBLE_COUNT {
        let boundary = (profile[i] - profile[i - 1]).abs() > config.segment_threshold
            || i - start >= config.max_segment_width.clamp(1, 16);
        if boundary {
            spans.push((start, i));
            start = i;
        }
    }
    spans.push((start, NYBBLE_COUNT));
    spans
}

/// One segment: a span of nybble positions plus its mined value atoms.
#[derive(Debug, Clone)]
pub struct Segment {
    /// First nybble index of the span.
    pub start: usize,
    /// One past the last nybble index.
    pub end: usize,
    /// Mean normalized entropy over the span.
    pub entropy: f64,
    /// Mined value atoms. Invariant: non-empty, and every observed value
    /// maps to exactly one atom via [`Segment::atom_of`].
    pub atoms: Vec<Atom>,
}

impl Segment {
    /// Mines a segment's atoms from the seed addresses.
    pub(crate) fn mine(
        seeds: &[NybbleAddr],
        start: usize,
        end: usize,
        entropy: f64,
        config: &EntropyIpConfig,
    ) -> Segment {
        let values: Vec<u64> = seeds.iter().map(|a| extract(*a, start, end)).collect();
        let atoms = mine_atoms(&values, (end - start) as u32, entropy, config);
        Segment {
            start,
            end,
            entropy,
            atoms,
        }
    }

    /// Width of the span in nybbles.
    pub fn width(&self) -> usize {
        self.end - self.start
    }

    /// The atom index an address's segment value falls into.
    ///
    /// Every observed value is covered by construction; unseen values fall
    /// into a containing range atom or the random catch-all, defaulting to
    /// the nearest atom otherwise (only reachable when classifying
    /// addresses outside the training set).
    pub fn atom_of(&self, addr: NybbleAddr) -> usize {
        let value = extract(addr, self.start, self.end);
        let mut nearest = 0usize;
        let mut nearest_distance = u64::MAX;
        for (i, atom) in self.atoms.iter().enumerate() {
            match atom.kind {
                AtomKind::Value(v) => {
                    if v == value {
                        return i;
                    }
                    let d = v.abs_diff(value);
                    if d < nearest_distance {
                        nearest_distance = d;
                        nearest = i;
                    }
                }
                AtomKind::Range(lo, hi) => {
                    if (lo..=hi).contains(&value) {
                        return i;
                    }
                    let d = if value < lo { lo - value } else { value - hi };
                    if d < nearest_distance {
                        nearest_distance = d;
                        nearest = i;
                    }
                }
                AtomKind::Random => return i,
            }
        }
        nearest
    }

    /// Decodes an atom into segment bits positioned within a 128-bit
    /// address.
    pub(crate) fn decode(&self, atom: usize, rng: &mut StdRng) -> u128 {
        let width_bits = 4 * self.width() as u32;
        let value = match self.atoms[atom].kind {
            AtomKind::Value(v) => v,
            AtomKind::Range(lo, hi) => rng.gen_range(lo..=hi),
            AtomKind::Random => {
                if width_bits >= 64 {
                    rng.gen::<u64>()
                } else {
                    rng.gen_range(0..1u64 << width_bits)
                }
            }
        };
        place(value, self.start, self.end)
    }

    /// Decodes the `index`-th concrete value of an atom, positioned within
    /// a 128-bit address. For exact-value atoms only index 0 exists; range
    /// atoms enumerate `lo..=hi` in order; `Random` atoms enumerate the
    /// segment's whole value space in numeric order (so enumeration is
    /// deterministic and terminates).
    pub(crate) fn decode_nth(&self, atom: usize, index: u64) -> u128 {
        let value = match self.atoms[atom].kind {
            AtomKind::Value(v) => {
                debug_assert_eq!(index, 0, "a value atom has a single element");
                v
            }
            AtomKind::Range(lo, hi) => {
                debug_assert!(lo + index <= hi, "range atom index out of bounds");
                lo + index
            }
            AtomKind::Random => index,
        };
        place(value, self.start, self.end)
    }

    /// Number of concrete values an atom can decode to, saturating at
    /// `u64::MAX` for 16-nybble random segments.
    pub(crate) fn atom_cardinality(&self, atom: usize) -> u64 {
        match self.atoms[atom].kind {
            AtomKind::Value(_) => 1,
            AtomKind::Range(lo, hi) => hi - lo + 1,
            AtomKind::Random => {
                let bits = 4 * self.width() as u32;
                if bits >= 64 {
                    u64::MAX
                } else {
                    1u64 << bits
                }
            }
        }
    }
}

/// Extracts the value of nybbles `[start, end)` from an address as a u64.
pub(crate) fn extract(addr: NybbleAddr, start: usize, end: usize) -> u64 {
    debug_assert!(end > start && end - start <= 16);
    let shift = 4 * (NYBBLE_COUNT - end) as u32;
    let width = 4 * (end - start) as u32;
    let mask = if width >= 128 {
        u128::MAX
    } else {
        (1u128 << width) - 1
    };
    ((addr.bits() >> shift) & mask) as u64
}

/// Positions a segment value within a 128-bit address.
pub(crate) fn place(value: u64, start: usize, end: usize) -> u128 {
    debug_assert!(end > start && end - start <= 16);
    (value as u128) << (4 * (NYBBLE_COUNT - end) as u32)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(s: &str) -> NybbleAddr {
        s.parse().unwrap()
    }

    #[test]
    fn extract_and_place_roundtrip() {
        let addr = a("2001:db8::dead:beef");
        assert_eq!(extract(addr, 0, 4), 0x2001);
        assert_eq!(extract(addr, 24, 32), 0xdead_beef);
        assert_eq!(extract(addr, 28, 32), 0xbeef);
        assert_eq!(place(0xbeef, 28, 32), 0xbeef);
        assert_eq!(place(0x2001, 0, 4), 0x2001u128 << 112);
        // Round-trip across all full groups.
        let mut rebuilt = 0u128;
        for g in 0..8 {
            rebuilt |= place(extract(addr, g * 4, g * 4 + 4), g * 4, g * 4 + 4);
        }
        assert_eq!(NybbleAddr::from_bits(rebuilt), addr);
    }

    #[test]
    fn spans_split_on_entropy_jumps() {
        let mut profile = [0.0f64; NYBBLE_COUNT];
        profile[16..24].fill(0.5);
        profile[24..32].fill(1.0);
        let spans = segment_spans(&profile, &EntropyIpConfig::default());
        assert_eq!(spans, vec![(0, 16), (16, 24), (24, 32)]);
    }

    #[test]
    fn spans_cap_width() {
        let profile = [0.3f64; NYBBLE_COUNT];
        let config = EntropyIpConfig {
            max_segment_width: 8,
            ..EntropyIpConfig::default()
        };
        let spans = segment_spans(&profile, &config);
        assert_eq!(spans, vec![(0, 8), (8, 16), (16, 24), (24, 32)]);
        assert!(spans.iter().all(|(s, e)| e - s <= 8));
    }

    #[test]
    fn spans_cover_all_positions_exactly_once() {
        let mut profile = [0.0f64; NYBBLE_COUNT];
        for (i, p) in profile.iter_mut().enumerate() {
            *p = (i as f64 * 0.37).sin().abs();
        }
        let spans = segment_spans(&profile, &EntropyIpConfig::default());
        assert_eq!(spans[0].0, 0);
        assert_eq!(spans.last().unwrap().1, NYBBLE_COUNT);
        for w in spans.windows(2) {
            assert_eq!(w[0].1, w[1].0, "spans must be contiguous");
        }
    }

    #[test]
    fn atom_of_classifies_observed_values() {
        let seeds: Vec<NybbleAddr> = (0..100u32)
            .map(|i| NybbleAddr::from_bits((i % 3) as u128))
            .collect();
        let seg = Segment::mine(&seeds, 28, 32, 0.1, &EntropyIpConfig::default());
        // Three frequent values → three atoms; each seed maps to its own.
        for s in &seeds {
            let atom = &seg.atoms[seg.atom_of(*s)];
            if let AtomKind::Value(v) = atom.kind {
                assert_eq!(v, s.bits() as u64);
            }
        }
        assert!(!seg.atoms.is_empty());
    }

    #[test]
    fn atom_of_handles_unseen_values() {
        let seeds: Vec<NybbleAddr> = (0..10u32).map(|i| NybbleAddr::from_bits(i as u128)).collect();
        let seg = Segment::mine(&seeds, 28, 32, 0.5, &EntropyIpConfig::default());
        // An unseen value still classifies without panicking.
        let unseen = NybbleAddr::from_bits(0xFFFF);
        let _ = seg.atom_of(unseen);
    }
}
