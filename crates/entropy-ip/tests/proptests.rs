//! Property tests for the Entropy/IP pipeline.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sixgen_addr::NybbleAddr;
use sixgen_entropy_ip::{entropy_profile, AtomKind, EntropyIpConfig, EntropyIpModel};
use std::collections::HashSet;

/// Seed sets with a fixed /96 prefix and structured-ish tails.
fn arb_seeds() -> impl Strategy<Value = Vec<NybbleAddr>> {
    prop::collection::vec((0u8..8, 0u16..512), 1..120).prop_map(|pairs| {
        pairs
            .into_iter()
            .map(|(subnet, host)| {
                NybbleAddr::from_bits(
                    0x2001_0db8_0000_0000_0000_0000_0000_0000u128
                        | ((subnet as u128) << 16)
                        | host as u128,
                )
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn entropy_profile_is_bounded(seeds in arb_seeds()) {
        let profile = entropy_profile(&seeds);
        for (i, h) in profile.iter().enumerate() {
            prop_assert!((0.0..=1.0).contains(h), "H[{i}] = {h}");
        }
        // Fixed positions have zero entropy.
        prop_assert_eq!(profile[0], 0.0);
        prop_assert_eq!(profile[7], 0.0);
    }

    #[test]
    fn model_segments_partition_the_address(seeds in arb_seeds()) {
        let model = EntropyIpModel::fit(&seeds, &EntropyIpConfig::default());
        let segments = model.segments();
        prop_assert_eq!(segments[0].start, 0);
        prop_assert_eq!(segments.last().unwrap().end, 32);
        for w in segments.windows(2) {
            prop_assert_eq!(w[0].end, w[1].start);
        }
        for s in segments {
            prop_assert!(!s.atoms.is_empty());
            prop_assert!(s.width() <= 16);
            let weight: f64 = s.atoms.iter().map(|a| a.weight).sum();
            prop_assert!((weight - 1.0).abs() < 1e-6, "weights sum to {weight}");
        }
    }

    #[test]
    fn every_seed_classifies_into_each_segment(seeds in arb_seeds()) {
        let model = EntropyIpModel::fit(&seeds, &EntropyIpConfig::default());
        for seed in &seeds {
            for segment in model.segments() {
                let atom = segment.atom_of(*seed);
                prop_assert!(atom < segment.atoms.len());
            }
        }
    }

    #[test]
    fn samples_come_from_the_model_support(seeds in arb_seeds(), rng_seed in any::<u64>()) {
        let model = EntropyIpModel::fit(&seeds, &EntropyIpConfig::default());
        let mut rng = StdRng::seed_from_u64(rng_seed);
        for _ in 0..16 {
            let sample = model.sample(&mut rng);
            // Each segment's decoded value must lie in one of its atoms.
            for segment in model.segments() {
                let atom = &segment.atoms[segment.atom_of(sample)];
                // atom_of falls back to "nearest" only for values outside
                // all atoms, which must not happen for generated samples.
                let value = {
                    // Recompute the segment value from the sample.
                    let shift = 4 * (32 - segment.end) as u32;
                    let width = 4 * segment.width() as u32;
                    let mask = if width >= 128 { u128::MAX } else { (1u128 << width) - 1 };
                    ((sample.bits() >> shift) & mask) as u64
                };
                let inside = match atom.kind {
                    AtomKind::Value(v) => v == value,
                    AtomKind::Range(lo, hi) => (lo..=hi).contains(&value),
                    AtomKind::Random => true,
                };
                prop_assert!(inside, "sample {sample} escaped its atom in segment {}..{}", segment.start, segment.end);
            }
        }
    }

    #[test]
    fn generation_is_deduplicated_and_bounded(seeds in arb_seeds(), budget in 1usize..300) {
        let model = EntropyIpModel::fit(&seeds, &EntropyIpConfig::default());
        let mut rng = StdRng::seed_from_u64(1);
        let targets = model.generate(budget, &mut rng);
        prop_assert!(targets.len() <= budget);
        let uniq: HashSet<_> = targets.iter().collect();
        prop_assert_eq!(uniq.len(), targets.len());
    }

    #[test]
    fn single_value_seeds_produce_single_target(value in any::<u64>()) {
        let seeds = vec![NybbleAddr::from_bits(value as u128); 10];
        let model = EntropyIpModel::fit(&seeds, &EntropyIpConfig::default());
        let mut rng = StdRng::seed_from_u64(2);
        let targets = model.generate(100, &mut rng);
        prop_assert_eq!(targets, vec![NybbleAddr::from_bits(value as u128)]);
    }
}
