//! Criterion counterpart of Figure 2: full 6Gen runs at increasing seed
//! counts (structured, hosting-provider-style prefixes).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sixgen_addr::NybbleAddr;
use sixgen_core::{Config, SixGen};

fn structured_seeds(count: usize, seed: u64) -> Vec<NybbleAddr> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|i| {
            let subnet = (i % 48) as u128;
            let host = (i / 48 + 1) as u128;
            let noise: u128 = if i % 9 == 0 { rng.gen::<u8>() as u128 } else { 0 };
            NybbleAddr::from_bits((0x2600_3c00u128 << 96) | (subnet << 64) | host | (noise << 12))
        })
        .collect()
}

fn bench_sixgen_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("sixgen_full_run");
    group.sample_size(10);
    for n in [100usize, 1_000, 5_000] {
        let seeds = structured_seeds(n, 1);
        group.bench_with_input(BenchmarkId::new("seeds", n), &seeds, |b, seeds| {
            b.iter(|| {
                SixGen::new(
                    seeds.iter().copied(),
                    Config {
                        budget: 20_000,
                        threads: 1,
                        ..Config::default()
                    },
                )
                .run()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sixgen_scaling);
criterion_main!(benches);
