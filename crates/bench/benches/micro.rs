//! Criterion micro-benchmarks of the hot primitives: nybble Hamming
//! distance, range membership/distance, nybble-tree queries, growth
//! evaluation, Entropy/IP sampling, and tracing overhead on the engine.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sixgen_addr::{NybbleAddr, NybbleTree, Range};
use sixgen_core::{best_growth, Cluster, ClusterMode, Config, SixGen};
use sixgen_entropy_ip::{EntropyIpConfig, EntropyIpModel};
use sixgen_obs::TraceSink;

fn random_addrs(n: usize, seed: u64) -> Vec<NybbleAddr> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            NybbleAddr::from_bits(
                0x2001_0db8_0000_0000_0000_0000_0000_0000u128 | rng.gen::<u32>() as u128,
            )
        })
        .collect()
}

fn bench_hamming(c: &mut Criterion) {
    let addrs = random_addrs(1024, 1);
    c.bench_function("hamming/addr_addr", |b| {
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % (addrs.len() - 1);
            black_box(addrs[i].hamming(addrs[i + 1]))
        })
    });
    let range: Range = "2001:db8::?:?".parse().unwrap();
    c.bench_function("hamming/range_addr", |b| {
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % addrs.len();
            black_box(range.distance(addrs[i]))
        })
    });
}

fn bench_range_ops(c: &mut Criterion) {
    let range: Range = "2001:db8::[1-3]?:100?".parse().unwrap();
    let addrs = random_addrs(1024, 2);
    c.bench_function("range/contains", |b| {
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % addrs.len();
            black_box(range.contains(addrs[i]))
        })
    });
    c.bench_function("range/expand_loose", |b| {
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % addrs.len();
            black_box(range.expand_loose(addrs[i]))
        })
    });
    c.bench_function("range/size", |b| b.iter(|| black_box(range.size())));
    let mut rng = StdRng::seed_from_u64(3);
    c.bench_function("range/sample", |b| {
        b.iter(|| black_box(range.sample(&mut rng)))
    });
}

fn bench_tree(c: &mut Criterion) {
    let mut group = c.benchmark_group("tree");
    for n in [1_000usize, 10_000] {
        let addrs = random_addrs(n, 4);
        let tree = NybbleTree::from_addresses(addrs.iter().copied());
        let range: Range = "2001:db8::?:?".parse().unwrap();
        group.bench_with_input(BenchmarkId::new("count_in_range", n), &n, |b, _| {
            b.iter(|| black_box(tree.count_in_range(&range)))
        });
        let probe = Range::from_address(addrs[0]);
        group.bench_with_input(BenchmarkId::new("nearest_outside", n), &n, |b, _| {
            b.iter(|| black_box(tree.nearest_outside(&probe)))
        });
        group.bench_with_input(BenchmarkId::new("insert", n), &n, |b, _| {
            let mut i: u64 = 0;
            b.iter(|| {
                let mut t = NybbleTree::new();
                i += 1;
                t.insert(NybbleAddr::from_bits(i as u128));
                black_box(t.len())
            })
        });
    }
    group.finish();
}

fn bench_growth(c: &mut Criterion) {
    let addrs = random_addrs(5_000, 5);
    let tree = NybbleTree::from_addresses(addrs.iter().copied());
    let cluster = Cluster::singleton(addrs[42]);
    c.bench_function("growth/best_growth_5k_seeds", |b| {
        b.iter(|| {
            black_box(best_growth(&cluster, &tree, ClusterMode::Loose, || 7));
        })
    });
}

fn bench_entropy_ip(c: &mut Criterion) {
    let addrs = random_addrs(2_000, 6);
    let model = EntropyIpModel::fit(&addrs, &EntropyIpConfig::default());
    let mut rng = StdRng::seed_from_u64(7);
    c.bench_function("entropy_ip/sample", |b| {
        b.iter(|| black_box(model.sample(&mut rng)))
    });
    c.bench_function("entropy_ip/fit_2k", |b| {
        b.iter(|| black_box(EntropyIpModel::fit(&addrs, &EntropyIpConfig::default())))
    });
}

/// Tracing-overhead guardrail for the `<2 %` disabled-path criterion:
/// the same engine run with no sink, a *disabled* sink (pays one relaxed
/// atomic load per would-be span), and an enabled sink. Compare
/// `engine_trace/none` against `engine_trace/disabled` — they should be
/// within noise of each other.
fn bench_engine_tracing(c: &mut Criterion) {
    // Structured seeds so the engine does real growth work (the random
    // corpus above collapses into one giant cluster too quickly).
    let seeds: Vec<NybbleAddr> = (0..600usize)
        .map(|i| {
            let subnet = (i % 24) as u128;
            NybbleAddr::from_bits((0x2001_0db8u128 << 96) | (subnet << 64) | (i / 24 + 1) as u128)
        })
        .collect();
    let run = |trace: Option<std::sync::Arc<TraceSink>>| {
        SixGen::new(
            seeds.iter().copied(),
            Config {
                budget: 20_000,
                threads: 1,
                rng_seed: 9,
                trace,
                ..Config::default()
            },
        )
        .run()
    };
    let mut group = c.benchmark_group("engine_trace");
    group.bench_with_input(BenchmarkId::new("none", 600), &(), |b, ()| {
        b.iter(|| black_box(run(None)))
    });
    group.bench_with_input(BenchmarkId::new("disabled", 600), &(), |b, ()| {
        b.iter(|| {
            let sink = TraceSink::shared();
            sink.set_enabled(false);
            black_box(run(Some(sink)))
        })
    });
    group.bench_with_input(BenchmarkId::new("enabled", 600), &(), |b, ()| {
        b.iter(|| black_box(run(Some(TraceSink::shared()))))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_hamming,
    bench_range_ops,
    bench_tree,
    bench_growth,
    bench_entropy_ip,
    bench_engine_tracing
);
criterion_main!(benches);
