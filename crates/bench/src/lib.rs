//! # sixgen-bench — the experiment harness
//!
//! Regenerates every table and figure of the paper's evaluation (§5.6–§7)
//! against the simulated substrate. Each experiment in [`experiments`]
//! prints the paper-style rows and writes a TSV of the underlying series
//! into a results directory; the `repro` binary dispatches them:
//!
//! ```text
//! cargo run --release -p sixgen-bench --bin repro -- all
//! cargo run --release -p sixgen-bench --bin repro -- fig4 --scale 0.5
//! ```
//!
//! Criterion micro/scaling benches live in `benches/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos;
pub mod experiments;
pub mod pipeline;
pub mod trajectory;

pub use pipeline::{run_world, PrefixRunResult, WorldRun, WorldRunConfig};
