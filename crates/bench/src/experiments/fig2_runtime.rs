//! **Figure 2** — median 6Gen execution time (CPU and wall clock) versus
//! the number of seeds in a routed prefix.
//!
//! The paper ran its C++/OpenMP prototype on a dual 10-core Xeon; absolute
//! times differ here, but the claim under reproduction is the *scaling
//! curve*: runtime grows steeply with seed count and depends on address
//! structure, not just size.

use super::{banner, ExperimentOptions};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sixgen_addr::NybbleAddr;
use sixgen_core::{Config, SixGen};
use sixgen_report::Series;

/// Synthetic routed-prefix seed sets with hosting-provider structure:
/// sequential low bytes spread over a few dozen subnets, plus a small
/// random component.
fn synthetic_seeds(count: usize, rng: &mut StdRng) -> Vec<NybbleAddr> {
    (0..count)
        .map(|i| {
            let subnet = (i % 48) as u128;
            let structured = (i / 48 + 1) as u128;
            let noise: u128 = if i % 7 == 0 {
                rng.gen::<u16>() as u128
            } else {
                0
            };
            NybbleAddr::from_bits((0x2600_3c00u128 << 96) | (subnet << 64) | structured | noise << 16)
        })
        .collect()
}

/// Runs the experiment.
pub fn run(opts: &ExperimentOptions) {
    banner("Figure 2: 6Gen runtime vs number of seeds in a routed prefix");
    let sizes: &[usize] = if opts.quick {
        &[10, 100, 1000]
    } else {
        &[10, 100, 1_000, 10_000, 30_000]
    };
    let repeats = if opts.quick { 1 } else { 3 };
    let mut series = Series::new("fig2_runtime", vec!["seeds", "wall_ms", "cpu_ms"]);
    println!("{:>8}  {:>12}  {:>12}", "seeds", "wall (ms)", "cpu (ms)");
    for &n in sizes {
        let mut walls = Vec::new();
        let mut cpus = Vec::new();
        for rep in 0..repeats {
            let mut rng = StdRng::seed_from_u64(42 + rep);
            let seeds = synthetic_seeds(n, &mut rng);
            let outcome = SixGen::new(
                seeds,
                Config {
                    budget: opts.budget,
                    threads: opts.threads,
                    rng_seed: rep,
                    ..Config::default()
                },
            )
            .run();
            walls.push(outcome.stats.wall_time.as_secs_f64() * 1e3);
            cpus.push(outcome.stats.cpu_time.as_secs_f64() * 1e3);
        }
        walls.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        cpus.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let wall = walls[walls.len() / 2];
        let cpu = cpus[cpus.len() / 2];
        println!("{n:>8}  {wall:>12.2}  {cpu:>12.2}");
        series.push(vec![n as f64, wall, cpu]);
    }
    let path = series
        .write_tsv_file(opts.results_dir())
        .expect("write fig2 tsv");
    println!("series -> {}", path.display());
}
