//! **Robustness extension** — hit rate vs. fault severity, fixed retries
//! vs. adaptive backoff.
//!
//! The paper's scans ran against a network that rate-limits ICMP, drops
//! packets in bursts, and answers from aliased regions (§6.2); ZMap-style
//! immediate retransmissions land inside the same loss burst (and the same
//! drained rate-limit bucket) that ate the original probe. This experiment
//! sweeps a severity knob over a Gilbert–Elliott + per-/48 rate-limit
//! fault stack and scans the same ground-truth hosts twice at an **equal
//! total retransmit budget**: once with immediate retries, once with
//! exponential backoff. Expectation: the adaptive prober's hit rate is at
//! least the fixed-retry prober's at every severity, because backoff lets
//! the loss burst end and the token bucket refill before retransmitting.

use super::{banner, ExperimentOptions};
use sixgen_addr::NybbleAddr;
use sixgen_datasets::world::{build_world, WorldConfig};
use sixgen_obs::MetricsRegistry;
use sixgen_report::{group_digits, Series, TextTable};
use sixgen_simnet::faults::{FaultModel, GilbertElliott, GilbertElliottConfig, IcmpRateLimit};
use sixgen_simnet::{Internet, ProbeConfig, Prober, RetryPolicy, ScanResult};
use std::time::Duration;

/// The fault stack at a given severity (0 = pristine network).
fn stack(severity: u32) -> Vec<Box<dyn FaultModel>> {
    if severity == 0 {
        return Vec::new();
    }
    let s = severity as f64;
    vec![
        // Bursts grow longer and good spells shorter with severity.
        Box::new(
            GilbertElliott::new(GilbertElliottConfig {
                mean_good: Duration::from_secs_f64(2.0 / s),
                mean_bad: Duration::from_secs_f64(0.15 * s),
                loss_good: 0.002 * s,
                loss_bad: 0.9,
            })
            .expect("valid GE config"),
        ),
        // Each /48's ICMP budget shrinks with severity.
        Box::new(IcmpRateLimit::new(48, 4000.0 / s, 400.0 / s).expect("valid rate limit")),
    ]
}

/// Per-fault-model drop attribution for one scan, read back from the
/// prober's `prober/fault/<model>/drop` counters.
#[derive(Debug, Clone, Copy, Default)]
struct DropAttribution {
    /// Packets dropped by the Gilbert–Elliott bursty-loss channel.
    burst: u64,
    /// Packets dropped by the per-/48 ICMP rate limiter.
    rate_limit: u64,
}

/// Scans every active host once through the given retry policy and fault
/// stack, all else equal. Each scan gets a private metrics registry so the
/// fault counters attribute drops to exactly this scan.
fn scan(
    opts: &ExperimentOptions,
    internet: &Internet,
    targets: &[NybbleAddr],
    severity: u32,
    retry: RetryPolicy,
) -> (ScanResult, u64, f64, DropAttribution) {
    let budget = targets.len() as u64 * 3;
    let registry = MetricsRegistry::shared();
    let mut prober = Prober::new(
        internet,
        ProbeConfig {
            retries: 3,
            rate_pps: 2_000,
            rng_seed: 0xFA_0175 ^ severity as u64,
            faults: stack(severity),
            retry,
            retransmit_budget: Some(budget),
            metrics: Some(registry.clone()),
            trace: opts.trace.clone(),
            ..ProbeConfig::default()
        },
    )
    .expect("valid probe config");
    let result = prober.scan(targets.iter().copied(), 80);
    let duration = prober.simulated_duration().as_secs_f64();
    let drops = DropAttribution {
        burst: registry.counter("prober/fault/gilbert_elliott/drop").get(),
        rate_limit: registry.counter("prober/fault/icmp_rate_limit/drop").get(),
    };
    (result, prober.stats().retransmits, duration, drops)
}

/// Runs the experiment.
pub fn run(opts: &ExperimentOptions) {
    banner("robustness: hit rate vs fault severity, immediate vs adaptive retries");
    let internet = build_world(&WorldConfig {
        scale: (opts.scale * 0.25).max(0.05),
        ..WorldConfig::default()
    });
    let mut targets: Vec<NybbleAddr> = internet
        .networks()
        .iter()
        .flat_map(|n| n.active().keys().copied())
        .collect();
    targets.sort_unstable();
    println!(
        "scanning {} ground-truth hosts per severity (equal retransmit budget {})",
        group_digits(targets.len() as u64),
        group_digits(targets.len() as u64 * 3),
    );

    let severities: &[u32] = if opts.quick { &[0, 2, 4] } else { &[0, 1, 2, 3, 4] };
    let mut table = TextTable::new(vec![
        "Severity",
        "Immediate hit rate",
        "Adaptive hit rate",
        "Imm. retransmits",
        "Adpt. retransmits",
        "Imm. burst/rl drops",
        "Adpt. burst/rl drops",
        "Adpt. duration",
    ]);
    let mut series = Series::new(
        "fault_severity",
        vec![
            "severity",
            "immediate_hit_rate",
            "adaptive_hit_rate",
            "immediate_retransmits",
            "adaptive_retransmits",
            "immediate_burst_drops",
            "immediate_ratelimit_drops",
            "adaptive_burst_drops",
            "adaptive_ratelimit_drops",
        ],
    );
    let mut adaptive_never_worse = true;
    for &severity in severities {
        let (imm, imm_rtx, _, imm_drops) =
            scan(opts, &internet, &targets, severity, RetryPolicy::Immediate);
        let (adpt, adpt_rtx, adpt_secs, adpt_drops) = scan(
            opts,
            &internet,
            &targets,
            severity,
            RetryPolicy::ExponentialBackoff {
                base: Duration::from_millis(250),
                cap: Duration::from_secs(8),
            },
        );
        adaptive_never_worse &= adpt.hit_rate() >= imm.hit_rate();
        table.row(vec![
            severity.to_string(),
            format!("{:.1}%", imm.hit_rate() * 100.0),
            format!("{:.1}%", adpt.hit_rate() * 100.0),
            group_digits(imm_rtx),
            group_digits(adpt_rtx),
            format!(
                "{}/{}",
                group_digits(imm_drops.burst),
                group_digits(imm_drops.rate_limit)
            ),
            format!(
                "{}/{}",
                group_digits(adpt_drops.burst),
                group_digits(adpt_drops.rate_limit)
            ),
            format!("{adpt_secs:.1}s"),
        ]);
        series.push(vec![
            severity as f64,
            imm.hit_rate(),
            adpt.hit_rate(),
            imm_rtx as f64,
            adpt_rtx as f64,
            imm_drops.burst as f64,
            imm_drops.rate_limit as f64,
            adpt_drops.burst as f64,
            adpt_drops.rate_limit as f64,
        ]);
    }
    println!("{table}");
    println!(
        "adaptive >= immediate at every severity: {}",
        if adaptive_never_worse { "yes" } else { "NO" },
    );
    let path = series
        .write_tsv_file(opts.results_dir())
        .expect("write fault severity tsv");
    println!("series -> {}", path.display());
}
