//! **Robustness extension** — hit rate vs. fault severity, fixed retries
//! vs. adaptive backoff.
//!
//! The paper's scans ran against a network that rate-limits ICMP, drops
//! packets in bursts, and answers from aliased regions (§6.2); ZMap-style
//! immediate retransmissions land inside the same loss burst (and the same
//! drained rate-limit bucket) that ate the original probe. This experiment
//! sweeps a severity knob over a Gilbert–Elliott + per-/48 rate-limit
//! fault stack and scans the same ground-truth hosts twice at an **equal
//! total retransmit budget**: once with immediate retries, once with
//! exponential backoff. Expectation: the adaptive prober's hit rate is at
//! least the fixed-retry prober's at every severity, because backoff lets
//! the loss burst end and the token bucket refill before retransmitting.

use super::{banner, ExperimentOptions};
use sixgen_addr::NybbleAddr;
use sixgen_datasets::world::{build_world, WorldConfig};
use sixgen_report::{group_digits, Series, TextTable};
use sixgen_simnet::faults::{FaultModel, GilbertElliott, GilbertElliottConfig, IcmpRateLimit};
use sixgen_simnet::{Internet, ProbeConfig, Prober, RetryPolicy, ScanResult};
use std::time::Duration;

/// The fault stack at a given severity (0 = pristine network).
fn stack(severity: u32) -> Vec<Box<dyn FaultModel>> {
    if severity == 0 {
        return Vec::new();
    }
    let s = severity as f64;
    vec![
        // Bursts grow longer and good spells shorter with severity.
        Box::new(
            GilbertElliott::new(GilbertElliottConfig {
                mean_good: Duration::from_secs_f64(2.0 / s),
                mean_bad: Duration::from_secs_f64(0.15 * s),
                loss_good: 0.002 * s,
                loss_bad: 0.9,
            })
            .expect("valid GE config"),
        ),
        // Each /48's ICMP budget shrinks with severity.
        Box::new(IcmpRateLimit::new(48, 4000.0 / s, 400.0 / s).expect("valid rate limit")),
    ]
}

/// Scans every active host once through the given retry policy and fault
/// stack, all else equal.
fn scan(
    internet: &Internet,
    targets: &[NybbleAddr],
    severity: u32,
    retry: RetryPolicy,
) -> (ScanResult, u64, f64) {
    let budget = targets.len() as u64 * 3;
    let mut prober = Prober::new(
        internet,
        ProbeConfig {
            retries: 3,
            rate_pps: 2_000,
            rng_seed: 0xFA_0175 ^ severity as u64,
            faults: stack(severity),
            retry,
            retransmit_budget: Some(budget),
            ..ProbeConfig::default()
        },
    )
    .expect("valid probe config");
    let result = prober.scan(targets.iter().copied(), 80);
    let duration = prober.simulated_duration().as_secs_f64();
    (result, prober.stats().retransmits, duration)
}

/// Runs the experiment.
pub fn run(opts: &ExperimentOptions) {
    banner("robustness: hit rate vs fault severity, immediate vs adaptive retries");
    let internet = build_world(&WorldConfig {
        scale: (opts.scale * 0.25).max(0.05),
        ..WorldConfig::default()
    });
    let mut targets: Vec<NybbleAddr> = internet
        .networks()
        .iter()
        .flat_map(|n| n.active().keys().copied())
        .collect();
    targets.sort_unstable();
    println!(
        "scanning {} ground-truth hosts per severity (equal retransmit budget {})",
        group_digits(targets.len() as u64),
        group_digits(targets.len() as u64 * 3),
    );

    let severities: &[u32] = if opts.quick { &[0, 2, 4] } else { &[0, 1, 2, 3, 4] };
    let mut table = TextTable::new(vec![
        "Severity",
        "Immediate hit rate",
        "Adaptive hit rate",
        "Imm. retransmits",
        "Adpt. retransmits",
        "Adpt. duration",
    ]);
    let mut series = Series::new(
        "fault_severity",
        vec![
            "severity",
            "immediate_hit_rate",
            "adaptive_hit_rate",
            "immediate_retransmits",
            "adaptive_retransmits",
        ],
    );
    let mut adaptive_never_worse = true;
    for &severity in severities {
        let (imm, imm_rtx, _) = scan(&internet, &targets, severity, RetryPolicy::Immediate);
        let (adpt, adpt_rtx, adpt_secs) = scan(
            &internet,
            &targets,
            severity,
            RetryPolicy::ExponentialBackoff {
                base: Duration::from_millis(250),
                cap: Duration::from_secs(8),
            },
        );
        adaptive_never_worse &= adpt.hit_rate() >= imm.hit_rate();
        table.row(vec![
            severity.to_string(),
            format!("{:.1}%", imm.hit_rate() * 100.0),
            format!("{:.1}%", adpt.hit_rate() * 100.0),
            group_digits(imm_rtx),
            group_digits(adpt_rtx),
            format!("{adpt_secs:.1}s"),
        ]);
        series.push(vec![
            severity as f64,
            imm.hit_rate(),
            adpt.hit_rate(),
            imm_rtx as f64,
            adpt_rtx as f64,
        ]);
    }
    println!("{table}");
    println!(
        "adaptive >= immediate at every severity: {}",
        if adaptive_never_worse { "yes" } else { "NO" },
    );
    let path = series
        .write_tsv_file(opts.results_dir())
        .expect("write fault severity tsv");
    println!("series -> {}", path.display());
}
