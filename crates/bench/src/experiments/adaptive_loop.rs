//! **§8 extension** — scanner integration: the offline pipeline (generate
//! everything, then scan, then dealias) versus the adaptive feedback loop
//! ([`sixgen_core::adaptive_scan`]) at the **same probe budget**.
//!
//! Expectation (the paper's motivating argument for integration): the
//! adaptive loop stops probing aliased mirages and cold regions early, so
//! at equal probe counts it finds as many or more real hosts while wasting
//! far fewer probes on aliased space.

use super::{banner, ExperimentOptions};
use crate::pipeline::prepare_seeds;
use crate::pipeline::WorldRunConfig;
use sixgen_addr::Prefix;
use sixgen_core::{adaptive_scan, AdaptiveConfig, Config, RegionFate, SixGen};
use sixgen_datasets::world::{build_world, WorldConfig};
use sixgen_report::{group_digits, percent, Series, TextTable};
use sixgen_simnet::dealias::{detect_aliased, DealiasConfig};
use sixgen_simnet::{ProbeConfig, Prober};
use std::collections::HashSet;

/// Runs the experiment.
pub fn run(opts: &ExperimentOptions) {
    banner("§8 extension: offline pipeline vs scanner-integrated feedback loop");
    let world_cfg = WorldRunConfig {
        world: WorldConfig {
            scale: opts.scale,
            ..WorldConfig::default()
        },
        budget_per_prefix: opts.budget,
        threads: opts.threads,
        ..WorldRunConfig::default()
    };
    let internet = build_world(&world_cfg.world);
    let seeds_by_prefix = prepare_seeds(&internet, &world_cfg);
    let mut prefixes: Vec<Prefix> = seeds_by_prefix.keys().copied().collect();
    prefixes.sort();

    // ---- Offline: generate, scan, dealias (the §6 pipeline). -----------
    let mut offline_prober = Prober::new(&internet, ProbeConfig::default()).expect("valid probe config");
    let mut offline_hits = Vec::new();
    for &prefix in &prefixes {
        let outcome = SixGen::new(
            seeds_by_prefix[&prefix].iter().copied(),
            Config {
                budget: opts.budget,
                threads: opts.threads,
                ..Config::default()
            },
        )
        .run();
        offline_hits.extend(offline_prober.scan(outcome.targets.iter(), 80).hits);
    }
    let report = detect_aliased(
        &mut offline_prober,
        &offline_hits,
        80,
        &DealiasConfig::default(),
    );
    let (offline_clean, offline_aliased) = report.split(offline_hits.iter());
    let offline_probes = offline_prober.stats().packets_sent;

    // ---- Adaptive: same per-prefix probe budget. ------------------------
    let mut adaptive_prober = Prober::new(&internet, ProbeConfig::default()).expect("valid probe config");
    let mut adaptive_clean: Vec<_> = Vec::new();
    let mut adaptive_probes = 0u64;
    let mut aliased_probe_waste = 0u64;
    let mut early_terminated = 0usize;
    let mut aliased_regions = 0usize;
    for &prefix in &prefixes {
        let outcome = adaptive_scan(
            seeds_by_prefix[&prefix].iter().copied(),
            &AdaptiveConfig {
                budget: opts.budget,
                ..AdaptiveConfig::default()
            },
            |addr| adaptive_prober.probe(addr, 80),
        );
        adaptive_probes += outcome.probes_used;
        early_terminated += outcome.early_terminated();
        aliased_regions += outcome.aliased_regions();
        aliased_probe_waste += outcome
            .regions
            .iter()
            .filter(|r| r.fate == RegionFate::Aliased)
            .map(|r| r.probes)
            .sum::<u64>();
        adaptive_clean.extend(outcome.hits);
    }
    // Count only genuinely distinct responsive addresses for both sides.
    let offline_set: HashSet<_> = offline_clean.iter().copied().collect();
    let adaptive_set: HashSet<_> = adaptive_clean.iter().copied().collect();

    let mut table = TextTable::new(vec![
        "Strategy",
        "Probes sent",
        "Dealiased hits",
        "Probes into aliased space",
    ]);
    table.row(vec![
        "offline (generate→scan→dealias)".into(),
        group_digits(offline_probes),
        group_digits(offline_set.len() as u64),
        group_digits(offline_aliased.len() as u64),
    ]);
    table.row(vec![
        "adaptive feedback loop".into(),
        group_digits(adaptive_probes),
        group_digits(adaptive_set.len() as u64),
        group_digits(aliased_probe_waste),
    ]);
    println!("{table}");
    println!(
        "adaptive: {early_terminated} regions early-terminated, {aliased_regions} regions \
         declared aliased mid-scan"
    );
    println!(
        "probe efficiency: offline {} hits/Mprobe vs adaptive {} hits/Mprobe",
        (offline_set.len() as f64 / offline_probes.max(1) as f64 * 1e6).round(),
        (adaptive_set.len() as f64 / adaptive_probes.max(1) as f64 * 1e6).round(),
    );
    println!(
        "aliased-space waste: offline {} vs adaptive {}",
        percent(offline_aliased.len() as u64, offline_probes),
        percent(aliased_probe_waste, adaptive_probes.max(1)),
    );

    let mut series = Series::new(
        "adaptive_loop",
        vec!["adaptive", "probes", "dealiased_hits", "aliased_waste"],
    );
    series.push(vec![
        0.0,
        offline_probes as f64,
        offline_set.len() as f64,
        offline_aliased.len() as f64,
    ]);
    series.push(vec![
        1.0,
        adaptive_probes as f64,
        adaptive_set.len() as f64,
        aliased_probe_waste as f64,
    ]);
    let path = series
        .write_tsv_file(opts.results_dir())
        .expect("write adaptive tsv");
    println!("series -> {}", path.display());
}
