//! **§6.7.1** — seed host type: running 6Gen on name-server seeds only.
//!
//! Shape target: NS-only seeds are far fewer but still discover hosts of
//! other types; the full corpus finds several times more (5× non-aliased,
//! 19× overall in the paper).

use super::{banner, ExperimentOptions};
use crate::pipeline::{run_world, WorldRunConfig};
use sixgen_datasets::world::WorldConfig;
use sixgen_report::{group_digits, Series, TextTable};
use sixgen_simnet::HostKind;

/// Runs the experiment.
pub fn run(opts: &ExperimentOptions) {
    banner("§6.7.1: NS-record seeds only vs the full corpus");
    let mut table = TextTable::new(vec!["Seeds", "Seed count", "Hits raw", "Hits dealiased"]);
    let mut series = Series::new(
        "host_type",
        vec!["ns_only", "seeds", "hits_raw", "hits_dealiased"],
    );
    let mut totals = Vec::new();
    for (kind, label) in [(None, "all records"), (Some(HostKind::NameServer), "NS only")] {
        let run = run_world(&WorldRunConfig {
            world: WorldConfig {
                scale: opts.scale,
                ..WorldConfig::default()
            },
            budget_per_prefix: opts.budget,
            threads: opts.threads,
            seed_kind: kind,
            ..WorldRunConfig::default()
        });
        let seeds: usize = run.seeds_by_prefix.values().map(|v| v.len()).sum();
        table.row(vec![
            label.to_owned(),
            group_digits(seeds as u64),
            group_digits(run.total_hits() as u64),
            group_digits(run.non_aliased_hits.len() as u64),
        ]);
        series.push(vec![
            kind.is_some() as u8 as f64,
            seeds as f64,
            run.total_hits() as f64,
            run.non_aliased_hits.len() as f64,
        ]);
        totals.push((run.total_hits() as f64, run.non_aliased_hits.len() as f64));
    }
    println!("{table}");
    if totals.len() == 2 && totals[1].0 > 0.0 && totals[1].1 > 0.0 {
        println!(
            "full corpus vs NS-only: {:.1}x hits overall, {:.1}x non-aliased \
             (paper: 19x and 5x)",
            totals[0].0 / totals[1].0,
            totals[0].1 / totals[1].1
        );
    }
    let path = series
        .write_tsv_file(opts.results_dir())
        .expect("write host-type tsv");
    println!("series -> {}", path.display());
}
