//! **§6.3** — the tight-versus-loose cluster range design decision.
//!
//! Shape target: loose ranges find slightly more hits both raw (56.7 M vs
//! 55.9 M in the paper) and dealiased (1.0 M vs 973 K); the two modes are
//! close, with loose ahead.

use super::{banner, ExperimentOptions};
use crate::pipeline::{run_world, WorldRunConfig};
use sixgen_core::ClusterMode;
use sixgen_datasets::world::WorldConfig;
use sixgen_report::{group_digits, Series, TextTable};

/// Runs the experiment.
pub fn run(opts: &ExperimentOptions) {
    banner("§6.3: tight vs loose cluster ranges");
    let mut table = TextTable::new(vec!["Mode", "Hits w/o dealias", "Hits w/ dealias"]);
    let mut series = Series::new(
        "tight_vs_loose",
        vec!["is_loose", "hits_raw", "hits_dealiased"],
    );
    for (mode, label) in [(ClusterMode::Loose, "loose"), (ClusterMode::Tight, "tight")] {
        let run = run_world(&WorldRunConfig {
            world: WorldConfig {
                scale: opts.scale,
                ..WorldConfig::default()
            },
            budget_per_prefix: opts.budget,
            threads: opts.threads,
            mode,
            ..WorldRunConfig::default()
        });
        table.row(vec![
            label.to_owned(),
            group_digits(run.total_hits() as u64),
            group_digits(run.non_aliased_hits.len() as u64),
        ]);
        series.push(vec![
            (mode == ClusterMode::Loose) as u8 as f64,
            run.total_hits() as f64,
            run.non_aliased_hits.len() as f64,
        ]);
    }
    println!("{table}");
    let path = series
        .write_tsv_file(opts.results_dir())
        .expect("write tight-vs-loose tsv");
    println!("series -> {}", path.display());
}
