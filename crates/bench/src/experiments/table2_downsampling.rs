//! **Table 2** — seed downsampling (§6.7.2): hits when 6Gen runs on 1 %,
//! 10 %, 25 %, and 100 % of the seed corpus.
//!
//! Shape target: the hit decrease is *not* commensurate with the
//! downsampling rate (e.g. 10 % of seeds still recovered 71 % of the
//! dealiased hits in the paper).

use super::{banner, ExperimentOptions};
use crate::pipeline::{run_world, WorldRunConfig};
use sixgen_datasets::world::WorldConfig;
use sixgen_report::{group_digits, percent, Series, TextTable};

/// Runs the experiment.
pub fn run(opts: &ExperimentOptions) {
    banner("Table 2: seed downsampling");
    let levels: &[(f64, &str)] = if opts.quick {
        &[(0.10, "10%"), (1.0, "100%")]
    } else {
        &[(0.01, "1%"), (0.10, "10%"), (0.25, "25%"), (1.0, "100%")]
    };
    let mut rows: Vec<(String, u64, u64)> = Vec::new();
    for &(fraction, label) in levels {
        let run = run_world(&WorldRunConfig {
            world: WorldConfig {
                scale: opts.scale,
                ..WorldConfig::default()
            },
            budget_per_prefix: opts.budget,
            threads: opts.threads,
            downsample: if fraction >= 1.0 { None } else { Some(fraction) },
            ..WorldRunConfig::default()
        });
        rows.push((
            label.to_owned(),
            run.total_hits() as u64,
            run.non_aliased_hits.len() as u64,
        ));
    }
    let (full_raw, full_clean) = {
        let last = rows.last().expect("at least the 100% level");
        (last.1, last.2)
    };
    let mut table = TextTable::new(vec![
        "Downsampling",
        "Hits w/o dealias",
        "% vs all",
        "Hits w/ dealias",
        "% vs all",
    ]);
    let mut series = Series::new(
        "table2_downsampling",
        vec!["fraction", "hits_raw", "hits_dealiased"],
    );
    for (i, (label, raw, clean)) in rows.iter().enumerate() {
        table.row(vec![
            label.clone(),
            group_digits(*raw),
            percent(*raw, full_raw),
            group_digits(*clean),
            percent(*clean, full_clean),
        ]);
        series.push(vec![levels[i].0, *raw as f64, *clean as f64]);
    }
    println!("{table}");
    let path = series
        .write_tsv_file(opts.results_dir())
        .expect("write table2 tsv");
    println!("series -> {}", path.display());
}
