//! **Figures 8 and 9** — 6Gen versus Entropy/IP on the five CDN datasets.
//!
//! Figure 8: train-and-test — train each algorithm on a random 1 K group
//! and measure the fraction of the remaining 9 K addresses its targets
//! cover, across a budget sweep. Figure 9: active scans — probe each
//! algorithm's targets against the CDN's ground truth and count hits,
//! with and without alias filtering.
//!
//! Shape targets from the paper: 6Gen ≥ Entropy/IP everywhere (1.04–7.95×
//! on train-and-test at 1 M); both fail on CDN 1; both > 88 % on
//! CDNs 4–5 with 6Gen > 99 % on CDN 4; CDN 4 is elided from the filtered
//! scan comparison because it aliases extensively; 6Gen's curves may jump
//! (greedy region commits) while Entropy/IP's are smoother.

use super::{banner, ExperimentOptions};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sixgen_addr::NybbleAddr;
use sixgen_core::{Config, SixGen};
use sixgen_datasets::{cdn_internet, cdn_seed_sample, inverse_kfold, split_groups, Cdn};
use sixgen_entropy_ip::{EntropyIpConfig, EntropyIpModel};
use sixgen_report::{percent, Series};
use sixgen_simnet::dealias::{detect_aliased, DealiasConfig};
use sixgen_simnet::{Internet, ProbeConfig, Prober};
use std::collections::HashSet;

/// Which algorithm produced a target list.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Algo {
    SixGen,
    EntropyIp,
}

impl Algo {
    fn label(self) -> &'static str {
        match self {
            Algo::SixGen => "6Gen",
            Algo::EntropyIp => "E/IP",
        }
    }
}

fn generate_targets(
    algo: Algo,
    train: &[NybbleAddr],
    budget: u64,
    rng_seed: u64,
) -> Vec<NybbleAddr> {
    match algo {
        Algo::SixGen => SixGen::new(
            train.iter().copied(),
            Config {
                budget,
                rng_seed,
                threads: 0,
                ..Config::default()
            },
        )
        .run()
        .targets
        .into_vec(),
        Algo::EntropyIp => {
            let model = EntropyIpModel::fit(train, &EntropyIpConfig::default());
            let mut rng = StdRng::seed_from_u64(rng_seed);
            model.generate(budget as usize, &mut rng)
        }
    }
}

struct CdnWorld {
    cdn: Cdn,
    internet: Internet,
    folds: Vec<(Vec<NybbleAddr>, Vec<NybbleAddr>)>,
}

fn build_cdns(opts: &ExperimentOptions, folds_wanted: usize) -> Vec<CdnWorld> {
    let host_count = if opts.quick { 6_000 } else { 25_000 };
    let sample_size = if opts.quick { 3_000 } else { 10_000 };
    Cdn::ALL
        .iter()
        .map(|&cdn| {
            let internet = cdn_internet(cdn, host_count, 0xCD0 + cdn as u64);
            let mut rng = StdRng::seed_from_u64(0x5A17 + cdn as u64);
            let sample = cdn_seed_sample(&internet, sample_size, &mut rng);
            let groups = split_groups(&sample, 10, &mut rng);
            let mut folds = inverse_kfold(&groups);
            folds.truncate(folds_wanted);
            CdnWorld {
                cdn,
                internet,
                folds,
            }
        })
        .collect()
}

/// Figure 8: the train-and-test evaluation.
pub fn run_train_test(opts: &ExperimentOptions) {
    banner("Figure 8: train-and-test fraction of test addresses found");
    let budgets: Vec<u64> = if opts.quick {
        vec![20_000, 100_000]
    } else {
        vec![50_000, 100_000, 200_000, 500_000, 1_000_000]
    };
    let folds = if opts.quick { 1 } else { 3 };
    let worlds = build_cdns(opts, folds);

    let mut columns: Vec<String> = vec!["budget".into()];
    for cdn in Cdn::ALL {
        for algo in [Algo::SixGen, Algo::EntropyIp] {
            columns.push(format!(
                "{}_{}",
                algo.label().to_lowercase().replace('/', ""),
                cdn.label().to_lowercase().replace(' ', "")
            ));
        }
    }
    let mut series = Series::new("fig8_train_test", columns);

    println!("fraction of 9K test addresses covered (mean over {folds} fold(s))\n");
    print!("{:>10}", "budget");
    for cdn in Cdn::ALL {
        print!("  {:>7}·6G  {:>6}·EIP", cdn.label(), "");
    }
    println!();
    for &budget in &budgets {
        let mut row = vec![budget as f64];
        print!("{budget:>10}");
        for world in &worlds {
            let mut fractions = [0.0f64; 2];
            for (algo_idx, algo) in [Algo::SixGen, Algo::EntropyIp].iter().enumerate() {
                let mut sum = 0.0;
                for (fold_idx, (train, test)) in world.folds.iter().enumerate() {
                    let targets = generate_targets(
                        *algo,
                        train,
                        budget,
                        0xF18 ^ budget ^ fold_idx as u64,
                    );
                    let target_set: HashSet<NybbleAddr> = targets.into_iter().collect();
                    let found = test.iter().filter(|t| target_set.contains(t)).count();
                    sum += found as f64 / test.len() as f64;
                }
                fractions[algo_idx] = sum / world.folds.len() as f64;
            }
            print!("  {:>10.4}  {:>10.4}", fractions[0], fractions[1]);
            row.extend_from_slice(&fractions);
        }
        println!();
        series.push(row);
    }
    let path = series
        .write_tsv_file(opts.results_dir())
        .expect("write fig8 tsv");
    println!("\nseries -> {}", path.display());
    summarize_advantage(&series);
}

fn summarize_advantage(series: &Series) {
    // Report the 6Gen-vs-E/IP ratio at the largest budget per CDN (the
    // paper's headline: 1.04–7.95x, excluding CDN 1).
    let Some(last) = series.rows().last() else {
        return;
    };
    println!("6Gen / Entropy-IP recovery ratio at the largest budget:");
    for (i, cdn) in Cdn::ALL.iter().enumerate() {
        let six = last[1 + 2 * i];
        let eip = last[2 + 2 * i];
        if eip > 0.0 {
            println!("  {}: {:.2}x", cdn.label(), six / eip);
        } else {
            println!("  {}: E/IP found nothing (6Gen {:.4})", cdn.label(), six);
        }
    }
}

/// Figure 9: active scans of each algorithm's predictions.
pub fn run_active_scans(opts: &ExperimentOptions) {
    banner("Figure 9: TCP/80 hits on CDN networks, raw and alias-filtered");
    let budgets: Vec<u64> = if opts.quick {
        vec![20_000, 100_000]
    } else {
        vec![50_000, 100_000, 200_000, 500_000, 1_000_000]
    };
    let worlds = build_cdns(opts, 1);

    let mut columns: Vec<String> = vec!["budget".into()];
    for cdn in Cdn::ALL {
        for algo in ["6g", "eip"] {
            for kind in ["raw", "filtered"] {
                columns.push(format!(
                    "{}_{}_{}",
                    algo,
                    cdn.label().to_lowercase().replace(' ', ""),
                    kind
                ));
            }
        }
    }
    let mut series = Series::new("fig9_active_scans", columns);

    for &budget in &budgets {
        let mut row = vec![budget as f64];
        println!("\nbudget {budget}:");
        for world in &worlds {
            let (train, _) = &world.folds[0];
            for algo in [Algo::SixGen, Algo::EntropyIp] {
                let targets = generate_targets(algo, train, budget, 0xF19 ^ budget);
                let mut prober = Prober::new(
                    &world.internet,
                    ProbeConfig {
                        rng_seed: 0x9A5 ^ budget,
                        ..ProbeConfig::default()
                    },
                )
                .expect("valid probe config");
                let scan = prober.scan(targets, 80);
                let report = detect_aliased(
                    &mut prober,
                    &scan.hits,
                    80,
                    &DealiasConfig::default(),
                );
                let (clean, aliased) = report.split(scan.hits.iter());
                println!(
                    "  {:<6} {:<5} raw {:>8}  aliased {:>8} ({})  filtered {:>8}",
                    world.cdn.label(),
                    algo.label(),
                    scan.hits.len(),
                    aliased.len(),
                    percent(aliased.len() as u64, scan.hits.len().max(1) as u64),
                    clean.len(),
                );
                row.push(scan.hits.len() as f64);
                row.push(clean.len() as f64);
            }
        }
        series.push(row);
    }
    let path = series
        .write_tsv_file(opts.results_dir())
        .expect("write fig9 tsv");
    println!("\nseries -> {}", path.display());
    println!(
        "note: the paper elides CDN 1 (no hits for either algorithm) and drops \
         CDN 4 from the filtered comparison (extensively aliased)."
    );
}

/// Runs both halves.
pub fn run(opts: &ExperimentOptions) {
    run_train_test(opts);
    run_active_scans(opts);
}
