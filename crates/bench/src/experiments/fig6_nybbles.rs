//! **Figure 6** — for each nybble index, the portion of routed prefixes
//! that have any cluster range with that nybble dynamic.
//!
//! Shape target: two modes — one across nybbles 9–16 (the subnet half of
//! the RFC 2460 64-bit network identifier) and one past nybble 29 (the
//! RFC 7707 low-order-bits practice).

use super::{banner, ExperimentOptions};
use crate::pipeline::WorldRun;
use sixgen_addr::NYBBLE_COUNT;
use sixgen_report::Series;

/// Runs the experiment against an existing pipeline run.
pub fn run(opts: &ExperimentOptions, run: &WorldRun) {
    banner("Figure 6: portion of routed prefixes with each nybble dynamic");
    let mut dynamic_prefixes = [0u64; NYBBLE_COUNT];
    let mut total_prefixes = 0u64;
    for result in &run.results {
        if result.clusters.is_empty() {
            continue;
        }
        total_prefixes += 1;
        let mut profile = [false; NYBBLE_COUNT];
        for cluster in &result.clusters {
            for (i, slot) in profile.iter_mut().enumerate() {
                if !cluster.range.set(i).is_single() {
                    *slot = true;
                }
            }
        }
        for (i, &dynamic) in profile.iter().enumerate() {
            if dynamic {
                dynamic_prefixes[i] += 1;
            }
        }
    }

    let mut series = Series::new("fig6_nybbles", vec!["nybble_index", "portion"]);
    println!("{:>12}  {:>8}  bar", "nybble", "portion");
    for (i, &count) in dynamic_prefixes.iter().enumerate() {
        let portion = count as f64 / total_prefixes.max(1) as f64;
        // The paper's x-axis is 1-based.
        let index = i + 1;
        let bar = "#".repeat((portion * 40.0).round() as usize);
        println!("{index:>12}  {portion:>8.3}  {bar}");
        series.push(vec![index as f64, portion]);
    }
    let path = series
        .write_tsv_file(opts.results_dir())
        .expect("write fig6 tsv");
    println!("series -> {}", path.display());
}
