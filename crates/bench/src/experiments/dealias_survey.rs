//! **§6.2** — the aliasing survey: how many hit-bearing /96 prefixes are
//! aliased, how concentrated aliasing is across ASes, and the /112
//! refinement.
//!
//! Shape targets: the overwhelming majority of hit-bearing /96es test
//! aliased (98 % in the paper); aliasing concentrates in very few ASes
//! (140 of 7,421 — 1.9 %); nearly all aliased hits sit in a handful of
//! ASes; the /112-granularity aliasers are invisible to the /96 test and
//! are caught only by the per-AS refinement.

use super::{banner, ExperimentOptions};
use crate::pipeline::{run_world, WorldRunConfig};
use sixgen_datasets::world::WorldConfig;
use sixgen_report::{percent, Series, TextTable};
use std::collections::HashSet;

/// Runs the experiment.
pub fn run(opts: &ExperimentOptions) {
    banner("§6.2: alias survey at /96 granularity plus /112 refinement");
    let run = run_world(&WorldRunConfig {
        world: WorldConfig {
            scale: opts.scale,
            ..WorldConfig::default()
        },
        budget_per_prefix: opts.budget,
        threads: opts.threads,
        ..WorldRunConfig::default()
    });

    let report = &run.alias_report;
    println!(
        "hit-bearing /96 prefixes tested: {}   aliased: {} ({})",
        report.tested,
        report.aliased.len(),
        percent(report.aliased.len() as u64, report.tested),
    );
    println!("alias-detection probes: {}", report.probes);

    // AS concentration of aliasing.
    let aliased_asns: HashSet<u32> = run
        .aliased_hits
        .iter()
        .filter_map(|h| run.internet.table().lookup(*h).map(|e| e.asn))
        .collect();
    let all_asns: HashSet<u32> = run
        .internet
        .networks()
        .iter()
        .map(|n| n.spec().asn)
        .collect();
    println!(
        "ASes with aliased hits: {} of {} ({})",
        aliased_asns.len(),
        all_asns.len(),
        percent(aliased_asns.len() as u64, all_asns.len() as u64),
    );
    println!(
        "/112-refined ASes (caught only by the per-AS pass): {:?}",
        run.refined_asns
            .iter()
            .map(|&a| run.internet.registry().name(a))
            .collect::<Vec<_>>()
    );

    // Cumulative share of aliased hits in the top ASes.
    let counts = run.count_by_asn(run.aliased_hits.iter());
    let mut sorted: Vec<(u32, u64)> = counts.into_iter().collect();
    sorted.sort_by_key(|&(asn, c)| (std::cmp::Reverse(c), asn));
    let total: u64 = sorted.iter().map(|&(_, c)| c).sum();
    let mut table = TextTable::new(vec!["Rank", "AS", "Aliased hits", "Cumulative"]);
    let mut series = Series::new("dealias_concentration", vec!["rank", "cumulative_share"]);
    let mut acc = 0u64;
    for (rank, (asn, count)) in sorted.iter().take(8).enumerate() {
        acc += count;
        table.row(vec![
            (rank + 1).to_string(),
            run.internet.registry().name(*asn),
            count.to_string(),
            percent(acc, total),
        ]);
        series.push(vec![(rank + 1) as f64, acc as f64 / total.max(1) as f64]);
    }
    println!("{table}");
    let path = series
        .write_tsv_file(opts.results_dir())
        .expect("write dealias tsv");
    println!("series -> {}", path.display());
}
