//! **Figure 5 (a/b)** — CDFs of the number of singleton and grown clusters
//! 6Gen outputs, for routed prefixes bucketed by seed count.
//!
//! Shape targets: only a small share of prefixes with ≥ 10 seeds end with
//! zero grown clusters; cluster counts are small relative to seed counts
//! (6Gen merges most seeds into few clusters).

use super::{banner, ExperimentOptions};
use crate::pipeline::WorldRun;
use sixgen_report::{bucket_label, log_bucket, percent, Cdf, Series};
use std::collections::BTreeMap;

/// Runs the experiment against an existing pipeline run.
pub fn run(opts: &ExperimentOptions, run: &WorldRun) {
    banner("Figure 5: singleton / grown cluster counts per routed prefix");
    let mut singleton_by_bucket: BTreeMap<u32, Vec<u64>> = BTreeMap::new();
    let mut grown_by_bucket: BTreeMap<u32, Vec<u64>> = BTreeMap::new();
    for result in &run.results {
        let Some(bucket) = log_bucket(result.seed_count as u64) else {
            continue;
        };
        let singles = result
            .clusters
            .iter()
            .filter(|c| c.is_singleton())
            .count() as u64;
        let grown = result.clusters.len() as u64 - singles;
        singleton_by_bucket.entry(bucket).or_default().push(singles);
        grown_by_bucket.entry(bucket).or_default().push(grown);
    }

    for (what, buckets, name) in [
        ("singleton", &singleton_by_bucket, "fig5a_singletons"),
        ("grown", &grown_by_bucket, "fig5b_grown"),
    ] {
        println!("\n({what} clusters)");
        println!(
            "{:<12} {:>8} {:>10} {:>10} {:>10} {:>16}",
            "seeds/prefix", "prefixes", "median", "p90", "max", "zero-grown share"
        );
        let mut series = Series::new(name, vec!["bucket", "clusters", "cdf"]);
        for (&bucket, counts) in buckets {
            let cdf = Cdf::from_counts(counts.iter().copied());
            let zero = counts.iter().filter(|&&c| c == 0).count();
            println!(
                "{:<12} {:>8} {:>10} {:>10} {:>10} {:>16}",
                bucket_label(bucket),
                counts.len(),
                cdf.quantile(0.5),
                cdf.quantile(0.9),
                cdf.quantile(1.0),
                percent(zero as u64, counts.len() as u64),
            );
            for (value, frac) in cdf.steps() {
                series.push(vec![bucket as f64, value, frac]);
            }
        }
        let path = series
            .write_tsv_file(opts.results_dir())
            .expect("write fig5 tsv");
        println!("series -> {}", path.display());
    }
}
