//! **Table 1 (a/b/c) and Figure 3** — the AS-level distribution of seed
//! addresses, aliased hits, and non-aliased hits.
//!
//! Shape targets from the paper: seeds are not heavily skewed toward any
//! AS (top AS < 10 %); aliased hits concentrate massively in a few CDN
//! ASes (Akamai + Amazon together ≈ 88 %); dealiased hits concentrate in
//! hosting providers and are slightly more skewed than the seeds.

use super::{banner, ExperimentOptions};
use crate::pipeline::{run_world, WorldRun, WorldRunConfig};
use sixgen_datasets::world::WorldConfig;
use sixgen_report::{percent, Series, TextTable};
use std::collections::HashMap;

fn top_table(run: &WorldRun, counts: &HashMap<u32, u64>, what: &str) -> TextTable {
    let total: u64 = counts.values().sum();
    let mut rows: Vec<(u32, u64)> = counts.iter().map(|(&a, &c)| (a, c)).collect();
    rows.sort_by_key(|&(asn, c)| (std::cmp::Reverse(c), asn));
    let mut table = TextTable::new(vec!["AS Name", "ASN", what]);
    for (asn, count) in rows.into_iter().take(10) {
        table.row(vec![
            run.internet.registry().name(asn),
            asn.to_string(),
            percent(count, total),
        ]);
    }
    table
}

/// Emits the Figure 3 CDF: ASNs ordered by descending address count, with
/// the cumulative fraction of addresses.
fn cdf_series(counts: &HashMap<u32, u64>, name: &str) -> Series {
    let mut values: Vec<u64> = counts.values().copied().collect();
    values.sort_unstable_by_key(|&v| std::cmp::Reverse(v));
    let total: u64 = values.iter().sum();
    let mut series = Series::new(name, vec!["asn_rank", "cdf_of_addresses"]);
    let mut acc = 0u64;
    for (rank, v) in values.iter().enumerate() {
        acc += v;
        series.push(vec![(rank + 1) as f64, acc as f64 / total.max(1) as f64]);
    }
    series
}

/// Runs the experiment. Returns the pipeline run so `repro all` can reuse
/// it for Figures 5–7.
pub fn run(opts: &ExperimentOptions) -> WorldRun {
    banner("Table 1 / Figure 3: seeds, aliased hits, and dealiased hits by AS");
    let cfg = WorldRunConfig {
        world: WorldConfig {
            scale: opts.scale,
            ..WorldConfig::default()
        },
        budget_per_prefix: opts.budget,
        threads: opts.threads,
        metrics: opts.metrics.clone(),
        trace: opts.trace.clone(),
        ..WorldRunConfig::default()
    };
    let run = run_world(&cfg);
    print_tables(opts, &run);
    run
}

/// Prints tables/series for an existing run (shared with `repro all`).
pub fn print_tables(opts: &ExperimentOptions, run: &WorldRun) {
    let seeds: Vec<_> = run
        .seeds_by_prefix
        .values()
        .flat_map(|v| v.iter().copied())
        .collect();
    let seed_counts = run.count_by_asn(seeds.iter());
    let aliased_counts = run.count_by_asn(run.aliased_hits.iter());
    let clean_counts = run.count_by_asn(run.non_aliased_hits.iter());

    println!(
        "\nseeds: {}   raw hits: {}   aliased: {} ({})   non-aliased: {}",
        seeds.len(),
        run.total_hits(),
        run.aliased_hits.len(),
        percent(run.aliased_hits.len() as u64, run.total_hits() as u64),
        run.non_aliased_hits.len(),
    );
    println!(
        "/112-refined (excluded) ASes: {:?}\n",
        run.refined_asns
    );

    println!("(a) Seed Addresses");
    println!("{}", top_table(run, &seed_counts, "% Seeds"));
    println!("(b) Aliased Hits");
    println!("{}", top_table(run, &aliased_counts, "% Hits"));
    println!("(c) Non-Aliased Hits");
    println!("{}", top_table(run, &clean_counts, "% Hits"));

    for (counts, name) in [
        (&seed_counts, "fig3_seeds_cdf"),
        (&aliased_counts, "fig3_aliased_cdf"),
        (&clean_counts, "fig3_nonaliased_cdf"),
    ] {
        let path = cdf_series(counts, name)
            .write_tsv_file(opts.results_dir())
            .expect("write fig3 tsv");
        println!("series -> {}", path.display());
    }
}
