//! One module per paper table/figure. Every experiment prints the
//! paper-style rows to stdout and writes TSV series into a results
//! directory.

pub mod adaptive_loop;
pub mod budget_policy;
pub mod cdn_compare;
pub mod dealias_survey;
pub mod eip_ranked;
pub mod fault_severity;
pub mod fig2_runtime;
pub mod fig4_budget;
pub mod fig5_clusters;
pub mod fig6_nybbles;
pub mod fig7_hits;
pub mod host_type;
pub mod table1_ases;
pub mod table2_downsampling;
pub mod tight_vs_loose;

use sixgen_obs::{MetricsRegistry, TraceSink};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Shared experiment options (from the `repro` command line).
#[derive(Debug, Clone)]
pub struct ExperimentOptions {
    /// World scale multiplier (1.0 = default world, ≈40 K hosts).
    pub scale: f64,
    /// Per-prefix probe budget for the world experiments.
    pub budget: u64,
    /// Output directory for TSV series.
    pub results_dir: PathBuf,
    /// Quick mode: fewer sweep points / folds, for smoke runs.
    pub quick: bool,
    /// Worker threads for 6Gen.
    pub threads: usize,
    /// Optional metrics sink (`repro --metrics-out`); experiments that run
    /// the pipeline or the engine thread it through so one registry
    /// aggregates the whole invocation.
    pub metrics: Option<Arc<MetricsRegistry>>,
    /// Optional trace sink (`repro --trace-out` / `--trace-summary`);
    /// threaded into pipeline and engine runs like `metrics`, and used by
    /// the `repro` driver to wrap each experiment in a span.
    pub trace: Option<Arc<TraceSink>>,
}

impl Default for ExperimentOptions {
    fn default() -> Self {
        ExperimentOptions {
            scale: 1.0,
            budget: 50_000,
            results_dir: PathBuf::from("results"),
            quick: false,
            threads: 0,
            metrics: None,
            trace: None,
        }
    }
}

impl ExperimentOptions {
    /// The results directory as a path.
    pub fn results_dir(&self) -> &Path {
        &self.results_dir
    }
}

/// Prints a section header.
pub(crate) fn banner(title: &str) {
    println!();
    println!("================================================================");
    println!("{title}");
    println!("================================================================");
}

/// Prints the closing summary.
pub fn banner_done(opts: &ExperimentOptions) {
    println!();
    println!(
        "done. TSV series in {} (scale {}, budget {}/prefix{})",
        opts.results_dir.display(),
        opts.scale,
        opts.budget,
        if opts.quick { ", quick mode" } else { "" }
    );
}
