//! **§8 extension** — budget allocation policies across routed prefixes.
//!
//! The paper scans every prefix with the same budget and asks: "it might be
//! natural to allocate budgets differently … dependent on the number of
//! seeds within, or the size of the prefix itself. This may heavily skew
//! the target generation towards denser networks though, trading off
//! diversity for number of active addresses found."
//!
//! This ablation fixes the *total* budget and compares four division
//! policies, reporting both yield (dealiased hits) and diversity (prefixes
//! with at least one hit).

use super::{banner, ExperimentOptions};
use crate::pipeline::{prepare_seeds, WorldRunConfig};
use sixgen_addr::Prefix;
use sixgen_core::{Config, SixGen};
use sixgen_datasets::world::{build_world, WorldConfig};
use sixgen_report::{group_digits, Series, TextTable};
use sixgen_simnet::dealias::{detect_aliased, DealiasConfig};
use sixgen_simnet::{ProbeConfig, Prober};
use std::collections::HashSet;

/// How the total probe budget is divided across routed prefixes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BudgetPolicy {
    /// Equal share per prefix (the paper's setup).
    Uniform,
    /// Proportional to the prefix's seed count.
    ProportionalToSeeds,
    /// Proportional to the square root of the seed count — a middle ground
    /// that softens the skew toward dense networks.
    SqrtSeeds,
    /// Proportional to the announced prefix's size in log scale
    /// (128 − prefix length).
    LogPrefixSize,
}

impl BudgetPolicy {
    /// All policies, in presentation order.
    pub const ALL: [BudgetPolicy; 4] = [
        BudgetPolicy::Uniform,
        BudgetPolicy::ProportionalToSeeds,
        BudgetPolicy::SqrtSeeds,
        BudgetPolicy::LogPrefixSize,
    ];

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            BudgetPolicy::Uniform => "uniform",
            BudgetPolicy::ProportionalToSeeds => "∝ seeds",
            BudgetPolicy::SqrtSeeds => "∝ sqrt(seeds)",
            BudgetPolicy::LogPrefixSize => "∝ log(prefix size)",
        }
    }

    /// Divides `total` across prefixes by this policy. Every prefix gets
    /// at least its seed count (the seeds themselves are always probed).
    pub fn divide(self, total: u64, prefixes: &[(Prefix, usize)]) -> Vec<u64> {
        let weight = |&(prefix, seeds): &(Prefix, usize)| -> f64 {
            match self {
                BudgetPolicy::Uniform => 1.0,
                BudgetPolicy::ProportionalToSeeds => seeds as f64,
                BudgetPolicy::SqrtSeeds => (seeds as f64).sqrt(),
                BudgetPolicy::LogPrefixSize => (128 - prefix.len()) as f64,
            }
        };
        let total_weight: f64 = prefixes.iter().map(weight).sum();
        prefixes
            .iter()
            .map(|entry| {
                let share = (total as f64 * weight(entry) / total_weight).round() as u64;
                share.max(entry.1 as u64)
            })
            .collect()
    }
}

/// Runs the ablation.
pub fn run(opts: &ExperimentOptions) {
    banner("§8 extension: budget allocation policies (fixed total budget)");
    let world_cfg = WorldRunConfig {
        world: WorldConfig {
            scale: opts.scale,
            ..WorldConfig::default()
        },
        budget_per_prefix: opts.budget,
        threads: opts.threads,
        ..WorldRunConfig::default()
    };
    let internet = build_world(&world_cfg.world);
    let seeds_by_prefix = prepare_seeds(&internet, &world_cfg);
    let mut prefixes: Vec<(Prefix, usize)> = seeds_by_prefix
        .iter()
        .map(|(&p, v)| (p, v.len()))
        .collect();
    prefixes.sort();
    let total_budget = opts.budget * prefixes.len() as u64;
    println!(
        "total budget {} over {} prefixes\n",
        group_digits(total_budget),
        prefixes.len()
    );

    let mut table = TextTable::new(vec![
        "Policy",
        "Dealiased hits",
        "Prefixes w/ hits",
        "Targets generated",
    ]);
    let mut series = Series::new(
        "budget_policy",
        vec!["policy", "dealiased_hits", "prefixes_with_hits"],
    );
    for (policy_index, policy) in BudgetPolicy::ALL.iter().enumerate() {
        let shares = policy.divide(total_budget, &prefixes);
        let mut prober = Prober::new(&internet, ProbeConfig::default()).expect("valid probe config");
        let mut all_hits = Vec::new();
        let mut hits_per_prefix: Vec<(Prefix, Vec<_>)> = Vec::new();
        let mut generated = 0u64;
        for (&(prefix, _), &share) in prefixes.iter().zip(shares.iter()) {
            let outcome = SixGen::new(
                seeds_by_prefix[&prefix].iter().copied(),
                Config {
                    budget: share,
                    threads: opts.threads,
                    ..Config::default()
                },
            )
            .run();
            generated += outcome.targets.len() as u64;
            let scan = prober.scan(outcome.targets.iter(), 80);
            all_hits.extend(scan.hits.iter().copied());
            hits_per_prefix.push((prefix, scan.hits));
        }
        let report = detect_aliased(&mut prober, &all_hits, 80, &DealiasConfig::default());
        let clean: HashSet<_> = report.split(all_hits.iter()).0.into_iter().collect();
        let diversity = hits_per_prefix
            .iter()
            .filter(|(_, hits)| hits.iter().any(|h| clean.contains(h)))
            .count();
        table.row(vec![
            policy.label().to_owned(),
            group_digits(clean.len() as u64),
            format!("{diversity}/{}", prefixes.len()),
            group_digits(generated),
        ]);
        series.push(vec![policy_index as f64, clean.len() as f64, diversity as f64]);
    }
    println!("{table}");
    let path = series
        .write_tsv_file(opts.results_dir())
        .expect("write budget-policy tsv");
    println!("series -> {}", path.display());
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn uniform_divides_equally() {
        let prefixes = vec![(p("2001:db8::/32"), 10), (p("2600::/32"), 1000)];
        let shares = BudgetPolicy::Uniform.divide(10_000, &prefixes);
        assert_eq!(shares, vec![5_000, 5_000]);
    }

    #[test]
    fn proportional_skews_to_seed_rich() {
        let prefixes = vec![(p("2001:db8::/32"), 100), (p("2600::/32"), 900)];
        let shares = BudgetPolicy::ProportionalToSeeds.divide(10_000, &prefixes);
        assert_eq!(shares, vec![1_000, 9_000]);
    }

    #[test]
    fn sqrt_softens_the_skew() {
        let prefixes = vec![(p("2001:db8::/32"), 100), (p("2600::/32"), 900)];
        let shares = BudgetPolicy::SqrtSeeds.divide(10_000, &prefixes);
        // sqrt ratio 10:30 → 2500 / 7500, between uniform and proportional.
        assert_eq!(shares, vec![2_500, 7_500]);
    }

    #[test]
    fn log_prefix_size_favors_short_prefixes() {
        let prefixes = vec![(p("2000::/20"), 10), (p("2600::/48"), 10)];
        let shares = BudgetPolicy::LogPrefixSize.divide(1_880, &prefixes);
        // Weights 108 vs 80.
        assert_eq!(shares, vec![1_080, 800]);
    }

    #[test]
    fn every_prefix_keeps_at_least_its_seeds() {
        let prefixes = vec![(p("2001:db8::/32"), 500), (p("2600::/32"), 2)];
        let shares = BudgetPolicy::ProportionalToSeeds.divide(600, &prefixes);
        assert!(shares[1] >= 2, "starved prefix: {shares:?}");
        assert!(shares[0] >= 500);
    }
}
