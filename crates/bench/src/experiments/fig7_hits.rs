//! **Figure 7** — the distribution of TCP/80 hits per routed prefix,
//! bucketed by the number of seeds in the prefix, plus the §6.6 churn
//! check (hits minus inactive seeds).
//!
//! Shape targets: hits correlate positively with seed counts; a majority
//! of prefixes with > 10 seeds have hits; for a meaningful share of
//! prefixes, hits exceed the count of now-inactive seeds, so 6Gen is not
//! merely rediscovering churned hosts.

use super::{banner, ExperimentOptions};
use crate::pipeline::WorldRun;
use sixgen_addr::Prefix;
use sixgen_report::{bucket_label, log_bucket, percent, quantiles, Series};
use std::collections::{BTreeMap, HashMap, HashSet};

/// Runs the experiment against an existing pipeline run. Hits are counted
/// post-dealiasing (the paper's Figure 7 uses dealiased hits; aliased /96
/// regions count as zero).
pub fn run(opts: &ExperimentOptions, run: &WorldRun) {
    banner("Figure 7: dealiased hits per routed prefix, by seed count");
    // Dealiased hits per prefix.
    let clean: HashSet<_> = run.non_aliased_hits.iter().copied().collect();
    let mut hits_by_prefix: HashMap<Prefix, u64> = HashMap::new();
    for result in &run.results {
        let clean_hits = result.hits.iter().filter(|h| clean.contains(h)).count() as u64;
        hits_by_prefix.insert(result.prefix, clean_hits);
    }

    let mut by_bucket: BTreeMap<u32, Vec<u64>> = BTreeMap::new();
    let mut churn_positive = 0u64;
    let mut churn_total = 0u64;
    for result in &run.results {
        let Some(bucket) = log_bucket(result.seed_count as u64) else {
            continue;
        };
        let hits = hits_by_prefix[&result.prefix];
        by_bucket.entry(bucket).or_default().push(hits);
        churn_total += 1;
        if hits > result.inactive_seeds as u64 {
            churn_positive += 1;
        }
    }

    let mut series = Series::new(
        "fig7_hits",
        vec!["bucket", "p10", "p25", "median", "p75", "p90", "prefixes"],
    );
    println!(
        "{:<12} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8} {:>10}",
        "seeds/prefix", "prefixes", "p10", "p25", "median", "p75", "p90", "with hits"
    );
    for (&bucket, hits) in &by_bucket {
        let q = quantiles(hits, &[0.10, 0.25, 0.50, 0.75, 0.90]);
        let nonzero = hits.iter().filter(|&&h| h > 0).count();
        println!(
            "{:<12} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8} {:>10}",
            bucket_label(bucket),
            hits.len(),
            q[0],
            q[1],
            q[2],
            q[3],
            q[4],
            percent(nonzero as u64, hits.len() as u64),
        );
        series.push(vec![
            bucket as f64,
            q[0] as f64,
            q[1] as f64,
            q[2] as f64,
            q[3] as f64,
            q[4] as f64,
            hits.len() as f64,
        ]);
    }
    println!(
        "\nchurn check (§6.6): hits exceed inactive seeds for {} of {} prefixes ({})",
        churn_positive,
        churn_total,
        percent(churn_positive, churn_total)
    );
    let path = series
        .write_tsv_file(opts.results_dir())
        .expect("write fig7 tsv");
    println!("series -> {}", path.display());
}
