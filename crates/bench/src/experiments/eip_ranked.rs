//! **§7.1 extension** — budget-aware Entropy/IP: the paper suggests that
//! "factoring in a budget when identifying probable address patterns" may
//! enhance Entropy/IP's applicability to scanning. This ablation compares
//! the original ancestral sampling against probability-ranked generation
//! ([`EntropyIpModel::generate_ranked`]) on the train-and-test task.

use super::{banner, ExperimentOptions};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sixgen_datasets::{cdn_internet, cdn_seed_sample, inverse_kfold, split_groups, Cdn};
use sixgen_entropy_ip::{EntropyIpConfig, EntropyIpModel};
use sixgen_report::Series;
use std::collections::HashSet;

/// Runs the ablation.
pub fn run(opts: &ExperimentOptions) {
    banner("§7.1 extension: Entropy/IP sampled vs probability-ranked generation");
    let budgets: &[u64] = if opts.quick {
        &[5_000, 50_000]
    } else {
        &[5_000, 20_000, 50_000, 200_000, 1_000_000]
    };
    let host_count = if opts.quick { 6_000 } else { 25_000 };
    let sample_size = if opts.quick { 3_000 } else { 10_000 };

    let mut series = Series::new(
        "eip_ranked",
        vec!["budget", "cdn", "sampled", "ranked"],
    );
    println!(
        "{:>10}  {:<7} {:>10} {:>10} {:>8}",
        "budget", "dataset", "sampled", "ranked", "gain"
    );
    for &cdn in &[Cdn::Three, Cdn::Four, Cdn::Five] {
        let internet = cdn_internet(cdn, host_count, 0xCD0 + cdn as u64);
        let mut rng = StdRng::seed_from_u64(0x5A17 + cdn as u64);
        let sample = cdn_seed_sample(&internet, sample_size, &mut rng);
        let folds = inverse_kfold(&split_groups(&sample, 10, &mut rng));
        let (train, test) = &folds[0];
        let model = EntropyIpModel::fit(train, &EntropyIpConfig::default());
        let test_set: HashSet<_> = test.iter().collect();
        for &budget in budgets {
            let mut rng = StdRng::seed_from_u64(budget ^ 0xE19);
            let sampled = model.generate(budget as usize, &mut rng);
            let mut rng = StdRng::seed_from_u64(budget ^ 0xE19);
            let ranked = model.generate_ranked(budget as usize, &mut rng);
            let hit = |targets: &[sixgen_addr::NybbleAddr]| {
                targets.iter().filter(|t| test_set.contains(t)).count() as f64
                    / test.len() as f64
            };
            let (s, r) = (hit(&sampled), hit(&ranked));
            println!(
                "{budget:>10}  {:<7} {s:>10.4} {r:>10.4} {:>7.2}x",
                cdn.label(),
                if s > 0.0 { r / s } else { f64::NAN },
            );
            series.push(vec![budget as f64, (cdn as u8) as f64 + 1.0, s, r]);
        }
    }
    let path = series
        .write_tsv_file(opts.results_dir())
        .expect("write eip-ranked tsv");
    println!("series -> {}", path.display());
}
