//! **Figure 4** — the number of TCP/80 hits for 6Gen targets, with and
//! without dealiasing, for varying per-prefix probe budgets.
//!
//! Shape target: dealiased hits plateau as the budget approaches the
//! "enough" point (1 M in the paper; scaled here), while raw hits keep
//! climbing roughly linearly — every extra probe into an aliased region is
//! another "hit".

use super::{banner, ExperimentOptions};
use crate::pipeline::{run_world, WorldRunConfig};
use sixgen_datasets::world::WorldConfig;
use sixgen_report::{group_digits, Series};

/// Runs the experiment.
pub fn run(opts: &ExperimentOptions) {
    banner("Figure 4: hits vs per-prefix budget (with and without dealiasing)");
    let fractions: &[f64] = if opts.quick {
        &[0.1, 0.5, 1.0]
    } else {
        &[0.02, 0.05, 0.1, 0.2, 0.4, 0.7, 1.0, 1.5, 2.0]
    };
    let mut series = Series::new(
        "fig4_budget",
        vec!["budget_per_prefix", "hits_raw", "hits_dealiased"],
    );
    println!(
        "{:>12}  {:>12}  {:>14}",
        "budget", "w/o dealias", "w/ dealias"
    );
    for &f in fractions {
        let budget = ((opts.budget as f64 * f).round() as u64).max(100);
        let run = run_world(&WorldRunConfig {
            world: WorldConfig {
                scale: opts.scale,
                ..WorldConfig::default()
            },
            budget_per_prefix: budget,
            threads: opts.threads,
            ..WorldRunConfig::default()
        });
        let raw = run.total_hits() as u64;
        let clean = run.non_aliased_hits.len() as u64;
        println!(
            "{:>12}  {:>12}  {:>14}",
            group_digits(budget),
            group_digits(raw),
            group_digits(clean)
        );
        series.push(vec![budget as f64, raw as f64, clean as f64]);
    }
    let path = series
        .write_tsv_file(opts.results_dir())
        .expect("write fig4 tsv");
    println!("series -> {}", path.display());
}
