//! `repro chaos` — fault-injection harness for the session layer.
//!
//! Each scenario injects one kind of fault into an engine run and checks
//! the recovery invariant the session layer promises: **no fault changes
//! the target stream**. A run that survives worker panics, is killed and
//! resumed mid-flight, loses checkpoint writes to a failing disk, or is
//! starved by absurd deadlines must still produce byte-identical targets
//! and cumulative stats to the run where nothing went wrong.
//!
//! Scenarios (each exercising a distinct fault kind):
//!
//! 1. **worker-panic** — deterministic panics inside parallel growth
//!    workers; the serial failover must recover every cluster.
//! 2. **kill-resume** — the process dies at a round boundary (simulated
//!    by serializing the checkpoint and dropping the session); a fresh
//!    session resumed from the bytes must finish the identical run.
//! 3. **checkpoint-io** — checkpoint writes fail transiently (fewer
//!    faults than the retry budget: the write must land) and persistently
//!    (more faults: the *previous* checkpoint must survive intact and
//!    remain resumable).
//! 4. **deadline-jitter** — segments run under tiny, varying time limits,
//!    checkpointing every round; chaining resumes until natural
//!    termination must converge on the uninterrupted run.
//! 5. **corrupt-checkpoint** — flipped bytes and truncations must be
//!    rejected by the decoder, never accepted or panicked on.
//!
//! Run via `repro chaos` (full) or `repro chaos --quick` (CI smoke).

use super::experiments::ExperimentOptions;
use sixgen_addr::NybbleAddr;
use sixgen_core::{
    CheckpointWriter, ClusterMode, Config, EngineCheckpoint, Outcome, PanicInjection, Session,
    SixGen, Step, Termination,
};
use std::path::PathBuf;
use std::time::Duration;

/// Dense three-seed groups with pairwise-distant prefixes (`0x111 × g`),
/// so every group grows independently: a `groups`-growth ladder whose
/// equal densities force an RNG tie-break every round — the workload most
/// sensitive to any state lost across a fault.
fn ladder_seeds(groups: u32) -> Vec<NybbleAddr> {
    (0..groups * 3)
        .map(|i| {
            let group = (i / 3 + 1) as u128 * 0x111;
            let host = (i % 3) as u128;
            NybbleAddr::from_bits(0x2001_0db8 << 96 | group << 4 | host)
        })
        .collect()
}

fn config(budget: u64) -> Config {
    Config {
        budget,
        mode: ClusterMode::Loose,
        ..Config::default()
    }
}

/// Scratch file in the OS temp dir, unique per process and scenario.
fn temp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("sixgen-chaos-{}-{tag}.ckpt", std::process::id()))
}

/// The equality every scenario asserts: same targets, same cumulative
/// stats, same stopping rule.
fn same_run(baseline: &Outcome, other: &Outcome, context: &str) -> Result<(), String> {
    if baseline.targets.as_slice() != other.targets.as_slice() {
        return Err(format!(
            "{context}: target streams diverged ({} vs {} targets)",
            baseline.targets.len(),
            other.targets.len()
        ));
    }
    let b = &baseline.stats;
    let o = &other.stats;
    if (b.rounds, b.growths, b.subsumed, b.budget_used, b.termination)
        != (o.rounds, o.growths, o.subsumed, o.budget_used, o.termination)
    {
        return Err(format!("{context}: stats diverged ({b:?} vs {o:?})"));
    }
    Ok(())
}

/// Scenario 1: panics injected into every parallel growth worker touching
/// a singleton cluster. The engine's per-cluster recovery (serial retry)
/// must absorb them all without changing the output.
fn worker_panic(_opts: &ExperimentOptions) -> Result<String, String> {
    // ≥ 64 clusters so the first cache fill goes parallel (the injection
    // only fires in parallel workers).
    let seeds = ladder_seeds(30);
    let clean = SixGen::new(seeds.clone(), config(600)).run();
    // The injected panics are caught by the engine; mute the default
    // hook's per-panic backtrace spew for the duration.
    let hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let injected = SixGen::new(
        seeds,
        Config {
            threads: 4,
            panic_injection: Some(PanicInjection {
                range_size: 1,
                parallel_only: true,
            }),
            ..config(600)
        },
    )
    .run();
    std::panic::set_hook(hook);
    if injected.stats.worker_panics == 0 {
        return Err("no panics fired: the fault was not injected".into());
    }
    if clean.targets.as_slice() != injected.targets.as_slice() {
        return Err("targets diverged after worker panics".into());
    }
    if clean.stats.termination != injected.stats.termination {
        return Err("termination diverged after worker panics".into());
    }
    Ok(format!(
        "{} panics absorbed, {} targets identical",
        injected.stats.worker_panics,
        clean.targets.len()
    ))
}

/// Scenario 2: kill the process at a round boundary, resume from the
/// serialized checkpoint. Tested at every boundary (full) or at the first,
/// middle, and last (quick).
fn kill_resume(opts: &ExperimentOptions) -> Result<String, String> {
    let seeds = ladder_seeds(10);
    let cfg = config(300);
    let baseline = SixGen::new(seeds.clone(), cfg.clone()).run();
    let rounds = baseline.stats.rounds;
    if rounds < 4 {
        return Err(format!("workload too short ({rounds} rounds)"));
    }
    let boundaries: Vec<u64> = if opts.quick {
        vec![0, rounds / 2, rounds - 1]
    } else {
        (0..rounds).collect()
    };
    for &k in &boundaries {
        let mut session = SixGen::new(seeds.clone(), cfg.clone()).session();
        for step in 0..k {
            if session.step() != Step::Grew {
                return Err(format!("boundary {k} unreachable (terminated at {step})"));
            }
        }
        let bytes = session.checkpoint().to_bytes();
        drop(session); // the killed process

        let checkpoint = EngineCheckpoint::from_bytes(&bytes)
            .map_err(|e| format!("boundary {k}: checkpoint failed to decode: {e}"))?;
        let resumed = Session::resume(checkpoint, cfg.clone())
            .map_err(|e| format!("boundary {k}: resume refused: {e}"))?
            .run();
        same_run(&baseline, &resumed, &format!("boundary {k}"))?;
    }
    Ok(format!(
        "{} kill points, all resumed byte-identical",
        boundaries.len()
    ))
}

/// Scenario 3: the checkpoint file's disk misbehaves. Transient faults
/// must be retried through; persistent faults must leave the previous
/// checkpoint intact and resumable.
fn checkpoint_io(_opts: &ExperimentOptions) -> Result<String, String> {
    let seeds = ladder_seeds(10);
    let cfg = config(300);
    let baseline = SixGen::new(seeds.clone(), cfg.clone()).run();
    let path = temp_path("io");
    let _ = std::fs::remove_file(&path);

    let mut session = SixGen::new(seeds.clone(), cfg.clone()).session();
    for _ in 0..2 {
        if session.step() != Step::Grew {
            return Err("workload too short for boundary 2".into());
        }
    }
    let early = session.checkpoint();
    for _ in 0..2 {
        if session.step() != Step::Grew {
            return Err("workload too short for boundary 4".into());
        }
    }
    let late = session.checkpoint();
    drop(session);

    // Transient: 2 faults against a 3-retry budget — the write must land.
    let mut writer = CheckpointWriter::with_policy(&path, 3, Duration::from_millis(1));
    writer.inject_failures = 2;
    writer
        .write(&early)
        .map_err(|e| format!("write failed despite retry budget: {e}"))?;
    EngineCheckpoint::load(&path).map_err(|e| format!("persisted checkpoint unreadable: {e}"))?;

    // Persistent: more faults than attempts — the write must fail, and the
    // file must still hold the earlier checkpoint, still resumable.
    writer.inject_failures = 10;
    if writer.write(&late).is_ok() {
        return Err("persistently faulted write reported success".into());
    }
    let survived =
        EngineCheckpoint::load(&path).map_err(|e| format!("previous checkpoint lost: {e}"))?;
    if survived.to_bytes() != early.to_bytes() {
        return Err("failed write corrupted the previous checkpoint".into());
    }
    let resumed = Session::resume(survived, cfg.clone())
        .map_err(|e| format!("surviving checkpoint refused resume: {e}"))?
        .run();
    same_run(&baseline, &resumed, "resume after lost write")?;
    let _ = std::fs::remove_file(&path);
    Ok("transient faults retried, persistent fault left prior checkpoint resumable".into())
}

/// Scenario 4: segments run under tiny, varying deadlines, checkpointing
/// at every round boundary; chaining resume-after-deadline must converge
/// on the uninterrupted run. Deadlines that strike before any progress
/// escalate the next segment's limit, so convergence is guaranteed.
fn deadline_jitter(opts: &ExperimentOptions) -> Result<String, String> {
    let seeds = ladder_seeds(10);
    let cfg = config(300);
    let baseline = SixGen::new(seeds.clone(), cfg.clone()).run();

    let jitter = [40u64, 110, 60, 180, 80];
    let max_segments = if opts.quick { 40 } else { 200 };
    let mut limit_boost: u32 = 0;
    let mut last_checkpoint: Option<Vec<u8>> = None;
    let mut segments = 0u32;
    let mut interrupted = 0u32;
    let final_outcome = loop {
        if segments >= max_segments {
            return Err(format!("no convergence after {max_segments} segments"));
        }
        let micros = jitter[segments as usize % jitter.len()] << limit_boost;
        let segment_cfg = Config {
            time_limit: Some(Duration::from_micros(micros)),
            ..cfg.clone()
        };
        let session = match &last_checkpoint {
            None => SixGen::new(seeds.clone(), segment_cfg).session(),
            Some(bytes) => {
                let checkpoint = EngineCheckpoint::from_bytes(bytes)
                    .map_err(|e| format!("segment {segments}: checkpoint undecodable: {e}"))?;
                Session::resume(checkpoint, segment_cfg)
                    .map_err(|e| format!("segment {segments}: resume refused: {e}"))?
            }
        };
        let growths_before = session.growths();
        let mut latest: Option<Vec<u8>> = None;
        let outcome = session.run_with(|s| latest = Some(s.checkpoint().to_bytes()));
        segments += 1;
        if outcome.stats.termination != Termination::Deadline {
            break outcome;
        }
        interrupted += 1;
        // A segment that grew nothing made no checkpoint; widen the next
        // deadline so the chain always makes progress eventually.
        if outcome.stats.growths == growths_before {
            limit_boost = (limit_boost + 1).min(20);
        } else {
            limit_boost = 0;
            last_checkpoint = latest;
        }
    };
    if interrupted == 0 {
        return Err("deadlines never fired: jitter too generous to test anything".into());
    }
    same_run(&baseline, &final_outcome, "after deadline chain")?;
    Ok(format!(
        "{interrupted} deadline interruptions across {segments} segments, converged byte-identical"
    ))
}

/// Scenario 5: corrupted checkpoints must be detected — every byte flip
/// and truncation rejected with an error, never accepted or panicked on.
fn corrupt_checkpoint(opts: &ExperimentOptions) -> Result<String, String> {
    let seeds = ladder_seeds(10);
    let mut session = SixGen::new(seeds, config(300)).session();
    for _ in 0..3 {
        if session.step() != Step::Grew {
            return Err("workload too short for boundary 3".into());
        }
    }
    let bytes = session.checkpoint().to_bytes();
    drop(session);

    let stride = if opts.quick { 17 } else { 1 };
    let mut rejected = 0usize;
    let mut attempts = 0usize;
    for i in (0..bytes.len()).step_by(stride) {
        let mut corrupt = bytes.clone();
        corrupt[i] ^= 0xA5;
        attempts += 1;
        match EngineCheckpoint::from_bytes(&corrupt) {
            Err(_) => rejected += 1,
            Ok(_) => return Err(format!("flipped byte {i} went undetected")),
        }
    }
    for len in [0, 1, 8, bytes.len() / 2, bytes.len() - 1] {
        attempts += 1;
        match EngineCheckpoint::from_bytes(&bytes[..len]) {
            Err(_) => rejected += 1,
            Ok(_) => return Err(format!("truncation to {len} bytes went undetected")),
        }
    }
    Ok(format!("{rejected}/{attempts} corruptions detected"))
}

/// Runs every scenario, printing one PASS/FAIL row each. Returns `true`
/// when all pass (the `repro` driver exits non-zero otherwise).
pub fn run(opts: &ExperimentOptions) -> bool {
    type Scenario = fn(&ExperimentOptions) -> Result<String, String>;
    let scenarios: [(&str, Scenario); 5] = [
        ("worker-panic", worker_panic),
        ("kill-resume", kill_resume),
        ("checkpoint-io", checkpoint_io),
        ("deadline-jitter", deadline_jitter),
        ("corrupt-checkpoint", corrupt_checkpoint),
    ];
    let mut ok = true;
    for (name, scenario) in scenarios {
        match scenario(opts) {
            Ok(detail) => println!("chaos: {name:<20} PASS  {detail}"),
            Err(error) => {
                ok = false;
                eprintln!("chaos: {name:<20} FAIL  {error}");
            }
        }
    }
    if ok {
        println!("chaos: OK ({} scenarios)", scenarios.len());
    }
    ok
}
