//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro [OPTIONS] <EXPERIMENT>...
//!
//! EXPERIMENTS
//!   fig2      runtime scaling
//!   fig3      AS-level CDFs (alias of table1)
//!   fig4      hits vs budget
//!   fig5      cluster-count CDFs
//!   fig6      dynamic-nybble positions
//!   fig7      hits per prefix by seed bucket
//!   fig8      CDN train-and-test (6Gen vs Entropy/IP)
//!   fig9      CDN active scans (6Gen vs Entropy/IP)
//!   table1    top ASes by seeds / aliased / non-aliased hits
//!   table2    seed downsampling
//!   tight     tight vs loose ranges (§6.3)
//!   hosttype  NS-only seeds (§6.7.1)
//!   dealias   alias survey (§6.2)
//!   adaptive  §8 scanner-integration extension
//!   budgetpolicy  §8 budget-allocation ablation
//!   eipranked  §7.1 budget-aware Entropy/IP ablation
//!   faults    hit rate vs fault severity, fixed vs adaptive retries
//!   trajectory  core perf trajectory -> BENCH_core.json
//!   all       everything above (except trajectory)
//!
//! OPTIONS
//!   --scale <f64>    world scale factor           (default 1.0)
//!   --budget <u64>   per-prefix probe budget      (default 50000)
//!   --results <dir>  TSV output directory         (default results)
//!   --threads <n>    6Gen worker threads, 0=auto  (default 0)
//!   --quick          reduced sweeps for smoke runs
//!   --metrics-out <file>  write the aggregated metrics registry as JSON
//! ```

use sixgen_bench::experiments::{
    self, adaptive_loop, budget_policy, cdn_compare, dealias_survey, eip_ranked, fault_severity, fig2_runtime, fig4_budget,
    fig5_clusters, fig6_nybbles, fig7_hits, host_type, table1_ases, table2_downsampling, tight_vs_loose,
    ExperimentOptions,
};
use sixgen_bench::trajectory;
use sixgen_obs::MetricsRegistry;
use std::path::PathBuf;

fn usage() -> ! {
    eprintln!(
        "usage: repro [--scale F] [--budget N] [--results DIR] [--threads N] [--quick] \
         [--metrics-out FILE] \
         <fig2|fig3|fig4|fig5|fig6|fig7|fig8|fig9|table1|table2|tight|hosttype|dealias|adaptive|budgetpolicy|eipranked|faults|trajectory|all>..."
    );
    std::process::exit(2);
}

fn main() {
    let mut opts = ExperimentOptions::default();
    let mut wanted: Vec<String> = Vec::new();
    let mut metrics_out: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--metrics-out" => {
                metrics_out = Some(args.next().map(Into::into).unwrap_or_else(|| usage()))
            }
            "--scale" => {
                opts.scale = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--budget" => {
                opts.budget = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--results" => {
                opts.results_dir = args.next().map(Into::into).unwrap_or_else(|| usage())
            }
            "--threads" => {
                opts.threads = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--quick" => opts.quick = true,
            "--help" | "-h" => usage(),
            name if !name.starts_with('-') => wanted.push(name.to_owned()),
            _ => usage(),
        }
    }
    if wanted.is_empty() {
        usage();
    }
    if metrics_out.is_some() {
        opts.metrics = Some(MetricsRegistry::shared());
    }

    for name in &wanted {
        match name.as_str() {
            "fig2" => fig2_runtime::run(&opts),
            "fig3" | "table1" => {
                table1_ases::run(&opts);
            }
            "fig4" => fig4_budget::run(&opts),
            "fig5" | "fig6" | "fig7" => {
                // These three share one pipeline run.
                let run = table1_ases::run(&opts);
                match name.as_str() {
                    "fig5" => fig5_clusters::run(&opts, &run),
                    "fig6" => fig6_nybbles::run(&opts, &run),
                    _ => fig7_hits::run(&opts, &run),
                }
            }
            "fig8" => cdn_compare::run_train_test(&opts),
            "fig9" => cdn_compare::run_active_scans(&opts),
            "table2" => table2_downsampling::run(&opts),
            "tight" => tight_vs_loose::run(&opts),
            "hosttype" => host_type::run(&opts),
            "dealias" => dealias_survey::run(&opts),
            "adaptive" => adaptive_loop::run(&opts),
            "budgetpolicy" => budget_policy::run(&opts),
            "eipranked" => eip_ranked::run(&opts),
            "faults" => fault_severity::run(&opts),
            "trajectory" => trajectory::run(&opts),
            "all" => run_all(&opts),
            other => {
                eprintln!("unknown experiment: {other}");
                usage();
            }
        }
    }
    if let (Some(path), Some(registry)) = (&metrics_out, &opts.metrics) {
        std::fs::write(path, registry.to_json()).expect("write metrics json");
        eprintln!("metrics written to {}", path.display());
    }
    experiments::banner_done(&opts);
}

fn run_all(opts: &ExperimentOptions) {
    fig2_runtime::run(opts);
    // One pipeline run shared by table1/fig3/fig5/fig6/fig7.
    let run = table1_ases::run(opts);
    fig5_clusters::run(opts, &run);
    fig6_nybbles::run(opts, &run);
    fig7_hits::run(opts, &run);
    drop(run);
    fig4_budget::run(opts);
    dealias_survey::run(opts);
    tight_vs_loose::run(opts);
    host_type::run(opts);
    table2_downsampling::run(opts);
    adaptive_loop::run(opts);
    budget_policy::run(opts);
    eip_ranked::run(opts);
    fault_severity::run(opts);
    cdn_compare::run(opts);
}
