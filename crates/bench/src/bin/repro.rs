//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro [OPTIONS] <EXPERIMENT>...
//!
//! EXPERIMENTS
//!   fig2      runtime scaling
//!   fig3      AS-level CDFs (alias of table1)
//!   fig4      hits vs budget
//!   fig5      cluster-count CDFs
//!   fig6      dynamic-nybble positions
//!   fig7      hits per prefix by seed bucket
//!   fig8      CDN train-and-test (6Gen vs Entropy/IP)
//!   fig9      CDN active scans (6Gen vs Entropy/IP)
//!   table1    top ASes by seeds / aliased / non-aliased hits
//!   table2    seed downsampling
//!   tight     tight vs loose ranges (§6.3)
//!   hosttype  NS-only seeds (§6.7.1)
//!   dealias   alias survey (§6.2)
//!   adaptive  §8 scanner-integration extension
//!   budgetpolicy  §8 budget-allocation ablation
//!   eipranked  §7.1 budget-aware Entropy/IP ablation
//!   faults    hit rate vs fault severity, fixed vs adaptive retries
//!   trajectory  core perf trajectory -> BENCH_core.json
//!   trajectory-check  validate committed BENCH_core.json (schema, 100K
//!                     point, growth_eval p95 regression <= 25%)
//!   chaos     session fault-injection harness: worker panics, kill+resume,
//!             checkpoint-write I/O faults, deadline jitter, corruption
//!             (exits non-zero on any recovery-invariant violation)
//!   all       everything above (except trajectory and chaos)
//!
//! OPTIONS
//!   --scale <f64>    world scale factor           (default 1.0)
//!   --budget <u64>   per-prefix probe budget      (default 50000)
//!   --results <dir>  TSV output directory         (default results)
//!   --threads <n>    6Gen worker threads, 0=auto  (default 0)
//!   --quick          reduced sweeps for smoke runs
//!   --metrics-out <file>  write the aggregated metrics registry as JSON
//!                         (a `.prom` extension selects Prometheus text
//!                         exposition instead)
//!   --trace-out <file>    write a Chrome trace-event JSON of the run
//!                         (loadable in Perfetto / chrome://tracing)
//!   --trace-summary       print a per-span-kind self-time summary table
//! ```

use sixgen_bench::experiments::{
    self, adaptive_loop, budget_policy, cdn_compare, dealias_survey, eip_ranked, fault_severity, fig2_runtime, fig4_budget,
    fig5_clusters, fig6_nybbles, fig7_hits, host_type, table1_ases, table2_downsampling, tight_vs_loose,
    ExperimentOptions,
};
use sixgen_bench::{chaos, trajectory};
use sixgen_obs::{maybe_span, MetricsRegistry, SpanId, TraceSink};
use std::path::PathBuf;

fn usage() -> ! {
    eprintln!(
        "usage: repro [--scale F] [--budget N] [--results DIR] [--threads N] [--quick] \
         [--metrics-out FILE[.prom]] [--trace-out FILE] [--trace-summary] \
         <fig2|fig3|fig4|fig5|fig6|fig7|fig8|fig9|table1|table2|tight|hosttype|dealias|adaptive|budgetpolicy|eipranked|faults|trajectory|trajectory-check|chaos|all>..."
    );
    std::process::exit(2);
}

/// Maps a user-supplied experiment name onto the identical `'static`
/// string, for use as a span name (span names must be `&'static str` so
/// recording never allocates).
fn static_name(name: &str) -> &'static str {
    const NAMES: &[&str] = &[
        "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "table1", "table2",
        "tight", "hosttype", "dealias", "adaptive", "budgetpolicy", "eipranked", "faults",
        "trajectory", "trajectory-check", "chaos", "all",
    ];
    NAMES
        .iter()
        .find(|&&n| n == name)
        .copied()
        .unwrap_or("experiment")
}

fn main() {
    let mut opts = ExperimentOptions::default();
    let mut wanted: Vec<String> = Vec::new();
    let mut metrics_out: Option<PathBuf> = None;
    let mut trace_out: Option<PathBuf> = None;
    let mut trace_summary = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--metrics-out" => {
                metrics_out = Some(args.next().map(Into::into).unwrap_or_else(|| usage()))
            }
            "--trace-out" => {
                trace_out = Some(args.next().map(Into::into).unwrap_or_else(|| usage()))
            }
            "--trace-summary" => trace_summary = true,
            "--scale" => {
                opts.scale = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--budget" => {
                opts.budget = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--results" => {
                opts.results_dir = args.next().map(Into::into).unwrap_or_else(|| usage())
            }
            "--threads" => {
                opts.threads = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--quick" => opts.quick = true,
            "--help" | "-h" => usage(),
            name if !name.starts_with('-') => wanted.push(name.to_owned()),
            _ => usage(),
        }
    }
    if wanted.is_empty() {
        usage();
    }
    if metrics_out.is_some() {
        opts.metrics = Some(MetricsRegistry::shared());
    }
    if trace_out.is_some() || trace_summary {
        opts.trace = Some(TraceSink::shared());
    }

    for name in &wanted {
        // One root span per experiment; engine/prober/pipeline spans nest
        // under whatever they create themselves (parented to their own run
        // roots), so this mainly delimits experiments on the trace timeline.
        let _span = maybe_span(opts.trace.as_deref(), "repro", static_name(name), SpanId::NONE);
        match name.as_str() {
            "fig2" => fig2_runtime::run(&opts),
            "fig3" | "table1" => {
                table1_ases::run(&opts);
            }
            "fig4" => fig4_budget::run(&opts),
            "fig5" | "fig6" | "fig7" => {
                // These three share one pipeline run.
                let run = table1_ases::run(&opts);
                match name.as_str() {
                    "fig5" => fig5_clusters::run(&opts, &run),
                    "fig6" => fig6_nybbles::run(&opts, &run),
                    _ => fig7_hits::run(&opts, &run),
                }
            }
            "fig8" => cdn_compare::run_train_test(&opts),
            "fig9" => cdn_compare::run_active_scans(&opts),
            "table2" => table2_downsampling::run(&opts),
            "tight" => tight_vs_loose::run(&opts),
            "hosttype" => host_type::run(&opts),
            "dealias" => dealias_survey::run(&opts),
            "adaptive" => adaptive_loop::run(&opts),
            "budgetpolicy" => budget_policy::run(&opts),
            "eipranked" => eip_ranked::run(&opts),
            "faults" => fault_severity::run(&opts),
            "trajectory" => trajectory::run(&opts),
            "trajectory-check" => {
                if !trajectory::check(&opts, &trajectory::default_output()) {
                    std::process::exit(1);
                }
            }
            "chaos" => {
                if !chaos::run(&opts) {
                    std::process::exit(1);
                }
            }
            "all" => run_all(&opts),
            other => {
                eprintln!("unknown experiment: {other}");
                usage();
            }
        }
    }
    if let (Some(path), Some(registry)) = (&metrics_out, &opts.metrics) {
        let prom = path.extension().is_some_and(|e| e == "prom");
        let body = if prom {
            registry.to_prometheus()
        } else {
            registry.to_json()
        };
        sixgen_obs::write_atomic(path, body.as_bytes()).expect("write metrics");
        eprintln!(
            "metrics written to {} ({})",
            path.display(),
            if prom { "prometheus" } else { "json" }
        );
    }
    if let Some(sink) = &opts.trace {
        if let Some(path) = &trace_out {
            sixgen_obs::write_atomic(path, sink.to_chrome_json().as_bytes())
                .expect("write chrome trace");
            eprintln!(
                "trace written to {} ({} spans, {} dropped)",
                path.display(),
                sink.len(),
                sink.dropped()
            );
        }
        if trace_summary {
            println!("\n{}", sink.render_summary());
        }
    }
    experiments::banner_done(&opts);
}

fn run_all(opts: &ExperimentOptions) {
    fig2_runtime::run(opts);
    // One pipeline run shared by table1/fig3/fig5/fig6/fig7.
    let run = table1_ases::run(opts);
    fig5_clusters::run(opts, &run);
    fig6_nybbles::run(opts, &run);
    fig7_hits::run(opts, &run);
    drop(run);
    fig4_budget::run(opts);
    dealias_survey::run(opts);
    tight_vs_loose::run(opts);
    host_type::run(opts);
    table2_downsampling::run(opts);
    adaptive_loop::run(opts);
    budget_policy::run(opts);
    eip_ranked::run(opts);
    fault_severity::run(opts);
    cdn_compare::run(opts);
}
