//! `repro trajectory` — the committed core-performance trajectory.
//!
//! Measures three throughput axes of the reproduction and emits them as a
//! small JSON document (`BENCH_core.json`, committed at the repo root) so
//! performance regressions show up in review diffs:
//!
//! 1. **Seed scaling** — median 6Gen runtime versus seed-set size on the
//!    Figure 2 synthetic corpus (the paper's scaling claim).
//! 2. **Budget-charge throughput** — addresses committed per second by
//!    [`BudgetTracker::charge`], the hot path the single-pass rewrite
//!    targets.
//! 3. **Tree-query throughput** — [`NybbleTree::count_in_range`] queries
//!    per second, the inner loop of growth evaluation.
//!
//! Absolute numbers are machine-dependent; the committed file documents
//! the *shape* (scaling curve, relative throughput) and gives CI a single
//! artifact to archive per run.

use super::experiments::ExperimentOptions;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sixgen_addr::{NybbleAddr, NybbleTree, Range};
use sixgen_core::{BudgetTracker, Config, SixGen};
use sixgen_obs::MetricsRegistry;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// One point of the seed-scaling curve.
#[derive(Debug, Clone)]
pub struct ScalePoint {
    /// Seed-set size.
    pub seeds: usize,
    /// The target budget the runs at this point were configured with.
    /// Committed alongside the timings because budget scales with the
    /// seed count above 100 K (`max(50 K, seeds·3/2)`): two points are
    /// wall-comparable only per unit of configured work, and
    /// `trajectory-check` re-measures a committed point at the
    /// *committed* budget, never a recomputed one.
    pub budget: u64,
    /// Median wall-clock runtime in milliseconds.
    pub wall_ms: f64,
    /// Median CPU time in milliseconds. Note this only aggregates the
    /// growth-evaluation (cache-fill) busy time — the other phases are
    /// accounted in `phase_ns`, which is why `wall_ms` exceeds `cpu_ms`
    /// even on a single thread.
    pub cpu_ms: f64,
    /// Median (across repeats) of the per-run p95 growth-evaluation
    /// latency in milliseconds, from `engine/growth_eval` measured with a
    /// fresh per-run registry. This is the hot-path number the fused
    /// traversal optimizes and the one `trajectory-check` guards.
    pub growth_eval_p95_ms: f64,
    /// Targets generated (identical across repeats at fixed seed).
    pub targets: u64,
    /// Rounds executed by the first repeat (`rng_seed = 0`) — fixed for a
    /// given seed corpus and budget, so regressions in round count (e.g.
    /// a subsumption bug) show up in review diffs.
    pub rounds: u64,
    /// Number of measured repeats the medians are taken over.
    pub repeats: u64,
    /// Median per-phase wall totals in nanoseconds, one per round-loop
    /// phase: where the run actually spends its time. Closes the
    /// `wall_ms` vs `cpu_ms` gap: select/commit/subsume time was
    /// previously invisible in this document.
    pub phase_ns: PhaseTotals,
}

/// Per-phase wall-clock totals (nanoseconds) for one scaling point.
#[derive(Debug, Clone, Copy, Default)]
pub struct PhaseTotals {
    /// `engine/cache_fill`: growth-cache refills (including the
    /// initialization fill of every slot).
    pub cache_fill: u64,
    /// `engine/select`: best-growth selection, including tie-break draw
    /// replay.
    pub select: u64,
    /// `engine/commit`: budget charging and target emission.
    pub commit: u64,
    /// `engine/subsume`: subsumed-cluster retirement.
    pub subsume: u64,
}

/// A simple items-over-time throughput measurement.
#[derive(Debug, Clone)]
pub struct Throughput {
    /// Items processed (addresses charged, queries executed).
    pub items: u64,
    /// Total wall-clock time in milliseconds.
    pub wall_ms: f64,
    /// Items per second.
    pub per_sec: f64,
}

impl Throughput {
    fn measure(items: u64, elapsed_ms: f64) -> Throughput {
        let wall_ms = elapsed_ms.max(1e-6);
        Throughput {
            items,
            wall_ms,
            per_sec: items as f64 / (wall_ms / 1e3),
        }
    }
}

/// The full trajectory document.
#[derive(Debug, Clone)]
pub struct Trajectory {
    /// Seed-scaling curve (Figure 2 axis).
    pub seed_scaling: Vec<ScalePoint>,
    /// Budget-charge throughput.
    pub budget_charge: Throughput,
    /// Tree range-query throughput.
    pub tree_query: Throughput,
}

impl Trajectory {
    /// Renders the document as pretty-printed JSON with a schema tag and
    /// stable key order.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n  \"schema\": \"sixgen-bench-trajectory/v3\",\n");
        out.push_str("  \"seed_scaling\": [\n");
        for (i, p) in self.seed_scaling.iter().enumerate() {
            let _ = writeln!(
                out,
                "    {{\"seeds\": {}, \"budget\": {}, \"wall_ms\": {:.3}, \"cpu_ms\": {:.3}, \
                 \"growth_eval_p95_ms\": {:.6}, \"targets\": {}, \"rounds\": {}, \
                 \"repeats\": {}, \"phase_ns\": {{\"cache_fill\": {}, \"select\": {}, \
                 \"commit\": {}, \"subsume\": {}}}}}{}",
                p.seeds,
                p.budget,
                p.wall_ms,
                p.cpu_ms,
                p.growth_eval_p95_ms,
                p.targets,
                p.rounds,
                p.repeats,
                p.phase_ns.cache_fill,
                p.phase_ns.select,
                p.phase_ns.commit,
                p.phase_ns.subsume,
                if i + 1 < self.seed_scaling.len() { "," } else { "" }
            );
        }
        out.push_str("  ],\n");
        for (name, t, comma) in [
            ("budget_charge", &self.budget_charge, ","),
            ("tree_query", &self.tree_query, ""),
        ] {
            let _ = writeln!(
                out,
                "  \"{}\": {{\"items\": {}, \"wall_ms\": {:.3}, \"per_sec\": {:.1}}}{}",
                name, t.items, t.wall_ms, t.per_sec, comma
            );
        }
        out.push_str("}\n");
        out
    }
}

/// Synthetic hosting-provider seeds (same structure as the Figure 2
/// corpus: sequential low bytes over a few dozen subnets plus noise).
fn synthetic_seeds(count: usize, rng: &mut StdRng) -> Vec<NybbleAddr> {
    (0..count)
        .map(|i| {
            let subnet = (i % 48) as u128;
            let structured = (i / 48 + 1) as u128;
            let noise: u128 = if i % 7 == 0 {
                rng.gen::<u16>() as u128
            } else {
                0
            };
            NybbleAddr::from_bits(
                (0x2600_3c00u128 << 96) | (subnet << 64) | structured | noise << 16,
            )
        })
        .collect()
}

fn median(mut values: Vec<f64>) -> f64 {
    values.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    values[values.len() / 2]
}

/// The budget a scaling point of size `n` runs with, unless overridden by
/// a committed value: the budget must exceed the seed count or the run
/// exhausts at initialization without a single growth. Scaling by 1.5×
/// kicks in only above the 30K point (every committed size up to 30K
/// stays under the default 50K budget), so historical points up to 30K
/// remain comparable.
fn point_budget(n: usize, opts: &ExperimentOptions) -> u64 {
    opts.budget.max(n as u64 * 3 / 2)
}

/// One measured scaling run.
struct RunSample {
    wall_ms: f64,
    cpu_ms: f64,
    p95_ms: f64,
    targets: u64,
    rounds: u64,
    phase_ns: PhaseTotals,
}

/// Executes one scaling run of `n` seeds at the given budget.
///
/// Each run gets its own fresh [`MetricsRegistry`] so the p95 and phase
/// totals reflect exactly this run (the shared `--metrics-out` registry
/// accumulates across runs and sizes, which would smear them).
fn measure_run(n: usize, rep: u64, budget: u64, opts: &ExperimentOptions) -> RunSample {
    let mut rng = StdRng::seed_from_u64(42 + rep);
    let seeds = synthetic_seeds(n, &mut rng);
    let registry = MetricsRegistry::shared();
    let outcome = SixGen::new(
        seeds,
        Config {
            budget,
            threads: opts.threads,
            rng_seed: rep,
            metrics: Some(std::sync::Arc::clone(&registry)),
            trace: opts.trace.clone(),
            ..Config::default()
        },
    )
    .run();
    let p95_ms = registry
        .time_histogram("engine/growth_eval")
        .percentile(0.95)
        .map(|ns| ns as f64 / 1e6)
        .unwrap_or(0.0);
    let phase = |name: &str| registry.phase(name).total().as_nanos() as u64;
    RunSample {
        wall_ms: outcome.stats.wall_time.as_secs_f64() * 1e3,
        cpu_ms: outcome.stats.cpu_time.as_secs_f64() * 1e3,
        p95_ms,
        targets: outcome.targets.len() as u64,
        rounds: outcome.stats.rounds,
        phase_ns: PhaseTotals {
            cache_fill: phase("engine/cache_fill"),
            select: phase("engine/select"),
            commit: phase("engine/commit"),
            subsume: phase("engine/subsume"),
        },
    }
}

fn measure_point(n: usize, repeats: u64, opts: &ExperimentOptions) -> ScalePoint {
    let budget = point_budget(n, opts);
    let samples: Vec<RunSample> = (0..repeats)
        .map(|rep| measure_run(n, rep, budget, opts))
        .collect();
    let med = |f: fn(&RunSample) -> f64| median(samples.iter().map(f).collect());
    ScalePoint {
        seeds: n,
        budget,
        wall_ms: med(|s| s.wall_ms),
        cpu_ms: med(|s| s.cpu_ms),
        growth_eval_p95_ms: med(|s| s.p95_ms),
        targets: samples.last().expect("repeats >= 1").targets,
        rounds: samples[0].rounds,
        repeats,
        phase_ns: PhaseTotals {
            cache_fill: med(|s| s.phase_ns.cache_fill as f64) as u64,
            select: med(|s| s.phase_ns.select as f64) as u64,
            commit: med(|s| s.phase_ns.commit as f64) as u64,
            subsume: med(|s| s.phase_ns.subsume as f64) as u64,
        },
    }
}

fn seed_scaling(opts: &ExperimentOptions) -> Vec<ScalePoint> {
    let sizes: &[usize] = if opts.quick {
        &[10, 100, 1_000]
    } else {
        &[
            10, 100, 1_000, 5_000, 10_000, 30_000, 100_000, 300_000, 1_000_000,
        ]
    };
    sizes
        .iter()
        .map(|&n| {
            // Large points are single-shot: a 300K+ run takes long enough
            // that three repeats would dominate the whole suite, and the
            // medians they feed are already noise-bounded by the smaller
            // gated points.
            let repeats = if opts.quick || n >= 300_000 { 1 } else { 3 };
            measure_point(n, repeats, opts)
        })
        .collect()
}

fn budget_charge_throughput(opts: &ExperimentOptions) -> Throughput {
    let ranges: Vec<Range> = (0..if opts.quick { 8 } else { 32 })
        .map(|i| {
            let pat = if opts.quick {
                format!("2001:db8:{i:x}::??")
            } else {
                format!("2001:db8:{i:x}::???")
            };
            pat.parse().expect("valid range pattern")
        })
        .collect();
    let mut tracker = BudgetTracker::new(u64::MAX);
    let mut rng = StdRng::seed_from_u64(9);
    let started = Instant::now();
    for range in &ranges {
        tracker.charge(range, &mut rng);
    }
    let elapsed_ms = started.elapsed().as_secs_f64() * 1e3;
    Throughput::measure(tracker.used(), elapsed_ms)
}

fn tree_query_throughput(opts: &ExperimentOptions) -> Throughput {
    let mut rng = StdRng::seed_from_u64(11);
    let tree = NybbleTree::from_addresses(synthetic_seeds(
        if opts.quick { 2_000 } else { 20_000 },
        &mut rng,
    ));
    let queries = if opts.quick { 1_000 } else { 10_000 };
    let ranges: Vec<Range> = (0..48u32)
        .map(|s| {
            format!("2600:3c00:0:{s:x}::???")
                .parse()
                .expect("valid range pattern")
        })
        .collect();
    let mut matches = 0u64;
    let started = Instant::now();
    for q in 0..queries {
        matches += tree.count_in_range(&ranges[q as usize % ranges.len()]);
    }
    let elapsed_ms = started.elapsed().as_secs_f64() * 1e3;
    // Keep the accumulated count observable so the loop cannot be elided.
    assert!(matches < u64::MAX);
    Throughput::measure(queries, elapsed_ms)
}

/// Collects all three measurements.
pub fn collect(opts: &ExperimentOptions) -> Trajectory {
    Trajectory {
        seed_scaling: seed_scaling(opts),
        budget_charge: budget_charge_throughput(opts),
        tree_query: tree_query_throughput(opts),
    }
}

/// The default output path (repo root when run from there).
pub fn default_output() -> PathBuf {
    PathBuf::from("BENCH_core.json")
}

/// Runs the trajectory and writes `BENCH_core.json` into the current
/// directory, printing the curve as it goes.
pub fn run(opts: &ExperimentOptions) {
    run_to(opts, &default_output());
}

/// Runs the trajectory and writes the JSON document to `path`.
pub fn run_to(opts: &ExperimentOptions, path: &Path) {
    super::experiments::banner("Core trajectory: seed scaling, charge and tree throughput");
    let trajectory = collect(opts);
    println!(
        "{:>8}  {:>8}  {:>12}  {:>12}  {:>14}  {:>10}  {:>8}",
        "seeds", "budget", "wall (ms)", "cpu (ms)", "eval p95 (ms)", "targets", "rounds"
    );
    for p in &trajectory.seed_scaling {
        println!(
            "{:>8}  {:>8}  {:>12.2}  {:>12.2}  {:>14.4}  {:>10}  {:>8}",
            p.seeds, p.budget, p.wall_ms, p.cpu_ms, p.growth_eval_p95_ms, p.targets, p.rounds
        );
    }
    println!(
        "budget charge: {:.0} addrs/s ({} addrs)   tree query: {:.0} queries/s",
        trajectory.budget_charge.per_sec,
        trajectory.budget_charge.items,
        trajectory.tree_query.per_sec
    );
    std::fs::write(path, trajectory.to_json()).expect("write trajectory json");
    println!("trajectory -> {}", path.display());
}

/// Extracts one numeric field from the seed-scaling point with the given
/// size inside a trajectory JSON document, using the document's known
/// one-point-per-line layout (no JSON parser in the workspace — the format
/// is ours and stable under the schema tag).
fn extract_point_field(json: &str, seeds: usize, field: &str) -> Option<f64> {
    let seeds_key = format!("\"seeds\": {seeds},");
    let field_key = format!("\"{field}\": ");
    let line = json.lines().find(|l| l.contains(&seeds_key))?;
    let start = line.find(&field_key)? + field_key.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| c != '-' && c != '.' && !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Fractional headroom allowed over the committed p95 before
/// `trajectory-check` fails.
const P95_REGRESSION_HEADROOM: f64 = 0.25;

/// Fractional headroom allowed over the committed 300 K wall time. Far
/// looser than the p95 gate: absolute wall times swing with machine load,
/// and this gate exists to catch a complexity-class regression (the
/// round loop sliding back toward per-round full scans roughly doubles
/// the 300 K wall), not microperf drift.
const WALL_300K_REGRESSION_HEADROOM: f64 = 1.0;

/// Re-measures a committed scaling point at its *committed* budget, so
/// the comparison is like-for-like even if the current budget formula
/// disagrees with the one the document was generated under.
fn fresh_sample_for(json: &str, n: usize, opts: &ExperimentOptions) -> RunSample {
    let budget = extract_point_field(json, n, "budget")
        .map(|b| b as u64)
        .unwrap_or_else(|| point_budget(n, opts));
    measure_run(n, 0, budget, opts)
}

/// `repro trajectory-check` — the CI guard over the committed trajectory.
///
/// Asserts that the committed `BENCH_core.json` (1) carries the current
/// schema tag, (2) contains the 100 K-seed scaling point, (3) has not
/// been outrun at 30 K: a fresh measurement's `engine/growth_eval` p95 —
/// taken at the point's committed budget — must not exceed the committed
/// value by more than 25 %, and (4) when a 300 K point is committed, the
/// round loop's scaling holds: a fresh 300 K run (committed budget) must
/// stay within the p95 headroom *and* within 2× of the committed wall
/// time. Returns `true` when all checks pass; the caller turns `false`
/// into a non-zero exit.
pub fn check(opts: &ExperimentOptions, path: &Path) -> bool {
    super::experiments::banner("Trajectory check: committed BENCH_core.json vs fresh measurement");
    let json = match std::fs::read_to_string(path) {
        Ok(json) => json,
        Err(err) => {
            eprintln!("trajectory-check: cannot read {}: {err}", path.display());
            return false;
        }
    };
    let mut ok = true;
    if !json.contains("\"schema\": \"sixgen-bench-trajectory/v3\"") {
        eprintln!("trajectory-check: FAIL: schema tag is not sixgen-bench-trajectory/v3");
        ok = false;
    }
    if extract_point_field(&json, 100_000, "wall_ms").is_none() {
        eprintln!("trajectory-check: FAIL: no 100000-seed scaling point committed");
        ok = false;
    }
    let Some(committed_p95) = extract_point_field(&json, 30_000, "growth_eval_p95_ms") else {
        eprintln!("trajectory-check: FAIL: no 30000-seed growth_eval_p95_ms committed");
        return false;
    };
    let fresh = fresh_sample_for(&json, 30_000, opts);
    let limit = committed_p95 * (1.0 + P95_REGRESSION_HEADROOM);
    println!(
        "30000 seeds: fresh growth_eval p95 {:.4} ms vs committed {committed_p95:.4} ms \
         (limit {limit:.4} ms, wall {:.1} ms)",
        fresh.p95_ms, fresh.wall_ms
    );
    if fresh.p95_ms > limit {
        eprintln!(
            "trajectory-check: FAIL: growth_eval p95 regressed more than {:.0}% \
             ({:.4} ms > {limit:.4} ms)",
            P95_REGRESSION_HEADROOM * 100.0,
            fresh.p95_ms
        );
        ok = false;
    }
    // 300 K scaling gate, active once the document carries the point.
    if let (Some(committed_p95), Some(committed_wall)) = (
        extract_point_field(&json, 300_000, "growth_eval_p95_ms"),
        extract_point_field(&json, 300_000, "wall_ms"),
    ) {
        let fresh = fresh_sample_for(&json, 300_000, opts);
        let p95_limit = committed_p95 * (1.0 + P95_REGRESSION_HEADROOM);
        let wall_limit = committed_wall * (1.0 + WALL_300K_REGRESSION_HEADROOM);
        println!(
            "300000 seeds: fresh growth_eval p95 {:.4} ms vs committed {committed_p95:.4} ms \
             (limit {p95_limit:.4} ms), wall {:.1} ms vs committed {committed_wall:.1} ms \
             (limit {wall_limit:.1} ms)",
            fresh.p95_ms, fresh.wall_ms
        );
        if fresh.p95_ms > p95_limit {
            eprintln!(
                "trajectory-check: FAIL: 300K growth_eval p95 regressed more than {:.0}% \
                 ({:.4} ms > {p95_limit:.4} ms)",
                P95_REGRESSION_HEADROOM * 100.0,
                fresh.p95_ms
            );
            ok = false;
        }
        if fresh.wall_ms > wall_limit {
            eprintln!(
                "trajectory-check: FAIL: 300K wall regressed more than {:.0}% \
                 ({:.1} ms > {wall_limit:.1} ms) — round-loop scaling broke",
                WALL_300K_REGRESSION_HEADROOM * 100.0,
                fresh.wall_ms
            );
            ok = false;
        }
    }
    if ok {
        println!("trajectory-check: OK");
    }
    ok
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_trajectory_has_stable_shape() {
        let opts = ExperimentOptions {
            quick: true,
            budget: 3_000,
            threads: 1,
            ..ExperimentOptions::default()
        };
        let t = collect(&opts);
        assert_eq!(
            t.seed_scaling.iter().map(|p| p.seeds).collect::<Vec<_>>(),
            vec![10, 100, 1_000]
        );
        assert!(t.seed_scaling.iter().all(|p| p.targets > 0));
        assert!(t.seed_scaling.iter().all(|p| p.growth_eval_p95_ms >= 0.0));
        assert!(t.seed_scaling.iter().all(|p| p.budget >= p.seeds as u64));
        assert!(t.seed_scaling.iter().all(|p| p.rounds > 0));
        assert!(t.seed_scaling.iter().all(|p| p.repeats == 1));
        // Every run spends time filling growth caches; the phase totals
        // must reflect that rather than read zero.
        assert!(t.seed_scaling.iter().all(|p| p.phase_ns.cache_fill > 0));
        assert!(t.budget_charge.items > 0 && t.budget_charge.per_sec > 0.0);
        assert!(t.tree_query.items == 1_000 && t.tree_query.per_sec > 0.0);
        let json = t.to_json();
        assert!(json.starts_with("{\n  \"schema\": \"sixgen-bench-trajectory/v3\""));
        assert!(json.contains("\"seed_scaling\""));
        assert!(json.contains("\"growth_eval_p95_ms\""));
        assert!(json.contains("\"phase_ns\""));
        assert!(json.contains("\"budget_charge\""));
        assert!(json.contains("\"tree_query\""));
        assert!(json.ends_with("}\n"));
        // The check-mode extractor round-trips the emitted document.
        let p = &t.seed_scaling[2];
        assert_eq!(
            extract_point_field(&json, p.seeds, "targets"),
            Some(p.targets as f64)
        );
        assert_eq!(
            extract_point_field(&json, p.seeds, "budget"),
            Some(p.budget as f64)
        );
        assert_eq!(
            extract_point_field(&json, p.seeds, "rounds"),
            Some(p.rounds as f64)
        );
        assert_eq!(
            extract_point_field(&json, p.seeds, "select"),
            Some(p.phase_ns.select as f64)
        );
        let wall = extract_point_field(&json, p.seeds, "wall_ms").unwrap();
        assert!((wall - p.wall_ms).abs() < 0.001);
        assert_eq!(extract_point_field(&json, 999, "wall_ms"), None);
        assert_eq!(extract_point_field(&json, p.seeds, "no_such_field"), None);
    }

    #[test]
    fn extract_point_field_parses_committed_layout() {
        let json = "{\n  \"schema\": \"sixgen-bench-trajectory/v3\",\n  \"seed_scaling\": [\n    \
                    {\"seeds\": 30000, \"budget\": 50000, \"wall_ms\": 6077.133, \
                    \"cpu_ms\": 6021.0, \"growth_eval_p95_ms\": 0.123456, \"targets\": 50000, \
                    \"rounds\": 3574, \"repeats\": 3, \"phase_ns\": {\"cache_fill\": 600000000, \
                    \"select\": 60000000, \"commit\": 30000000, \"subsume\": 70000000}},\n    \
                    {\"seeds\": 100000, \"budget\": 150000, \"wall_ms\": 20000.5, \
                    \"cpu_ms\": 19000.0, \"growth_eval_p95_ms\": 0.2, \"targets\": 150000, \
                    \"rounds\": 12470, \"repeats\": 3, \"phase_ns\": {\"cache_fill\": 3400000000, \
                    \"select\": 650000000, \"commit\": 130000000, \"subsume\": 300000000}}\n  ]\n}\n";
        assert_eq!(
            extract_point_field(json, 30_000, "growth_eval_p95_ms"),
            Some(0.123456)
        );
        assert_eq!(extract_point_field(json, 100_000, "wall_ms"), Some(20000.5));
        assert_eq!(extract_point_field(json, 30_000, "budget"), Some(50000.0));
        assert_eq!(extract_point_field(json, 100_000, "rounds"), Some(12470.0));
        assert_eq!(
            extract_point_field(json, 30_000, "cache_fill"),
            Some(600000000.0)
        );
        assert_eq!(extract_point_field(json, 10_000, "wall_ms"), None);
    }
}
