//! The full evaluation pipeline of §6: build the world, extract seeds,
//! group by routed prefix, run 6Gen per prefix, scan the targets, and
//! dealias the hits (including the per-AS /112 refinement).

use rand::rngs::StdRng;
use rand::SeedableRng;
use sixgen_addr::{NybbleAddr, Prefix};
use sixgen_core::{ClusterInfo, ClusterMode, Config, RunStats, SixGen};
use sixgen_datasets::downsample;
use sixgen_datasets::world::{build_world, WorldConfig};
use sixgen_obs::{maybe_span, MetricsRegistry, SpanId, TraceSink};
use sixgen_simnet::dealias::{detect_aliased, AliasReport, DealiasConfig};
use sixgen_simnet::{HostKind, Internet, ProbeConfig, Prober, SeedExtraction};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use std::time::Instant;

/// Configuration of one full pipeline run.
#[derive(Debug, Clone)]
pub struct WorldRunConfig {
    /// World construction parameters (scale, seed).
    pub world: WorldConfig,
    /// Seed-corpus extraction parameters.
    pub extraction: SeedExtraction,
    /// 6Gen probe budget per routed prefix (the paper's default: 1 M; the
    /// simulated default world plateaus around 50 K).
    pub budget_per_prefix: u64,
    /// Loose or tight cluster ranges (§6.3).
    pub mode: ClusterMode,
    /// Worker threads per 6Gen run.
    pub threads: usize,
    /// Scanned port (the paper: TCP/80).
    pub port: u16,
    /// Skip prefixes with fewer seeds than this (a single seed cannot
    /// cluster; the paper's analyses start at 2).
    pub min_seeds: usize,
    /// Keep only seeds of this host kind (§6.7.1's NS-only experiment).
    pub seed_kind: Option<HostKind>,
    /// Downsample the seed corpus to this fraction first (§6.7.2).
    pub downsample: Option<f64>,
    /// Master RNG seed for extraction/downsampling/scanning/dealiasing.
    pub rng_seed: u64,
    /// How many top ASes (by post-/96 hits) get the /112 refinement.
    pub refine_top_ases: usize,
    /// Optional metrics sink. Shared with every per-prefix 6Gen run and
    /// the prober; the pipeline additionally records per-prefix runtime
    /// (`bench/prefix_run`) and scan/dealias probe counters.
    pub metrics: Option<Arc<MetricsRegistry>>,
    /// Optional trace sink, shared with every per-prefix 6Gen run and the
    /// prober. The pipeline records a `bench/run_world` root span and one
    /// `bench/prefix_run` span per routed prefix nested under it.
    pub trace: Option<Arc<TraceSink>>,
}

impl Default for WorldRunConfig {
    fn default() -> Self {
        WorldRunConfig {
            world: WorldConfig::default(),
            extraction: SeedExtraction::default(),
            budget_per_prefix: 50_000,
            mode: ClusterMode::Loose,
            threads: 0,
            port: 80,
            min_seeds: 2,
            seed_kind: None,
            downsample: None,
            rng_seed: 0xEC0,
            refine_top_ases: 10,
            metrics: None,
            trace: None,
        }
    }
}

/// Result of 6Gen + scan on one routed prefix.
#[derive(Debug)]
pub struct PrefixRunResult {
    /// The routed prefix.
    pub prefix: Prefix,
    /// Its origin AS.
    pub asn: u32,
    /// Seeds fed to 6Gen.
    pub seed_count: usize,
    /// Final clusters.
    pub clusters: Vec<ClusterInfo>,
    /// Run statistics.
    pub stats: RunStats,
    /// Scan hits among the generated targets.
    pub hits: Vec<NybbleAddr>,
    /// Seeds that no longer respond (for the §6.6 churn analysis).
    pub inactive_seeds: usize,
}

/// The complete outcome of one pipeline run.
#[derive(Debug)]
pub struct WorldRun {
    /// The ground-truth model.
    pub internet: Internet,
    /// Seeds per routed prefix actually used (post filter/downsample).
    pub seeds_by_prefix: HashMap<Prefix, Vec<NybbleAddr>>,
    /// Per-prefix results.
    pub results: Vec<PrefixRunResult>,
    /// The /96 alias report.
    pub alias_report: AliasReport,
    /// Hits outside aliased /96es and outside /112-refined ASes.
    pub non_aliased_hits: Vec<NybbleAddr>,
    /// Hits inside aliased regions (either granularity).
    pub aliased_hits: Vec<NybbleAddr>,
    /// ASes excluded by the /112 refinement (the paper found Cloudflare
    /// and Mittwald).
    pub refined_asns: Vec<u32>,
    /// Total probe packets sent (scanning + dealiasing).
    pub probes_sent: u64,
}

impl WorldRun {
    /// All hits, aliased or not.
    pub fn total_hits(&self) -> usize {
        self.non_aliased_hits.len() + self.aliased_hits.len()
    }

    /// Per-AS address counts for a hit set.
    pub fn count_by_asn<'a>(
        &self,
        addrs: impl IntoIterator<Item = &'a NybbleAddr>,
    ) -> HashMap<u32, u64> {
        let mut counts: HashMap<u32, u64> = HashMap::new();
        for addr in addrs {
            if let Some(entry) = self.internet.table().lookup(*addr) {
                *counts.entry(entry.asn).or_default() += 1;
            }
        }
        counts
    }
}

/// Extracts, filters, and groups the seed corpus for a config.
pub fn prepare_seeds(
    internet: &Internet,
    cfg: &WorldRunConfig,
) -> HashMap<Prefix, Vec<NybbleAddr>> {
    let mut rng = StdRng::seed_from_u64(cfg.rng_seed ^ 0x5EED);
    let records = internet.extract_seeds(&cfg.extraction, &mut rng);
    let mut addrs: Vec<NybbleAddr> = records
        .iter()
        .filter(|r| cfg.seed_kind.is_none_or(|k| r.kind == k))
        .map(|r| r.addr)
        .collect();
    addrs.sort_unstable();
    addrs.dedup();
    if let Some(fraction) = cfg.downsample {
        addrs = downsample(&addrs, fraction, &mut rng);
    }
    let (grouped, _unrouted) = internet.table().group_by_prefix(addrs);
    grouped
        .into_iter()
        .filter(|(_, seeds)| seeds.len() >= cfg.min_seeds)
        .collect()
}

/// Runs the full §6 pipeline.
pub fn run_world(cfg: &WorldRunConfig) -> WorldRun {
    let internet = build_world(&cfg.world);
    let seeds_by_prefix = prepare_seeds(&internet, cfg);

    // Deterministic prefix order.
    let mut prefixes: Vec<Prefix> = seeds_by_prefix.keys().copied().collect();
    prefixes.sort();

    let mut prober = Prober::new(
        &internet,
        ProbeConfig {
            rng_seed: cfg.rng_seed ^ 0x5CA9,
            metrics: cfg.metrics.clone(),
            trace: cfg.trace.clone(),
            ..ProbeConfig::default()
        },
    )
    .expect("valid probe config");

    let trace = cfg.trace.as_deref();
    let mut run_span = maybe_span(trace, "bench", "run_world", SpanId::NONE);
    run_span.attr("prefixes", prefixes.len() as u64);
    let run_span_id = run_span.id();

    // Pipeline-level metric handles (prober/engine layers register their
    // own under `prober/...` and `engine/...`).
    let prefix_run = cfg.metrics.as_deref().map(|m| m.time_histogram("bench/prefix_run"));
    let prefixes_ctr = cfg.metrics.as_deref().map(|m| m.counter("bench/prefixes"));
    let scan_probes = cfg.metrics.as_deref().map(|m| m.counter("bench/scan_probes"));
    let dealias_probes = cfg.metrics.as_deref().map(|m| m.counter("bench/dealias_probes"));

    let mut results = Vec::with_capacity(prefixes.len());
    let mut all_hits: Vec<NybbleAddr> = Vec::new();
    for prefix in prefixes {
        let seeds = &seeds_by_prefix[&prefix];
        let asn = internet
            .table()
            .lookup(prefix.network())
            .map(|e| e.asn)
            .unwrap_or(0);
        let started = Instant::now();
        let mut prefix_span = maybe_span(trace, "bench", "prefix_run", run_span_id);
        prefix_span.attr("prefix_high", (prefix.network().bits() >> 64) as u64);
        prefix_span.attr("seeds", seeds.len() as u64);
        let outcome = SixGen::new(
            seeds.iter().copied(),
            Config {
                budget: cfg.budget_per_prefix,
                mode: cfg.mode,
                threads: cfg.threads,
                rng_seed: cfg.rng_seed ^ prefix.network().bits() as u64,
                metrics: cfg.metrics.clone(),
                trace: cfg.trace.clone(),
                ..Config::default()
            },
        )
        .run();
        if let Some(h) = &prefix_run {
            h.record_duration(started.elapsed());
        }
        if let Some(c) = &prefixes_ctr {
            c.inc();
        }
        prefix_span.attr("targets", outcome.targets.len() as u64);
        drop(prefix_span);
        let scan = prober.scan(outcome.targets.iter(), cfg.port);
        let hit_set: HashSet<NybbleAddr> = scan.hits.iter().copied().collect();
        let inactive_seeds = seeds.iter().filter(|s| !hit_set.contains(s)).count();
        all_hits.extend(scan.hits.iter().copied());
        results.push(PrefixRunResult {
            prefix,
            asn,
            seed_count: seeds.len(),
            clusters: outcome.clusters,
            stats: outcome.stats,
            hits: scan.hits,
            inactive_seeds,
        });
    }
    let packets_after_scans = prober.stats().packets_sent;
    if let Some(c) = &scan_probes {
        c.add(packets_after_scans);
    }

    // §6.2: /96 alias detection over all hits.
    let report = detect_aliased(
        &mut prober,
        &all_hits,
        cfg.port,
        &DealiasConfig {
            rng_seed: cfg.rng_seed ^ 0xA11A,
            ..DealiasConfig::default()
        },
    );
    let (mut non_aliased, mut aliased) = report.split(all_hits.iter());

    // §6.2: per-AS /112 refinement of the top ASes by remaining hits.
    let mut by_asn: HashMap<u32, Vec<NybbleAddr>> = HashMap::new();
    for &hit in &non_aliased {
        if let Some(entry) = internet.table().lookup(hit) {
            by_asn.entry(entry.asn).or_default().push(hit);
        }
    }
    let mut top: Vec<(u32, usize)> = by_asn.iter().map(|(&a, v)| (a, v.len())).collect();
    top.sort_by_key(|&(asn, n)| (std::cmp::Reverse(n), asn));
    let mut refined_asns = Vec::new();
    for &(asn, _) in top.iter().take(cfg.refine_top_ases) {
        let hits = &by_asn[&asn];
        let sub_report = detect_aliased(
            &mut prober,
            hits,
            cfg.port,
            &DealiasConfig {
                prefix_len: 112,
                rng_seed: cfg.rng_seed ^ 0xA112 ^ asn as u64,
                ..DealiasConfig::default()
            },
        );
        // "Aliased at /112 granularity": the overwhelming majority of the
        // AS's hit-bearing /112s test aliased.
        if sub_report.tested > 0
            && sub_report.aliased.len() as f64 / sub_report.tested as f64 > 0.8
        {
            refined_asns.push(asn);
        }
    }
    if !refined_asns.is_empty() {
        let excluded: HashSet<u32> = refined_asns.iter().copied().collect();
        let (keep, moved): (Vec<NybbleAddr>, Vec<NybbleAddr>) =
            non_aliased.into_iter().partition(|h| {
                internet
                    .table()
                    .lookup(*h)
                    .map(|e| !excluded.contains(&e.asn))
                    .unwrap_or(true)
            });
        non_aliased = keep;
        aliased.extend(moved);
    }

    let probes_sent = prober.stats().packets_sent;
    if let Some(c) = &dealias_probes {
        c.add(probes_sent - packets_after_scans);
    }
    WorldRun {
        internet,
        seeds_by_prefix,
        results,
        alias_report: report,
        non_aliased_hits: non_aliased,
        aliased_hits: aliased,
        refined_asns,
        probes_sent,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg() -> WorldRunConfig {
        WorldRunConfig {
            world: WorldConfig {
                scale: 0.05,
                rng_seed: 3,
            },
            budget_per_prefix: 3000,
            threads: 1,
            ..WorldRunConfig::default()
        }
    }

    #[test]
    fn pipeline_end_to_end_smoke() {
        let run = run_world(&quick_cfg());
        assert!(!run.results.is_empty());
        assert!(run.total_hits() > 0, "some hosts must be found");
        // The planted aliased regions dominate raw hits.
        assert!(
            run.aliased_hits.len() > run.non_aliased_hits.len(),
            "aliased {} vs non-aliased {}",
            run.aliased_hits.len(),
            run.non_aliased_hits.len()
        );
        // Real discoveries exist after filtering.
        assert!(!run.non_aliased_hits.is_empty());
        // The /112-refined ASes are found (Cloudflare 13335, Mittwald
        // 15817 stand-ins).
        assert!(
            run.refined_asns.contains(&13335) || run.refined_asns.contains(&15817),
            "refined: {:?}",
            run.refined_asns
        );
        assert!(run.probes_sent > 0);
    }

    #[test]
    fn ns_only_filter_reduces_seed_count() {
        let internet = build_world(&quick_cfg().world);
        let all = prepare_seeds(&internet, &quick_cfg());
        let ns_only = prepare_seeds(
            &internet,
            &WorldRunConfig {
                seed_kind: Some(HostKind::NameServer),
                ..quick_cfg()
            },
        );
        let total_all: usize = all.values().map(|v| v.len()).sum();
        let total_ns: usize = ns_only.values().map(|v| v.len()).sum();
        assert!(total_ns > 0);
        assert!(total_ns < total_all / 4, "{total_ns} vs {total_all}");
    }

    #[test]
    fn downsampling_reduces_seeds() {
        let internet = build_world(&quick_cfg().world);
        let full = prepare_seeds(&internet, &quick_cfg());
        let sampled = prepare_seeds(
            &internet,
            &WorldRunConfig {
                downsample: Some(0.25),
                ..quick_cfg()
            },
        );
        let total_full: usize = full.values().map(|v| v.len()).sum();
        let total_sampled: usize = sampled.values().map(|v| v.len()).sum();
        assert!(total_sampled < total_full / 2);
    }
}
