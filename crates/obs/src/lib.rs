//! # sixgen-obs — the observability layer
//!
//! A zero-dependency metrics substrate for the whole workspace: atomic
//! [`Counter`]s, [`Gauge`]s, log-scale [`Histogram`]s, and [`PhaseTimer`]s
//! collected in a [`MetricsRegistry`] and exported as deterministic JSON.
//!
//! The paper's headline engineering claims are about *runtime* (§5.5 takes
//! 6Gen "from days to minutes"); validating them requires knowing where
//! time goes. This crate is the measurement substrate: the engine, the
//! simulated prober, and the bench pipeline all record into a shared
//! registry, and the `BENCH_core.json` perf trajectory is built on it.
//!
//! ## Determinism rules
//!
//! The JSON export ([`MetricsRegistry::to_json`]) has exactly two top-level
//! sections:
//!
//! * `"deterministic"` — counters, gauges, and value histograms. Everything
//!   recorded here must be a pure function of the workload and its RNG
//!   seeds (packet counts, candidate-set sizes, budget totals, virtual-time
//!   nanoseconds). Two runs with the same seeds produce byte-identical
//!   deterministic sections.
//! * `"timing"` — phase timers and duration histograms, fed from wall-clock
//!   measurements. Never compared across runs.
//!
//! Keys are emitted in sorted (BTreeMap) order and no wall-clock timestamps
//! appear anywhere in the deterministic section, so the export is stable by
//! construction.
//!
//! All update paths are lock-free atomics: registration takes a mutex once
//! per metric name, but callers hold `Arc` handles and increment without
//! contention, so parallel growth workers and probers can record freely.
//!
//! ```
//! use sixgen_obs::MetricsRegistry;
//! use std::time::Duration;
//!
//! let registry = MetricsRegistry::new();
//! registry.counter("engine/growths").add(3);
//! registry.histogram("engine/candidates").record(17);
//! registry.phase("engine/cache_fill").record(Duration::from_millis(2));
//! let json = registry.to_json();
//! assert!(json.starts_with("{\"deterministic\":"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod prom;
pub mod trace;

pub use trace::{maybe_span, validate_json, Span, SpanId, SpanRecord, SummaryRow, TraceSink};

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::io::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Writes `bytes` to `path` atomically: the content goes to a temporary
/// file in the same directory (`<name>.tmp`), is flushed to disk, and is
/// renamed over the destination. Readers therefore always see either the
/// previous complete file or the new complete file — never a torn,
/// half-written artifact, even if the process crashes mid-write.
///
/// Used for every artifact this workspace persists (metrics exports,
/// traces, engine checkpoints). The temporary file is removed on failure,
/// best-effort.
pub fn write_atomic(path: &std::path::Path, bytes: &[u8]) -> std::io::Result<()> {
    let mut name = path
        .file_name()
        .ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                format!("path has no file name: {}", path.display()),
            )
        })?
        .to_os_string();
    name.push(".tmp");
    let tmp = path.with_file_name(name);
    let result = (|| {
        let mut file = std::fs::File::create(&tmp)?;
        file.write_all(bytes)?;
        file.sync_all()?;
        drop(file);
        std::fs::rename(&tmp, path)
    })();
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

/// A monotonically increasing `u64` counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Increments by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increments by `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Sets the counter to `n` (for re-exporting totals computed
    /// elsewhere, e.g. `RunStats` fields at the end of a run).
    pub fn set(&self, n: u64) {
        self.0.store(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A signed instantaneous value.
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Sets the gauge.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adjusts the gauge by `delta` (may be negative).
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of histogram buckets: one for zero, one per power of two.
const BUCKETS: usize = 65;

/// A log₂-bucketed histogram of `u64` samples.
///
/// Bucket 0 counts zero-valued samples; bucket `i ≥ 1` counts samples `v`
/// with `2^(i-1) ≤ v < 2^i`. Alongside the buckets the histogram keeps
/// exact count, sum, min, and max, all updated with relaxed atomics so
/// concurrent recording is cheap and never blocks.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [(); BUCKETS].map(|()| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Index of the bucket a value falls into.
    fn bucket_index(value: u64) -> usize {
        match value {
            0 => 0,
            v => 64 - v.leading_zeros() as usize,
        }
    }

    /// Inclusive lower bound of bucket `i`.
    fn bucket_lower_bound(i: usize) -> u64 {
        match i {
            0 => 0,
            _ => 1u64 << (i - 1),
        }
    }

    /// Records one sample.
    pub fn record(&self, value: u64) {
        self.buckets[Self::bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Records a duration as whole nanoseconds (saturating at `u64::MAX`).
    pub fn record_duration(&self, d: Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded samples.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Smallest recorded sample, or `None` if empty.
    pub fn min(&self) -> Option<u64> {
        if self.count() == 0 {
            None
        } else {
            Some(self.min.load(Ordering::Relaxed))
        }
    }

    /// Largest recorded sample, or `None` if empty.
    pub fn max(&self) -> Option<u64> {
        if self.count() == 0 {
            None
        } else {
            Some(self.max.load(Ordering::Relaxed))
        }
    }

    /// Count in the bucket whose inclusive lower bound is `2^(i-1)`
    /// (`i = 0` is the zero bucket). Mostly for tests.
    pub fn bucket_count(&self, value: u64) -> u64 {
        self.buckets[Self::bucket_index(value)].load(Ordering::Relaxed)
    }

    /// Estimated `q`-quantile (`0 < q ≤ 1`) of the recorded samples, or
    /// `None` if the histogram is empty. Computed by nearest rank over the
    /// log₂ buckets with linear interpolation inside the target bucket,
    /// clamped to the observed `[min, max]`.
    ///
    /// **Error bound:** the estimate always falls in the same bucket as
    /// the exact nearest-rank sample, so the absolute error is strictly
    /// less than that bucket's width — `2^(i-1)` for bucket `i ≥ 1`
    /// (i.e. less than the sample itself, a relative error under 100%) —
    /// and exactly `0` for the zero bucket. Clamping to `[min, max]`
    /// cannot move the estimate out of the bucket: if `min` or `max` lies
    /// in a different bucket it lies strictly outside the target bucket's
    /// bounds on the far side, making the clamp a no-op.
    pub fn percentile(&self, q: f64) -> Option<u64> {
        let count = self.count();
        if count == 0 {
            return None;
        }
        let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
        let mut seen: u64 = 0;
        for (i, bucket) in self.buckets.iter().enumerate() {
            let n = bucket.load(Ordering::Relaxed);
            if n == 0 {
                continue;
            }
            if seen + n >= rank {
                if i == 0 {
                    return Some(0);
                }
                let lower = Self::bucket_lower_bound(i);
                let upper = lower.saturating_mul(2).saturating_sub(1);
                let frac = (rank - seen) as f64 / n as f64;
                let est = lower.saturating_add((frac * lower as f64) as u64);
                let est = est.clamp(lower, upper);
                let min = self.min.load(Ordering::Relaxed);
                let max = self.max.load(Ordering::Relaxed);
                return Some(est.clamp(min.min(max), max));
            }
            seen += n;
        }
        self.max()
    }

    fn write_json(&self, out: &mut String) {
        let count = self.count();
        out.push_str("{\"count\":");
        let _ = write!(out, "{count}");
        let _ = write!(out, ",\"sum\":{}", self.sum());
        if let (Some(min), Some(max)) = (self.min(), self.max()) {
            let _ = write!(out, ",\"min\":{min},\"max\":{max}");
            // Percentile estimates are pure functions of the buckets and
            // min/max, so they are as deterministic as the rest of the
            // histogram and safe in both export namespaces.
            if let (Some(p50), Some(p95), Some(p99)) = (
                self.percentile(0.50),
                self.percentile(0.95),
                self.percentile(0.99),
            ) {
                let _ = write!(out, ",\"p50\":{p50},\"p95\":{p95},\"p99\":{p99}");
            }
        }
        // Non-empty buckets as [lower_bound, count] pairs, in bound order
        // (object keys would sort lexicographically — "16" before "2").
        out.push_str(",\"buckets\":[");
        let mut first = true;
        for (i, bucket) in self.buckets.iter().enumerate() {
            let n = bucket.load(Ordering::Relaxed);
            if n == 0 {
                continue;
            }
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(out, "[{},{n}]", Self::bucket_lower_bound(i));
        }
        out.push_str("]}");
    }
}

/// Accumulated time spent in one named phase: total nanoseconds and the
/// number of times the phase ran.
///
/// Phase timers always land in the `"timing"` section of the export —
/// they measure wall clock and are never deterministic.
#[derive(Debug, Default)]
pub struct PhaseTimer {
    total_nanos: AtomicU64,
    count: AtomicU64,
}

impl PhaseTimer {
    /// Adds one completed phase execution.
    pub fn record(&self, elapsed: Duration) {
        self.total_nanos.fetch_add(
            u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX),
            Ordering::Relaxed,
        );
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Total accumulated time.
    pub fn total(&self) -> Duration {
        Duration::from_nanos(self.total_nanos.load(Ordering::Relaxed))
    }

    /// Number of recorded executions.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    fn write_json(&self, out: &mut String) {
        let _ = write!(
            out,
            "{{\"count\":{},\"total_ns\":{}}}",
            self.count(),
            self.total_nanos.load(Ordering::Relaxed)
        );
    }
}

/// RAII guard returned by [`timed`]: records the elapsed time into its
/// [`PhaseTimer`] when dropped.
#[derive(Debug)]
pub struct PhaseGuard {
    timer: Arc<PhaseTimer>,
    started: Instant,
}

impl Drop for PhaseGuard {
    fn drop(&mut self) {
        self.timer.record(self.started.elapsed());
    }
}

/// Starts timing a scope against `timer`; the elapsed time is recorded
/// when the returned guard drops.
pub fn timed(timer: &Arc<PhaseTimer>) -> PhaseGuard {
    PhaseGuard {
        timer: Arc::clone(timer),
        started: Instant::now(),
    }
}

#[derive(Debug, Default)]
pub(crate) struct Inner {
    pub(crate) counters: BTreeMap<String, Arc<Counter>>,
    pub(crate) gauges: BTreeMap<String, Arc<Gauge>>,
    pub(crate) histograms: BTreeMap<String, Arc<Histogram>>,
    pub(crate) phases: BTreeMap<String, Arc<PhaseTimer>>,
    pub(crate) time_histograms: BTreeMap<String, Arc<Histogram>>,
}

/// The workspace metrics registry.
///
/// Registration (`counter`, `gauge`, `histogram`, `phase`,
/// `time_histogram`) is idempotent — the same name always yields the same
/// underlying metric — and takes a short mutex; updates through the
/// returned `Arc` handles are lock-free. Hot paths should register once
/// up front and keep the handles.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    pub(crate) inner: Mutex<Inner>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Convenience: a fresh registry behind an `Arc`, ready to share.
    pub fn shared() -> Arc<MetricsRegistry> {
        Arc::new(MetricsRegistry::new())
    }

    /// Registers (or fetches) a counter. Deterministic section.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut inner = self.inner.lock().expect("metrics registry poisoned");
        Arc::clone(inner.counters.entry(name.to_owned()).or_default())
    }

    /// Registers (or fetches) a gauge. Deterministic section.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut inner = self.inner.lock().expect("metrics registry poisoned");
        Arc::clone(inner.gauges.entry(name.to_owned()).or_default())
    }

    /// Registers (or fetches) a value histogram. Deterministic section:
    /// record only workload-derived values (sizes, counts, virtual-time
    /// nanoseconds), never wall-clock measurements.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut inner = self.inner.lock().expect("metrics registry poisoned");
        Arc::clone(inner.histograms.entry(name.to_owned()).or_default())
    }

    /// Registers (or fetches) a phase timer. Timing section.
    pub fn phase(&self, name: &str) -> Arc<PhaseTimer> {
        let mut inner = self.inner.lock().expect("metrics registry poisoned");
        Arc::clone(inner.phases.entry(name.to_owned()).or_default())
    }

    /// Registers (or fetches) a histogram of wall-clock durations (record
    /// with [`Histogram::record_duration`]). Timing section.
    pub fn time_histogram(&self, name: &str) -> Arc<Histogram> {
        let mut inner = self.inner.lock().expect("metrics registry poisoned");
        Arc::clone(inner.time_histograms.entry(name.to_owned()).or_default())
    }

    /// Serializes the deterministic section alone (the object assigned to
    /// the `"deterministic"` key of [`to_json`](Self::to_json)).
    pub fn deterministic_json(&self) -> String {
        let inner = self.inner.lock().expect("metrics registry poisoned");
        let mut out = String::new();
        Self::write_deterministic(&inner, &mut out);
        out
    }

    fn write_deterministic(inner: &Inner, out: &mut String) {
        out.push('{');
        out.push_str("\"counters\":{");
        write_map(out, &inner.counters, |out, c| {
            let _ = write!(out, "{}", c.get());
        });
        out.push_str("},\"gauges\":{");
        write_map(out, &inner.gauges, |out, g| {
            let _ = write!(out, "{}", g.get());
        });
        out.push_str("},\"histograms\":{");
        write_map(out, &inner.histograms, |out, h| h.write_json(out));
        out.push_str("}}");
    }

    /// Serializes the whole registry as a JSON object with stable key
    /// order: `{"deterministic": {...}, "timing": {...}}`. See the crate
    /// docs for the determinism rules.
    pub fn to_json(&self) -> String {
        let inner = self.inner.lock().expect("metrics registry poisoned");
        let mut out = String::from("{\"deterministic\":");
        Self::write_deterministic(&inner, &mut out);
        out.push_str(",\"timing\":{\"phases\":{");
        write_map(&mut out, &inner.phases, |out, p| p.write_json(out));
        out.push_str("},\"histograms\":{");
        write_map(&mut out, &inner.time_histograms, |out, h| h.write_json(out));
        out.push_str("}}}");
        out
    }
}

fn write_map<T>(
    out: &mut String,
    map: &BTreeMap<String, Arc<T>>,
    mut write_value: impl FnMut(&mut String, &T),
) {
    let mut first = true;
    for (name, value) in map {
        if !first {
            out.push(',');
        }
        first = false;
        out.push('"');
        out.push_str(&escape_json(name));
        out.push_str("\":");
        write_value(out, value);
    }
}

/// Escapes a string for inclusion in a JSON string literal.
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let r = MetricsRegistry::new();
        let c = r.counter("a/count");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        c.set(9);
        assert_eq!(r.counter("a/count").get(), 9, "same handle by name");
        let g = r.gauge("a/level");
        g.set(-3);
        g.add(5);
        assert_eq!(g.get(), 2);
    }

    #[test]
    fn concurrent_counter_increments_are_lossless() {
        let r = MetricsRegistry::new();
        let c = r.counter("hot");
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let c = Arc::clone(&c);
                scope.spawn(move || {
                    for _ in 0..10_000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), 80_000);
    }

    #[test]
    fn histogram_bucketing() {
        let h = Histogram::default();
        for v in [0, 0, 1, 2, 3, 4, 15, 16, 1024, u64::MAX] {
            h.record(v);
        }
        assert_eq!(h.count(), 10);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(u64::MAX));
        assert_eq!(h.bucket_count(0), 2, "zero bucket");
        assert_eq!(h.bucket_count(1), 1, "[1,2)");
        assert_eq!(h.bucket_count(2), 2, "[2,4): 2 and 3");
        assert_eq!(h.bucket_count(4), 1, "[4,8)");
        assert_eq!(h.bucket_count(8), 1, "[8,16): 15");
        assert_eq!(h.bucket_count(16), 1, "[16,32): 16");
        assert_eq!(h.bucket_count(1024), 1);
        assert_eq!(h.bucket_count(u64::MAX), 1, "top bucket");
    }

    #[test]
    fn concurrent_histogram_recording() {
        let r = MetricsRegistry::new();
        let h = r.histogram("sizes");
        std::thread::scope(|scope| {
            for t in 0..4 {
                let h = Arc::clone(&h);
                scope.spawn(move || {
                    for i in 0..1000u64 {
                        h.record(t * 1000 + i);
                    }
                });
            }
        });
        assert_eq!(h.count(), 4000);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(3999));
    }

    #[test]
    fn phase_timer_accumulates() {
        let r = MetricsRegistry::new();
        let p = r.phase("engine/fill");
        p.record(Duration::from_millis(3));
        p.record(Duration::from_millis(4));
        assert_eq!(p.count(), 2);
        assert_eq!(p.total(), Duration::from_millis(7));
        {
            let _guard = timed(&p);
        }
        assert_eq!(p.count(), 3);
    }

    #[test]
    fn json_is_stable_and_sorted() {
        let build = || {
            let r = MetricsRegistry::new();
            // Register in one order...
            r.counter("z/last").add(2);
            r.counter("a/first").add(1);
            r.gauge("mid").set(-7);
            r.histogram("h").record(5);
            r.histogram("h").record(100);
            r.phase("p").record(Duration::from_nanos(10));
            r.time_histogram("t").record_duration(Duration::from_nanos(20));
            r
        };
        let a = build();
        let r = MetricsRegistry::new();
        // ...and the equivalent data in another order.
        r.time_histogram("t").record_duration(Duration::from_nanos(20));
        r.histogram("h").record(100);
        r.histogram("h").record(5);
        r.counter("a/first").add(1);
        r.gauge("mid").add(-7);
        r.counter("z/last").add(2);
        r.phase("p").record(Duration::from_nanos(10));
        assert_eq!(a.to_json(), r.to_json());
        // Sorted keys: "a/first" precedes "z/last".
        let json = a.to_json();
        assert!(json.find("a/first").unwrap() < json.find("z/last").unwrap());
        assert!(json.starts_with("{\"deterministic\":{\"counters\":{"));
        assert!(json.contains("\"timing\":{\"phases\":{"));
        assert!(json.ends_with("}}}"));
    }

    #[test]
    fn deterministic_section_excludes_timing() {
        let r = MetricsRegistry::new();
        r.counter("c").inc();
        r.phase("wall").record(Duration::from_secs(1));
        let det = r.deterministic_json();
        assert!(det.contains("\"c\":1"));
        assert!(!det.contains("wall"));
        // And it matches the corresponding slice of the full export.
        assert!(r.to_json().starts_with(&format!("{{\"deterministic\":{det}")));
    }

    #[test]
    fn empty_registry_is_valid() {
        let r = MetricsRegistry::new();
        assert_eq!(
            r.to_json(),
            "{\"deterministic\":{\"counters\":{},\"gauges\":{},\"histograms\":{}},\
             \"timing\":{\"phases\":{},\"histograms\":{}}}"
                .replace(" ", "")
        );
    }

    #[test]
    fn json_escaping() {
        assert_eq!(escape_json("plain"), "plain");
        assert_eq!(escape_json("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(escape_json("x\ny"), "x\\ny");
        assert_eq!(escape_json("\u{1}"), "\\u0001");
    }

    #[test]
    fn percentiles_track_exact_values_within_a_bucket() {
        let h = Histogram::default();
        assert_eq!(h.percentile(0.5), None, "empty histogram");
        for v in 1..=100u64 {
            h.record(v);
        }
        // Exact nearest-rank percentiles are 50, 95, 99; estimates must
        // land in the same log₂ bucket ([32,64), [64,128), [64,128)).
        let p50 = h.percentile(0.50).unwrap();
        let p95 = h.percentile(0.95).unwrap();
        let p99 = h.percentile(0.99).unwrap();
        assert!((32..64).contains(&p50), "p50 = {p50}");
        assert!((64..128).contains(&p95), "p95 = {p95}");
        assert!((64..128).contains(&p99), "p99 = {p99}");
        assert!(p50 <= p95 && p95 <= p99, "monotone: {p50} {p95} {p99}");
        // Estimates never leave the observed range.
        assert!(p99 <= 100);
    }

    #[test]
    fn percentile_single_value_is_exact() {
        let h = Histogram::default();
        h.record(0);
        assert_eq!(h.percentile(0.5), Some(0));
        let h = Histogram::default();
        h.record(777);
        // A single sample: min == max == 777 clamps the estimate exactly.
        assert_eq!(h.percentile(0.5), Some(777));
        assert_eq!(h.percentile(0.99), Some(777));
    }

    #[test]
    fn histogram_json_includes_percentiles() {
        let r = MetricsRegistry::new();
        let h = r.histogram("h");
        h.record(777);
        let json = r.to_json();
        assert!(
            json.contains("\"p50\":777,\"p95\":777,\"p99\":777"),
            "{json}"
        );
    }

    #[test]
    fn histogram_json_orders_buckets_numerically() {
        let r = MetricsRegistry::new();
        let h = r.histogram("h");
        h.record(2);
        h.record(16);
        h.record(300);
        let json = r.to_json();
        // [2,1] before [16,1] before [256,1] — numeric, not lexicographic.
        let pos2 = json.find("[2,1]").expect("bucket 2");
        let pos16 = json.find("[16,1]").expect("bucket 16");
        let pos256 = json.find("[256,1]").expect("bucket 256");
        assert!(pos2 < pos16 && pos16 < pos256, "{json}");
    }
}
