//! Structured tracing: spans, sharded ring buffers, Chrome-trace export,
//! and self-time summaries.
//!
//! Aggregate metrics (the registry in the crate root) answer *how much*;
//! spans answer *where inside a run*. A [`TraceSink`] collects
//! [`Span`]s — named, categorized intervals with a parent link, a thread
//! id, and up to [`MAX_ATTRS`] `u64` key/value attributes — into
//! thread-sharded ring buffers, and exports them either as Chrome
//! trace-event JSON (loadable in Perfetto or `chrome://tracing`) or as a
//! per-span-kind self-time summary table with percentiles.
//!
//! ## Overhead discipline
//!
//! * **Tracing absent** (no sink configured): instrumentation sites hold
//!   an `Option` that is `None`, spans are [`Span::inert`], and neither
//!   the clock nor any allocation is touched.
//! * **Tracing disabled** (sink present, [`TraceSink::set_enabled`]
//!   `false`): starting a span costs exactly one relaxed atomic load and
//!   returns an inert span.
//! * **Tracing enabled**: a span start reads the clock once; a span end
//!   reads it again and appends a fixed-size record to the ring buffer of
//!   the recording thread's shard. Shards are selected by a per-thread id,
//!   so the shard lock is uncontended except when two live threads hash to
//!   the same shard; no allocation happens per span (names and attr keys
//!   are `&'static str`, attrs are a fixed array, and ring slots are
//!   reused after the first wrap).
//!
//! ## Boundedness
//!
//! Memory is capped at `SHARDS × capacity` records. When a ring wraps, the
//! oldest record in that shard is overwritten and the sink-wide
//! [`dropped`](TraceSink::dropped) counter increments; both exporters
//! surface the drop count so a truncated trace is never mistaken for a
//! complete one.
//!
//! ## Streaming
//!
//! The rings bound memory by forgetting the oldest spans — fine for
//! post-hoc summaries, lossy for long runs. [`TraceSink::stream_to`]
//! additionally appends every span to a writer *as it completes*, in
//! Chrome trace-event form, so a multi-hour run's full span history lands
//! on disk while the rings keep only the recent window. Streamed output
//! is incremental but still one valid JSON document once
//! [`TraceSink::finish_stream`] writes the trailer; a process killed
//! mid-stream leaves a truncated-but-greppable event log. Stream write
//! failures never disturb the run: the first error permanently disables
//! streaming (counted in [`TraceSink::stream_errors`]) and recording
//! continues ring-only.

use std::cell::Cell;
use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::escape_json;

/// Number of ring-buffer shards. Threads map to shards by a process-wide
/// per-thread id, so up to this many threads record without sharing a
/// lock.
const SHARDS: usize = 16;

/// Maximum number of key/value attributes per span; extra [`Span::attr`]
/// calls are silently ignored.
pub const MAX_ATTRS: usize = 6;

/// Identity of a span, used to nest children under parents explicitly
/// (parent links are threaded by hand rather than via thread-local span
/// stacks, which keeps recording wait-free and works across the engine's
/// scoped worker threads).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SpanId(u64);

impl SpanId {
    /// "No parent": the span is a root.
    pub const NONE: SpanId = SpanId(0);

    /// `true` for [`SpanId::NONE`] and for the id of an inert span.
    pub fn is_none(self) -> bool {
        self.0 == 0
    }
}

/// One completed span, as retained in the ring buffers.
#[derive(Debug, Clone)]
pub struct SpanRecord {
    /// Unique id (sink-scoped, starts at 1).
    pub id: u64,
    /// Parent span id, or 0 for roots.
    pub parent: u64,
    /// Process-wide small id of the recording thread.
    pub thread: u64,
    /// Coarse grouping (`"engine"`, `"prober"`, `"bench"`).
    pub category: &'static str,
    /// Span kind within the category (`"cache_fill"`, `"scan"`, …).
    pub name: &'static str,
    /// Start, in nanoseconds since the sink's epoch.
    pub start_ns: u64,
    /// End, in nanoseconds since the sink's epoch.
    pub end_ns: u64,
    /// Key/value attributes; only the first `attr_len` entries are live.
    pub attrs: [(&'static str, u64); MAX_ATTRS],
    /// Number of live attributes.
    pub attr_len: u8,
}

impl SpanRecord {
    /// The span's duration in nanoseconds.
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }

    /// The live attributes.
    pub fn attrs(&self) -> &[(&'static str, u64)] {
        &self.attrs[..self.attr_len as usize]
    }
}

/// Fixed-capacity overwrite-oldest buffer of span records.
#[derive(Debug, Default)]
struct Ring {
    records: Vec<SpanRecord>,
    /// Index of the oldest record once the buffer has wrapped.
    head: usize,
}

impl Ring {
    /// Appends a record; returns `true` if an old record was overwritten.
    fn push(&mut self, record: SpanRecord, capacity: usize) -> bool {
        if self.records.len() < capacity {
            self.records.push(record);
            false
        } else {
            self.records[self.head] = record;
            self.head = (self.head + 1) % capacity;
            true
        }
    }

    /// Records in arrival order.
    fn iter(&self) -> impl Iterator<Item = &SpanRecord> {
        self.records[self.head..]
            .iter()
            .chain(self.records[..self.head].iter())
    }
}

/// Process-wide thread-id assignment: each OS thread gets a stable small
/// id the first time it records a span (into any sink).
fn thread_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    thread_local! {
        static TID: Cell<u64> = const { Cell::new(0) };
    }
    TID.with(|cell| {
        let mut id = cell.get();
        if id == 0 {
            id = NEXT.fetch_add(1, Ordering::Relaxed);
            cell.set(id);
        }
        id
    })
}

/// Appends one span as a Chrome complete (`"ph":"X"`) trace event. Shared
/// by the batch exporter ([`TraceSink::to_chrome_json`]) and the live
/// stream so both emit byte-identical events. Timestamps and durations
/// are microseconds with the nanosecond remainder as three decimals.
fn chrome_event(span: &SpanRecord, out: &mut String) {
    let _ = write!(
        out,
        "{{\"ph\":\"X\",\"pid\":1,\"tid\":{},\"cat\":\"{}\",\"name\":\"{}\",\
         \"ts\":{}.{:03},\"dur\":{}.{:03},\"args\":{{\"span_id\":{}",
        span.thread,
        escape_json(span.category),
        escape_json(span.name),
        span.start_ns / 1_000,
        span.start_ns % 1_000,
        span.duration_ns() / 1_000,
        span.duration_ns() % 1_000,
        span.id,
    );
    if span.parent != 0 {
        let _ = write!(out, ",\"parent\":{}", span.parent);
    }
    for (key, value) in span.attrs() {
        let _ = write!(out, ",\"{}\":{value}", escape_json(key));
    }
    out.push_str("}}");
}

/// Live destination for streamed span events. The preamble always emits a
/// metadata event, so every subsequent event is comma-prefixed — no
/// first-event state to track.
struct StreamState {
    writer: Box<dyn std::io::Write + Send>,
}

impl std::fmt::Debug for StreamState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StreamState").finish_non_exhaustive()
    }
}

/// A bounded collector of [`Span`]s. See the module docs for the overhead
/// and boundedness guarantees.
#[derive(Debug)]
pub struct TraceSink {
    enabled: AtomicBool,
    /// Ring capacity per shard.
    capacity: usize,
    shards: [Mutex<Ring>; SHARDS],
    next_id: AtomicU64,
    dropped: AtomicU64,
    epoch: Instant,
    /// Fast-path flag mirroring `stream.is_some()`; checked lock-free on
    /// every record so non-streaming sinks pay one relaxed load.
    stream_active: AtomicBool,
    stream: Mutex<Option<StreamState>>,
    streamed: AtomicU64,
    stream_errors: AtomicU64,
}

impl Default for TraceSink {
    fn default() -> Self {
        TraceSink::with_capacity(TraceSink::DEFAULT_CAPACITY)
    }
}

impl TraceSink {
    /// Default ring capacity per shard (total retention:
    /// `16 × 8192 = 131 072` spans).
    pub const DEFAULT_CAPACITY: usize = 8192;

    /// A sink with the default capacity.
    pub fn new() -> TraceSink {
        TraceSink::default()
    }

    /// A sink retaining up to `capacity` spans *per shard* (total:
    /// `16 × capacity`). A zero capacity is rounded up to 1.
    pub fn with_capacity(capacity: usize) -> TraceSink {
        TraceSink {
            enabled: AtomicBool::new(true),
            capacity: capacity.max(1),
            shards: [(); SHARDS].map(|()| Mutex::new(Ring::default())),
            next_id: AtomicU64::new(1),
            dropped: AtomicU64::new(0),
            epoch: Instant::now(),
            stream_active: AtomicBool::new(false),
            stream: Mutex::new(None),
            streamed: AtomicU64::new(0),
            stream_errors: AtomicU64::new(0),
        }
    }

    /// Convenience: a fresh sink behind an `Arc`, ready to share.
    pub fn shared() -> Arc<TraceSink> {
        Arc::new(TraceSink::new())
    }

    /// Turns recording on or off. While off, [`span`](Self::span) costs one
    /// atomic load and records nothing.
    pub fn set_enabled(&self, enabled: bool) {
        self.enabled.store(enabled, Ordering::Relaxed);
    }

    /// Whether the sink is currently recording.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Number of spans lost to ring-buffer wrap-around since creation.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Number of spans currently retained.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("trace shard poisoned").records.len())
            .sum()
    }

    /// `true` if no span has been retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Starts a span. The returned guard records itself into the sink when
    /// dropped; use [`Span::attr`] to attach values and [`Span::id`] to
    /// parent children under it.
    pub fn span(&self, category: &'static str, name: &'static str, parent: SpanId) -> Span<'_> {
        if !self.enabled.load(Ordering::Relaxed) {
            return Span::inert();
        }
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        Span {
            sink: Some(self),
            id,
            parent: parent.0,
            category,
            name,
            start_ns: self.now_ns(),
            attrs: [("", 0); MAX_ATTRS],
            attr_len: 0,
        }
    }

    /// Nanoseconds since the sink's epoch.
    fn now_ns(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    fn record(&self, record: SpanRecord) {
        if self.stream_active.load(Ordering::Relaxed) {
            self.stream_event(&record);
        }
        let shard = (record.thread as usize) % SHARDS;
        let wrapped = self.shards[shard]
            .lock()
            .expect("trace shard poisoned")
            .push(record, self.capacity);
        if wrapped {
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Attaches a live writer: every span recorded from now on is also
    /// appended to `writer` as a Chrome trace event, in completion order
    /// (Chrome/Perfetto sort by timestamp on load). Writes the document
    /// preamble immediately; call [`finish_stream`](Self::finish_stream)
    /// to close the document. Replaces any previous stream without closing
    /// it. Spans recorded before this call are *not* replayed — stream
    /// early, before the rings can wrap.
    pub fn stream_to(&self, mut writer: Box<dyn std::io::Write + Send>) -> std::io::Result<()> {
        writer.write_all(
            b"{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n\
              {\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"process_name\",\
              \"args\":{\"name\":\"sixgen\"}}",
        )?;
        let mut slot = self.stream.lock().expect("trace stream poisoned");
        *slot = Some(StreamState { writer });
        self.stream_active.store(true, Ordering::Relaxed);
        Ok(())
    }

    /// Closes the streamed document: writes the `]` terminator plus an
    /// `otherData` object carrying the streamed/error/ring-drop counters,
    /// flushes, and drops the writer. A no-op returning `Ok` when no
    /// stream is active (including after a write error already tore the
    /// stream down).
    pub fn finish_stream(&self) -> std::io::Result<()> {
        self.stream_active.store(false, Ordering::Relaxed);
        let state = self.stream.lock().expect("trace stream poisoned").take();
        let Some(mut state) = state else {
            return Ok(());
        };
        let trailer = format!(
            "\n],\"otherData\":{{\"spans_streamed\":{},\"stream_write_errors\":{},\
             \"ring_dropped_spans\":{}}}}}\n",
            self.streamed(),
            self.stream_errors(),
            self.dropped()
        );
        state.writer.write_all(trailer.as_bytes())?;
        state.writer.flush()
    }

    /// Number of span events successfully written to the stream.
    pub fn streamed(&self) -> u64 {
        self.streamed.load(Ordering::Relaxed)
    }

    /// Number of stream write failures. The first failure permanently
    /// disables streaming (recording continues ring-only), so this is
    /// effectively 0 or 1 per [`stream_to`](Self::stream_to) call.
    pub fn stream_errors(&self) -> u64 {
        self.stream_errors.load(Ordering::Relaxed)
    }

    /// Formats and appends one span event to the active stream. The event
    /// JSON is built *before* taking the stream lock so contention covers
    /// only the write itself. On write failure the stream is torn down —
    /// tracing must never take down the traced run.
    fn stream_event(&self, record: &SpanRecord) {
        let mut event = String::with_capacity(192);
        event.push_str(",\n");
        chrome_event(record, &mut event);
        let mut slot = self.stream.lock().expect("trace stream poisoned");
        let Some(state) = slot.as_mut() else {
            return;
        };
        match state.writer.write_all(event.as_bytes()) {
            Ok(()) => {
                self.streamed.fetch_add(1, Ordering::Relaxed);
            }
            Err(_) => {
                self.stream_errors.fetch_add(1, Ordering::Relaxed);
                self.stream_active.store(false, Ordering::Relaxed);
                *slot = None;
            }
        }
    }

    /// All retained spans, merged across shards and sorted by start time
    /// (ties by id). Non-destructive.
    pub fn snapshot(&self) -> Vec<SpanRecord> {
        let mut spans: Vec<SpanRecord> = Vec::with_capacity(self.len());
        for shard in &self.shards {
            let ring = shard.lock().expect("trace shard poisoned");
            spans.extend(ring.iter().cloned());
        }
        spans.sort_by_key(|s| (s.start_ns, s.id));
        spans
    }

    /// Serializes the retained spans as Chrome trace-event JSON — an object
    /// with a `traceEvents` array of complete (`"ph":"X"`) events, loadable
    /// in Perfetto and `chrome://tracing`. Timestamps and durations are
    /// microseconds with nanosecond precision; attributes (plus the parent
    /// span id) land in each event's `args`. The top-level `otherData`
    /// object carries the span and dropped-span counts.
    pub fn to_chrome_json(&self) -> String {
        let spans = self.snapshot();
        let mut out = String::with_capacity(128 + spans.len() * 160);
        out.push_str("{\"displayTimeUnit\":\"ms\",\"otherData\":{");
        let _ = write!(
            out,
            "\"spans\":{},\"dropped_spans\":{}",
            spans.len(),
            self.dropped()
        );
        out.push_str("},\"traceEvents\":[");
        out.push_str(
            "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"process_name\",\
             \"args\":{\"name\":\"sixgen\"}}",
        );
        for span in &spans {
            out.push(',');
            chrome_event(span, &mut out);
        }
        out.push_str("]}");
        out
    }

    /// Per-span-kind aggregation of the retained spans: for every
    /// `category/name` pair, the span count, total time, self time (total
    /// minus time attributed to child spans), and exact p50/p95/p99 of the
    /// span durations. Rows are ordered by descending total time.
    ///
    /// Self time saturates at zero: children evaluated on parallel worker
    /// threads can accumulate more time than their parent's wall-clock
    /// duration.
    pub fn summary(&self) -> Vec<SummaryRow> {
        let spans = self.snapshot();
        // Child time per parent id.
        let mut child_ns: HashMap<u64, u64> = HashMap::new();
        for span in &spans {
            if span.parent != 0 {
                *child_ns.entry(span.parent).or_default() += span.duration_ns();
            }
        }
        let mut rows: HashMap<(&'static str, &'static str), SummaryRow> = HashMap::new();
        let mut durations: HashMap<(&'static str, &'static str), Vec<u64>> = HashMap::new();
        for span in &spans {
            let key = (span.category, span.name);
            let duration = span.duration_ns();
            let row = rows.entry(key).or_insert_with(|| SummaryRow {
                key: format!("{}/{}", span.category, span.name),
                count: 0,
                total_ns: 0,
                self_ns: 0,
                p50_ns: 0,
                p95_ns: 0,
                p99_ns: 0,
            });
            row.count += 1;
            row.total_ns += duration;
            row.self_ns += duration
                .saturating_sub(child_ns.get(&span.id).copied().unwrap_or(0))
                .min(duration);
            durations.entry(key).or_default().push(duration);
        }
        for (key, mut values) in durations {
            values.sort_unstable();
            let row = rows.get_mut(&key).expect("row exists for every key");
            row.p50_ns = nearest_rank(&values, 0.50);
            row.p95_ns = nearest_rank(&values, 0.95);
            row.p99_ns = nearest_rank(&values, 0.99);
        }
        let mut rows: Vec<SummaryRow> = rows.into_values().collect();
        rows.sort_by(|a, b| b.total_ns.cmp(&a.total_ns).then(a.key.cmp(&b.key)));
        rows
    }

    /// Renders [`summary`](Self::summary) as a fixed-width text table,
    /// trailed by the dropped-span count when non-zero.
    pub fn render_summary(&self) -> String {
        let rows = self.summary();
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<28} {:>8} {:>12} {:>12} {:>10} {:>10} {:>10}",
            "span", "count", "total", "self", "p50", "p95", "p99"
        );
        for row in &rows {
            let _ = writeln!(
                out,
                "{:<28} {:>8} {:>12} {:>12} {:>10} {:>10} {:>10}",
                row.key,
                row.count,
                format_ns(row.total_ns),
                format_ns(row.self_ns),
                format_ns(row.p50_ns),
                format_ns(row.p95_ns),
                format_ns(row.p99_ns),
            );
        }
        let dropped = self.dropped();
        if dropped > 0 {
            let _ = writeln!(out, "({dropped} spans dropped to ring-buffer wrap)");
        }
        out
    }
}

/// One row of [`TraceSink::summary`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SummaryRow {
    /// `category/name`.
    pub key: String,
    /// Number of spans of this kind.
    pub count: u64,
    /// Sum of span durations, nanoseconds.
    pub total_ns: u64,
    /// Total minus child-span time (saturating), nanoseconds.
    pub self_ns: u64,
    /// Median span duration (nearest rank), nanoseconds.
    pub p50_ns: u64,
    /// 95th-percentile span duration, nanoseconds.
    pub p95_ns: u64,
    /// 99th-percentile span duration, nanoseconds.
    pub p99_ns: u64,
}

/// Nearest-rank percentile of a sorted, non-empty slice.
fn nearest_rank(sorted: &[u64], q: f64) -> u64 {
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Human-scale duration: `123ns`, `45.6µs`, `7.89ms`, `1.23s`.
fn format_ns(ns: u64) -> String {
    match ns {
        0..=999 => format!("{ns}ns"),
        1_000..=999_999 => format!("{:.1}µs", ns as f64 / 1e3),
        1_000_000..=999_999_999 => format!("{:.2}ms", ns as f64 / 1e6),
        _ => format!("{:.2}s", ns as f64 / 1e9),
    }
}

/// RAII span guard: records its interval into the sink when dropped.
/// Obtained from [`TraceSink::span`] (live) or [`Span::inert`] /
/// [`maybe_span`] (no-op).
#[derive(Debug)]
pub struct Span<'s> {
    sink: Option<&'s TraceSink>,
    id: u64,
    parent: u64,
    category: &'static str,
    name: &'static str,
    start_ns: u64,
    attrs: [(&'static str, u64); MAX_ATTRS],
    attr_len: u8,
}

impl Span<'_> {
    /// A span that records nothing and never touches the clock. The
    /// disabled-path representation: instrumentation code handles live and
    /// inert spans identically.
    pub fn inert() -> Span<'static> {
        Span {
            sink: None,
            id: 0,
            parent: 0,
            category: "",
            name: "",
            start_ns: 0,
            attrs: [("", 0); MAX_ATTRS],
            attr_len: 0,
        }
    }

    /// This span's id, for parenting children under it.
    /// [`SpanId::NONE`] when inert.
    pub fn id(&self) -> SpanId {
        SpanId(self.id)
    }

    /// Attaches a key/value attribute. Ignored on inert spans and beyond
    /// [`MAX_ATTRS`] entries.
    pub fn attr(&mut self, key: &'static str, value: u64) {
        if self.sink.is_none() {
            return;
        }
        if (self.attr_len as usize) < MAX_ATTRS {
            self.attrs[self.attr_len as usize] = (key, value);
            self.attr_len += 1;
        }
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        let Some(sink) = self.sink else {
            return;
        };
        sink.record(SpanRecord {
            id: self.id,
            parent: self.parent,
            thread: thread_id(),
            category: self.category,
            name: self.name,
            start_ns: self.start_ns,
            end_ns: sink.now_ns(),
            attrs: self.attrs,
            attr_len: self.attr_len,
        });
    }
}

/// Starts a span against an optional sink: the instrumentation-site
/// helper. `None` yields an inert span with zero overhead beyond the
/// branch.
pub fn maybe_span<'s>(
    sink: Option<&'s TraceSink>,
    category: &'static str,
    name: &'static str,
    parent: SpanId,
) -> Span<'s> {
    match sink {
        Some(sink) => sink.span(category, name, parent),
        None => Span::inert(),
    }
}

/// Validates that `text` is one complete JSON value (used by tests to
/// round-trip the Chrome-trace and metrics exports, and cheap enough to
/// run before shipping a trace file). Returns the byte offset and a
/// message on the first syntax error.
pub fn validate_json(text: &str) -> Result<(), String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(())
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<(), String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => parse_string(bytes, pos),
        Some(b't') => parse_literal(bytes, pos, "true"),
        Some(b'f') => parse_literal(bytes, pos, "false"),
        Some(b'n') => parse_literal(bytes, pos, "null"),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(bytes, pos),
        Some(c) => Err(format!("unexpected byte {c:#x} at {pos}", pos = *pos)),
        None => Err("unexpected end of input".into()),
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // '{'
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(bytes, pos);
        parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {pos}", pos = *pos));
        }
        *pos += 1;
        parse_value(bytes, pos)?;
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}", pos = *pos)),
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // '['
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(());
    }
    loop {
        parse_value(bytes, pos)?;
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}", pos = *pos)),
        }
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<(), String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}", pos = *pos));
    }
    *pos += 1;
    while let Some(&c) = bytes.get(*pos) {
        match c {
            b'"' => {
                *pos += 1;
                return Ok(());
            }
            b'\\' => *pos += 2,
            _ => *pos += 1,
        }
    }
    Err("unterminated string".into())
}

fn parse_literal(bytes: &[u8], pos: &mut usize, literal: &str) -> Result<(), String> {
    if bytes[*pos..].starts_with(literal.as_bytes()) {
        *pos += literal.len();
        Ok(())
    } else {
        Err(format!("bad literal at byte {pos}", pos = *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<(), String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && (bytes[*pos].is_ascii_digit() || matches!(bytes[*pos], b'.' | b'e' | b'E' | b'+' | b'-'))
    {
        *pos += 1;
    }
    if *pos == start {
        return Err(format!("expected number at byte {start}"));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_record_nesting_and_attrs() {
        let sink = TraceSink::new();
        {
            let mut root = sink.span("engine", "run", SpanId::NONE);
            root.attr("seeds", 42);
            {
                let mut child = sink.span("engine", "cache_fill", root.id());
                child.attr("clusters", 7);
            }
        }
        let spans = sink.snapshot();
        assert_eq!(spans.len(), 2);
        let root = spans.iter().find(|s| s.name == "run").expect("root span");
        let child = spans.iter().find(|s| s.name == "cache_fill").expect("child");
        assert_eq!(root.parent, 0);
        assert_eq!(child.parent, root.id);
        assert_eq!(root.attrs(), &[("seeds", 42)]);
        assert_eq!(child.attrs(), &[("clusters", 7)]);
        assert!(child.start_ns >= root.start_ns);
        assert!(child.end_ns <= root.end_ns);
    }

    #[test]
    fn disabled_sink_records_nothing() {
        let sink = TraceSink::new();
        sink.set_enabled(false);
        {
            let mut span = sink.span("engine", "run", SpanId::NONE);
            span.attr("ignored", 1);
            assert!(span.id().is_none());
        }
        assert!(sink.is_empty());
        assert_eq!(sink.dropped(), 0);
        sink.set_enabled(true);
        drop(sink.span("engine", "run", SpanId::NONE));
        assert_eq!(sink.len(), 1);
    }

    #[test]
    fn inert_span_is_free_standing() {
        let mut span = Span::inert();
        span.attr("x", 1);
        assert!(span.id().is_none());
        drop(span); // must not panic or record anywhere
        assert_eq!(maybe_span(None, "a", "b", SpanId::NONE).id(), SpanId::NONE);
    }

    #[test]
    fn ring_wrap_drops_oldest_and_counts() {
        // Single-threaded: all spans land in one shard of capacity 4.
        let sink = TraceSink::with_capacity(4);
        let names: [&'static str; 7] = ["s0", "s1", "s2", "s3", "s4", "s5", "s6"];
        for name in names {
            drop(sink.span("t", name, SpanId::NONE));
        }
        assert_eq!(sink.len(), 4, "capacity bounds retention");
        assert_eq!(sink.dropped(), 3, "three overwrites counted");
        let kept: Vec<&str> = sink.snapshot().iter().map(|s| s.name).collect();
        assert_eq!(kept, vec!["s3", "s4", "s5", "s6"], "oldest dropped first");
        // The exporters surface the drop count.
        assert!(sink.to_chrome_json().contains("\"dropped_spans\":3"));
        assert!(sink.render_summary().contains("3 spans dropped"));
    }

    #[test]
    fn concurrent_recording_is_lossless_under_capacity() {
        let sink = TraceSink::with_capacity(10_000);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    for _ in 0..500 {
                        drop(sink.span("t", "work", SpanId::NONE));
                    }
                });
            }
        });
        assert_eq!(sink.len(), 4_000);
        assert_eq!(sink.dropped(), 0);
        // Ids are unique.
        let mut ids: Vec<u64> = sink.snapshot().iter().map(|s| s.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 4_000);
    }

    #[test]
    fn chrome_json_round_trips() {
        let sink = TraceSink::new();
        {
            let mut root = sink.span("engine", "run", SpanId::NONE);
            root.attr("seeds", 10);
            drop(sink.span("engine", "select", root.id()));
        }
        let json = sink.to_chrome_json();
        validate_json(&json).expect("chrome trace JSON parses");
        assert!(json.contains("\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"cat\":\"engine\""));
        assert!(json.contains("\"name\":\"run\""));
        assert!(json.contains("\"seeds\":10"));
        assert!(json.contains("\"parent\":"));
        assert!(json.contains("\"process_name\""));
    }

    #[test]
    fn empty_sink_exports_valid_json() {
        let sink = TraceSink::new();
        let json = sink.to_chrome_json();
        validate_json(&json).expect("empty trace parses");
        assert!(json.contains("\"spans\":0"));
    }

    #[test]
    fn summary_attributes_self_time_to_parents() {
        let sink = TraceSink::new();
        {
            let root = sink.span("engine", "run", SpanId::NONE);
            {
                let _child = sink.span("engine", "cache_fill", root.id());
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
        }
        let rows = sink.summary();
        assert_eq!(rows.len(), 2);
        let run = rows.iter().find(|r| r.key == "engine/run").expect("run row");
        let fill = rows
            .iter()
            .find(|r| r.key == "engine/cache_fill")
            .expect("fill row");
        assert_eq!(run.count, 1);
        assert_eq!(fill.count, 1);
        // The child's time is excluded from the parent's self time.
        assert!(run.total_ns >= fill.total_ns);
        assert!(run.self_ns <= run.total_ns - fill.total_ns.min(run.total_ns) + 1_000_000);
        assert_eq!(fill.self_ns, fill.total_ns, "leaf self == total");
        // Percentiles of a single sample are that sample.
        assert_eq!(fill.p50_ns, fill.p95_ns);
        assert_eq!(fill.p95_ns, fill.p99_ns);
        // Rows ordered by total time: the enclosing run comes first.
        assert_eq!(rows[0].key, "engine/run");
    }

    #[test]
    fn summary_percentiles_are_nearest_rank() {
        let sorted: Vec<u64> = (1..=100).collect();
        assert_eq!(nearest_rank(&sorted, 0.50), 50);
        assert_eq!(nearest_rank(&sorted, 0.95), 95);
        assert_eq!(nearest_rank(&sorted, 0.99), 99);
        assert_eq!(nearest_rank(&[7], 0.5), 7);
    }

    #[test]
    fn validate_json_rejects_malformed() {
        assert!(validate_json("{}").is_ok());
        assert!(validate_json("[1,2,{\"a\":null}]").is_ok());
        assert!(validate_json("{\"a\":1.5e3,\"b\":\"x\\\"y\"}").is_ok());
        assert!(validate_json("{").is_err());
        assert!(validate_json("{\"a\":}").is_err());
        assert!(validate_json("[1,]").is_err());
        assert!(validate_json("{\"a\":1}trailing").is_err());
        assert!(validate_json("").is_err());
    }

    #[test]
    fn format_ns_scales() {
        assert_eq!(format_ns(12), "12ns");
        assert_eq!(format_ns(4_500), "4.5µs");
        assert_eq!(format_ns(7_890_000), "7.89ms");
        assert_eq!(format_ns(1_230_000_000), "1.23s");
    }

    /// A `Write` handle whose buffer outlives the sink that owns the
    /// boxed writer, so tests can inspect streamed bytes.
    #[derive(Clone, Default)]
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);

    impl SharedBuf {
        fn contents(&self) -> String {
            String::from_utf8(self.0.lock().unwrap().clone()).unwrap()
        }
    }

    impl std::io::Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn streaming_outlives_ring_capacity() {
        // Single-threaded, one shard of capacity 4 — but the stream keeps
        // everything the ring forgot.
        let sink = TraceSink::with_capacity(4);
        let buf = SharedBuf::default();
        sink.stream_to(Box::new(buf.clone())).unwrap();
        let names: [&'static str; 12] = [
            "s0", "s1", "s2", "s3", "s4", "s5", "s6", "s7", "s8", "s9", "s10", "s11",
        ];
        for name in names {
            drop(sink.span("t", name, SpanId::NONE));
        }
        assert_eq!(sink.len(), 4, "ring retention unchanged by streaming");
        assert_eq!(sink.dropped(), 8);
        assert_eq!(sink.streamed(), 12, "every span streamed");
        assert_eq!(sink.stream_errors(), 0);
        sink.finish_stream().unwrap();
        let doc = buf.contents();
        validate_json(doc.trim_end()).expect("streamed document parses");
        for name in names {
            assert!(doc.contains(&format!("\"name\":\"{name}\"")), "{name} streamed");
        }
        assert!(doc.contains("\"spans_streamed\":12"));
        assert!(doc.contains("\"ring_dropped_spans\":8"));
        assert!(doc.contains("\"process_name\""));
        // Batch and stream share the event formatter: a retained span's
        // event appears byte-identically in both documents.
        let batch = sink.to_chrome_json();
        let streamed_line = doc
            .lines()
            .find(|l| l.contains("\"name\":\"s11\""))
            .expect("s11 line");
        assert!(batch.contains(streamed_line.trim_end_matches(',')));
    }

    #[test]
    fn finish_stream_without_stream_is_a_no_op() {
        let sink = TraceSink::new();
        sink.finish_stream().unwrap();
        assert_eq!(sink.streamed(), 0);
    }

    /// Fails every write after the preamble succeeds.
    struct FlakyWriter {
        writes_left: u32,
    }

    impl std::io::Write for FlakyWriter {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            if self.writes_left == 0 {
                return Err(std::io::Error::other("disk on fire"));
            }
            self.writes_left -= 1;
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn stream_write_failure_disables_streaming_without_losing_ring() {
        let sink = TraceSink::new();
        sink.stream_to(Box::new(FlakyWriter { writes_left: 1 }))
            .unwrap();
        for _ in 0..5 {
            drop(sink.span("t", "work", SpanId::NONE));
        }
        assert_eq!(sink.stream_errors(), 1, "first failure counted once");
        assert_eq!(sink.streamed(), 0);
        assert_eq!(sink.len(), 5, "ring recording unaffected");
        // The stream tore down; finishing is now a clean no-op.
        sink.finish_stream().unwrap();
    }

    #[test]
    fn streamed_events_from_many_threads_form_valid_json() {
        let sink = TraceSink::with_capacity(8);
        let buf = SharedBuf::default();
        sink.stream_to(Box::new(buf.clone())).unwrap();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..50 {
                        drop(sink.span("t", "work", SpanId::NONE));
                    }
                });
            }
        });
        assert_eq!(sink.streamed(), 200);
        sink.finish_stream().unwrap();
        let doc = buf.contents();
        validate_json(doc.trim_end()).expect("concurrent streamed document parses");
        assert_eq!(doc.matches("\"ph\":\"X\"").count(), 200);
    }
}
