//! Prometheus text-exposition export of a [`MetricsRegistry`].
//!
//! Maps the registry onto the [text exposition format]: counters become
//! `_total` counters, gauges stay gauges, histograms (value and duration)
//! become native Prometheus histograms with cumulative `_bucket{le=…}`
//! series plus `_sum` and `_count`, and phase timers become a pair of
//! counters (`…_ns_total`, `…_runs_total`). Metric names are prefixed
//! `sixgen_` and every character outside `[a-zA-Z0-9_]` is replaced with
//! `_` (so `engine/cache_fill` exports as `sixgen_engine_cache_fill`).
//! Families are emitted in sorted name order, so the output is as
//! deterministic as the underlying registry.
//!
//! [text exposition format]:
//! https://prometheus.io/docs/instrumenting/exposition_formats/

use std::fmt::Write as _;
use std::sync::atomic::Ordering;

use crate::{Histogram, MetricsRegistry};

/// A registry-key turned Prometheus metric name.
fn sanitize(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 7);
    out.push_str("sixgen_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() || c == '_' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

fn write_histogram(out: &mut String, name: &str, histogram: &Histogram) {
    let _ = writeln!(out, "# TYPE {name} histogram");
    let mut cumulative: u64 = 0;
    for (i, bucket) in histogram.buckets.iter().enumerate() {
        let n = bucket.load(Ordering::Relaxed);
        if n == 0 {
            continue;
        }
        cumulative += n;
        // Bucket i covers [2^(i-1), 2^i); its inclusive upper bound is
        // 2^i − 1 (the zero bucket's is 0), matching `le`'s ≤ semantics.
        let le = match i {
            0 => 0,
            64 => u64::MAX,
            _ => (1u64 << i) - 1,
        };
        let _ = writeln!(out, "{name}_bucket{{le=\"{le}\"}} {cumulative}");
    }
    let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", histogram.count());
    let _ = writeln!(out, "{name}_sum {}", histogram.sum());
    let _ = writeln!(out, "{name}_count {}", histogram.count());
}

impl MetricsRegistry {
    /// Serializes the registry in the Prometheus text exposition format
    /// (version 0.0.4). See the `prom` module docs for the
    /// mapping. Includes both the deterministic and timing metrics —
    /// a scrape endpoint wants everything; determinism guarantees apply
    /// only to the JSON export.
    pub fn to_prometheus(&self) -> String {
        let inner = self.inner.lock().expect("metrics registry poisoned");
        let mut out = String::new();
        for (name, counter) in &inner.counters {
            let name = sanitize(name);
            let _ = writeln!(out, "# TYPE {name}_total counter");
            let _ = writeln!(out, "{name}_total {}", counter.get());
        }
        for (name, gauge) in &inner.gauges {
            let name = sanitize(name);
            let _ = writeln!(out, "# TYPE {name} gauge");
            let _ = writeln!(out, "{name} {}", gauge.get());
        }
        for (name, histogram) in &inner.histograms {
            write_histogram(&mut out, &sanitize(name), histogram);
        }
        for (name, histogram) in &inner.time_histograms {
            let name = sanitize(name) + "_ns";
            write_histogram(&mut out, &name, histogram);
        }
        for (name, phase) in &inner.phases {
            let name = sanitize(name);
            let _ = writeln!(out, "# TYPE {name}_ns_total counter");
            let _ = writeln!(
                out,
                "{name}_ns_total {}",
                phase.total_nanos.load(Ordering::Relaxed)
            );
            let _ = writeln!(out, "# TYPE {name}_runs_total counter");
            let _ = writeln!(out, "{name}_runs_total {}", phase.count());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn sanitize_prefixes_and_replaces() {
        assert_eq!(sanitize("engine/cache_fill"), "sixgen_engine_cache_fill");
        assert_eq!(sanitize("a-b.c"), "sixgen_a_b_c");
    }

    #[test]
    fn counters_and_gauges_export() {
        let r = MetricsRegistry::new();
        r.counter("prober/probes").add(12);
        r.gauge("engine/clusters").set(-3);
        let text = r.to_prometheus();
        assert!(text.contains("# TYPE sixgen_prober_probes_total counter\n"));
        assert!(text.contains("\nsixgen_prober_probes_total 12\n"));
        assert!(text.contains("# TYPE sixgen_engine_clusters gauge\n"));
        assert!(text.contains("\nsixgen_engine_clusters -3\n"));
    }

    #[test]
    fn histogram_buckets_are_cumulative_with_inf_sum_count() {
        let r = MetricsRegistry::new();
        let h = r.histogram("sizes");
        for v in [0, 1, 3, 3, 100] {
            h.record(v);
        }
        let text = r.to_prometheus();
        assert!(text.contains("# TYPE sixgen_sizes histogram\n"));
        assert!(text.contains("sixgen_sizes_bucket{le=\"0\"} 1\n"), "{text}");
        assert!(text.contains("sixgen_sizes_bucket{le=\"1\"} 2\n"), "{text}");
        // 3 and 3 fall in [2,4): le="3" cumulative 4.
        assert!(text.contains("sixgen_sizes_bucket{le=\"3\"} 4\n"), "{text}");
        // 100 falls in [64,128): le="127" cumulative 5.
        assert!(text.contains("sixgen_sizes_bucket{le=\"127\"} 5\n"), "{text}");
        assert!(text.contains("sixgen_sizes_bucket{le=\"+Inf\"} 5\n"));
        assert!(text.contains("sixgen_sizes_sum 107\n"));
        assert!(text.contains("sixgen_sizes_count 5\n"));
    }

    #[test]
    fn phases_and_time_histograms_export() {
        let r = MetricsRegistry::new();
        r.phase("engine/select").record(Duration::from_nanos(500));
        r.time_histogram("engine/growth_eval")
            .record_duration(Duration::from_nanos(700));
        let text = r.to_prometheus();
        assert!(text.contains("sixgen_engine_select_ns_total 500\n"));
        assert!(text.contains("sixgen_engine_select_runs_total 1\n"));
        assert!(text.contains("# TYPE sixgen_engine_growth_eval_ns histogram\n"));
        assert!(text.contains("sixgen_engine_growth_eval_ns_sum 700\n"));
        assert!(text.contains("sixgen_engine_growth_eval_ns_count 1\n"));
    }

    #[test]
    fn empty_registry_exports_empty_text() {
        assert_eq!(MetricsRegistry::new().to_prometheus(), "");
    }

    #[test]
    fn top_bucket_le_is_u64_max() {
        let r = MetricsRegistry::new();
        r.histogram("h").record(u64::MAX);
        let text = r.to_prometheus();
        assert!(text.contains(&format!("sixgen_h_bucket{{le=\"{}\"}} 1\n", u64::MAX)));
    }
}
