//! Property-based tests for the observability layer: histogram percentile
//! estimates stay within one log₂ bucket of the exact percentiles, and the
//! exporters stay well-formed on arbitrary inputs.

use proptest::prelude::*;
use sixgen_obs::{validate_json, Histogram, MetricsRegistry};

/// Bucket index a value falls into, mirroring the histogram's layout
/// (bucket 0 = zeros, bucket i ≥ 1 covers [2^(i-1), 2^i)).
fn bucket_of(value: u64) -> u32 {
    match value {
        0 => 0,
        v => 64 - v.leading_zeros(),
    }
}

/// Exact nearest-rank percentile of a sorted slice.
fn exact_percentile(sorted: &[u64], q: f64) -> u64 {
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Samples spanning several orders of magnitude, so many buckets are hit.
fn arb_samples() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(
        prop_oneof![
            Just(0u64),
            1u64..16,
            1u64..1 << 12,
            1u64..1 << 40,
            any::<u64>(),
        ],
        1..300,
    )
}

proptest! {
    #[test]
    fn percentile_estimate_is_within_one_bucket_of_exact(
        mut samples in arb_samples(),
        q in prop_oneof![Just(0.50f64), Just(0.95), Just(0.99), 0.01f64..1.0],
    ) {
        let h = Histogram::default();
        for &v in &samples {
            h.record(v);
        }
        samples.sort_unstable();
        let exact = exact_percentile(&samples, q);
        let estimate = h.percentile(q).expect("non-empty");
        // The documented bound: the estimate lands in the same bucket as
        // the exact nearest-rank sample (so the absolute error is below
        // that bucket's width) — "within one bucket" with room to spare.
        prop_assert!(
            bucket_of(estimate).abs_diff(bucket_of(exact)) <= 1,
            "estimate {estimate} (bucket {}) vs exact {exact} (bucket {})",
            bucket_of(estimate),
            bucket_of(exact),
        );
        // And it never leaves the observed range.
        prop_assert!(estimate >= samples[0] && estimate <= samples[samples.len() - 1]);
    }

    #[test]
    fn percentile_is_monotone_in_q(samples in arb_samples()) {
        let h = Histogram::default();
        for &v in &samples {
            h.record(v);
        }
        let p50 = h.percentile(0.50).unwrap();
        let p95 = h.percentile(0.95).unwrap();
        let p99 = h.percentile(0.99).unwrap();
        prop_assert!(p50 <= p95 && p95 <= p99, "{p50} {p95} {p99}");
    }

    #[test]
    fn json_export_parses_for_arbitrary_histograms(samples in arb_samples()) {
        let r = MetricsRegistry::new();
        let h = r.histogram("h");
        for &v in &samples {
            h.record(v);
        }
        validate_json(&r.to_json()).expect("registry export parses");
    }
}
