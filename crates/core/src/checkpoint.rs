//! Versioned, byte-stable engine checkpoints: serialize a [`Session`]'s
//! complete round-boundary state, restore it in another process, and
//! continue the run with byte-identical results.
//!
//! [`Session`]: crate::Session
//!
//! ## Format
//!
//! A hand-rolled little-endian binary format (consistent with the
//! workspace's zero-dependency policy), fully described by
//! [`EngineCheckpoint::to_bytes`]:
//!
//! ```text
//! magic "6GSN" · version u16
//! config fingerprint: mode u8 · unfused u8 · rng_seed u64 · budget u64
//! rng state: 4 × u64 (xoshiro256++ words)
//! counters: rounds · growths · subsumed · worker_panics (u64 each)
//! durations: cpu_time_ns · wall_time_ns (u64 each)
//! seeds:   count u64, then 16 bytes (u128) per address
//! slots:   count u64, then per slot: range (32 × u16 set masks) ·
//!          seed_count u64 · cache tag u8 (0 stale / 1 exhausted /
//!          2 ready) · if ready: range · seed_count u64 · range_size u128
//! stale:   count u64, then slot index u64 each
//! generated: count u64, then 16 bytes per address (budget order)
//! checksum: FNV-1a 64 over everything above
//! ```
//!
//! The encoding is **byte-stable**: serializing, restoring, and
//! re-serializing a checkpoint yields identical bytes (pinned by
//! proptests), so checkpoints can be content-compared and deduplicated.
//! Decoding validates the magic, version, checksum, and every structural
//! invariant (non-empty ranges, in-bounds stale indices, cached sizes)
//! before any state reaches the engine, so a truncated or corrupted file
//! is rejected with a typed [`CheckpointError`] instead of resuming a
//! poisoned run.
//!
//! ## Versioning & compatibility rule
//!
//! The version is bumped whenever the byte layout *or the semantics of
//! any field* change. Decoders accept exactly the versions they know how
//! to interpret ([`FORMAT_VERSION`] only, today) and reject everything
//! else: a checkpoint is a promise of byte-identical resumption, and
//! best-effort migration of half-understood state would silently break
//! that promise. The config fingerprint (mode, fused/unfused growth
//! path, RNG seed) is enforced at [`Session::resume`] time for the same
//! reason; the budget is deliberately *not* part of the fingerprint so a
//! resumed run can be topped up.
//!
//! [`Session::resume`]: crate::Session::resume

use crate::ClusterMode;
use sixgen_addr::{NybbleAddr, Range, NYBBLE_COUNT};
use std::path::{Path, PathBuf};
use std::time::Duration;

/// Magic bytes opening every checkpoint file ("6Gen SessioN").
pub const MAGIC: [u8; 4] = *b"6GSN";

/// The format version this build writes and accepts.
pub const FORMAT_VERSION: u16 = 1;

/// A cluster slot's cached best growth, as checkpointed.
///
/// Caches are serialized rather than recomputed on resume so that a
/// resumed run records exactly the same number of growth evaluations as
/// an uninterrupted one — the deterministic metrics namespace (candidate
/// histograms, cache-recompute counters) stays byte-identical across an
/// interrupt/resume cycle, not just the targets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CachedCheckpoint {
    /// The slot's growth must be recomputed next round.
    Stale,
    /// The cluster contains every seed and can never grow.
    Exhausted,
    /// A valid cached best growth.
    Ready {
        /// The expanded range the cluster would adopt.
        range: Range,
        /// Seeds inside the expanded range.
        seed_count: u64,
        /// Cached `range.size()`.
        range_size: u128,
    },
}

/// One cluster slot (in engine slot order, which the selection scan's
/// tie-break stream depends on).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlotCheckpoint {
    /// The cluster's current range.
    pub range: Range,
    /// Seeds inside the range.
    pub seed_count: u64,
    /// The slot's cached best growth.
    pub cached: CachedCheckpoint,
}

/// A complete engine-session snapshot at a round boundary.
///
/// Produced by [`Session::checkpoint`], consumed by [`Session::resume`].
/// All counters and durations are cumulative across previously resumed
/// segments (see [`RunStats`](crate::RunStats) for the aggregation rule).
///
/// [`Session::checkpoint`]: crate::Session::checkpoint
/// [`Session::resume`]: crate::Session::resume
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EngineCheckpoint {
    /// Cluster mode of the checkpointed run (fingerprint field).
    pub mode: ClusterMode,
    /// Whether the run used the unfused reference growth path
    /// (fingerprint field).
    pub unfused_growth: bool,
    /// The run's RNG seed (fingerprint field).
    pub rng_seed: u64,
    /// The budget the run was configured with. Not a fingerprint field:
    /// resume may raise it (budget top-up).
    pub budget: u64,
    /// The run RNG's full state at the boundary.
    pub rng_state: [u64; 4],
    /// Main-loop rounds started so far.
    pub rounds: u64,
    /// Growths committed so far.
    pub growths: u64,
    /// Clusters subsumed so far.
    pub subsumed: u64,
    /// Worker panics recovered so far.
    pub worker_panics: u64,
    /// Aggregate growth-evaluation busy time so far.
    pub cpu_time: Duration,
    /// Wall-clock time consumed so far (across segments).
    pub wall_time: Duration,
    /// The deduplicated, sorted seed list. The nybble tree is rebuilt
    /// from it on resume (the tree is immutable and fully determined by
    /// the seeds, so its structure is never serialized).
    pub seeds: Vec<NybbleAddr>,
    /// Cluster slots in engine order.
    pub slots: Vec<SlotCheckpoint>,
    /// Indices of slots whose cache is stale (engine order).
    pub stale: Vec<u64>,
    /// Every address generated so far, in generation order.
    pub generated: Vec<NybbleAddr>,
}

/// Why a checkpoint could not be decoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// The byte stream ended before the structure was complete.
    Truncated,
    /// The magic bytes are not `"6GSN"` — not a checkpoint file.
    BadMagic,
    /// The version is one this build does not know how to interpret.
    UnsupportedVersion(u16),
    /// The trailing FNV-1a checksum does not match the payload.
    BadChecksum,
    /// Bytes remain after the checksum — the file is longer than the
    /// structure it claims to hold.
    TrailingBytes,
    /// A stale-cache index points past the end of the slot list.
    StaleIndexOutOfBounds {
        /// The offending index.
        index: u64,
        /// Number of slots in the checkpoint.
        slots: u64,
    },
    /// A slot index appears more than once in the stale-cache list.
    DuplicateStaleIndex {
        /// The repeated index.
        index: u64,
    },
    /// A structural invariant failed (named by the message).
    Invalid(&'static str),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Truncated => write!(f, "checkpoint truncated"),
            CheckpointError::BadMagic => write!(f, "not a sixgen checkpoint (bad magic)"),
            CheckpointError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported checkpoint version {v} (this build reads {FORMAT_VERSION})"
                )
            }
            CheckpointError::BadChecksum => write!(f, "checkpoint checksum mismatch"),
            CheckpointError::TrailingBytes => write!(f, "trailing bytes after checkpoint"),
            CheckpointError::StaleIndexOutOfBounds { index, slots } => {
                write!(
                    f,
                    "invalid checkpoint: stale index {index} out of bounds for {slots} slots"
                )
            }
            CheckpointError::DuplicateStaleIndex { index } => {
                write!(f, "invalid checkpoint: duplicate stale index {index}")
            }
            CheckpointError::Invalid(what) => write!(f, "invalid checkpoint: {what}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

/// FNV-1a 64-bit hash, the checkpoint integrity checksum.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u128(out: &mut Vec<u8>, v: u128) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_range(out: &mut Vec<u8>, range: &Range) {
    for word in range.mask_words() {
        put_u16(out, word);
    }
}

fn put_addrs(out: &mut Vec<u8>, addrs: &[NybbleAddr]) {
    put_u64(out, addrs.len() as u64);
    for addr in addrs {
        put_u128(out, addr.bits());
    }
}

/// Bounded little-endian reader over the checkpoint payload.
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], CheckpointError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or(CheckpointError::Truncated)?;
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, CheckpointError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, CheckpointError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, CheckpointError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn u128(&mut self) -> Result<u128, CheckpointError> {
        Ok(u128::from_le_bytes(self.take(16)?.try_into().unwrap()))
    }

    /// Reads a count and checks the remaining payload can actually hold
    /// that many `elem_size`-byte elements before any allocation, so a
    /// corrupted length cannot trigger a huge `Vec` reservation.
    fn len(&mut self, elem_size: usize) -> Result<usize, CheckpointError> {
        let count = self.u64()?;
        let count = usize::try_from(count).map_err(|_| CheckpointError::Truncated)?;
        let need = count
            .checked_mul(elem_size)
            .ok_or(CheckpointError::Truncated)?;
        if self.bytes.len() - self.pos < need {
            return Err(CheckpointError::Truncated);
        }
        Ok(count)
    }

    fn range(&mut self) -> Result<Range, CheckpointError> {
        let mut words = [0u16; NYBBLE_COUNT];
        for word in &mut words {
            *word = self.u16()?;
        }
        Range::from_mask_words(words)
            .ok_or(CheckpointError::Invalid("range with an empty nybble set"))
    }

    fn addrs(&mut self) -> Result<Vec<NybbleAddr>, CheckpointError> {
        let count = self.len(16)?;
        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            out.push(NybbleAddr::from_bits(self.u128()?));
        }
        Ok(out)
    }
}

impl EngineCheckpoint {
    /// Serializes the checkpoint to its canonical byte form. Pure: the
    /// same checkpoint value always yields the same bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(
            128 + 16 * (self.seeds.len() + self.generated.len()) + 160 * self.slots.len(),
        );
        out.extend_from_slice(&MAGIC);
        put_u16(&mut out, FORMAT_VERSION);
        out.push(match self.mode {
            ClusterMode::Loose => 0,
            ClusterMode::Tight => 1,
        });
        out.push(u8::from(self.unfused_growth));
        put_u64(&mut out, self.rng_seed);
        put_u64(&mut out, self.budget);
        for word in self.rng_state {
            put_u64(&mut out, word);
        }
        put_u64(&mut out, self.rounds);
        put_u64(&mut out, self.growths);
        put_u64(&mut out, self.subsumed);
        put_u64(&mut out, self.worker_panics);
        put_u64(&mut out, duration_ns(self.cpu_time));
        put_u64(&mut out, duration_ns(self.wall_time));
        put_addrs(&mut out, &self.seeds);
        put_u64(&mut out, self.slots.len() as u64);
        for slot in &self.slots {
            put_range(&mut out, &slot.range);
            put_u64(&mut out, slot.seed_count);
            match &slot.cached {
                CachedCheckpoint::Stale => out.push(0),
                CachedCheckpoint::Exhausted => out.push(1),
                CachedCheckpoint::Ready {
                    range,
                    seed_count,
                    range_size,
                } => {
                    out.push(2);
                    put_range(&mut out, range);
                    put_u64(&mut out, *seed_count);
                    put_u128(&mut out, *range_size);
                }
            }
        }
        put_u64(&mut out, self.stale.len() as u64);
        for &index in &self.stale {
            put_u64(&mut out, index);
        }
        put_addrs(&mut out, &self.generated);
        let checksum = fnv1a(&out);
        put_u64(&mut out, checksum);
        out
    }

    /// Decodes a checkpoint, validating magic, version, checksum, and
    /// every structural invariant. A checkpoint that decodes successfully
    /// re-serializes to exactly the input bytes.
    pub fn from_bytes(bytes: &[u8]) -> Result<EngineCheckpoint, CheckpointError> {
        if bytes.len() < MAGIC.len() + 2 + 8 {
            return Err(CheckpointError::Truncated);
        }
        if bytes[..MAGIC.len()] != MAGIC {
            return Err(CheckpointError::BadMagic);
        }
        let payload = &bytes[..bytes.len() - 8];
        let stored = u64::from_le_bytes(bytes[bytes.len() - 8..].try_into().unwrap());
        if fnv1a(payload) != stored {
            return Err(CheckpointError::BadChecksum);
        }
        let mut r = Reader {
            bytes: payload,
            pos: MAGIC.len(),
        };
        let version = r.u16()?;
        if version != FORMAT_VERSION {
            return Err(CheckpointError::UnsupportedVersion(version));
        }
        let mode = match r.u8()? {
            0 => ClusterMode::Loose,
            1 => ClusterMode::Tight,
            _ => return Err(CheckpointError::Invalid("unknown cluster mode")),
        };
        let unfused_growth = match r.u8()? {
            0 => false,
            1 => true,
            _ => return Err(CheckpointError::Invalid("unknown growth-path flag")),
        };
        let rng_seed = r.u64()?;
        let budget = r.u64()?;
        let mut rng_state = [0u64; 4];
        for word in &mut rng_state {
            *word = r.u64()?;
        }
        let rounds = r.u64()?;
        let growths = r.u64()?;
        let subsumed = r.u64()?;
        let worker_panics = r.u64()?;
        let cpu_time = Duration::from_nanos(r.u64()?);
        let wall_time = Duration::from_nanos(r.u64()?);
        let seeds = r.addrs()?;
        let slot_count = r.len(64 + 8 + 1)?;
        let mut slots = Vec::with_capacity(slot_count);
        for _ in 0..slot_count {
            let range = r.range()?;
            let seed_count = r.u64()?;
            let cached = match r.u8()? {
                0 => CachedCheckpoint::Stale,
                1 => CachedCheckpoint::Exhausted,
                2 => {
                    let range = r.range()?;
                    let seed_count = r.u64()?;
                    let range_size = r.u128()?;
                    if range_size != range.size() {
                        return Err(CheckpointError::Invalid(
                            "cached growth size disagrees with its range",
                        ));
                    }
                    CachedCheckpoint::Ready {
                        range,
                        seed_count,
                        range_size,
                    }
                }
                _ => return Err(CheckpointError::Invalid("unknown cache tag")),
            };
            slots.push(SlotCheckpoint {
                range,
                seed_count,
                cached,
            });
        }
        let stale_count = r.len(8)?;
        let mut stale = Vec::with_capacity(stale_count);
        for _ in 0..stale_count {
            stale.push(r.u64()?);
        }
        let generated = r.addrs()?;
        if r.pos != payload.len() {
            return Err(CheckpointError::TrailingBytes);
        }
        let checkpoint = EngineCheckpoint {
            mode,
            unfused_growth,
            rng_seed,
            budget,
            rng_state,
            rounds,
            growths,
            subsumed,
            worker_panics,
            cpu_time,
            wall_time,
            seeds,
            slots,
            stale,
            generated,
        };
        checkpoint.validate()?;
        Ok(checkpoint)
    }

    /// Structural invariants beyond per-field decoding: the stale list
    /// must name exactly the slots whose cache tag is `Stale`, in bounds
    /// and without duplicates, and the generated set must be duplicate-
    /// free and within budget. [`Session::resume`](crate::Session::resume)
    /// relies on these holding.
    pub(crate) fn validate(&self) -> Result<(), CheckpointError> {
        let mut named_stale = vec![false; self.slots.len()];
        for &raw_index in &self.stale {
            let index = usize::try_from(raw_index)
                .ok()
                .filter(|&i| i < self.slots.len())
                .ok_or(CheckpointError::StaleIndexOutOfBounds {
                    index: raw_index,
                    slots: self.slots.len() as u64,
                })?;
            if named_stale[index] {
                return Err(CheckpointError::DuplicateStaleIndex { index: raw_index });
            }
            if self.slots[index].cached != CachedCheckpoint::Stale {
                return Err(CheckpointError::Invalid(
                    "stale list names a non-stale slot",
                ));
            }
            named_stale[index] = true;
        }
        let stale_slots = self
            .slots
            .iter()
            .filter(|s| s.cached == CachedCheckpoint::Stale)
            .count();
        if stale_slots != self.stale.len() {
            return Err(CheckpointError::Invalid(
                "a stale slot is missing from the stale list",
            ));
        }
        if self.generated.len() as u64 > self.budget {
            return Err(CheckpointError::Invalid("generated set exceeds budget"));
        }
        let mut sorted = self.generated.clone();
        sorted.sort_unstable();
        sorted.dedup();
        if sorted.len() != self.generated.len() {
            return Err(CheckpointError::Invalid("duplicate generated address"));
        }
        Ok(())
    }

    /// Reads and decodes a checkpoint file. Decode failures surface as
    /// [`std::io::ErrorKind::InvalidData`].
    pub fn load(path: &Path) -> std::io::Result<EngineCheckpoint> {
        let bytes = std::fs::read(path)?;
        EngineCheckpoint::from_bytes(&bytes)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }
}

fn duration_ns(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

/// Writes checkpoints to a fixed path with atomic replace and bounded
/// retry/backoff.
///
/// Every write goes through [`sixgen_obs::write_atomic`] (temp file +
/// rename), so the destination always holds a complete checkpoint — a
/// crash mid-write leaves the *previous* checkpoint intact, and a resume
/// after such a crash simply replays slightly more work. Transient I/O
/// failures are retried with exponential backoff; a persistent failure is
/// reported to the caller, whose run state is unaffected (checkpointing
/// is an observer, never a participant, of the engine loop).
#[derive(Debug)]
pub struct CheckpointWriter {
    path: PathBuf,
    retries: u32,
    backoff: Duration,
    writes: u64,
    /// Test hook: the next `n` write attempts fail with a synthetic I/O
    /// error before touching the filesystem. Drives the chaos harness's
    /// checkpoint-write fault scenario. Not part of the stable API.
    #[doc(hidden)]
    pub inject_failures: u32,
}

impl CheckpointWriter {
    /// Backoff cap: retries never sleep longer than this per attempt.
    const BACKOFF_CAP: Duration = Duration::from_secs(2);

    /// A writer with the default policy: 4 retries starting at 25 ms
    /// backoff, doubling per attempt.
    pub fn new(path: impl Into<PathBuf>) -> CheckpointWriter {
        CheckpointWriter::with_policy(path, 4, Duration::from_millis(25))
    }

    /// A writer with an explicit retry count and initial backoff.
    pub fn with_policy(
        path: impl Into<PathBuf>,
        retries: u32,
        backoff: Duration,
    ) -> CheckpointWriter {
        CheckpointWriter {
            path: path.into(),
            retries,
            backoff,
            writes: 0,
            inject_failures: 0,
        }
    }

    /// The destination path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Number of checkpoints successfully persisted.
    pub fn writes(&self) -> u64 {
        self.writes
    }

    /// Serializes and persists `checkpoint`, retrying transient failures.
    /// Returns the last error once the retry budget is exhausted.
    pub fn write(&mut self, checkpoint: &EngineCheckpoint) -> std::io::Result<()> {
        let bytes = checkpoint.to_bytes();
        let mut delay = self.backoff;
        let mut last_error = None;
        for attempt in 0..=self.retries {
            if attempt > 0 {
                std::thread::sleep(delay);
                delay = (delay * 2).min(CheckpointWriter::BACKOFF_CAP);
            }
            match self.attempt(&bytes) {
                Ok(()) => {
                    self.writes += 1;
                    return Ok(());
                }
                Err(e) => last_error = Some(e),
            }
        }
        Err(last_error.expect("at least one attempt ran"))
    }

    fn attempt(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        if self.inject_failures > 0 {
            self.inject_failures -= 1;
            return Err(std::io::Error::other("injected checkpoint write fault"));
        }
        sixgen_obs::write_atomic(&self.path, bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(s: &str) -> NybbleAddr {
        s.parse().unwrap()
    }

    fn sample() -> EngineCheckpoint {
        EngineCheckpoint {
            mode: ClusterMode::Tight,
            unfused_growth: false,
            rng_seed: 0x6CE4,
            budget: 500,
            rng_state: [1, 2, 3, 4],
            rounds: 7,
            growths: 7,
            subsumed: 2,
            worker_panics: 1,
            cpu_time: Duration::from_nanos(123_456_789),
            wall_time: Duration::from_nanos(987_654_321),
            seeds: vec![addr("2001:db8::1"), addr("2001:db8::2")],
            slots: vec![
                SlotCheckpoint {
                    range: "2001:db8::?".parse().unwrap(),
                    seed_count: 2,
                    cached: CachedCheckpoint::Stale,
                },
                SlotCheckpoint {
                    range: "2001:db8::1".parse().unwrap(),
                    seed_count: 1,
                    cached: CachedCheckpoint::Ready {
                        range: "2001:db8::[0-3]".parse().unwrap(),
                        seed_count: 2,
                        range_size: 4,
                    },
                },
                SlotCheckpoint {
                    range: "2001:db8::2".parse().unwrap(),
                    seed_count: 1,
                    cached: CachedCheckpoint::Exhausted,
                },
            ],
            stale: vec![0],
            generated: vec![addr("2001:db8::1"), addr("2001:db8::2"), addr("2001:db8::3")],
        }
    }

    #[test]
    fn round_trip_is_byte_stable() {
        let checkpoint = sample();
        let bytes = checkpoint.to_bytes();
        let decoded = EngineCheckpoint::from_bytes(&bytes).unwrap();
        assert_eq!(decoded, checkpoint);
        assert_eq!(decoded.to_bytes(), bytes, "re-serialization must be byte-identical");
    }

    #[test]
    fn every_single_byte_corruption_is_rejected() {
        let bytes = sample().to_bytes();
        for i in 0..bytes.len() {
            let mut corrupt = bytes.clone();
            corrupt[i] ^= 0x01;
            assert!(
                EngineCheckpoint::from_bytes(&corrupt).is_err(),
                "flip at byte {i} went undetected"
            );
        }
    }

    #[test]
    fn truncations_are_rejected() {
        let bytes = sample().to_bytes();
        for len in 0..bytes.len() {
            assert!(
                EngineCheckpoint::from_bytes(&bytes[..len]).is_err(),
                "truncation to {len} bytes went undetected"
            );
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = sample().to_bytes();
        bytes.push(0);
        // Longer file: checksum no longer lines up.
        assert!(EngineCheckpoint::from_bytes(&bytes).is_err());
    }

    #[test]
    fn wrong_magic_and_version_are_typed_errors() {
        let bytes = sample().to_bytes();
        let mut wrong_magic = bytes.clone();
        wrong_magic[0] = b'X';
        assert_eq!(
            EngineCheckpoint::from_bytes(&wrong_magic),
            Err(CheckpointError::BadMagic)
        );
        // A future version must be refused even with a valid checksum.
        let mut future = sample().to_bytes();
        future[4..6].copy_from_slice(&(FORMAT_VERSION + 1).to_le_bytes());
        let checksum = fnv1a(&future[..bytes.len() - 8]);
        let at = future.len() - 8;
        future[at..].copy_from_slice(&checksum.to_le_bytes());
        assert_eq!(
            EngineCheckpoint::from_bytes(&future),
            Err(CheckpointError::UnsupportedVersion(FORMAT_VERSION + 1))
        );
    }

    #[test]
    fn structural_invariants_are_enforced() {
        // Stale list naming a Ready slot.
        let mut bad = sample();
        bad.stale = vec![1];
        let err = EngineCheckpoint::from_bytes(&bad.to_bytes()).unwrap_err();
        assert!(matches!(err, CheckpointError::Invalid(_)), "{err:?}");
        // Stale slot missing from the list.
        let mut bad = sample();
        bad.stale = vec![];
        assert!(EngineCheckpoint::from_bytes(&bad.to_bytes()).is_err());
        // Out-of-bounds stale index: typed, carrying the offending index.
        let mut bad = sample();
        bad.stale = vec![99];
        let err = EngineCheckpoint::from_bytes(&bad.to_bytes()).unwrap_err();
        assert_eq!(
            err,
            CheckpointError::StaleIndexOutOfBounds {
                index: 99,
                slots: bad.slots.len() as u64
            },
            "{err:?}"
        );
        // An index that does not fit usize is out of bounds, not a cast
        // wraparound.
        let mut bad = sample();
        bad.stale = vec![u64::MAX];
        let err = EngineCheckpoint::from_bytes(&bad.to_bytes()).unwrap_err();
        assert!(
            matches!(err, CheckpointError::StaleIndexOutOfBounds { index, .. } if index == u64::MAX),
            "{err:?}"
        );
        // Duplicate stale index: typed, carrying the repeated index.
        let mut bad = sample();
        let stale_slot = bad.stale[0];
        bad.stale.push(stale_slot);
        let err = EngineCheckpoint::from_bytes(&bad.to_bytes()).unwrap_err();
        assert_eq!(
            err,
            CheckpointError::DuplicateStaleIndex { index: stale_slot },
            "{err:?}"
        );
        // Generated set over budget.
        let mut bad = sample();
        bad.budget = 2;
        assert!(EngineCheckpoint::from_bytes(&bad.to_bytes()).is_err());
        // Duplicate generated address.
        let mut bad = sample();
        bad.generated.push(bad.generated[0]);
        assert!(EngineCheckpoint::from_bytes(&bad.to_bytes()).is_err());
        // Cached growth size disagreeing with its range.
        let mut bad = sample();
        if let CachedCheckpoint::Ready { range_size, .. } = &mut bad.slots[1].cached {
            *range_size += 1;
        }
        assert!(EngineCheckpoint::from_bytes(&bad.to_bytes()).is_err());
    }

    #[test]
    fn writer_retries_transient_faults_and_reports_persistent_ones() {
        let dir = std::env::temp_dir().join(format!("sixgen-ckpt-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("state.ckpt");
        let checkpoint = sample();

        // Two injected faults, four retries: the write must succeed.
        let mut writer = CheckpointWriter::with_policy(&path, 4, Duration::from_millis(1));
        writer.inject_failures = 2;
        writer.write(&checkpoint).unwrap();
        assert_eq!(writer.writes(), 1);
        assert_eq!(EngineCheckpoint::load(&path).unwrap(), checkpoint);

        // More faults than attempts: the error surfaces, and the
        // previously written checkpoint survives untouched.
        let mut altered = checkpoint.clone();
        altered.rounds += 1;
        writer.inject_failures = 10;
        assert!(writer.write(&altered).is_err());
        assert_eq!(EngineCheckpoint::load(&path).unwrap(), checkpoint);

        // A stray torn temp file never shadows the real checkpoint.
        std::fs::write(dir.join("state.ckpt.tmp"), b"garbage").unwrap();
        assert_eq!(EngineCheckpoint::load(&path).unwrap(), checkpoint);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
