//! Uniform bounded draws over caller-supplied word streams.
//!
//! The engine breaks exact growth ties "uniformly at random" (§5.4) in two
//! places: the global best-growth selection (fed by the run's `StdRng`) and
//! the per-cluster candidate scan (fed by a per-cluster SplitMix64 stream
//! so parallel evaluation stays deterministic). Both sites draw through
//! [`bounded_draw`] so they share one sampling method with the same bias
//! guarantees.

/// Draws a uniformly distributed value in `[0, bound)` from a stream of
/// `u64` words, using Lemire's multiply-shift method with rejection.
///
/// A word `x` maps to `(x * bound) >> 64`; draws whose low 64 product bits
/// fall below `2^64 mod bound` land in over-represented slices and are
/// rejected, which makes the accepted draws exactly uniform. Plain
/// `word % bound` (the old tie-break) and bare multiply-shift both carry a
/// bias of order `bound / 2^64` toward low values.
///
/// Rejection is capped at 64 attempts so a degenerate stream (e.g. a
/// constant closure in tests) cannot loop forever; after the cap the last
/// multiply-shift value is returned. For a uniform word stream the cap is
/// hit with probability at most `(bound / 2^64)^64` — never in practice —
/// so the draw remains unbiased for all real streams while still
/// terminating on adversarial ones.
///
/// # Panics
///
/// Panics if `bound` is zero.
pub fn bounded_draw(mut next_word: impl FnMut() -> u64, bound: u64) -> u64 {
    assert!(bound > 0, "bounded_draw requires a nonzero bound");
    let mut last = 0;
    for _ in 0..64 {
        let m = u128::from(next_word()) * u128::from(bound);
        last = (m >> 64) as u64;
        let lo = m as u64;
        // The rejection threshold is `2^64 mod bound`, which is strictly
        // below `bound` — so `lo >= bound` accepts without computing the
        // modulo at all. The division only runs when `lo < bound`
        // (probability `bound / 2^64`), which matters because the engine's
        // selection tie-break performs tens of millions of draws per run
        // and the per-draw `u64 %` used to dominate the phase. The
        // accepted/rejected decision (and therefore the word stream and
        // returned values) is bit-identical to always computing the
        // threshold.
        if lo >= bound || lo >= bound.wrapping_neg() % bound {
            return last;
        }
    }
    last
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stays_in_bounds() {
        let mut state = 0x1234_5678_u64;
        let mut word = || {
            state = crate::engine::splitmix64(state);
            state
        };
        for bound in [1, 2, 3, 7, 10, 255, 1 << 40, u64::MAX] {
            for _ in 0..200 {
                assert!(bounded_draw(&mut word, bound) < bound);
            }
        }
    }

    #[test]
    fn bound_one_is_always_zero() {
        let mut n = 0u64;
        let mut word = || {
            n = n.wrapping_add(0x9E37_79B9_7F4A_7C15);
            n
        };
        for _ in 0..50 {
            assert_eq!(bounded_draw(&mut word, 1), 0);
        }
    }

    #[test]
    fn uniform_over_small_bound() {
        // A chi-square-free sanity check: each of 8 cells gets roughly
        // 1/8 of 80_000 draws from a SplitMix64 stream.
        let mut state = 42u64;
        let mut word = || {
            state = crate::engine::splitmix64(state);
            state
        };
        let mut cells = [0u64; 8];
        for _ in 0..80_000 {
            cells[bounded_draw(&mut word, 8) as usize] += 1;
        }
        for &c in &cells {
            assert!((9_000..11_000).contains(&c), "cells skewed: {cells:?}");
        }
    }

    #[test]
    fn degenerate_constant_stream_terminates() {
        // A constant 0 stream rejects forever for bounds that do not divide
        // 2^64; the cap must kick in and return the multiply-shift value.
        assert_eq!(bounded_draw(|| 0, 3), 0);
        assert_eq!(bounded_draw(|| 0, 5), 0);
        assert_eq!(bounded_draw(|| u64::MAX, 7), 6);
    }

    #[test]
    fn deterministic_for_fixed_stream() {
        let draw = |seed: u64, bound: u64| {
            let mut state = seed;
            let mut word = || {
                state = crate::engine::splitmix64(state);
                state
            };
            bounded_draw(&mut word, bound)
        };
        for seed in 0..20 {
            assert_eq!(draw(seed, 13), draw(seed, 13));
        }
    }

    #[test]
    #[should_panic(expected = "nonzero bound")]
    fn zero_bound_panics() {
        bounded_draw(|| 1, 0);
    }
}
