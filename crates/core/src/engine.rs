//! The 6Gen engine: Algorithm 1's main loop with the §5.5 optimizations,
//! run as a resumable [`Session`].

use crate::budget::{BudgetTracker, Charge};
use crate::checkpoint::{CachedCheckpoint, CheckpointError, EngineCheckpoint, SlotCheckpoint};
use crate::cluster::{evaluate_growth_bounded, evaluate_growth_unfused, Cluster, Growth};
use crate::draw::bounded_draw;
use crate::outcome::{ClusterInfo, Outcome, RunStats, TargetSet, Termination};
use crate::select::{SelectKey, SelectTree};
use crate::Config;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sixgen_addr::{NybbleAddr, NybbleTree, PackedMasks, Range};
use sixgen_obs::{maybe_span, Counter, Histogram, MetricsRegistry, PhaseTimer, SpanId, TraceSink};
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Cached best growth for one cluster.
///
/// §5.5: "only one cluster is changed per iteration and ... because clusters
/// grow independently, all other clusters remain unchanged and their best
/// growths can be cached between iterations."
#[derive(Debug)]
enum Cached {
    /// Must be (re)computed: the cluster is new or just grew.
    Stale,
    /// The cluster contains every seed; it can never grow.
    Exhausted,
    /// A valid best growth.
    Ready(Growth),
}

#[derive(Debug)]
struct Slot {
    cluster: Cluster,
    cached: Cached,
}

impl SelectKey {
    fn of(cached: &Cached) -> SelectKey {
        match cached {
            Cached::Ready(growth) => SelectKey {
                count: growth.seed_count,
                size: growth.range_size,
            },
            Cached::Stale | Cached::Exhausted => SelectKey::NONE,
        }
    }
}

/// Round-loop acceleration structures for the default execution mode.
///
/// The reference round loop (kept behind [`Config::scan_round`]) pays
/// O(clusters) per round twice: a full scan of the key array to select
/// the best growth, and a full swap-compaction pass to delete subsumed
/// clusters. Both scans are replaced here by structures maintained
/// incrementally at the O(1)-per-round mutation points (one commit, a
/// handful of subsumptions), so a round costs O(affected + log N):
///
/// * **selection** — a tournament tree over the keys ([`SelectTree`])
///   that replays the scan's tie-break draw stream exactly;
/// * **subsumption** — a min-address index: `C ⊆ R` forces
///   `min(C) ∈ R` (per position, the minimum of a subset is a member of
///   the superset's nybble set), so the live clusters whose minimum
///   address lies inside the newly grown range — enumerated from an
///   uncompressed [`NybbleTree`] over the distinct minima — are a
///   complete candidate set, each then verified with the same exact
///   [`PackedMasks::is_subset`] test the scan uses. No RNG is involved,
///   so a false candidate costs four words and changes nothing.
///
/// Instead of compacting the slot arrays, subsumed slots are
/// **tombstoned in place** (`live[i] = false`, key set to
/// [`SelectKey::NONE`] so the tree never selects them). Because the
/// scan mode's swap-compaction is stable, the live slots appear in the
/// same relative order in both modes — which makes the scan order of
/// ready keys, and therefore the whole RNG draw stream, identical.
/// [`Session::checkpoint`] live-compacts, so checkpoints are
/// byte-identical across modes too.
#[derive(Debug)]
struct IncrementalState {
    /// Liveness flags, parallel to `slots`. Slot counts never grow after
    /// initialization (a commit replaces in place, subsumption only
    /// kills), so all parallel structures are sized once.
    live: Vec<bool>,
    live_count: usize,
    /// Tournament tree over the key array.
    select: SelectTree,
    /// Distinct minimum addresses of live clusters (set semantics: an
    /// address stays while any live cluster has it as its minimum).
    min_tree: NybbleTree,
    /// Live slot indices per distinct minimum address. Loose-mode ranges
    /// zero their wildcard nybbles in the minimum, so distinct clusters
    /// can share one minimum address.
    slots_by_min: HashMap<u128, Vec<u32>>,
}

impl IncrementalState {
    fn build(slots: &[Slot], keys: &[SelectKey]) -> IncrementalState {
        let mut state = IncrementalState {
            live: vec![true; slots.len()],
            live_count: slots.len(),
            select: SelectTree::from_keys(keys),
            min_tree: NybbleTree::new(),
            slots_by_min: HashMap::with_capacity(slots.len()),
        };
        for (i, slot) in slots.iter().enumerate() {
            state.add_min(slot.cluster.range.min_address(), i);
        }
        state
    }

    fn add_min(&mut self, min: NybbleAddr, slot: usize) {
        let entries = self.slots_by_min.entry(min.bits()).or_default();
        if entries.is_empty() {
            self.min_tree.insert(min);
        }
        entries.push(slot as u32);
    }

    fn remove_min(&mut self, min: NybbleAddr, slot: usize) {
        let entries = self
            .slots_by_min
            .get_mut(&min.bits())
            .expect("min-address index entry missing for a live cluster");
        let pos = entries
            .iter()
            .position(|&s| s == slot as u32)
            .expect("slot missing from its min-address index entry");
        entries.swap_remove(pos);
        if entries.is_empty() {
            self.slots_by_min.remove(&min.bits());
            self.min_tree.remove(min);
        }
    }
}

/// Metric handles for one engine run, fetched from the registry once up
/// front so hot-loop recording never touches the registry mutex. All
/// handles are atomics, so parallel growth workers record freely.
///
/// Candidate/range histograms and the re-exported `RunStats` counters are
/// deterministic (pure functions of seeds + config); phase timers and the
/// growth-evaluation latency histogram are wall-clock and live in the
/// export's timing section. Counters accumulate, so several runs sharing
/// one registry (e.g. the bench pipeline's per-prefix runs) report
/// aggregate totals.
#[derive(Debug)]
struct EngineMetrics {
    cache_fill: Arc<PhaseTimer>,
    select: Arc<PhaseTimer>,
    commit: Arc<PhaseTimer>,
    subsume: Arc<PhaseTimer>,
    candidate_set_size: Arc<Histogram>,
    ranges_evaluated: Arc<Histogram>,
    growth_eval: Arc<Histogram>,
    cache_recomputes: Arc<Counter>,
    growths: Arc<Counter>,
    subsumed: Arc<Counter>,
    budget_used: Arc<Counter>,
    budget: Arc<Counter>,
    seed_count: Arc<Counter>,
    worker_panics: Arc<Counter>,
    runs: Arc<Counter>,
}

impl EngineMetrics {
    fn new(registry: &MetricsRegistry) -> EngineMetrics {
        EngineMetrics {
            cache_fill: registry.phase("engine/cache_fill"),
            select: registry.phase("engine/select"),
            commit: registry.phase("engine/commit"),
            subsume: registry.phase("engine/subsume"),
            candidate_set_size: registry.histogram("engine/candidate_set_size"),
            ranges_evaluated: registry.histogram("engine/ranges_evaluated"),
            growth_eval: registry.time_histogram("engine/growth_eval"),
            cache_recomputes: registry.counter("engine/cache_recomputes"),
            growths: registry.counter("engine/growths"),
            subsumed: registry.counter("engine/subsumed"),
            budget_used: registry.counter("engine/budget_used"),
            budget: registry.counter("engine/budget"),
            seed_count: registry.counter("engine/seed_count"),
            worker_panics: registry.counter("engine/worker_panics"),
            runs: registry.counter("engine/runs"),
        }
    }

    /// Re-exports the final [`RunStats`] counters through the registry.
    fn export_stats(&self, stats: &RunStats) {
        self.growths.add(stats.growths);
        self.subsumed.add(stats.subsumed);
        self.budget_used.add(stats.budget_used);
        self.budget.add(stats.budget);
        self.seed_count.add(stats.seed_count);
        self.worker_panics.add(stats.worker_panics);
        self.runs.inc();
    }
}

/// A configured 6Gen run over a set of seeds.
///
/// Construct with [`SixGen::new`], execute with [`SixGen::run`] — or open
/// a [`Session`] with [`SixGen::session`] to drive the main loop round by
/// round, checkpointing and cancelling between rounds. Runs are
/// deterministic for a fixed seed set and [`Config`], including under
/// multi-threaded growth evaluation and across checkpoint/resume cycles.
#[derive(Debug)]
pub struct SixGen {
    seeds: Vec<NybbleAddr>,
    tree: NybbleTree,
    config: Config,
}

/// Bin threshold for [`NybbleTree::compress_bins`] on the seed tree.
/// Subtrees of at most this many seeds collapse into flat leaf bins,
/// taming the branch-and-bound enumeration cost over sparse regions
/// (isolated noisy seeds) that otherwise dominates cache refills on
/// large corpora. Pure query-plan tuning: results are byte-identical
/// for any value.
const SEED_TREE_BIN: usize = 128;

impl SixGen {
    /// Prepares a run. Duplicate seeds are removed; seed order does not
    /// affect the result.
    pub fn new(seeds: impl IntoIterator<Item = NybbleAddr>, config: Config) -> SixGen {
        let mut seeds: Vec<NybbleAddr> = seeds.into_iter().collect();
        seeds.sort_unstable();
        seeds.dedup();
        let mut tree = NybbleTree::from_addresses(seeds.iter().copied());
        // The seed tree is immutable for the whole run, so sparse
        // subtrees can be collapsed into leaf bins up front.
        tree.compress_bins(SEED_TREE_BIN);
        SixGen {
            seeds,
            tree,
            config,
        }
    }

    /// The deduplicated seed list.
    pub fn seeds(&self) -> &[NybbleAddr] {
        &self.seeds
    }

    /// Executes the algorithm to termination and returns the outcome.
    /// Equivalent to `self.session().run()`.
    pub fn run(self) -> Outcome {
        Session::start(self).run()
    }

    /// Opens a [`Session`]: the same algorithm, driven round by round by
    /// the caller, with checkpoint/resume and cooperative cancellation.
    pub fn session(self) -> Session {
        Session::start(self)
    }

    /// Recomputes the caches named by `stale` (draining it), in parallel
    /// when configured and worthwhile, and counts recovered panics into
    /// `worker_panics`.
    ///
    /// The stale list is maintained *incrementally* by the caller: after
    /// initialization it holds every cluster, and after a commit it holds
    /// exactly the grown cluster. A commit can never invalidate any other
    /// cluster's cache — the seed tree is immutable and clusters grow
    /// independently (§5.5), so a cached best growth only depends on the
    /// owning cluster's range. Deleting subsumed clusters doesn't
    /// invalidate caches either, for the same reason. Keeping the list
    /// explicit turns the per-round cache refresh from an O(clusters) scan
    /// into O(stale), which after round one is O(1) bookkeeping plus the
    /// single recompute.
    ///
    /// Returns the **aggregate busy time** spent in growth evaluation
    /// across all participating threads, feeding [`RunStats::cpu_time`]:
    ///
    /// * serial mode — the wall time of the evaluation loop (one thread,
    ///   so busy time and wall time coincide);
    /// * parallel mode — the sum of each worker's busy interval (thread
    ///   body start to finish), plus the serial failover retries.
    ///
    /// The semantics are deliberately identical across modes — total CPU
    /// time burned evaluating growths — so `cpu_time` is comparable across
    /// `threads` settings and `cpu_time / wall_time` approximates the
    /// achieved evaluation parallelism. Two measurement caveats are
    /// accepted: a worker's interval includes its share of per-cluster
    /// `catch_unwind`/metrics bookkeeping, and an evaluation that panicked
    /// and was retried contributes both attempts (the failed one is inside
    /// its worker's interval and cannot be separated out).
    ///
    /// [`RunStats::cpu_time`]: crate::RunStats::cpu_time
    ///
    /// Parallel growth evaluation is panic-free at the run level: each
    /// cluster's evaluation runs under [`catch_unwind`], a panicking
    /// cluster is retried serially on the coordinating thread, and a
    /// cluster that panics again is written off as [`Cached::Exhausted`]
    /// (it simply stops growing) so one poisoned cluster cannot abort the
    /// whole run.
    fn fill_caches(
        &self,
        slots: &mut [Slot],
        stale: &[usize],
        worker_panics: &mut u64,
        metrics: Option<&EngineMetrics>,
        trace: Option<&TraceSink>,
        parent: SpanId,
    ) -> Duration {
        debug_assert!(
            stale
                .iter()
                .all(|&i| matches!(slots[i].cached, Cached::Stale)),
            "stale list names a non-stale slot"
        );
        debug_assert_eq!(
            slots
                .iter()
                .filter(|s| matches!(s.cached, Cached::Stale))
                .count(),
            stale.len(),
            "a stale slot is missing from the stale list"
        );
        if stale.is_empty() {
            return Duration::ZERO;
        }
        if let Some(m) = metrics {
            m.cache_recomputes.add(stale.len() as u64);
        }
        let threads = match self.config.threads {
            0 => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            n => n,
        };
        if threads <= 1 || stale.len() < 64 {
            let start = Instant::now();
            for &i in stale {
                slots[i].cached =
                    self.compute_growth(&slots[i].cluster, false, metrics, trace, parent);
            }
            return start.elapsed();
        }

        // Parallel: chunk the stale indices across scoped workers, which
        // borrow the slots directly — scoped threads make the shared
        // reborrow sound, so no cluster is cloned just to be read. Results
        // are deterministic because each cluster's tie-break stream depends
        // only on its range, not on scheduling.
        let chunk_size = stale.len().div_ceil(threads);
        let chunks: Vec<&[usize]> = stale.chunks(chunk_size).collect();
        let mut results: Vec<(usize, Cached)> = Vec::with_capacity(stale.len());
        let mut failed: Vec<usize> = Vec::new();
        let mut cpu = Duration::ZERO;
        {
            let shared: &[Slot] = slots;
            std::thread::scope(|scope| {
                let handles: Vec<_> = chunks
                    .iter()
                    .map(|chunk| {
                        scope.spawn(move || {
                            let start = Instant::now();
                            let out: Vec<(usize, Option<Cached>)> = chunk
                                .iter()
                                .map(|&i| {
                                    let cached = catch_unwind(AssertUnwindSafe(|| {
                                        self.compute_growth(
                                            &shared[i].cluster,
                                            true,
                                            metrics,
                                            trace,
                                            parent,
                                        )
                                    }))
                                    .ok();
                                    (i, cached)
                                })
                                .collect();
                            (out, start.elapsed())
                        })
                    })
                    .collect();
                for (handle, chunk) in handles.into_iter().zip(&chunks) {
                    match handle.join() {
                        Ok((out, elapsed)) => {
                            cpu += elapsed;
                            for (i, cached) in out {
                                match cached {
                                    Some(cached) => results.push((i, cached)),
                                    None => failed.push(i),
                                }
                            }
                        }
                        // A panic escaped the per-cluster catch (worker
                        // plumbing, not growth math): re-derive the whole
                        // chunk serially below.
                        Err(_) => failed.extend(chunk.iter().copied()),
                    }
                }
            });
        }
        for (i, cached) in results {
            slots[i].cached = cached;
        }

        // Serial failover for clusters whose evaluation panicked. A second
        // panic marks the cluster exhausted so the run proceeds without it.
        for i in failed {
            *worker_panics += 1;
            let start = Instant::now();
            slots[i].cached = catch_unwind(AssertUnwindSafe(|| {
                self.compute_growth(&slots[i].cluster, false, metrics, trace, parent)
            }))
            .unwrap_or(Cached::Exhausted);
            cpu += start.elapsed();
        }
        cpu
    }

    /// An achievable upper bound on the distance from `range` to its
    /// nearest outside seed, from the sorted seed list's numeric
    /// neighbours: every range member lies numerically within
    /// `[min_address, max_address]`, so seeds below the interval's start or
    /// above its end are guaranteed outside the range and their distances
    /// are valid bounds. Checking a few neighbours on each side tightens
    /// the branch-and-bound start enough to collapse the candidate
    /// search's exploration phase; the bound is pruning-only, so results
    /// (and tie-break draws) are byte-identical to the unbounded search.
    fn distance_hint(&self, range: &Range) -> u32 {
        // Neighbours examined per side: distance probes are O(1), so a few
        // extra probes are free compared to even one saved tree descent.
        const PROBES: usize = 8;
        // Evenly-spaced samples from the seeds numerically *inside* the
        // range's [min, max] interval. Wide (grown) ranges cover many
        // seeds that are not members; any such seed also yields an
        // achievable bound, usually far tighter than the interval's edge
        // neighbours.
        const INTERIOR_PROBES: usize = 16;
        let mut bound = (sixgen_addr::NYBBLE_COUNT + 1) as u32;
        let lo = self.seeds.partition_point(|&s| s < range.min_address());
        for &seed in &self.seeds[lo.saturating_sub(PROBES)..lo] {
            bound = bound.min(range.distance(seed));
        }
        let hi = self.seeds.partition_point(|&s| s <= range.max_address());
        for &seed in &self.seeds[hi..(hi + PROBES).min(self.seeds.len())] {
            bound = bound.min(range.distance(seed));
        }
        let step = ((hi - lo) / INTERIOR_PROBES).max(1);
        for &seed in self.seeds[lo..hi].iter().step_by(step) {
            if !range.contains(seed) {
                bound = bound.min(range.distance(seed));
            }
        }
        bound
    }

    /// Computes one cluster's best growth with a deterministic per-cluster
    /// tie-break stream derived from the run seed and the cluster's range.
    ///
    /// With metrics enabled, records the candidate-set size and distinct
    /// ranges evaluated (deterministic — histogram totals are identical
    /// regardless of worker scheduling, since atomic adds commute) and the
    /// evaluation's wall-clock latency (timing section). With tracing
    /// enabled, records one `growth_eval` span per cluster per round,
    /// carrying the cluster's identity (low 64 bits of its range minimum),
    /// candidate-set size, ranges evaluated, and the chosen growth's
    /// density (parts per million) and size.
    fn compute_growth(
        &self,
        cluster: &Cluster,
        parallel_worker: bool,
        metrics: Option<&EngineMetrics>,
        trace: Option<&TraceSink>,
        parent: SpanId,
    ) -> Cached {
        if let Some(injection) = &self.config.panic_injection {
            if cluster.range.size() == injection.range_size
                && (parallel_worker || !injection.parallel_only)
            {
                panic!("injected growth panic (test hook)");
            }
        }
        let started = Instant::now();
        let mut span = maybe_span(trace, "engine", "growth_eval", parent);
        span.attr("cluster", cluster.range.min_address().bits() as u64);
        let mut state = splitmix64_seed(
            self.config.rng_seed,
            cluster.range.min_address().bits(),
            cluster.range.size(),
        );
        let tie_break = move || {
            state = splitmix64(state);
            state
        };
        let eval = if self.config.unfused_growth {
            evaluate_growth_unfused(cluster, &self.tree, self.config.mode, tie_break)
        } else {
            evaluate_growth_bounded(
                cluster,
                &self.tree,
                self.config.mode,
                self.distance_hint(&cluster.range),
                tie_break,
            )
        };
        span.attr("candidates", eval.candidates);
        span.attr("ranges_evaluated", eval.ranges_evaluated);
        if let Some(growth) = &eval.growth {
            span.attr(
                "density_ppm",
                (growth.seed_count as f64 / growth.range_size as f64 * 1e6) as u64,
            );
            span.attr(
                "range_size",
                u64::try_from(growth.range_size).unwrap_or(u64::MAX),
            );
        }
        if let Some(m) = metrics {
            m.candidate_set_size.record(eval.candidates);
            m.ranges_evaluated.record(eval.ranges_evaluated);
            m.growth_eval.record_duration(started.elapsed());
        }
        match eval.growth {
            Some(growth) => Cached::Ready(growth),
            None => Cached::Exhausted,
        }
    }
}

/// The result of one [`Session::step`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Step {
    /// The round committed a growth; the session is at a round boundary
    /// and can step again, checkpoint, or be cancelled.
    Grew,
    /// A stopping rule fired; call [`Session::finish`] for the outcome.
    /// Stepping a finished session returns the same value again.
    Done(Termination),
}

/// Why a checkpoint could not be resumed under a given [`Config`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResumeError {
    /// The config disagrees with the checkpoint on a fingerprint field
    /// (`mode`, `rng_seed`, or `unfused_growth`) — resuming would break
    /// the byte-identical-continuation guarantee.
    ConfigMismatch {
        /// The disagreeing [`Config`] field.
        field: &'static str,
    },
    /// The config's budget is below the number of addresses the
    /// checkpointed run already generated. Budgets can be topped *up* on
    /// resume, never shrunk below what was spent.
    BudgetBelowUsed {
        /// Addresses already generated.
        used: u64,
        /// The offered budget.
        budget: u64,
    },
    /// The checkpoint violates a structural invariant (possible when it
    /// was constructed in memory rather than decoded — decoding performs
    /// these checks itself).
    Corrupt(&'static str),
}

impl std::fmt::Display for ResumeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ResumeError::ConfigMismatch { field } => {
                write!(f, "config `{field}` does not match the checkpoint")
            }
            ResumeError::BudgetBelowUsed { used, budget } => {
                write!(
                    f,
                    "budget {budget} is below the {used} addresses already generated"
                )
            }
            ResumeError::Corrupt(what) => write!(f, "corrupt checkpoint: {what}"),
        }
    }
}

impl std::error::Error for ResumeError {}

/// A 6Gen run in progress: Algorithm 1's main loop, exposed one round at
/// a time.
///
/// [`SixGen::run`] is now a thin wrapper over this type. Driving the loop
/// from outside the engine is what makes the run *interruptible without
/// losing determinism*: between any two [`step`](Session::step) calls the
/// session sits at a **round boundary** — a state that is a pure function
/// of the seeds, the [`Config`], and the number of rounds stepped — and at
/// a boundary it can be
///
/// * **checkpointed** ([`checkpoint`](Session::checkpoint)): snapshot
///   every piece of round-to-round state (clusters, cached growths, the
///   run RNG's position, budget membership and order, cumulative stats)
///   into an [`EngineCheckpoint`];
/// * **resumed** ([`resume`](Session::resume)): rebuild a session from a
///   checkpoint in a fresh process and continue producing **byte-identical
///   targets** to the run that was interrupted — the cached growths are
///   restored rather than recomputed, so even the deterministic metrics
///   section is identical to an uninterrupted run's;
/// * **cancelled** (a [`CancelToken`](crate::CancelToken) in
///   [`Config::cancel`]): polled once per round next to the deadline
///   check, stopping with [`Termination::Cancelled`] and a well-formed
///   partial outcome.
///
/// The immutable inputs (seed list, nybble tree, config) stay in the
/// wrapped [`SixGen`]; everything here is the loop state that Algorithm 1
/// mutates per round.
#[derive(Debug)]
pub struct Session {
    engine: SixGen,
    slots: Vec<Slot>,
    /// Compact selection keys, parallel to `slots` (see [`SelectKey`]).
    keys: Vec<SelectKey>,
    /// Packed range masks, parallel to `slots`: the subsumption scan
    /// tests every live cluster against each newly grown range, and
    /// reading four words per cluster beats re-deriving 32 set
    /// comparisons from the full `Slot` every round.
    packed: Vec<PackedMasks>,
    /// Incremental cache invalidation (§5.5): exactly which slots are
    /// stale, instead of rescanning every slot each round. After
    /// initialization that is everyone; after each commit, only the
    /// grown cluster.
    stale_indices: Vec<usize>,
    /// Incremental select/subsume structures (`None` when
    /// [`Config::scan_round`] requests the reference full-scan round
    /// loop). See [`IncrementalState`] for the equivalence argument.
    incremental: Option<IncrementalState>,
    rng: StdRng,
    budget: BudgetTracker,
    rounds: u64,
    growths: u64,
    subsumed: u64,
    worker_panics: u64,
    cpu_time: Duration,
    /// Wall time inherited from checkpointed segments (zero for a fresh
    /// session); `finish` reports `prior_wall + started.elapsed()`.
    prior_wall: Duration,
    started: Instant,
    /// Per-segment deadline: a resumed session gets a fresh time budget
    /// from its own config (deadlines bound *process* wall time; the
    /// cumulative figure lives in [`RunStats::wall_time`]).
    deadline: Option<Instant>,
    metrics: Option<EngineMetrics>,
    /// Id of this segment's root `engine/run` span (recorded at session
    /// start; per-round phase spans parent under it).
    root: SpanId,
    done: Option<Termination>,
}

impl Session {
    /// Initializes a session: one singleton cluster per seed, each seed
    /// charged against the budget (InitClusters). Sessions that cannot
    /// run at all ([`Termination::NoSeeds`],
    /// [`Termination::ExhaustedAtInit`]) are born finished.
    pub fn start(engine: SixGen) -> Session {
        let started = Instant::now();
        let deadline = engine.config.time_limit.map(|limit| started + limit);
        let metrics = engine.config.metrics.as_deref().map(EngineMetrics::new);
        let root = {
            let trace = engine.config.trace.as_deref();
            let mut root = maybe_span(trace, "engine", "run", SpanId::NONE);
            root.attr("seeds", engine.seeds.len() as u64);
            root.attr("budget", engine.config.budget);
            root.id()
        };
        let mut budget = BudgetTracker::new(engine.config.budget);
        let mut slots: Vec<Slot> = Vec::with_capacity(engine.seeds.len());
        let mut done = None;
        if engine.seeds.is_empty() {
            done = Some(Termination::NoSeeds);
        } else {
            // InitClusters: one singleton cluster per seed; each seed
            // address is itself a generated target and counts against the
            // budget.
            for &seed in &engine.seeds {
                if !budget.add_address(seed) && budget.is_exhausted() {
                    // Budget smaller than the seed count: emit what fit.
                    done = Some(Termination::ExhaustedAtInit);
                    break;
                }
                slots.push(Slot {
                    cluster: Cluster::singleton(seed),
                    cached: Cached::Stale,
                });
            }
        }
        let stale_indices: Vec<usize> = (0..slots.len()).collect();
        let keys = vec![SelectKey::NONE; slots.len()];
        let packed = slots.iter().map(|s| s.cluster.range.packed_masks()).collect();
        let incremental =
            (!engine.config.scan_round).then(|| IncrementalState::build(&slots, &keys));
        Session {
            rng: StdRng::seed_from_u64(engine.config.rng_seed),
            engine,
            slots,
            keys,
            packed,
            stale_indices,
            incremental,
            budget,
            rounds: 0,
            growths: 0,
            subsumed: 0,
            worker_panics: 0,
            cpu_time: Duration::ZERO,
            prior_wall: Duration::ZERO,
            started,
            deadline,
            metrics,
            root,
            done,
        }
    }

    /// Rebuilds a session from a checkpoint, continuing the interrupted
    /// run byte-identically.
    ///
    /// `config` must agree with the checkpoint on the determinism
    /// fingerprint (`mode`, `rng_seed`, `unfused_growth`); `budget` may be
    /// *raised* to top up a finished-or-nearly-finished run (never lowered
    /// below what was already generated); `threads`, `metrics`, `trace`,
    /// `time_limit`, and `cancel` are free — none of them affect the
    /// target stream, and the deadline is deliberately per-segment (a
    /// fresh process gets a fresh time budget).
    pub fn resume(checkpoint: EngineCheckpoint, config: Config) -> Result<Session, ResumeError> {
        if config.mode != checkpoint.mode {
            return Err(ResumeError::ConfigMismatch { field: "mode" });
        }
        if config.rng_seed != checkpoint.rng_seed {
            return Err(ResumeError::ConfigMismatch { field: "rng_seed" });
        }
        if config.unfused_growth != checkpoint.unfused_growth {
            return Err(ResumeError::ConfigMismatch {
                field: "unfused_growth",
            });
        }
        // A decoded checkpoint has already passed these checks; re-run
        // them so hand-constructed checkpoints get the same scrutiny.
        checkpoint.validate().map_err(|e| match e {
            CheckpointError::Invalid(what) => ResumeError::Corrupt(what),
            CheckpointError::StaleIndexOutOfBounds { .. } => {
                ResumeError::Corrupt("stale index out of bounds")
            }
            CheckpointError::DuplicateStaleIndex { .. } => {
                ResumeError::Corrupt("duplicate stale index")
            }
            _ => ResumeError::Corrupt("structural validation failed"),
        })?;
        let used = checkpoint.generated.len() as u64;
        if config.budget < used {
            return Err(ResumeError::BudgetBelowUsed {
                used,
                budget: config.budget,
            });
        }
        let budget = BudgetTracker::restore(config.budget, checkpoint.generated)
            .ok_or(ResumeError::Corrupt("duplicate generated address"))?;
        let started = Instant::now();
        let deadline = config.time_limit.map(|limit| started + limit);
        let metrics = config.metrics.as_deref().map(EngineMetrics::new);
        // The tree is a pure function of the seed list; rebuild it instead
        // of shipping it in the checkpoint. The checkpointed list is
        // already sorted and deduplicated, so `new` is a no-op reorder.
        let engine = SixGen::new(checkpoint.seeds, config);
        let root = {
            let trace = engine.config.trace.as_deref();
            let mut root = maybe_span(trace, "engine", "run", SpanId::NONE);
            root.attr("seeds", engine.seeds.len() as u64);
            root.attr("budget", engine.config.budget);
            root.attr("resumed_at_round", checkpoint.rounds);
            root.id()
        };
        let slots: Vec<Slot> = checkpoint
            .slots
            .into_iter()
            .map(|s| Slot {
                cluster: Cluster {
                    range: s.range,
                    seed_count: s.seed_count,
                },
                cached: match s.cached {
                    CachedCheckpoint::Stale => Cached::Stale,
                    CachedCheckpoint::Exhausted => Cached::Exhausted,
                    CachedCheckpoint::Ready {
                        range,
                        seed_count,
                        range_size,
                    } => Cached::Ready(Growth {
                        range,
                        seed_count,
                        range_size,
                    }),
                },
            })
            .collect();
        // Keys and packed masks are caches over the slots; at a round
        // boundary both are exactly what `SelectKey::of` / `packed_masks`
        // derive, so they are rebuilt rather than serialized. The same
        // goes for the incremental structures: a checkpoint holds only
        // live, compacted slots, so rebuilding them deterministically is
        // a pure function of the slot list — and the checkpoint never
        // records which execution mode produced it.
        let keys: Vec<SelectKey> = slots.iter().map(|s| SelectKey::of(&s.cached)).collect();
        let packed = slots.iter().map(|s| s.cluster.range.packed_masks()).collect();
        let incremental =
            (!engine.config.scan_round).then(|| IncrementalState::build(&slots, &keys));
        let stale_indices = checkpoint
            .stale
            .iter()
            .map(|&i| usize::try_from(i))
            .collect::<Result<Vec<usize>, _>>()
            .map_err(|_| ResumeError::Corrupt("stale index out of bounds"))?;
        Ok(Session {
            rng: StdRng::from_state(checkpoint.rng_state),
            engine,
            slots,
            keys,
            packed,
            stale_indices,
            incremental,
            budget,
            rounds: checkpoint.rounds,
            growths: checkpoint.growths,
            subsumed: checkpoint.subsumed,
            worker_panics: checkpoint.worker_panics,
            cpu_time: checkpoint.cpu_time,
            prior_wall: checkpoint.wall_time,
            started,
            deadline,
            metrics,
            root,
            done: None,
        })
    }

    /// Snapshots the session's complete round-boundary state.
    ///
    /// Call between steps (the session is always at a boundary there).
    /// The snapshot is independent of the live session — resuming it does
    /// not require this process to survive.
    ///
    /// Termination is deliberately **not** part of the snapshot: a
    /// checkpoint of an already-finished session resumes as a live one
    /// and re-derives the stopping rule in one extra round. Checkpoint at
    /// round boundaries of in-progress runs (as
    /// [`run_with`](Session::run_with) hooks naturally do).
    pub fn checkpoint(&self) -> EngineCheckpoint {
        // Incremental mode tombstones subsumed slots in place; the
        // checkpoint live-compacts them away and remaps stale indices to
        // live *ranks* (live slots strictly before the index), so the
        // snapshot is byte-identical to scan mode's eagerly-compacted
        // one. That identity is what keeps the execution mode out of the
        // resume fingerprint: a checkpoint taken in either mode resumes
        // in either mode.
        let live = |i: usize| self.incremental.as_ref().is_none_or(|inc| inc.live[i]);
        let stale: Vec<u64> = match &self.incremental {
            None => self.stale_indices.iter().map(|&i| i as u64).collect(),
            Some(inc) => {
                let mut rank = vec![0u64; self.slots.len()];
                let mut live_before = 0u64;
                for (i, r) in rank.iter_mut().enumerate() {
                    *r = live_before;
                    live_before += u64::from(inc.live[i]);
                }
                self.stale_indices
                    .iter()
                    .map(|&i| {
                        debug_assert!(inc.live[i], "a dead slot can never be stale");
                        rank[i]
                    })
                    .collect()
            }
        };
        EngineCheckpoint {
            mode: self.engine.config.mode,
            unfused_growth: self.engine.config.unfused_growth,
            rng_seed: self.engine.config.rng_seed,
            budget: self.budget.budget(),
            rng_state: self.rng.state(),
            rounds: self.rounds,
            growths: self.growths,
            subsumed: self.subsumed,
            worker_panics: self.worker_panics,
            cpu_time: self.cpu_time,
            wall_time: self.prior_wall + self.started.elapsed(),
            seeds: self.engine.seeds.clone(),
            slots: self
                .slots
                .iter()
                .enumerate()
                .filter(|&(i, _)| live(i))
                .map(|(_, s)| SlotCheckpoint {
                    range: s.cluster.range.clone(),
                    seed_count: s.cluster.seed_count,
                    cached: match &s.cached {
                        Cached::Stale => CachedCheckpoint::Stale,
                        Cached::Exhausted => CachedCheckpoint::Exhausted,
                        Cached::Ready(growth) => CachedCheckpoint::Ready {
                            range: growth.range.clone(),
                            seed_count: growth.seed_count,
                            range_size: growth.range_size,
                        },
                    },
                })
                .collect(),
            stale,
            generated: self.budget.generated_in_order().to_vec(),
        }
    }

    /// Runs one round of Algorithm 1: refresh stale growth caches, check
    /// the deadline and cancel token, select the globally best growth,
    /// and commit it (or stop).
    ///
    /// On [`Step::Grew`] the session is back at a round boundary. On
    /// [`Step::Done`] the session is finished; further calls return the
    /// same termination without doing work.
    pub fn step(&mut self) -> Step {
        if let Some(termination) = self.done {
            return Step::Done(termination);
        }
        self.rounds += 1;
        let total_seeds = self.engine.seeds.len() as u64;
        let trace = self.engine.config.trace.clone();
        let trace = trace.as_deref();

        let phase_started = Instant::now();
        {
            let mut span = maybe_span(trace, "engine", "cache_fill", self.root);
            let stale_now = std::mem::take(&mut self.stale_indices);
            self.cpu_time += self.engine.fill_caches(
                &mut self.slots,
                &stale_now,
                &mut self.worker_panics,
                self.metrics.as_ref(),
                trace,
                span.id(),
            );
            for &i in &stale_now {
                self.keys[i] = SelectKey::of(&self.slots[i].cached);
            }
            // Event-driven refill propagation: the freshly computed keys
            // are pushed into the select tree here, at the only point
            // they change, instead of rebuilding anything per round.
            if let Some(inc) = &mut self.incremental {
                for &i in &stale_now {
                    inc.select.set(i, self.keys[i]);
                }
            }
            span.attr("clusters", self.live_cluster_count() as u64);
        }
        if let Some(m) = &self.metrics {
            m.cache_fill.record(phase_started.elapsed());
        }

        // Deadline and cancellation checks (once per round, after the
        // cache refresh): a run cut short here is still a valid partial
        // result because every seed has been in some cluster since
        // initialization, and the session remains at a round boundary so
        // a checkpoint taken now resumes cleanly.
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                return self.stop(Termination::Deadline);
            }
        }
        if let Some(token) = &self.engine.config.cancel {
            if token.is_cancelled() {
                return self.stop(Termination::Cancelled);
            }
        }

        // Select the globally best cached growth: maximum density, then
        // smallest range, then uniformly at random among exact ties
        // (reservoir over scan order keeps this deterministic).
        let phase_started = Instant::now();
        let mut select_span = maybe_span(trace, "engine", "select", self.root);
        select_span.attr("clusters", self.live_cluster_count() as u64);
        let rng = &mut self.rng;
        let best_index: Option<usize> = match &self.incremental {
            // Tournament-tree selection: same winner, same tie-break
            // draw stream as the scan below, in O(eras · log N + draws)
            // instead of O(clusters + draws). See `SelectTree::select`.
            Some(inc) => inc.select.select(|| rng.gen::<u64>()),
            // Reference scan over the compact key array; the comparison
            // and tie-break logic (and therefore the RNG draw sequence)
            // are identical to comparing the cached growths directly,
            // pinned by SelectKey::preference's contract.
            None => {
                let mut best_index: Option<usize> = None;
                let mut best_key = SelectKey::NONE;
                let mut ties: u64 = 0;
                for (i, key) in self.keys.iter().enumerate() {
                    if !key.is_ready() {
                        continue;
                    }
                    match best_index {
                        None => {
                            best_index = Some(i);
                            best_key = *key;
                            ties = 1;
                        }
                        Some(_) => match key.preference(&best_key) {
                            core::cmp::Ordering::Greater => {
                                best_index = Some(i);
                                best_key = *key;
                                ties = 1;
                            }
                            core::cmp::Ordering::Equal => {
                                ties += 1;
                                if bounded_draw(|| rng.gen::<u64>(), ties) == 0 {
                                    best_index = Some(i);
                                    best_key = *key;
                                }
                            }
                            core::cmp::Ordering::Less => {}
                        },
                    }
                }
                best_index
            }
        };
        drop(select_span);
        if let Some(m) = &self.metrics {
            m.select.record(phase_started.elapsed());
        }
        let Some(grown_index) = best_index else {
            // Every cluster contains all seeds: nothing can grow.
            return self.stop(Termination::AllSeedsClustered);
        };
        let Cached::Ready(growth) = &self.slots[grown_index].cached else {
            unreachable!("selected slot is Ready");
        };

        // Budget check first (Algorithm 1 computes the cost before the
        // all-seeds test): an over-budget growth triggers the exact
        // final-sampling path even if it would cluster all seeds.
        if self.budget.cost_if_fits(&growth.range).is_none() {
            let range = growth.range.clone();
            let charge = self.budget.charge(&range, &mut self.rng);
            debug_assert!(matches!(charge, Charge::Exhausted { .. }));
            return self.stop(Termination::BudgetExhausted);
        }
        if growth.seed_count == total_seeds {
            // The growth would merge all seeds into one cluster; per
            // Algorithm 1 it is *not* committed.
            return self.stop(Termination::AllSeedsClustered);
        }

        // Commit: charge the budget, adopt the grown range, invalidate
        // this cluster's cache, and delete clusters subsumed by the new
        // range (§5.4).
        let phase_started = Instant::now();
        let mut commit_span = maybe_span(trace, "engine", "commit", self.root);
        let growth = growth.clone();
        commit_span.attr("seed_count", growth.seed_count);
        commit_span.attr(
            "range_size",
            u64::try_from(growth.range_size).unwrap_or(u64::MAX),
        );
        let charge = self.budget.charge(&growth.range, &mut self.rng);
        debug_assert!(matches!(charge, Charge::Committed { .. }));
        self.growths += 1;
        let old_min = self.slots[grown_index].cluster.range.min_address();
        self.slots[grown_index] = Slot {
            cluster: Cluster {
                range: growth.range,
                seed_count: growth.seed_count,
            },
            cached: Cached::Stale,
        };
        self.keys[grown_index] = SelectKey::NONE;
        self.packed[grown_index] = self.slots[grown_index].cluster.range.packed_masks();
        let new_packed = self.packed[grown_index];
        if let Some(inc) = &mut self.incremental {
            inc.select.set(grown_index, SelectKey::NONE);
            let new_min = self.slots[grown_index].cluster.range.min_address();
            if new_min != old_min {
                inc.remove_min(old_min, grown_index);
                inc.add_min(new_min, grown_index);
            }
        }
        drop(commit_span);
        if let Some(m) = &self.metrics {
            m.commit.record(phase_started.elapsed());
        }
        let phase_started = Instant::now();
        let mut subsume_span = maybe_span(trace, "engine", "subsume", self.root);
        let (killed, grown_stale_index) = match &mut self.incremental {
            // Min-address candidate enumeration: every cluster subsumed
            // by the new range has its minimum address inside it, so the
            // range query over the distinct live minima yields a complete
            // candidate set — typically the handful of clusters actually
            // subsumed plus the grown cluster itself — and each candidate
            // is verified with the exact subset test. Survivors are
            // untouched, so the round costs O(candidates), not
            // O(clusters).
            Some(inc) => {
                let new_range = self.slots[grown_index].cluster.range.clone();
                let mut candidates: Vec<u32> = Vec::new();
                let slots_by_min = &inc.slots_by_min;
                inc.min_tree.for_each_in_range(&new_range, |min| {
                    if let Some(entries) = slots_by_min.get(&min.bits()) {
                        candidates.extend_from_slice(entries);
                    }
                });
                candidates.sort_unstable();
                let mut killed = 0u64;
                for &c in &candidates {
                    let i = c as usize;
                    if i == grown_index || !self.packed[i].is_subset(&new_packed) {
                        continue;
                    }
                    debug_assert!(inc.live[i], "the min index holds only live slots");
                    // Tombstone in place: the slot keeps its position so
                    // the live-slot order (and with it the select draw
                    // stream) matches scan mode's stable compaction.
                    inc.live[i] = false;
                    inc.live_count -= 1;
                    self.keys[i] = SelectKey::NONE;
                    inc.select.set(i, SelectKey::NONE);
                    // Dead slots must not read as stale — `fill_caches`
                    // asserts the stale list is exact.
                    self.slots[i].cached = Cached::Exhausted;
                    let min = self.slots[i].cluster.range.min_address();
                    inc.remove_min(min, i);
                    killed += 1;
                }
                (killed, grown_index)
            }
            // Reference path: compact `slots`, `packed`, and `keys` in
            // one swap-based pass. The subset test reads only the packed
            // mask array (four words per cluster), survivors swap down
            // into place (stably — relative order is preserved), and
            // everything past the write cursor dies at truncate. The
            // grown cluster's position is tracked through the
            // compaction; it is the round's only stale cache (see
            // `fill_caches` for why no other cache can be invalidated
            // by this commit).
            None => {
                let before = self.slots.len();
                let mut write = 0;
                let mut grown_new_index = grown_index;
                for read in 0..self.slots.len() {
                    let keep = read == grown_index || !self.packed[read].is_subset(&new_packed);
                    if keep {
                        if read == grown_index {
                            grown_new_index = write;
                        }
                        if read != write {
                            self.slots.swap(read, write);
                            self.packed[write] = self.packed[read];
                            self.keys[write] = self.keys[read];
                        }
                        write += 1;
                    }
                }
                self.slots.truncate(write);
                self.packed.truncate(write);
                self.keys.truncate(write);
                ((before - write) as u64, grown_new_index)
            }
        };
        // The grown cluster is the round's only new stale cache. The
        // membership guard is defensive: `step` drains the stale list at
        // the top of every round, so the push can never duplicate today,
        // but a duplicated entry would recompute a growth twice and trip
        // the exactness asserts in `fill_caches`.
        if !self.stale_indices.contains(&grown_stale_index) {
            self.stale_indices.push(grown_stale_index);
        }
        self.subsumed += killed;
        subsume_span.attr("subsumed", killed);
        drop(subsume_span);
        if let Some(m) = &self.metrics {
            m.subsume.record(phase_started.elapsed());
        }
        Step::Grew
    }

    fn stop(&mut self, termination: Termination) -> Step {
        self.done = Some(termination);
        Step::Done(termination)
    }

    /// Steps to termination. Equivalent to `run_with(|_| {})`.
    pub fn run(self) -> Outcome {
        self.run_with(|_| {})
    }

    /// Steps to termination, invoking `after_round` at every round
    /// boundary (after each committed growth) — the hook where callers
    /// checkpoint, report progress, or decide to cancel.
    pub fn run_with(mut self, mut after_round: impl FnMut(&mut Session)) -> Outcome {
        loop {
            match self.step() {
                Step::Grew => after_round(&mut self),
                Step::Done(_) => return self.finish(),
            }
        }
    }

    /// Consumes the finished session into its [`Outcome`], exporting the
    /// final [`RunStats`] through the metrics registry (only here: a
    /// session that dies before finishing — crash, drop — exports
    /// nothing, so a registry shared across an interrupt/resume cycle
    /// counts the logical run exactly once).
    ///
    /// # Panics
    ///
    /// If the session has not terminated (no [`Step::Done`] yet).
    pub fn finish(mut self) -> Outcome {
        let termination = self
            .done
            .expect("finish() requires a terminated session; step() until Step::Done");
        let incremental = self.incremental.take();
        let clusters = self
            .slots
            .into_iter()
            .enumerate()
            .filter(|&(i, _)| incremental.as_ref().is_none_or(|inc| inc.live[i]))
            .map(|(_, s)| ClusterInfo {
                range_size: s.cluster.range.size(),
                seed_count: s.cluster.seed_count,
                range: s.cluster.range,
            })
            .collect();
        let stats = RunStats {
            rounds: self.rounds,
            growths: self.growths,
            subsumed: self.subsumed,
            budget_used: self.budget.used(),
            budget: self.budget.budget(),
            seed_count: self.engine.seeds.len() as u64,
            wall_time: self.prior_wall + self.started.elapsed(),
            cpu_time: self.cpu_time,
            worker_panics: self.worker_panics,
            termination,
        };
        if let Some(m) = &self.metrics {
            m.export_stats(&stats);
        }
        Outcome {
            targets: TargetSet::from_ordered(self.budget.into_targets()),
            clusters,
            stats,
        }
    }

    /// The termination, once a stopping rule has fired (`None` while the
    /// session can still step).
    pub fn termination(&self) -> Option<Termination> {
        self.done
    }

    /// Main-loop rounds started, cumulative across resumed segments.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Growths committed, cumulative across resumed segments.
    pub fn growths(&self) -> u64 {
        self.growths
    }

    /// Unique addresses generated so far.
    pub fn budget_used(&self) -> u64 {
        self.budget.used()
    }

    /// Live clusters at the current round boundary.
    pub fn cluster_count(&self) -> usize {
        self.live_cluster_count()
    }

    /// Live clusters: in incremental mode dead slots are tombstoned in
    /// place, so the slot count over-reports.
    fn live_cluster_count(&self) -> usize {
        self.incremental
            .as_ref()
            .map_or(self.slots.len(), |inc| inc.live_count)
    }
}

/// SplitMix64 step: a tiny, high-quality PRNG for tie-break streams.
pub(crate) fn splitmix64(mut state: u64) -> u64 {
    state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Mixes the run seed with a cluster's identity (range minimum and size)
/// into an initial SplitMix64 state.
pub(crate) fn splitmix64_seed(run_seed: u64, min_bits: u128, size: u128) -> u64 {
    let mut state = run_seed;
    for part in [
        min_bits as u64,
        (min_bits >> 64) as u64,
        size as u64,
        (size >> 64) as u64,
    ] {
        state = splitmix64(state ^ part);
    }
    state
}

/// Convenience function: run 6Gen over `seeds` with `config`.
pub fn run(seeds: impl IntoIterator<Item = NybbleAddr>, config: Config) -> Outcome {
    SixGen::new(seeds, config).run()
}

/// Convenience function: run 6Gen separately over pre-grouped seed sets
/// (e.g. per routed prefix, as in all of the paper's experiments) with the
/// same per-group config, returning one outcome per group.
pub fn run_grouped<I>(groups: I, config: &Config) -> Vec<Outcome>
where
    I: IntoIterator,
    I::Item: IntoIterator<Item = NybbleAddr>,
{
    groups
        .into_iter()
        .map(|seeds| SixGen::new(seeds, config.clone()).run())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ClusterMode;
    use sixgen_addr::Range;

    fn addr(s: &str) -> NybbleAddr {
        s.parse().unwrap()
    }

    fn addrs(list: &[&str]) -> Vec<NybbleAddr> {
        list.iter().map(|s| addr(s)).collect()
    }

    fn range(s: &str) -> Range {
        s.parse().unwrap()
    }

    #[test]
    fn empty_seeds() {
        let outcome = SixGen::new([], Config::default()).run();
        assert_eq!(outcome.stats.termination, Termination::NoSeeds);
        assert!(outcome.targets.is_empty());
        assert!(outcome.clusters.is_empty());
    }

    #[test]
    fn single_seed_terminates_immediately() {
        let outcome = SixGen::new([addr("2001:db8::1")], Config::default()).run();
        assert_eq!(outcome.stats.termination, Termination::AllSeedsClustered);
        assert_eq!(outcome.targets.len(), 1);
        assert_eq!(outcome.clusters.len(), 1);
        assert!(outcome.clusters[0].is_singleton());
        assert_eq!(outcome.stats.growths, 0);
    }

    #[test]
    fn duplicate_seeds_deduplicated() {
        let run = SixGen::new(addrs(&["2001:db8::1", "2001:db8::1"]), Config::default());
        assert_eq!(run.seeds().len(), 1);
    }

    #[test]
    fn two_close_seeds_stop_at_all_clustered() {
        // Growing either singleton would cluster all seeds, so per
        // Algorithm 1 the growth is not committed.
        let outcome = SixGen::new(
            addrs(&["2001:db8::1", "2001:db8::2"]),
            Config::with_budget(1000),
        )
        .run();
        assert_eq!(outcome.stats.termination, Termination::AllSeedsClustered);
        assert_eq!(outcome.targets.len(), 2, "only the seeds themselves");
        assert_eq!(outcome.stats.growths, 0);
        assert_eq!(outcome.clusters.len(), 2);
    }

    #[test]
    fn dense_region_is_explored() {
        // Two groups; growing within a group is denser than bridging them.
        let seeds = addrs(&[
            "2001:db8::11",
            "2001:db8::12",
            "2001:db8::13",
            "2001:db8:ffff::1",
            "2001:db8:ffff::2",
        ]);
        let outcome = SixGen::new(seeds, Config::with_budget(100)).run();
        // The ::1? cluster should exist and cover unseen addresses.
        assert!(outcome.targets.contains(addr("2001:db8::1f")));
        assert!(outcome.stats.growths >= 1);
        assert!(outcome
            .clusters
            .iter()
            .any(|c| c.range == range("2001:db8::1?")));
        // Budget respected.
        assert!(outcome.targets.len() as u64 <= 100);
    }

    #[test]
    fn budget_exhausted_exactly() {
        // Two far-apart dense groups: after both grow into /124-style
        // ranges (10 seeds + 22 new = 32 used), the only remaining growth
        // bridges the groups with a range far larger than the leftover
        // budget of 8, forcing the exact final-sampling path.
        let mut seeds = addrs(&[
            "2001:db8::a001",
            "2001:db8::a002",
            "2001:db8::a003",
            "2001:db8::a004",
            "2001:db8::a005",
        ]);
        seeds.extend(addrs(&[
            "2001:db8:b::1",
            "2001:db8:b::2",
            "2001:db8:b::3",
            "2001:db8:b::4",
            "2001:db8:b::5",
        ]));
        let budget = 40;
        let outcome = SixGen::new(seeds, Config::with_budget(budget)).run();
        assert_eq!(outcome.stats.termination, Termination::BudgetExhausted);
        assert_eq!(outcome.targets.len() as u64, budget);
        assert_eq!(outcome.stats.budget_used, budget);
        assert_eq!(outcome.stats.growths, 2);
    }

    #[test]
    fn budget_smaller_than_seed_count() {
        let seeds: Vec<NybbleAddr> = (0..10u32)
            .map(|i| NybbleAddr::from_bits(0x2001 << 112 | i as u128))
            .collect();
        let outcome = SixGen::new(seeds, Config::with_budget(4)).run();
        assert_eq!(outcome.stats.termination, Termination::ExhaustedAtInit);
        assert_eq!(outcome.targets.len(), 4);
    }

    #[test]
    fn targets_are_unique_and_include_seeds_in_ranges() {
        let seeds = addrs(&["2001:db8::10", "2001:db8::11", "2001:db8::12"]);
        let outcome = SixGen::new(seeds.clone(), Config::with_budget(1000)).run();
        let mut sorted: Vec<_> = outcome.targets.iter().collect();
        sorted.sort();
        let len_before = sorted.len();
        sorted.dedup();
        assert_eq!(sorted.len(), len_before, "targets must be unique");
        for s in &seeds {
            assert!(outcome.targets.contains(*s), "seed {s} missing");
        }
    }

    #[test]
    fn subsumed_clusters_are_deleted() {
        // Seeds on a line: growing one cluster to ::1? subsumes the other
        // singletons inside it.
        let seeds = addrs(&[
            "2001:db8::10",
            "2001:db8::11",
            "2001:db8::12",
            "2001:db8::13",
            "2001:db8::14",
            "2001:db8:9999::1", // far-away anchor keeps the run going
            "2001:db8:9999::2",
        ]);
        let outcome = SixGen::new(seeds, Config::with_budget(500)).run();
        assert!(outcome.stats.subsumed >= 3, "subsumed {}", outcome.stats.subsumed);
        // No cluster strictly inside another's range should remain after
        // growth (modulo later growth that did not re-check older pairs).
        let grown: Vec<&ClusterInfo> =
            outcome.clusters.iter().filter(|c| !c.is_singleton()).collect();
        for g in &grown {
            for c in &outcome.clusters {
                if std::ptr::eq(*g, c) {
                    continue;
                }
                assert!(
                    !(c.range.is_subset(&g.range) && c.range != g.range),
                    "cluster {} subsumed by {} but not deleted",
                    c.range,
                    g.range
                );
            }
        }
    }

    #[test]
    fn loose_and_tight_modes_differ() {
        let seeds = addrs(&[
            "2001:db8::1230",
            "2001:db8::1234",
            "2001:db8::1238",
            "2001:db8::9999",
            "2001:db8::999b",
        ]);
        let loose = SixGen::new(
            seeds.clone(),
            Config {
                mode: ClusterMode::Loose,
                budget: 64,
                ..Config::default()
            },
        )
        .run();
        let tight = SixGen::new(
            seeds,
            Config {
                mode: ClusterMode::Tight,
                budget: 64,
                ..Config::default()
            },
        )
        .run();
        // Loose ranges are full wildcards; tight ranges are bounded.
        assert!(loose.clusters.iter().all(|c| c.range.is_loose()));
        assert!(tight.clusters.iter().any(|c| !c.range.is_loose()));
        // Tight mode consumes less budget per growth.
        assert!(tight.stats.budget_used <= loose.stats.budget_used);
    }

    #[test]
    fn runs_are_deterministic() {
        let seeds: Vec<NybbleAddr> = (0..40u32)
            .map(|i| {
                NybbleAddr::from_bits(
                    0x2001_0db8 << 96 | ((i % 7) as u128) << 16 | ((i * 13 % 256) as u128),
                )
            })
            .collect();
        let config = Config::with_budget(300);
        let a = SixGen::new(seeds.clone(), config.clone()).run();
        let b = SixGen::new(seeds, config).run();
        assert_eq!(a.targets.as_slice(), b.targets.as_slice());
        assert_eq!(a.clusters.len(), b.clusters.len());
        assert_eq!(a.stats.growths, b.stats.growths);
    }

    #[test]
    fn parallel_matches_serial() {
        let seeds: Vec<NybbleAddr> = (0..200u32)
            .map(|i| {
                NybbleAddr::from_bits(
                    0x2001_0db8 << 96 | ((i % 5) as u128) << 20 | ((i * 37 % 4096) as u128),
                )
            })
            .collect();
        let serial = SixGen::new(
            seeds.clone(),
            Config {
                threads: 1,
                budget: 2000,
                ..Config::default()
            },
        )
        .run();
        let parallel = SixGen::new(
            seeds,
            Config {
                threads: 4,
                budget: 2000,
                ..Config::default()
            },
        )
        .run();
        assert_eq!(serial.targets.as_slice(), parallel.targets.as_slice());
        assert_eq!(serial.stats.growths, parallel.stats.growths);
    }

    #[test]
    fn deadline_yields_valid_partial_outcome() {
        // A zero time limit fires on the first loop iteration, long before
        // the natural BudgetExhausted/AllSeedsClustered stop.
        let seeds: Vec<NybbleAddr> = (0..50u32)
            .map(|i| NybbleAddr::from_bits(0x2001_0db8 << 96 | (i as u128 * 7919)))
            .collect();
        let outcome = SixGen::new(
            seeds.clone(),
            Config {
                budget: 100_000,
                time_limit: Some(Duration::ZERO),
                ..Config::default()
            },
        )
        .run();
        assert_eq!(outcome.stats.termination, Termination::Deadline);
        // Partial but well-formed: every seed is emitted and covered by a
        // cluster, and the budget is respected.
        for &s in &seeds {
            assert!(outcome.targets.contains(s), "seed {s} missing from targets");
            assert!(
                outcome.clusters.iter().any(|c| c.range.contains(s)),
                "seed {s} not covered by any cluster"
            );
        }
        assert!(outcome.targets.len() as u64 <= outcome.stats.budget);
    }

    #[test]
    fn no_deadline_runs_to_completion() {
        let seeds = addrs(&["2001:db8::1", "2001:db8::2"]);
        let outcome = SixGen::new(
            seeds,
            Config {
                time_limit: Some(Duration::from_secs(3600)),
                ..Config::with_budget(100)
            },
        )
        .run();
        assert_eq!(outcome.stats.termination, Termination::AllSeedsClustered);
    }

    fn parallel_test_seeds() -> Vec<NybbleAddr> {
        (0..70u32)
            .map(|i| {
                NybbleAddr::from_bits(
                    0x2001_0db8 << 96 | ((i % 5) as u128) << 20 | ((i * 37 % 4096) as u128),
                )
            })
            .collect()
    }

    #[test]
    fn injected_worker_panic_recovers_via_serial_failover() {
        // parallel_only: every singleton's parallel evaluation panics, the
        // serial retry succeeds, and the run result is byte-identical to an
        // uninjected run.
        let base = Config {
            threads: 4,
            budget: 2000,
            ..Config::default()
        };
        let clean = SixGen::new(parallel_test_seeds(), base.clone()).run();
        let injected = SixGen::new(
            parallel_test_seeds(),
            Config {
                panic_injection: Some(crate::PanicInjection {
                    range_size: 1,
                    parallel_only: true,
                }),
                ..base
            },
        )
        .run();
        assert_eq!(clean.stats.worker_panics, 0);
        assert!(injected.stats.worker_panics > 0);
        assert_eq!(clean.targets.as_slice(), injected.targets.as_slice());
        assert_eq!(clean.stats.growths, injected.stats.growths);
        assert_eq!(clean.stats.termination, injected.stats.termination);
    }

    #[test]
    fn unrecoverable_growth_panic_degrades_without_aborting() {
        // The serial retry panics too: every singleton is written off as
        // exhausted, so nothing can grow — but the run still completes with
        // all seeds emitted instead of aborting.
        let seeds = parallel_test_seeds();
        let outcome = SixGen::new(
            seeds.clone(),
            Config {
                threads: 4,
                budget: 2000,
                panic_injection: Some(crate::PanicInjection {
                    range_size: 1,
                    parallel_only: false,
                }),
                ..Config::default()
            },
        )
        .run();
        assert_eq!(outcome.stats.termination, Termination::AllSeedsClustered);
        assert_eq!(outcome.stats.worker_panics, seeds.len() as u64);
        assert_eq!(outcome.stats.growths, 0);
        assert_eq!(outcome.targets.len(), seeds.len());
    }

    #[test]
    fn run_grouped_processes_groups_independently() {
        let g1 = addrs(&["2001:db8::1", "2001:db8::2", "2001:db8::3"]);
        let g2 = addrs(&["fe80::a", "fe80::b"]);
        let outcomes = run_grouped([g1, g2], &Config::with_budget(100));
        assert_eq!(outcomes.len(), 2);
        assert!(outcomes[0].targets.len() >= 3);
        assert_eq!(outcomes[1].targets.len(), 2);
    }

    #[test]
    fn metrics_observe_without_perturbing() {
        let seeds = parallel_test_seeds();
        let bare = SixGen::new(seeds.clone(), Config::with_budget(2000)).run();
        let registry = MetricsRegistry::shared();
        let instrumented = SixGen::new(
            seeds,
            Config {
                metrics: Some(Arc::clone(&registry)),
                ..Config::with_budget(2000)
            },
        )
        .run();
        // Instrumentation must not change the algorithm.
        assert_eq!(bare.targets.as_slice(), instrumented.targets.as_slice());
        assert_eq!(bare.stats.growths, instrumented.stats.growths);
        // RunStats counters are re-exported through the registry.
        assert_eq!(
            registry.counter("engine/growths").get(),
            instrumented.stats.growths
        );
        assert_eq!(
            registry.counter("engine/budget_used").get(),
            instrumented.stats.budget_used
        );
        assert_eq!(registry.counter("engine/runs").get(), 1);
        // Phases ran and candidate sizes were recorded.
        assert!(registry.phase("engine/cache_fill").count() > 0);
        assert!(registry.histogram("engine/candidate_set_size").count() > 0);
    }

    #[test]
    fn metrics_deterministic_section_is_stable_across_runs_and_threads() {
        let seeds = parallel_test_seeds();
        let section = |threads: usize| {
            let registry = MetricsRegistry::shared();
            SixGen::new(
                seeds.clone(),
                Config {
                    threads,
                    metrics: Some(Arc::clone(&registry)),
                    ..Config::with_budget(2000)
                },
            )
            .run();
            registry.deterministic_json()
        };
        assert_eq!(section(1), section(1), "repeated serial runs");
        assert_eq!(section(1), section(4), "serial vs parallel");
    }

    #[test]
    fn tracing_observes_without_perturbing() {
        use sixgen_obs::TraceSink;
        let seeds = parallel_test_seeds();
        // Bare run vs traced run: identical targets.
        let bare = SixGen::new(seeds.clone(), Config::with_budget(2000)).run();
        let sink = TraceSink::shared();
        let traced = SixGen::new(
            seeds.clone(),
            Config {
                threads: 4,
                trace: Some(Arc::clone(&sink)),
                ..Config::with_budget(2000)
            },
        )
        .run();
        assert_eq!(bare.targets.as_slice(), traced.targets.as_slice());
        assert_eq!(bare.stats.growths, traced.stats.growths);
        // The trace holds a run root with nested phase and per-cluster
        // growth_eval spans carrying the documented attributes.
        let spans = sink.snapshot();
        let root = spans
            .iter()
            .find(|s| s.category == "engine" && s.name == "run")
            .expect("run root span");
        assert!(root.attrs().iter().any(|&(k, v)| k == "seeds" && v == 70));
        let fill = spans
            .iter()
            .find(|s| s.name == "cache_fill")
            .expect("cache_fill span");
        assert_eq!(fill.parent, root.id, "phases nest under the root");
        let eval = spans
            .iter()
            .find(|s| s.name == "growth_eval")
            .expect("growth_eval span");
        assert!(eval.attrs().iter().any(|&(k, _)| k == "cluster"));
        assert!(eval.attrs().iter().any(|&(k, _)| k == "candidates"));
        assert!(
            spans.iter().filter(|s| s.name == "growth_eval").count() >= seeds.len(),
            "one span per cluster in the first round alone"
        );
    }

    #[test]
    fn tracing_on_off_deterministic_metrics_are_byte_identical() {
        use sixgen_obs::TraceSink;
        let seeds = parallel_test_seeds();
        let deterministic = |trace: Option<Arc<TraceSink>>| {
            let registry = MetricsRegistry::shared();
            SixGen::new(
                seeds.clone(),
                Config {
                    threads: 4,
                    metrics: Some(Arc::clone(&registry)),
                    trace,
                    ..Config::with_budget(2000)
                },
            )
            .run();
            registry.deterministic_json()
        };
        let off = deterministic(None);
        let on = deterministic(Some(TraceSink::shared()));
        // A sink that exists but is disabled must also be invisible.
        let disabled_sink = TraceSink::shared();
        disabled_sink.set_enabled(false);
        let disabled = deterministic(Some(disabled_sink));
        assert_eq!(off, on, "tracing must not perturb deterministic metrics");
        assert_eq!(off, disabled);
    }

    #[test]
    fn fused_and_unfused_engines_are_byte_identical() {
        // The hidden `unfused_growth` flag routes every growth evaluation
        // through the reference implementation. Targets, clusters, stats,
        // and the deterministic metrics section must all be byte-identical
        // to the fused default, in both modes and under parallelism.
        let seeds: Vec<NybbleAddr> = (0..150u32)
            .map(|i| {
                NybbleAddr::from_bits(
                    0x2001_0db8 << 96 | ((i % 6) as u128) << 24 | ((i * 53 % 2048) as u128),
                )
            })
            .collect();
        for mode in [ClusterMode::Loose, ClusterMode::Tight] {
            for threads in [1, 4] {
                let run_with = |unfused: bool| {
                    let registry = MetricsRegistry::shared();
                    let outcome = SixGen::new(
                        seeds.clone(),
                        Config {
                            mode,
                            threads,
                            budget: 3000,
                            unfused_growth: unfused,
                            metrics: Some(Arc::clone(&registry)),
                            ..Config::default()
                        },
                    )
                    .run();
                    (outcome, registry.deterministic_json())
                };
                let (fused, fused_metrics) = run_with(false);
                let (unfused, unfused_metrics) = run_with(true);
                assert_eq!(
                    fused.targets.as_slice(),
                    unfused.targets.as_slice(),
                    "targets diverged ({mode:?}, {threads} threads)"
                );
                assert_eq!(fused.stats.growths, unfused.stats.growths);
                assert_eq!(fused.stats.subsumed, unfused.stats.subsumed);
                assert_eq!(fused.stats.termination, unfused.stats.termination);
                assert_eq!(
                    fused.clusters.len(),
                    unfused.clusters.len(),
                    "cluster sets diverged ({mode:?}, {threads} threads)"
                );
                assert_eq!(
                    fused_metrics, unfused_metrics,
                    "deterministic metrics diverged ({mode:?}, {threads} threads)"
                );
            }
        }
    }

    #[test]
    fn growth_prefers_denser_region() {
        // Region A: 4 seeds in one /124-equivalent nybble (density 4/16
        // when grown). Region B: 2 seeds 2 nybbles apart (density 2/256).
        // The first committed growth must be region A's.
        let seeds = addrs(&[
            "2001:db8::a1",
            "2001:db8::a2",
            "2001:db8::a3",
            "2001:db8::a4",
            "2001:db8:b::1",
            "2001:db8:b::301",
        ]);
        let outcome = SixGen::new(seeds, Config::with_budget(20)).run();
        // Budget 20: 6 seeds at init, region A growth adds 16-4=12 new
        // (total 18); region B's growth (14 new) cannot fit, so sampling
        // consumes the last 2.
        assert_eq!(outcome.stats.termination, Termination::BudgetExhausted);
        assert!(outcome
            .clusters
            .iter()
            .any(|c| c.range == range("2001:db8::a?")));
        assert_eq!(outcome.targets.len(), 20);
    }
}
