//! Incremental best-growth selection: a tournament tree over [`SelectKey`]s
//! that replicates the reference selection scan's RNG draw stream *exactly*.
//!
//! ## What the scan does
//!
//! The reference implementation (kept behind `Config::scan_round`) walks the
//! key array in slot order carrying a running best. Each ready key compares
//! against the running best with [`SelectKey::preference`]:
//!
//! * `Greater` — the key becomes the new running best, tie count resets to 1;
//! * `Equal`  — the tie count increments to `t` and the scan draws
//!   `bounded_draw(rng, t)`, adopting this slot as the winner on 0 (a
//!   reservoir over scan order, uniform among exact ties);
//! * `Less`   — skipped.
//!
//! The draws therefore depend on the full *prefix-maximum structure* of the
//! array, not just the globally best key: every maximal run of slots tying
//! the running best — an **era** — contributes `count - 1` draws with bounds
//! `2..=count`, in slot order, even when a later era dethrones it. Replaying
//! that stream bit-for-bit is the determinism obligation here: the run RNG
//! is shared with final-growth sampling, so one missing or reordered draw
//! changes every downstream target.
//!
//! ## How the tree replicates it
//!
//! A padded power-of-two tournament tree stores, per node, the best key in
//! its segment and how many slots tie it. Point updates are O(log N).
//! Selection walks the tree left-to-right with the running best, *merging*
//! whole subtrees whose best equals the running best (their tie count is
//! known without descending) and *skipping* subtrees whose best is worse —
//! descending only where a new era begins. That yields the exact era
//! sequence `(key₁, c₁), …, (keyₘ, cₘ)` of the scan at cost
//! O((m + 1) · log N) instead of O(N); the draws are then replayed from the
//! era counts alone, and the winner (the reservoir survivor of the final
//! era) is mapped back to its slot index by an ordinal descent.
//!
//! The draws themselves are irreducible — their number and bounds are
//! pinned by the scan's semantics — so a round's selection cost is
//! O(era structure) + O(ties of the running best), the latter typically
//! dominated by dense singleton populations whose cached growths tie
//! exactly.

use crate::draw::bounded_draw;

/// Compact per-slot copy of a cached growth's selection inputs (seed
/// count and range size), kept in an array parallel to the slots.
///
/// The per-round selection visits keys, not slots; reading the full
/// `Slot` (cluster range + cached growth range, hundreds of bytes) per
/// visit would make selection memory-bound. `size == 0` marks a slot
/// with no selectable growth (stale, exhausted, or dead) — real ranges
/// always have size ≥ 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct SelectKey {
    pub(crate) count: u64,
    pub(crate) size: u128,
}

impl SelectKey {
    pub(crate) const NONE: SelectKey = SelectKey { count: 0, size: 0 };

    pub(crate) fn is_ready(&self) -> bool {
        self.size != 0
    }

    /// Must order exactly like `Growth::preference` on the source
    /// growths: the selection's comparison results — including which
    /// comparisons come out `Equal` and therefore draw from the shared
    /// run RNG — decide the whole downstream target stream.
    ///
    /// `Equal` is a true equivalence on ready keys: equal density plus
    /// equal size forces equal count, so two keys compare `Equal` exactly
    /// when they are component-wise equal. The tree's tie counting relies
    /// on that (`==` and `preference(..) == Equal` agree).
    pub(crate) fn preference(&self, other: &SelectKey) -> core::cmp::Ordering {
        sixgen_addr::compare_density(self.count, self.size, other.count, other.size)
            .then_with(|| other.size.cmp(&self.size))
    }
}

/// One tournament-tree node: the best ready key in the segment and the
/// number of slots tying it (0 ⟺ no ready key in the segment).
#[derive(Debug, Clone, Copy)]
struct NodeEntry {
    key: SelectKey,
    ties: u64,
}

impl NodeEntry {
    const EMPTY: NodeEntry = NodeEntry {
        key: SelectKey::NONE,
        ties: 0,
    };

    fn merge(self, right: NodeEntry) -> NodeEntry {
        if self.ties == 0 {
            return right;
        }
        if right.ties == 0 {
            return self;
        }
        match self.key.preference(&right.key) {
            core::cmp::Ordering::Greater => self,
            core::cmp::Ordering::Less => right,
            core::cmp::Ordering::Equal => NodeEntry {
                key: self.key,
                ties: self.ties + right.ties,
            },
        }
    }
}

/// Tournament tree over the slot key array. Slot count is fixed at
/// construction (the engine never adds slots after initialization; dead
/// slots are set to [`SelectKey::NONE`]).
#[derive(Debug)]
pub(crate) struct SelectTree {
    /// Leaf capacity, a power of two ≥ the slot count (≥ 1).
    cap: usize,
    /// 1-indexed implicit binary tree: `nodes[1]` is the root, leaves are
    /// `nodes[cap..cap + cap]`; leaf `cap + i` holds slot `i`'s key.
    /// Padding leaves past the slot count stay `EMPTY` forever.
    nodes: Vec<NodeEntry>,
}

impl SelectTree {
    /// Builds the tree from the initial key array in O(N).
    pub(crate) fn from_keys(keys: &[SelectKey]) -> SelectTree {
        let cap = keys.len().next_power_of_two().max(1);
        let mut nodes = vec![NodeEntry::EMPTY; 2 * cap];
        for (i, &key) in keys.iter().enumerate() {
            nodes[cap + i] = NodeEntry {
                key,
                ties: u64::from(key.is_ready()),
            };
        }
        for i in (1..cap).rev() {
            nodes[i] = nodes[2 * i].merge(nodes[2 * i + 1]);
        }
        SelectTree { cap, nodes }
    }

    /// Replaces slot `i`'s key and rebalances the path to the root.
    pub(crate) fn set(&mut self, i: usize, key: SelectKey) {
        let mut node = self.cap + i;
        self.nodes[node] = NodeEntry {
            key,
            ties: u64::from(key.is_ready()),
        };
        while node > 1 {
            node /= 2;
            self.nodes[node] = self.nodes[2 * node].merge(self.nodes[2 * node + 1]);
        }
    }

    /// Appends the prefix-maximum eras of `node`'s segment (in slot order)
    /// to `eras`, given the eras already accumulated to its left.
    fn eras_rec(&self, node: usize, eras: &mut Vec<(SelectKey, u64)>) {
        let entry = self.nodes[node];
        if entry.ties == 0 {
            return;
        }
        if let Some(last) = eras.last_mut() {
            match entry.key.preference(&last.0) {
                // Everything in this subtree is worse than the running
                // best: the scan would skip every element.
                core::cmp::Ordering::Less => return,
                // The subtree's best ties the running best, and nothing
                // inside beats it — every tying element extends the
                // current era, the rest is skipped.
                core::cmp::Ordering::Equal => {
                    last.1 += entry.ties;
                    return;
                }
                core::cmp::Ordering::Greater => {}
            }
        }
        if node >= self.cap {
            eras.push((entry.key, entry.ties));
            return;
        }
        self.eras_rec(2 * node, eras);
        self.eras_rec(2 * node + 1, eras);
    }

    /// The slot index of the `ordinal`-th slot (1-indexed, slot order)
    /// whose key equals the tree's global best.
    fn find_ordinal(&self, mut ordinal: u64) -> usize {
        let best = self.nodes[1].key;
        let mut node = 1;
        while node < self.cap {
            let left = self.nodes[2 * node];
            let left_ties = if left.ties > 0 && left.key == best {
                left.ties
            } else {
                0
            };
            if ordinal <= left_ties {
                node *= 2;
            } else {
                ordinal -= left_ties;
                node = 2 * node + 1;
            }
        }
        node - self.cap
    }

    /// Selects the round's best slot, drawing tie-breaks from `next_word`
    /// in exactly the order and with exactly the bounds of the reference
    /// scan. Returns `None` when no slot is ready.
    pub(crate) fn select(&self, mut next_word: impl FnMut() -> u64) -> Option<usize> {
        if self.nodes[1].ties == 0 {
            return None;
        }
        let mut eras: Vec<(SelectKey, u64)> = Vec::with_capacity(8);
        self.eras_rec(1, &mut eras);
        debug_assert!(!eras.is_empty());
        // Replay the scan's draw stream: era j of count c contributes
        // draws with bounds 2..=c. Only the final era (the global best)
        // decides the winner — its reservoir survivor is the last ordinal
        // whose draw came up 0, or the era's first slot.
        let final_era = eras.len() - 1;
        let mut winner_ordinal = 1;
        for (j, &(_, count)) in eras.iter().enumerate() {
            if j == final_era {
                for t in 2..=count {
                    if bounded_draw(&mut next_word, t) == 0 {
                        winner_ordinal = t;
                    }
                }
            } else {
                for t in 2..=count {
                    bounded_draw(&mut next_word, t);
                }
            }
        }
        Some(self.find_ordinal(winner_ordinal))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The reference scan, lifted verbatim from the engine's
    /// `scan_round` path (minus metrics): the ground truth the tree must
    /// reproduce draw-for-draw.
    fn scan_reference(keys: &[SelectKey], mut next_word: impl FnMut() -> u64) -> Option<usize> {
        let mut best_index: Option<usize> = None;
        let mut best_key = SelectKey::NONE;
        let mut ties: u64 = 0;
        for (i, key) in keys.iter().enumerate() {
            if !key.is_ready() {
                continue;
            }
            match best_index {
                None => {
                    best_index = Some(i);
                    best_key = *key;
                    ties = 1;
                }
                Some(_) => match key.preference(&best_key) {
                    core::cmp::Ordering::Greater => {
                        best_index = Some(i);
                        best_key = *key;
                        ties = 1;
                    }
                    core::cmp::Ordering::Equal => {
                        ties += 1;
                        if bounded_draw(&mut next_word, ties) == 0 {
                            best_index = Some(i);
                        }
                    }
                    core::cmp::Ordering::Less => {}
                },
            }
        }
        best_index
    }

    /// A deterministic word stream that records how many words were
    /// consumed — the draw-stream fingerprint the tree must match.
    struct Stream {
        state: u64,
        consumed: u64,
    }

    impl Stream {
        fn new(seed: u64) -> Stream {
            Stream {
                state: seed,
                consumed: 0,
            }
        }

        fn next(&mut self) -> u64 {
            self.consumed += 1;
            self.state = crate::engine::splitmix64(self.state);
            self.state
        }
    }

    fn key(count: u64, size: u128) -> SelectKey {
        SelectKey { count, size }
    }

    /// Pseudo-random key arrays with heavy exact ties, interleaved NONEs,
    /// and value plateaus — the prefix-max era structure the engine
    /// produces. Checked: same winner, same number of words consumed,
    /// same post-stream state, across fresh builds and incremental edits.
    #[test]
    fn tree_matches_scan_reference_randomized() {
        let mut gen = 0xD15EA5Eu64;
        let mut word = move || {
            gen = crate::engine::splitmix64(gen);
            gen
        };
        for trial in 0..200u64 {
            let n = 1 + (word() % 97) as usize;
            let mut keys: Vec<SelectKey> = (0..n)
                .map(|_| {
                    if word() % 4 == 0 {
                        SelectKey::NONE
                    } else {
                        // Small value pools force massive tie sets and
                        // multi-era prefix structures.
                        key(1 + word() % 3, (1 + word() % 4) as u128)
                    }
                })
                .collect();
            let mut tree = SelectTree::from_keys(&keys);

            for edit in 0..6 {
                let mut scan_stream = Stream::new(trial * 31 + edit);
                let mut tree_stream = Stream::new(trial * 31 + edit);
                let expected = scan_reference(&keys, || scan_stream.next());
                let got = tree.select(|| tree_stream.next());
                assert_eq!(got, expected, "winner diverged (trial {trial}, edit {edit})");
                assert_eq!(
                    tree_stream.consumed, scan_stream.consumed,
                    "draw count diverged (trial {trial}, edit {edit})"
                );
                assert_eq!(
                    tree_stream.state, scan_stream.state,
                    "post-selection RNG state diverged (trial {trial}, edit {edit})"
                );

                // Point edit: kill, revive, or change one slot.
                let i = (word() % n as u64) as usize;
                let new_key = match word() % 3 {
                    0 => SelectKey::NONE,
                    1 => key(1 + word() % 3, (1 + word() % 4) as u128),
                    _ => key(1 + word() % 5, (1 + word() % 8) as u128),
                };
                keys[i] = new_key;
                tree.set(i, new_key);
            }
        }
    }

    #[test]
    fn empty_and_all_none_select_nothing() {
        let tree = SelectTree::from_keys(&[]);
        assert_eq!(tree.select(|| panic!("no draws expected")), None);
        let tree = SelectTree::from_keys(&[SelectKey::NONE; 5]);
        assert_eq!(tree.select(|| panic!("no draws expected")), None);
    }

    #[test]
    fn single_ready_slot_draws_nothing() {
        let mut keys = vec![SelectKey::NONE; 9];
        keys[4] = key(3, 16);
        let tree = SelectTree::from_keys(&keys);
        assert_eq!(tree.select(|| panic!("a lone slot never draws")), Some(4));
    }

    /// Earlier eras that lose to a later one must still burn their draws:
    /// [5,5,9] draws once (bound 2) even though 9 wins outright.
    #[test]
    fn dethroned_era_still_consumes_draws() {
        let keys = vec![key(5, 16), key(5, 16), key(9, 16)];
        let tree = SelectTree::from_keys(&keys);
        let mut stream = Stream::new(7);
        assert_eq!(tree.select(|| stream.next()), Some(2));
        assert_eq!(stream.consumed, 1, "one draw for the dethroned tie");
    }
}
