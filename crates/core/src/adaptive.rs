//! Scanner-integrated target generation — the paper's §8 "Scanner
//! Integration" direction, implemented:
//!
//! > "tight integration between the target generation and the scanning
//! > processes should allow for more effective scanning. … As a scan
//! > progresses, the results can be fed back to the generation algorithm …
//! > we can early terminate scanning of a region originally predicted as
//! > promising but that has yielded few discovered hosts. Similarly, we can
//! > test regions that have high hit rates for aliasing, and halt scanning
//! > if aliasing is detected. These measures would allow the scanner to
//! > reallocate budget to networks that prove promising in reality."
//!
//! [`adaptive_scan`] interleaves 6Gen's density-greedy growth with live
//! probing. For every newly grown region it first sends a small *pilot*:
//!
//! * a pilot hit rate at or above the alias threshold triggers the §6.2
//!   test (random addresses elsewhere in the enclosing /96); a confirmed
//!   aliased region is abandoned immediately — its remaining addresses are
//!   never probed;
//! * a pilot hit rate below the early-termination threshold abandons the
//!   region the same way;
//! * otherwise the region is scanned in full, and (optionally) its hits are
//!   fed back as new seeds, sharpening subsequent density estimates.
//!
//! Unlike the offline pipeline, the budget here counts **probes actually
//! sent**, so every abandoned region refunds budget to better regions.

use crate::cluster::{best_growth, Cluster};
use crate::engine::{splitmix64, splitmix64_seed};
use crate::{ClusterMode, Config};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sixgen_addr::{NybbleAddr, NybbleTree, Prefix, Range};
use std::collections::HashSet;

/// Configuration of an adaptive (scanner-integrated) run.
#[derive(Debug, Clone)]
pub struct AdaptiveConfig {
    /// Probe budget: the maximum number of probe packets sent (pilots,
    /// full region scans, seed verification, and alias checks all count).
    pub budget: u64,
    /// Loose or tight cluster ranges.
    pub mode: ClusterMode,
    /// Probes in each region pilot.
    pub pilot_size: u64,
    /// Pilot hit rate strictly below which a region is abandoned
    /// ("early terminate scanning of a region … that has yielded few
    /// discovered hosts").
    pub early_termination_rate: f64,
    /// Pilot hit rate at or above which the region is tested for aliasing.
    pub alias_suspect_rate: f64,
    /// Random addresses drawn (from the region's enclosing /96, outside
    /// already-probed space) for the alias test; all must respond for the
    /// region to be declared aliased (§6.2 semantics).
    pub alias_check_addresses: u32,
    /// Granularity of the enclosing prefix used by the alias test.
    pub alias_prefix_len: u8,
    /// Feed confirmed hits back into the seed tree, letting later density
    /// estimates see them.
    pub feedback_seeds: bool,
    /// RNG seed (pilot sampling, alias draws, tie-breaking).
    pub rng_seed: u64,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        AdaptiveConfig {
            budget: 1_000_000,
            mode: ClusterMode::Loose,
            pilot_size: 32,
            early_termination_rate: 0.02,
            alias_suspect_rate: 0.98,
            alias_check_addresses: 3,
            alias_prefix_len: 96,
            feedback_seeds: true,
            rng_seed: 0xADA9,
        }
    }
}

impl AdaptiveConfig {
    /// Derives an adaptive config from a plain 6Gen [`Config`], keeping the
    /// budget/mode/seed.
    pub fn from_config(config: &Config) -> AdaptiveConfig {
        AdaptiveConfig {
            budget: config.budget,
            mode: config.mode,
            rng_seed: config.rng_seed,
            ..AdaptiveConfig::default()
        }
    }
}

/// Why a region's scan ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RegionFate {
    /// Scanned in full.
    Scanned,
    /// Abandoned after a cold pilot.
    EarlyTerminated,
    /// Declared aliased and abandoned.
    Aliased,
    /// The budget ran out mid-region.
    BudgetExhausted,
}

/// Per-region record, for analysis of the feedback loop's decisions.
#[derive(Debug, Clone)]
pub struct RegionReport {
    /// The grown region (new range minus what was already probed).
    pub range: Range,
    /// What happened.
    pub fate: RegionFate,
    /// Probes spent on this region (pilot + body + alias checks).
    pub probes: u64,
    /// Hits confirmed inside the region (zero for aliased regions — their
    /// responses are not meaningful discoveries).
    pub hits: u64,
}

/// Result of an adaptive run.
#[derive(Debug)]
pub struct AdaptiveOutcome {
    /// Confirmed (non-aliased) responsive addresses, discovery order.
    pub hits: Vec<NybbleAddr>,
    /// Prefixes declared aliased during the scan.
    pub aliased_prefixes: Vec<Prefix>,
    /// Every region decision.
    pub regions: Vec<RegionReport>,
    /// Probes actually sent (≤ budget).
    pub probes_used: u64,
    /// Number of committed cluster growths.
    pub growths: u64,
}

impl AdaptiveOutcome {
    /// Regions abandoned by the early-termination rule.
    pub fn early_terminated(&self) -> usize {
        self.regions
            .iter()
            .filter(|r| r.fate == RegionFate::EarlyTerminated)
            .count()
    }

    /// Regions abandoned as aliased.
    pub fn aliased_regions(&self) -> usize {
        self.regions
            .iter()
            .filter(|r| r.fate == RegionFate::Aliased)
            .count()
    }
}

#[derive(Debug)]
enum CachedGrowth {
    Stale,
    Exhausted,
    Ready(crate::cluster::Growth),
}

/// Runs the scanner-integrated algorithm. `probe` answers one probe packet
/// (true = response received) and is charged against the budget on every
/// call.
pub fn adaptive_scan(
    seeds: impl IntoIterator<Item = NybbleAddr>,
    config: &AdaptiveConfig,
    mut probe: impl FnMut(NybbleAddr) -> bool,
) -> AdaptiveOutcome {
    let mut seeds: Vec<NybbleAddr> = seeds.into_iter().collect();
    seeds.sort_unstable();
    seeds.dedup();

    let mut rng = StdRng::seed_from_u64(config.rng_seed);
    let mut tree = NybbleTree::from_addresses(seeds.iter().copied());
    let mut probed: HashSet<NybbleAddr> = HashSet::new();
    let mut probes_used: u64 = 0;
    let mut hits: Vec<NybbleAddr> = Vec::new();
    let mut aliased_prefixes: Vec<Prefix> = Vec::new();
    let mut regions: Vec<RegionReport> = Vec::new();
    let mut growths: u64 = 0;

    // Verify the seeds themselves first (the cheapest ground truth the
    // feedback loop can buy).
    for &seed in &seeds {
        if probes_used >= config.budget {
            break;
        }
        probes_used += 1;
        probed.insert(seed);
        if probe(seed) {
            hits.push(seed);
        }
    }

    let mut slots: Vec<(Cluster, CachedGrowth)> = seeds
        .iter()
        .map(|&s| (Cluster::singleton(s), CachedGrowth::Stale))
        .collect();

    'outer: while probes_used < config.budget {
        // Refresh stale caches.
        let total_seeds = tree.len() as u64;
        for (cluster, cached) in slots.iter_mut() {
            if matches!(cached, CachedGrowth::Stale) {
                let mut state = splitmix64_seed(
                    config.rng_seed,
                    cluster.range.min_address().bits(),
                    cluster.range.size(),
                );
                let tie = move || {
                    state = splitmix64(state);
                    state
                };
                *cached = match best_growth(cluster, &tree, config.mode, tie) {
                    Some(g) => CachedGrowth::Ready(g),
                    None => CachedGrowth::Exhausted,
                };
            }
        }
        // Select the best growth (density, then smaller range; determinism
        // over scan order suffices here).
        let mut best: Option<usize> = None;
        for (i, (_, cached)) in slots.iter().enumerate() {
            let CachedGrowth::Ready(g) = cached else { continue };
            match best {
                None => best = Some(i),
                Some(b) => {
                    let CachedGrowth::Ready(current) = &slots[b].1 else {
                        unreachable!()
                    };
                    if g.preference(current) == core::cmp::Ordering::Greater {
                        best = Some(i);
                    }
                }
            }
        }
        let Some(grown_index) = best else {
            break; // nothing can grow
        };
        let CachedGrowth::Ready(growth) = &slots[grown_index].1 else {
            unreachable!()
        };
        if growth.seed_count == total_seeds && slots.len() == 1 {
            break; // a single all-seed cluster cannot grow further
        }
        let new_range = growth.range.clone();
        let new_seed_count = growth.seed_count;

        // Regions inside already-confirmed aliased prefixes are skipped
        // outright — no packet is worth sending there.
        if aliased_prefixes
            .iter()
            .any(|p| p.contains(new_range.min_address()) && range_within_prefix(&new_range, p))
        {
            slots[grown_index].0 = Cluster {
                range: new_range.clone(),
                seed_count: new_seed_count,
            };
            slots[grown_index].1 = CachedGrowth::Stale;
            growths += 1;
            regions.push(RegionReport {
                range: new_range,
                fate: RegionFate::Aliased,
                probes: 0,
                hits: 0,
            });
            continue;
        }

        // The region to explore: addresses of the grown range not yet
        // probed. Sampled lazily so huge ranges stay cheap.
        let mut sampler = sixgen_addr::RangeSampler::new(new_range.clone());
        let mut region_probes: u64 = 0;
        let mut region_hits: Vec<NybbleAddr> = Vec::new();

        // Pilot.
        let pilot_want = config.pilot_size.min(config.budget - probes_used) as usize;
        let pilot = sampler.draw(&mut rng, pilot_want, |a| probed.contains(&a));
        let mut pilot_hits = 0u64;
        for addr in &pilot {
            probed.insert(*addr);
            probes_used += 1;
            region_probes += 1;
            if probe(*addr) {
                pilot_hits += 1;
                region_hits.push(*addr);
            }
        }
        let pilot_rate = if pilot.is_empty() {
            0.0
        } else {
            pilot_hits as f64 / pilot.len() as f64
        };

        let fate = if probes_used >= config.budget {
            RegionFate::BudgetExhausted
        } else if !pilot.is_empty() && pilot_rate >= config.alias_suspect_rate {
            // Alias test: random addresses from the enclosing prefix,
            // outside anything probed. If every one responds, the region
            // is a mirage (§6.2 semantics at the configured granularity).
            let enclosing = Prefix::of(new_range.min_address(), config.alias_prefix_len);
            let mut all_respond = true;
            for _ in 0..config.alias_check_addresses {
                if probes_used >= config.budget {
                    break;
                }
                let addr = random_in_prefix(enclosing, &mut rng, &probed);
                probed.insert(addr);
                probes_used += 1;
                region_probes += 1;
                if !probe(addr) {
                    all_respond = false;
                    break;
                }
            }
            if all_respond {
                aliased_prefixes.push(enclosing);
                region_hits.clear(); // responses in aliased space are noise
                RegionFate::Aliased
            } else {
                // Dense but genuinely populated: scan it out.
                scan_region(
                    &mut sampler,
                    &mut rng,
                    &mut probed,
                    &mut probes_used,
                    &mut region_probes,
                    &mut region_hits,
                    config.budget,
                    &mut probe,
                )
            }
        } else if pilot_rate < config.early_termination_rate {
            RegionFate::EarlyTerminated
        } else {
            scan_region(
                &mut sampler,
                &mut rng,
                &mut probed,
                &mut probes_used,
                &mut region_probes,
                &mut region_hits,
                config.budget,
                &mut probe,
            )
        };

        // Commit the growth regardless of fate (the cluster's range must
        // advance or the same growth would repeat forever).
        slots[grown_index].0 = Cluster {
            range: new_range.clone(),
            seed_count: new_seed_count,
        };
        slots[grown_index].1 = CachedGrowth::Stale;
        growths += 1;
        // Subsumption.
        let mut index = 0;
        slots.retain(|(cluster, _)| {
            let keep = index == grown_index || !cluster.range.is_subset(&new_range);
            index += 1;
            keep
        });

        // Feedback: confirmed hits become seeds for future density
        // estimates ("the results can be fed back to the generation
        // algorithm").
        if config.feedback_seeds && fate == RegionFate::Scanned && !region_hits.is_empty() {
            let mut inserted = false;
            for &hit in &region_hits {
                inserted |= tree.insert(hit);
            }
            if inserted {
                for (_, cached) in slots.iter_mut() {
                    *cached = CachedGrowth::Stale;
                }
            }
        } else if fate != RegionFate::Scanned {
            // Nothing changed for other clusters; only the grown one is
            // stale already.
        }

        hits.extend(region_hits.iter().copied());
        regions.push(RegionReport {
            range: new_range,
            fate,
            probes: region_probes,
            hits: region_hits.len() as u64,
        });
        if fate == RegionFate::BudgetExhausted {
            break 'outer;
        }
    }

    AdaptiveOutcome {
        hits,
        aliased_prefixes,
        regions,
        probes_used,
        growths,
    }
}

/// Scans the remainder of a region to completion (or budget exhaustion).
#[allow(clippy::too_many_arguments)]
fn scan_region(
    sampler: &mut sixgen_addr::RangeSampler,
    rng: &mut StdRng,
    probed: &mut HashSet<NybbleAddr>,
    probes_used: &mut u64,
    region_probes: &mut u64,
    region_hits: &mut Vec<NybbleAddr>,
    budget: u64,
    probe: &mut impl FnMut(NybbleAddr) -> bool,
) -> RegionFate {
    loop {
        if *probes_used >= budget {
            return RegionFate::BudgetExhausted;
        }
        let chunk = 256.min(budget - *probes_used) as usize;
        let batch = sampler.draw(rng, chunk, |a| probed.contains(&a));
        if batch.is_empty() {
            return RegionFate::Scanned;
        }
        for addr in batch {
            probed.insert(addr);
            *probes_used += 1;
            *region_probes += 1;
            if probe(addr) {
                region_hits.push(addr);
            }
            if *probes_used >= budget {
                return RegionFate::BudgetExhausted;
            }
        }
    }
}

/// `true` if every address of `range` lies inside `prefix` (checked via
/// the range's extremes; a rectangle is inside a prefix iff its minimum
/// and maximum are).
fn range_within_prefix(range: &Range, prefix: &Prefix) -> bool {
    let size = range.size();
    if size == u128::MAX {
        return prefix.len() == 0;
    }
    prefix.contains(range.min_address()) && prefix.contains(range.nth(size - 1))
}

/// A random address inside `prefix` avoiding `probed` (best effort).
fn random_in_prefix(prefix: Prefix, rng: &mut StdRng, probed: &HashSet<NybbleAddr>) -> NybbleAddr {
    use rand::Rng;
    let host_bits = 128 - prefix.len() as u32;
    for _ in 0..64 {
        let noise: u128 = if host_bits == 0 {
            0
        } else if host_bits >= 128 {
            rng.gen()
        } else {
            rng.gen::<u128>() & ((1u128 << host_bits) - 1)
        };
        let addr = NybbleAddr::from_bits(prefix.network().bits() | noise);
        if !probed.contains(&addr) {
            return addr;
        }
    }
    NybbleAddr::from_bits(prefix.network().bits())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet as Set;

    fn addr(s: &str) -> NybbleAddr {
        s.parse().unwrap()
    }

    /// A toy responder: a host set plus optional aliased /96.
    struct Toy {
        hosts: Set<NybbleAddr>,
        aliased: Option<Prefix>,
        probes: u64,
    }

    impl Toy {
        fn probe(&mut self, a: NybbleAddr) -> bool {
            self.probes += 1;
            if let Some(p) = self.aliased {
                if p.contains(a) {
                    return true;
                }
            }
            self.hosts.contains(&a)
        }
    }

    fn dense_hosts(base: &str, n: u32) -> Set<NybbleAddr> {
        let base: NybbleAddr = base.parse().unwrap();
        (1..=n)
            .map(|i| NybbleAddr::from_bits(base.bits() | i as u128))
            .collect()
    }

    /// `n` hosts deterministically spread across the sorted host list — a
    /// stand-in for a random seed sample (iterating the `HashSet` directly
    /// would vary per process).
    fn spread_hosts(hosts: &Set<NybbleAddr>, n: usize) -> Vec<NybbleAddr> {
        let mut sorted: Vec<NybbleAddr> = hosts.iter().copied().collect();
        sorted.sort_unstable();
        let step = (sorted.len() / n).max(1);
        sorted.into_iter().step_by(step).take(n).collect()
    }

    #[test]
    fn discovers_dense_region_and_counts_probes() {
        let hosts = dense_hosts("2001:db8::", 200); // ::1..::c8
        let mut toy = Toy {
            hosts: hosts.clone(),
            aliased: None,
            probes: 0,
        };
        let seeds = spread_hosts(&hosts, 30);
        let outcome = adaptive_scan(
            seeds,
            &AdaptiveConfig {
                budget: 3_000,
                ..AdaptiveConfig::default()
            },
            |a| toy.probe(a),
        );
        assert!(outcome.probes_used <= 3_000);
        assert_eq!(outcome.probes_used, toy.probes);
        // Most of the 200 hosts should be found.
        let found: Set<_> = outcome.hits.iter().copied().collect();
        assert!(found.len() > 150, "found {}", found.len());
        assert!(found.iter().all(|h| hosts.contains(h)));
    }

    #[test]
    fn aliased_region_is_detected_and_abandoned() {
        let aliased: Prefix = "2600:aaaa::/96".parse().unwrap();
        let mut toy = Toy {
            hosts: Set::new(),
            aliased: Some(aliased),
            probes: 0,
        };
        // Seeds scattered inside the aliased /96.
        let seeds: Vec<NybbleAddr> = (0..40u32)
            .map(|i| {
                NybbleAddr::from_bits(aliased.network().bits() | (i as u128 * 7 + 1))
            })
            .collect();
        let outcome = adaptive_scan(
            seeds,
            &AdaptiveConfig {
                budget: 10_000,
                ..AdaptiveConfig::default()
            },
            |a| toy.probe(a),
        );
        assert!(outcome.aliased_regions() >= 1, "{:?}", outcome.regions);
        assert!(outcome
            .aliased_prefixes
            .iter()
            .any(|p| aliased.covers(p) || p.covers(&aliased)));
        // The mirage produces no confirmed hits beyond the seeds, and the
        // scan must NOT have burned the whole budget into the aliased /96.
        assert!(
            outcome.probes_used < 2_000,
            "wasted {} probes on an aliased region",
            outcome.probes_used
        );
    }

    #[test]
    fn cold_regions_terminate_early() {
        // Two seeds far apart with nothing else alive: any grown region is
        // cold and must be abandoned after its pilot.
        let mut toy = Toy {
            hosts: [addr("2001:db8::1"), addr("2001:db8::9000")]
                .into_iter()
                .collect(),
            aliased: None,
            probes: 0,
        };
        let seeds = vec![addr("2001:db8::1"), addr("2001:db8::9000")];
        let outcome = adaptive_scan(
            seeds,
            &AdaptiveConfig {
                budget: 100_000,
                feedback_seeds: false,
                ..AdaptiveConfig::default()
            },
            |a| toy.probe(a),
        );
        assert!(outcome.early_terminated() >= 1, "{:?}", outcome.regions);
        // Early termination keeps probe usage far below budget.
        assert!(
            outcome.probes_used < 10_000,
            "used {} probes",
            outcome.probes_used
        );
    }

    #[test]
    fn feedback_mode_discovers_nearly_everything() {
        // Hosts ::1..::300 in one band; seeds only know the first 20.
        // With feedback, found hosts densify the estimate; with a budget
        // comfortably above the band size, discovery should be nearly
        // complete in both modes, and the feedback run's tree must have
        // grown beyond the original seed count.
        let hosts = dense_hosts("2001:db8::", 768);
        let seeds = spread_hosts(&hosts, 20);
        let run = |feedback: bool| {
            let mut toy = Toy {
                hosts: hosts.clone(),
                aliased: None,
                probes: 0,
            };
            adaptive_scan(
                seeds.clone(),
                &AdaptiveConfig {
                    budget: 4_096,
                    feedback_seeds: feedback,
                    ..AdaptiveConfig::default()
                },
                |a| toy.probe(a),
            )
            .hits
            .len()
        };
        let with = run(true);
        let without = run(false);
        assert!(with > 700, "feedback found only {with}/768");
        assert!(without > 700, "no-feedback found only {without}/768");
    }

    #[test]
    fn budget_is_hard_limit() {
        let hosts = dense_hosts("2001:db8::", 500);
        let mut toy = Toy {
            hosts,
            aliased: None,
            probes: 0,
        };
        let seeds: Vec<NybbleAddr> = (1..=50u32)
            .map(|i| NybbleAddr::from_bits(0x2001_0db8u128 << 96 | i as u128))
            .collect();
        for budget in [10u64, 100, 777] {
            toy.probes = 0;
            let outcome = adaptive_scan(
                seeds.clone(),
                &AdaptiveConfig {
                    budget,
                    ..AdaptiveConfig::default()
                },
                |a| toy.probe(a),
            );
            assert!(outcome.probes_used <= budget, "budget {budget}");
            assert_eq!(outcome.probes_used, toy.probes, "budget {budget}");
        }
    }

    #[test]
    fn no_address_is_probed_twice() {
        let hosts = dense_hosts("2001:db8::", 300);
        let mut seen: Set<NybbleAddr> = Set::new();
        let mut dupes = 0u64;
        let seeds: Vec<NybbleAddr> = hosts.iter().copied().take(25).collect();
        let hosts2 = hosts.clone();
        adaptive_scan(
            seeds,
            &AdaptiveConfig {
                budget: 5_000,
                ..AdaptiveConfig::default()
            },
            |a| {
                if !seen.insert(a) {
                    dupes += 1;
                }
                hosts2.contains(&a)
            },
        );
        assert_eq!(dupes, 0, "probed an address twice");
    }
}
