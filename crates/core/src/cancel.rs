//! Cooperative cancellation for long-running engine sessions.
//!
//! A [`CancelToken`] is a cheap, cloneable flag shared between an engine
//! session and whoever supervises it (a CLI signal handler, a serving
//! layer's job controller, a test). The engine polls the token once per
//! round — at the same point it checks the deadline — and stops with
//! [`Termination::Cancelled`](crate::Termination::Cancelled) and a
//! well-formed partial outcome. Cancellation is *cooperative*: a round in
//! flight always completes, so the session's state stays at a round
//! boundary and a checkpoint taken before or after the cancelled run
//! resumes cleanly.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A shared cancellation flag. Clones observe the same flag.
///
/// ```
/// use sixgen_core::CancelToken;
///
/// let token = CancelToken::new();
/// let observer = token.clone();
/// assert!(!observer.is_cancelled());
/// token.cancel();
/// assert!(observer.is_cancelled());
/// ```
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, uncancelled token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Raises the flag. Idempotent; there is no way to lower it again —
    /// create a new token for a new run.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    /// Whether [`cancel`](CancelToken::cancel) has been called on this
    /// token or any clone of it.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_the_flag() {
        let a = CancelToken::new();
        let b = a.clone();
        assert!(!a.is_cancelled() && !b.is_cancelled());
        b.cancel();
        assert!(a.is_cancelled() && b.is_cancelled());
        // Idempotent.
        a.cancel();
        assert!(b.is_cancelled());
    }

    #[test]
    fn independent_tokens_do_not_interfere() {
        let a = CancelToken::new();
        let b = CancelToken::new();
        a.cancel();
        assert!(!b.is_cancelled());
    }
}
