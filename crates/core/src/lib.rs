//! # sixgen-core — the 6Gen target generation algorithm
//!
//! A faithful implementation of **6Gen** (Murdock et al., *Target Generation
//! for Internet-wide IPv6 Scanning*, IMC 2017, §5): given a set of known
//! IPv6 *seed* addresses and a *probe budget*, 6Gen greedily clusters
//! similar seeds into dense address-space regions and emits the addresses
//! of those regions as scan targets.
//!
//! The algorithm models seeds as IID samples of the live-host distribution:
//! regions dense in seeds are assumed dense in active hosts. Each iteration
//! finds, for every cluster, the non-member seed(s) at minimum nybble
//! Hamming distance, evaluates the seed density of each possible growth
//! (grown seed-set size ÷ grown range size), and commits the single growth
//! of maximum density (ties: smaller range, then random). Clusters grow
//! independently and may overlap; clusters strictly subsumed by a grown
//! range are deleted; the budget counts **unique** generated addresses; and
//! the final growth is sampled randomly so the budget is consumed exactly
//! (§5.4).
//!
//! The §5.5 optimizations are implemented: per-cluster best-growth caching
//! (valid because clusters grow independently), seed storage in a 16-ary
//! [`NybbleTree`](sixgen_addr::NybbleTree) for range queries, and parallel
//! growth evaluation across clusters (`std::thread::scope` standing in for
//! the paper's OpenMP). Growth-worker panics are caught and recovered per
//! cluster rather than aborting the run, and [`Config::time_limit`] turns
//! the engine into a deadline-aware anytime algorithm that emits a
//! well-formed partial [`Outcome`].
//!
//! ```
//! use sixgen_core::{Config, SixGen};
//!
//! let seeds: Vec<sixgen_addr::NybbleAddr> = [
//!     "2001:db8::11", "2001:db8::12", "2001:db8::19",
//!     "2001:db8::21", "2001:db8::22",
//! ]
//! .iter()
//! .map(|s| s.parse().unwrap())
//! .collect();
//!
//! let outcome = SixGen::new(seeds, Config { budget: 64, ..Config::default() }).run();
//! assert!(outcome.targets.len() <= 64);
//! assert!(outcome.targets.contains("2001:db8::13".parse().unwrap()));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adaptive;
mod budget;
mod cancel;
mod checkpoint;
mod cluster;
mod draw;
mod engine;
mod outcome;
mod select;

pub use adaptive::{adaptive_scan, AdaptiveConfig, AdaptiveOutcome, RegionFate, RegionReport};
pub use budget::{BudgetTracker, Charge};
pub use cancel::CancelToken;
pub use checkpoint::{
    CachedCheckpoint, CheckpointError, CheckpointWriter, EngineCheckpoint, SlotCheckpoint,
    FORMAT_VERSION,
};
pub use cluster::{
    best_growth, evaluate_growth, evaluate_growth_unfused, Cluster, Growth, GrowthEvaluation,
};
pub use draw::bounded_draw;
pub use engine::{run, run_grouped, ResumeError, Session, SixGen, Step};
pub use outcome::{ClusterInfo, Outcome, RunStats, TargetSet, Termination};

/// How cluster ranges widen when a new seed is absorbed (§5.3, §6.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ClusterMode {
    /// Every dynamic nybble becomes a full `?` wildcard. Emphasizes deeper
    /// exploration of early-formed dense clusters; the paper found loose
    /// ranges find slightly more hits (§6.3) and uses them by default.
    #[default]
    Loose,
    /// Dynamic nybbles carry exactly the values observed in the cluster's
    /// seeds (`[..]` bounded wildcards). Spreads budget across more or
    /// larger clusters.
    Tight,
}

/// Configuration for a 6Gen run.
#[derive(Debug, Clone)]
pub struct Config {
    /// Probe budget: the maximum number of unique target addresses to
    /// generate (seed addresses inside cluster ranges count — the paper's
    /// budget is the total number of probes sent, and generated ranges
    /// include their seeds).
    pub budget: u64,
    /// Loose or tight cluster ranges.
    pub mode: ClusterMode,
    /// Number of worker threads for growth evaluation. `1` disables
    /// parallelism; `0` uses the machine's available parallelism.
    pub threads: usize,
    /// RNG seed for tie-breaking and final-growth sampling; runs are fully
    /// deterministic given the same seeds, config, and this value.
    pub rng_seed: u64,
    /// Optional wall-clock deadline for the run. When the limit elapses
    /// before another stopping rule fires, the run stops with
    /// [`Termination::Deadline`] and a well-formed partial [`Outcome`]:
    /// every seed is covered by a cluster (they are from initialization
    /// onward) and all targets generated so far are emitted. `None` (the
    /// default) runs to completion.
    pub time_limit: Option<std::time::Duration>,
    /// Optional metrics registry. When set, the engine records per-phase
    /// wall time (cache fill, selection, commit, subsumption), histograms
    /// of candidate-set sizes and growth-evaluation latencies, and
    /// re-exports the [`RunStats`] counters under `engine/*` names at the
    /// end of the run. Metrics only observe — they never perturb the
    /// algorithm, so instrumented and bare runs produce identical targets.
    pub metrics: Option<std::sync::Arc<sixgen_obs::MetricsRegistry>>,
    /// Optional trace sink. When set, the engine records one run-level
    /// root span with nested per-iteration `cache_fill` / `select` /
    /// `commit` / `subsume` spans, and one `growth_eval` span per cluster
    /// evaluated per round (carrying cluster id, candidate-set size, and
    /// chosen-range density attributes). Like metrics, tracing only
    /// observes: traced and bare runs produce identical targets and
    /// identical deterministic metrics.
    pub trace: Option<std::sync::Arc<sixgen_obs::TraceSink>>,
    /// Optional cooperative cancellation token. The engine polls it once
    /// per round, right after the deadline check; when cancelled, the run
    /// stops with [`Termination::Cancelled`] and the same well-formed
    /// partial [`Outcome`] guarantees as a deadline stop. Cloning a
    /// `Config` shares the token (clones observe the same flag).
    pub cancel: Option<CancelToken>,
    /// Test hook: deterministic growth-worker panic injection. Not part of
    /// the stable API.
    #[doc(hidden)]
    pub panic_injection: Option<PanicInjection>,
    /// Test hook: route growth evaluation through the unfused reference
    /// implementation ([`evaluate_growth_unfused`]: candidate search, then
    /// one counting walk per distinct range) instead of the fused
    /// single-walk traversal. Both paths must produce byte-identical
    /// outcomes and deterministic metrics; differential tests flip this
    /// flag to prove it. Not part of the stable API.
    #[doc(hidden)]
    pub unfused_growth: bool,
    /// Test hook: execute the per-round selection and subsumption phases
    /// with the reference full-scan implementations instead of the
    /// incremental structures (tournament select tree, min-address
    /// subsumption index). Both paths must produce byte-identical targets,
    /// growth order, RNG draw streams, deterministic metrics, and
    /// checkpoints; differential tests flip this flag to prove it. The
    /// flag is not part of the checkpoint fingerprint — a checkpoint
    /// taken in either mode resumes in either mode. Not part of the
    /// stable API.
    #[doc(hidden)]
    pub scan_round: bool,
}

/// Test hook describing when growth evaluation should deliberately panic,
/// used to exercise the engine's panic recovery path. Not part of the
/// stable API.
#[doc(hidden)]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PanicInjection {
    /// Panic when evaluating a cluster whose range has exactly this size.
    pub range_size: u128,
    /// If `true`, panic only inside parallel growth workers, so the serial
    /// failover retry succeeds. If `false`, the retry panics too and the
    /// cluster is written off as exhausted.
    pub parallel_only: bool,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            budget: 1_000_000,
            mode: ClusterMode::Loose,
            threads: 1,
            rng_seed: 0x6CE4,
            time_limit: None,
            metrics: None,
            trace: None,
            cancel: None,
            panic_injection: None,
            unfused_growth: false,
            scan_round: false,
        }
    }
}

impl Config {
    /// Convenience constructor for the common "budget plus defaults" case.
    pub fn with_budget(budget: u64) -> Config {
        Config {
            budget,
            ..Config::default()
        }
    }
}
