//! Clusters and growth evaluation (Algorithm 1's `FindCandidateSeeds` and
//! the per-cluster half of `GrowCluster`).

use crate::draw::bounded_draw;
use crate::ClusterMode;
use sixgen_addr::{compare_density, NybbleAddr, NybbleTree, Range};
use std::collections::HashSet;

/// A 6Gen cluster: a range of address space and the number of seeds inside
/// it.
///
/// Per §5.5's space optimization, the seed *set* itself is not stored — it
/// can always be reconstructed from the range via the seed tree — only the
/// range and the seed-set size.
#[derive(Debug, Clone)]
pub struct Cluster {
    /// The region of address space encompassing the cluster's seeds.
    pub range: Range,
    /// Number of seeds inside `range` (the cluster's seed-set size).
    pub seed_count: u64,
}

impl Cluster {
    /// The initial cluster for a single seed: range equal to the seed
    /// address (`InitClusters` in Algorithm 1).
    pub fn singleton(seed: NybbleAddr) -> Cluster {
        Cluster {
            range: Range::from_address(seed),
            seed_count: 1,
        }
    }

    /// The cluster's seed density: seed-set size divided by range size.
    /// Exposed as an `f64` for reporting; the algorithm itself compares
    /// densities exactly via [`compare_density`].
    pub fn density(&self) -> f64 {
        self.seed_count as f64 / self.range.size() as f64
    }

    /// `true` if the cluster never grew beyond its initial single seed.
    pub fn is_singleton(&self) -> bool {
        self.range.size() == 1
    }
}

/// A candidate growth of one cluster: the expanded range it would adopt and
/// the seed count / size that determine its density.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Growth {
    /// The expanded range.
    pub range: Range,
    /// Seeds inside the expanded range — the grown cluster's full seed set
    /// (the expansion may encapsulate seeds beyond the candidate, §5.4).
    pub seed_count: u64,
    /// Cached `range.size()`.
    pub range_size: u128,
}

impl Growth {
    /// Orders two growths by 6Gen's greedy criterion: higher seed density
    /// first, then smaller range size ("If there are multiple growth options
    /// that result in the same maximum density, we prioritize smaller grown
    /// clusters as they consume less budget", §5.4). Returns
    /// `Ordering::Greater` if `self` is the better growth. Exact ties are
    /// broken at random by the caller.
    pub fn preference(&self, other: &Growth) -> core::cmp::Ordering {
        compare_density(
            self.seed_count,
            self.range_size,
            other.seed_count,
            other.range_size,
        )
        .then_with(|| other.range_size.cmp(&self.range_size))
    }
}

/// Result of [`evaluate_growth`]: the best growth (if any) plus counts that
/// feed the observability layer's candidate-set histograms. Both counts are
/// pure functions of the seed set and cluster, so they are safe to record
/// in the deterministic metrics section.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GrowthEvaluation {
    /// The best growth, or `None` when the cluster already contains every
    /// seed (no candidate exists) — the algorithm's second termination
    /// condition.
    pub growth: Option<Growth>,
    /// Number of candidate seeds at minimum Hamming distance.
    pub candidates: u64,
    /// Number of distinct expanded ranges actually evaluated (candidates
    /// minus duplicate-range skips).
    pub ranges_evaluated: u64,
}

/// Evaluates the best growth for one cluster (`FindCandidateSeeds` plus the
/// inner loop of `GrowCluster`):
///
/// 1. find all non-member seeds at minimum Hamming distance from the
///    cluster's range (the *candidate seeds*), deduplicated at the tree
///    level into one group per induced expansion (§5.5's fused traversal:
///    in loose mode the expanded range depends only on the candidate's
///    mismatch-position signature; in tight mode additionally on its
///    values at those positions), with each group's expanded-range seed
///    count computed in the same walk from subtree counts;
/// 2. for each group, materialize the expanded range (loose or tight per
///    `mode`);
/// 3. keep the growth with maximum density, breaking ties toward smaller
///    ranges and then uniformly at random (via `tie_break`, a pseudo-random
///    stream supplied by the engine so parallel evaluation stays
///    deterministic).
///
/// The groups arrive in the same first-occurrence order the unfused
/// [`evaluate_growth_unfused`] evaluates distinct ranges in, so both
/// implementations draw identically from `tie_break` and return identical
/// results — pinned by differential tests and the engine's
/// `Config::unfused_growth` escape hatch.
pub fn evaluate_growth(
    cluster: &Cluster,
    tree: &NybbleTree,
    mode: ClusterMode,
    tie_break: impl FnMut() -> u64,
) -> GrowthEvaluation {
    evaluate_growth_bounded(
        cluster,
        tree,
        mode,
        (sixgen_addr::NYBBLE_COUNT + 1) as u32,
        tie_break,
    )
}

/// [`evaluate_growth`] seeded with an achievable upper bound on the
/// candidate distance (see [`NybbleTree::growth_candidates_bounded`]). The
/// bound only prunes subtrees that cannot contain minimum-distance
/// candidates, so the evaluation — including the tie-break draw stream —
/// is byte-identical for every valid bound; the engine derives one from
/// the sorted seed list's numeric neighbours of the cluster range.
pub fn evaluate_growth_bounded(
    cluster: &Cluster,
    tree: &NybbleTree,
    mode: ClusterMode,
    distance_bound: u32,
    mut tie_break: impl FnMut() -> u64,
) -> GrowthEvaluation {
    let group_by_values = matches!(mode, ClusterMode::Tight);
    let Some(cands) =
        tree.growth_candidates_bounded(&cluster.range, group_by_values, distance_bound)
    else {
        return GrowthEvaluation {
            growth: None,
            candidates: 0,
            ranges_evaluated: 0,
        };
    };
    let mut best: Option<Growth> = None;
    let mut ties: u64 = 0;
    let mut candidate_count: u64 = 0;
    for group in &cands.groups {
        candidate_count += group.count;
        let range = match mode {
            ClusterMode::Loose => cluster.range.widen_positions(group.signature),
            ClusterMode::Tight => cluster
                .range
                .insert_position_values(group.signature, group.values),
        };
        let growth = Growth {
            // Candidates sit at *minimum* distance, so the expanded range
            // contains exactly the cluster's members plus this group (any
            // other absorbed seed would itself be a closer candidate).
            seed_count: cands.members + group.count,
            range_size: range.size(),
            range,
        };
        match &best {
            None => {
                best = Some(growth);
                ties = 1;
            }
            Some(current) => match growth.preference(current) {
                core::cmp::Ordering::Greater => {
                    best = Some(growth);
                    ties = 1;
                }
                core::cmp::Ordering::Equal => {
                    // Reservoir sampling over equally-good growths: replace
                    // the incumbent with probability 1/(ties+1), drawn
                    // without modulo bias (see `bounded_draw`).
                    ties += 1;
                    if bounded_draw(&mut tie_break, ties) == 0 {
                        best = Some(growth);
                    }
                }
                core::cmp::Ordering::Less => {}
            },
        }
    }
    GrowthEvaluation {
        growth: best,
        candidates: candidate_count,
        ranges_evaluated: cands.groups.len() as u64,
    }
}

/// The unfused reference implementation of [`evaluate_growth`]: candidate
/// search ([`NybbleTree::nearest_outside`]) followed by one
/// [`NybbleTree::count_in_range`] walk per distinct expanded range.
///
/// Kept for differential testing (and selectable engine-wide via the
/// hidden `Config::unfused_growth` flag): it must return byte-identical
/// results to the fused path and consume the `tie_break` stream
/// identically. It is O(candidates × range positions) slower in both
/// allocation (materializes every candidate address) and counting (re-walks
/// the tree per range), which is exactly what the fused traversal removes.
pub fn evaluate_growth_unfused(
    cluster: &Cluster,
    tree: &NybbleTree,
    mode: ClusterMode,
    mut tie_break: impl FnMut() -> u64,
) -> GrowthEvaluation {
    let Some((_dist, candidates)) = tree.nearest_outside(&cluster.range) else {
        return GrowthEvaluation {
            growth: None,
            candidates: 0,
            ranges_evaluated: 0,
        };
    };
    let mut best: Option<Growth> = None;
    let mut ties: u64 = 0;
    let mut candidate_count: u64 = 0;
    let mut ranges_evaluated: u64 = 0;
    // Distinct candidates often induce the same expanded range (e.g. two
    // seeds differing from the range in the same positions under loose
    // mode); evaluate each range once. The membership probe never clones —
    // duplicate-heavy candidate sets only pay a lookup, and a clone is
    // taken once per *distinct* range.
    let mut seen: HashSet<Range> = HashSet::new();
    for seed in candidates {
        candidate_count += 1;
        let range = match mode {
            ClusterMode::Loose => cluster.range.expand_loose(seed),
            ClusterMode::Tight => cluster.range.expand_tight(seed),
        };
        if seen.contains(&range) {
            continue;
        }
        seen.insert(range.clone());
        ranges_evaluated += 1;
        let growth = Growth {
            seed_count: tree.count_in_range(&range),
            range_size: range.size(),
            range,
        };
        match &best {
            None => {
                best = Some(growth);
                ties = 1;
            }
            Some(current) => match growth.preference(current) {
                core::cmp::Ordering::Greater => {
                    best = Some(growth);
                    ties = 1;
                }
                core::cmp::Ordering::Equal => {
                    ties += 1;
                    if bounded_draw(&mut tie_break, ties) == 0 {
                        best = Some(growth);
                    }
                }
                core::cmp::Ordering::Less => {}
            },
        }
    }
    GrowthEvaluation {
        growth: best,
        candidates: candidate_count,
        ranges_evaluated,
    }
}

/// The best growth for one cluster, without the candidate-count
/// bookkeeping. See [`evaluate_growth`] for the algorithm; returns `None`
/// when the cluster already contains every seed.
pub fn best_growth(
    cluster: &Cluster,
    tree: &NybbleTree,
    mode: ClusterMode,
    tie_break: impl FnMut() -> u64,
) -> Option<Growth> {
    evaluate_growth(cluster, tree, mode, tie_break).growth
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(s: &str) -> NybbleAddr {
        s.parse().unwrap()
    }

    fn tree(seeds: &[&str]) -> NybbleTree {
        NybbleTree::from_addresses(seeds.iter().map(|s| addr(s)))
    }

    #[test]
    fn singleton_cluster() {
        let c = Cluster::singleton(addr("2001:db8::1"));
        assert_eq!(c.seed_count, 1);
        assert_eq!(c.range.size(), 1);
        assert!(c.is_singleton());
        assert_eq!(c.density(), 1.0);
    }

    #[test]
    fn growth_prefers_density_then_size() {
        let dense_small = Growth {
            range: Range::from_address(addr("::1")),
            seed_count: 4,
            range_size: 16,
        };
        let sparse = Growth {
            range: Range::from_address(addr("::2")),
            seed_count: 4,
            range_size: 256,
        };
        let dense_large = Growth {
            range: Range::from_address(addr("::3")),
            seed_count: 64,
            range_size: 256,
        };
        assert_eq!(
            dense_small.preference(&sparse),
            core::cmp::Ordering::Greater
        );
        // Equal density (4/16 == 64/256): smaller range wins.
        assert_eq!(
            dense_small.preference(&dense_large),
            core::cmp::Ordering::Greater
        );
        assert_eq!(
            dense_large.preference(&dense_small),
            core::cmp::Ordering::Less
        );
    }

    #[test]
    fn best_growth_picks_nearest_then_densest() {
        // Cluster at ::10. Seeds ::11 and ::19 are both distance 1;
        // expanding by either (loose) gives ::1? which contains 3 seeds.
        // Seed ::99 is distance 2 and is not a candidate.
        let t = tree(&["2001:db8::10", "2001:db8::11", "2001:db8::19", "2001:db8::99"]);
        let c = Cluster::singleton(addr("2001:db8::10"));
        let g = best_growth(&c, &t, ClusterMode::Loose, || 0).unwrap();
        assert_eq!(g.range, "2001:db8::1?".parse().unwrap());
        assert_eq!(g.seed_count, 3);
        assert_eq!(g.range_size, 16);
    }

    #[test]
    fn best_growth_counts_encapsulated_seeds() {
        // Growing ::100 by ::109 (distance 1) must also absorb ::105, which
        // falls inside the expanded range (§5.4).
        let t = tree(&["2001:db8::100", "2001:db8::105", "2001:db8::109"]);
        let c = Cluster::singleton(addr("2001:db8::100"));
        let g = best_growth(&c, &t, ClusterMode::Loose, || 0).unwrap();
        assert_eq!(g.seed_count, 3);
    }

    #[test]
    fn best_growth_tight_mode() {
        let t = tree(&["2001:db8::100", "2001:db8::105", "2001:db8::109"]);
        let c = Cluster::singleton(addr("2001:db8::100"));
        let g = best_growth(&c, &t, ClusterMode::Tight, || 0).unwrap();
        // Tight expansion by one candidate: {0,5} or {0,9} in the last
        // nybble, size 2, containing 2 seeds (density 1) — denser than any
        // loose alternative.
        assert_eq!(g.range_size, 2);
        assert_eq!(g.seed_count, 2);
    }

    #[test]
    fn evaluate_growth_reports_candidate_counts() {
        // ::11 and ::19 are the two distance-1 candidates; under loose mode
        // both induce the same expanded range ::1?, so only one distinct
        // range is evaluated.
        let t = tree(&["2001:db8::10", "2001:db8::11", "2001:db8::19", "2001:db8::99"]);
        let c = Cluster::singleton(addr("2001:db8::10"));
        let eval = evaluate_growth(&c, &t, ClusterMode::Loose, || 0);
        assert_eq!(eval.candidates, 2);
        assert_eq!(eval.ranges_evaluated, 1);
        assert_eq!(eval.growth.unwrap().seed_count, 3);
        // A cluster holding every seed has nothing to evaluate.
        let full = Cluster {
            range: "2001:db8::??".parse().unwrap(),
            seed_count: 4,
        };
        let eval = evaluate_growth(&full, &t, ClusterMode::Loose, || 0);
        assert!(eval.growth.is_none());
        assert_eq!(eval.candidates, 0);
        assert_eq!(eval.ranges_evaluated, 0);
    }

    #[test]
    fn best_growth_none_when_cluster_has_all_seeds() {
        let t = tree(&["2001:db8::1", "2001:db8::2"]);
        let c = Cluster {
            range: "2001:db8::?".parse().unwrap(),
            seed_count: 2,
        };
        assert!(best_growth(&c, &t, ClusterMode::Loose, || 0).is_none());
    }

    #[test]
    fn best_growth_deterministic_under_tie_break_stream() {
        // Two equidistant candidates with equal resulting density and size:
        // the tie-break stream decides, deterministically.
        let t = tree(&["2001:db8::50", "2001:db8::41", "2001:db8::61"]);
        let c = Cluster::singleton(addr("2001:db8::50"));
        let g0 = best_growth(&c, &t, ClusterMode::Tight, || 0).unwrap();
        let g0_again = best_growth(&c, &t, ClusterMode::Tight, || 0).unwrap();
        assert_eq!(g0.range, g0_again.range);
        // Both candidate growths have 2 seeds in a size-4 tight range.
        assert_eq!(g0.seed_count, 2);
        assert_eq!(g0.range_size, 4);
    }

    #[test]
    fn duplicate_candidates_deduplicate_to_one_range() {
        // Six candidates all mismatch the cluster in the same (last)
        // position, so loose expansion induces one single range. Both
        // implementations must report 6 candidates but evaluate 1 range,
        // and the unfused path's dedup probe must not clone per duplicate
        // (pinned structurally: only one distinct range ever enters the
        // seen-set, so at most one clone is taken).
        let t = tree(&[
            "2001:db8::10",
            "2001:db8::11",
            "2001:db8::13",
            "2001:db8::15",
            "2001:db8::19",
            "2001:db8::1b",
            "2001:db8::1e",
        ]);
        let c = Cluster::singleton(addr("2001:db8::10"));
        for mode in [ClusterMode::Loose, ClusterMode::Tight] {
            let fused = evaluate_growth(&c, &t, mode, || 0);
            let unfused = evaluate_growth_unfused(&c, &t, mode, || 0);
            assert_eq!(fused.candidates, 6);
            assert_eq!(unfused.candidates, 6);
            // Loose: all six widen position 31 to `?`. Tight: all six
            // insert distinct values, so six distinct ranges.
            let expected_ranges = match mode {
                ClusterMode::Loose => 1,
                ClusterMode::Tight => 6,
            };
            assert_eq!(fused.ranges_evaluated, expected_ranges);
            assert_eq!(unfused.ranges_evaluated, expected_ranges);
            assert_eq!(fused.growth, unfused.growth);
        }
    }

    #[test]
    fn fused_and_unfused_agree_and_draw_identically() {
        // Randomized clusters over a structured seed set: the fused
        // traversal must return the same evaluation as the unfused
        // reference AND consume the tie-break stream identically (same
        // number of draws in the same order), which is what makes the two
        // engine paths byte-identical.
        let mut state: u64 = 0x5EED;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state
        };
        let seeds: Vec<NybbleAddr> = (0..120)
            .map(|_| {
                let r = next();
                NybbleAddr::from_bits(
                    (0x2001_0db8u128) << 96
                        | ((r % 5) as u128) << 16
                        | ((r >> 8) % 64) as u128,
                )
            })
            .collect();
        let t = NybbleTree::from_addresses(seeds.iter().copied());
        for trial in 0..30 {
            let anchor = seeds[(next() as usize) % seeds.len()];
            let cluster = if trial % 3 == 0 {
                Cluster::singleton(anchor)
            } else {
                // A small grown range around the anchor.
                let range = Range::from_address(anchor).expand_loose(NybbleAddr::from_bits(
                    anchor.bits() ^ (0xF & next() as u128),
                ));
                let count = t.count_in_range(&range);
                Cluster {
                    range,
                    seed_count: count,
                }
            };
            for mode in [ClusterMode::Loose, ClusterMode::Tight] {
                let mut draws_fused: Vec<u64> = Vec::new();
                let mut s1: u64 = 0xABCD ^ trial;
                let fused = evaluate_growth(&cluster, &t, mode, || {
                    s1 = s1.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
                    draws_fused.push(s1);
                    s1
                });
                let mut draws_unfused: Vec<u64> = Vec::new();
                let mut s2: u64 = 0xABCD ^ trial;
                let unfused = evaluate_growth_unfused(&cluster, &t, mode, || {
                    s2 = s2.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
                    draws_unfused.push(s2);
                    s2
                });
                assert_eq!(fused.growth, unfused.growth, "trial {trial} {mode:?}");
                assert_eq!(fused.candidates, unfused.candidates);
                assert_eq!(fused.ranges_evaluated, unfused.ranges_evaluated);
                assert_eq!(
                    draws_fused, draws_unfused,
                    "tie-break stream consumption diverged (trial {trial} {mode:?})"
                );
            }
        }
    }
}
