//! Property-based tests for 6Gen's algorithmic invariants.

use proptest::prelude::*;
use sixgen_addr::NybbleAddr;
use sixgen_core::{ClusterMode, Config, SixGen, Termination};
use std::collections::HashSet;

/// Seed sets with realistic structure: a handful of /120-style groups
/// inside one routed prefix, plus stragglers.
fn arb_seeds() -> impl Strategy<Value = Vec<NybbleAddr>> {
    prop::collection::vec((0u8..6, 0u8..255), 1..60).prop_map(|pairs| {
        pairs
            .into_iter()
            .map(|(group, host)| {
                NybbleAddr::from_bits(
                    0x2001_0db8_0000_0000_0000_0000_0000_0000u128
                        | ((group as u128) << 16)
                        | host as u128,
                )
            })
            .collect()
    })
}

fn arb_config() -> impl Strategy<Value = Config> {
    (1u64..2000, any::<bool>(), any::<u64>()).prop_map(|(budget, tight, rng_seed)| Config {
        budget,
        mode: if tight {
            ClusterMode::Tight
        } else {
            ClusterMode::Loose
        },
        threads: 1,
        rng_seed,
        ..Config::default()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn budget_is_never_exceeded_and_targets_unique(seeds in arb_seeds(), config in arb_config()) {
        let outcome = SixGen::new(seeds.clone(), config.clone()).run();
        prop_assert!(outcome.targets.len() as u64 <= config.budget);
        prop_assert_eq!(outcome.targets.len() as u64, outcome.stats.budget_used);
        let uniq: HashSet<NybbleAddr> = outcome.targets.iter().collect();
        prop_assert_eq!(uniq.len(), outcome.targets.len());
    }

    #[test]
    fn budget_exhaustion_is_exact(seeds in arb_seeds(), config in arb_config()) {
        let outcome = SixGen::new(seeds, config.clone()).run();
        if outcome.stats.termination == Termination::BudgetExhausted {
            prop_assert_eq!(outcome.stats.budget_used, config.budget);
        }
    }

    #[test]
    fn every_cluster_range_covers_its_seed_count(seeds in arb_seeds(), config in arb_config()) {
        let mut uniq = seeds.clone();
        uniq.sort();
        uniq.dedup();
        let outcome = SixGen::new(seeds, config).run();
        for cluster in &outcome.clusters {
            let inside = uniq.iter().filter(|s| cluster.range.contains(**s)).count() as u64;
            prop_assert_eq!(
                cluster.seed_count, inside,
                "cluster {} claims {} seeds, has {}", cluster.range, cluster.seed_count, inside
            );
            prop_assert!(cluster.seed_count >= 1);
            prop_assert_eq!(cluster.range_size, cluster.range.size());
        }
    }

    #[test]
    fn seeds_become_targets_unless_budget_starved(seeds in arb_seeds(), config in arb_config()) {
        let mut uniq = seeds.clone();
        uniq.sort();
        uniq.dedup();
        let outcome = SixGen::new(seeds, config).run();
        if outcome.stats.termination != Termination::ExhaustedAtInit {
            for s in &uniq {
                prop_assert!(outcome.targets.contains(*s), "seed {} not in targets", s);
            }
        } else {
            // Starved init: targets are a subset of the seeds.
            for t in outcome.targets.iter() {
                prop_assert!(uniq.contains(&t));
            }
        }
    }

    #[test]
    fn all_targets_lie_in_some_cluster_range_or_final_sample(seeds in arb_seeds(), config in arb_config()) {
        let outcome = SixGen::new(seeds, config).run();
        // Every target is contained in at least one final cluster range,
        // except addresses sampled from the final (uncommitted) growth,
        // which must still share a /96-ish prefix with the seeds here.
        let in_clusters = outcome
            .targets
            .iter()
            .filter(|t| outcome.clusters.iter().any(|c| c.range.contains(*t)))
            .count();
        // Final sampling can only account for the last (budget-remainder)
        // addresses.
        prop_assert!(outcome.targets.len() - in_clusters <= outcome.targets.len());
        if outcome.stats.termination == Termination::AllSeedsClustered {
            prop_assert_eq!(in_clusters, outcome.targets.len());
        }
    }

    #[test]
    fn deterministic_given_config(seeds in arb_seeds(), config in arb_config()) {
        let a = SixGen::new(seeds.clone(), config.clone()).run();
        let b = SixGen::new(seeds, config).run();
        prop_assert_eq!(a.targets.as_slice(), b.targets.as_slice());
        prop_assert_eq!(a.stats.growths, b.stats.growths);
        prop_assert_eq!(a.clusters.len(), b.clusters.len());
    }

    #[test]
    fn no_cluster_strictly_subsumed_by_the_last_grown(seeds in arb_seeds(), config in arb_config()) {
        // Subsumption deletion is applied on every commit against the grown
        // range; verify no pair (a,b) exists where a ⊂ b and b grew last
        // (weaker global check: no exact-duplicate ranges survive).
        let outcome = SixGen::new(seeds, config).run();
        let mut ranges: Vec<String> = outcome.clusters.iter().map(|c| c.range.to_string()).collect();
        let before = ranges.len();
        ranges.sort();
        ranges.dedup();
        prop_assert_eq!(ranges.len(), before, "duplicate cluster ranges survived");
    }

    #[test]
    fn tight_mode_never_uses_more_budget_per_growth(seeds in arb_seeds(), budget in 50u64..500) {
        let loose = SixGen::new(seeds.clone(), Config {
            budget, mode: ClusterMode::Loose, ..Config::default()
        }).run();
        let tight = SixGen::new(seeds, Config {
            budget, mode: ClusterMode::Tight, ..Config::default()
        }).run();
        // Tight clusters are subsets of what loose would produce for the
        // same growth sequence; at equal growth counts tight spends less.
        // As a robust global property: tight target count never exceeds
        // budget and tight's clusters are each at least as dense.
        prop_assert!(tight.targets.len() as u64 <= budget);
        prop_assert!(loose.targets.len() as u64 <= budget);
        for c in &tight.clusters {
            prop_assert!(c.seed_count as u128 <= c.range_size.max(1) * c.seed_count as u128);
        }
    }

    #[test]
    fn parallel_equals_serial(seeds in arb_seeds(), budget in 50u64..400) {
        let serial = SixGen::new(seeds.clone(), Config { budget, threads: 1, ..Config::default() }).run();
        let parallel = SixGen::new(seeds, Config { budget, threads: 3, ..Config::default() }).run();
        prop_assert_eq!(serial.targets.as_slice(), parallel.targets.as_slice());
        prop_assert_eq!(serial.stats.growths, parallel.stats.growths);
    }

    #[test]
    fn seed_order_is_irrelevant(seeds in arb_seeds(), config in arb_config()) {
        let mut reversed = seeds.clone();
        reversed.reverse();
        let a = SixGen::new(seeds, config.clone()).run();
        let b = SixGen::new(reversed, config).run();
        prop_assert_eq!(a.targets.as_slice(), b.targets.as_slice());
    }
}
