//! Session-level guarantees: checkpoint/resume determinism, cooperative
//! cancellation, and budget top-up.
//!
//! The central claim under test: a run interrupted at **any** round
//! boundary and resumed from its checkpoint — in what may as well be a
//! different process, since the checkpoint passes through its serialized
//! byte form — produces byte-identical targets, clusters, cumulative
//! stats, and deterministic metrics to the run that was never
//! interrupted.

use proptest::prelude::*;
use sixgen_addr::NybbleAddr;
use sixgen_core::{
    CancelToken, ClusterMode, Config, EngineCheckpoint, Outcome, ResumeError, Session, SixGen,
    Step, Termination,
};
use sixgen_obs::MetricsRegistry;
use std::sync::Arc;

/// Ten dense groups of three seeds each (hosts 0–2 in the last nybble),
/// with group prefixes `0x111, 0x222, … 0xAAA` — pairwise distant in
/// *three* nybbles, so bridging groups is never competitive and every
/// group grows independently. That yields a ten-growth ladder, all
/// growths with the same density, so the selection scan's tie-break draws
/// from the run RNG every round: the run is both long enough to interrupt
/// at many boundaries and sensitive to any error in RNG-state restore.
fn seeds() -> Vec<NybbleAddr> {
    (0..30u32)
        .map(|i| {
            let group = (i / 3 + 1) as u128 * 0x111;
            let host = (i % 3) as u128;
            NybbleAddr::from_bits(0x2001_0db8 << 96 | group << 4 | host)
        })
        .collect()
}

fn config(mode: ClusterMode, budget: u64) -> Config {
    Config {
        mode,
        budget,
        ..Config::default()
    }
}

/// Steps a fresh session exactly `k` rounds (fewer if the run terminates
/// first), then returns its checkpoint **after a serialization round
/// trip** — every resume in these tests goes through bytes, as a real
/// crash recovery would.
fn checkpoint_after(cfg: &Config, k: u64) -> EngineCheckpoint {
    let mut session = SixGen::new(seeds(), cfg.clone()).session();
    for _ in 0..k {
        if let Step::Done(_) = session.step() {
            break;
        }
    }
    let bytes = session.checkpoint().to_bytes();
    drop(session); // the "killed" process: no finish(), no metrics export
    EngineCheckpoint::from_bytes(&bytes).expect("checkpoint must decode")
}

fn assert_same_logical_run(baseline: &Outcome, resumed: &Outcome) {
    assert_eq!(baseline.targets.as_slice(), resumed.targets.as_slice());
    assert_eq!(baseline.clusters.len(), resumed.clusters.len());
    for (b, r) in baseline.clusters.iter().zip(&resumed.clusters) {
        assert_eq!(b.range, r.range);
        assert_eq!(b.seed_count, r.seed_count);
        assert_eq!(b.range_size, r.range_size);
    }
    assert_eq!(baseline.stats.rounds, resumed.stats.rounds);
    assert_eq!(baseline.stats.growths, resumed.stats.growths);
    assert_eq!(baseline.stats.subsumed, resumed.stats.subsumed);
    assert_eq!(baseline.stats.budget_used, resumed.stats.budget_used);
    assert_eq!(baseline.stats.budget, resumed.stats.budget);
    assert_eq!(baseline.stats.seed_count, resumed.stats.seed_count);
    assert_eq!(baseline.stats.termination, resumed.stats.termination);
    assert_eq!(baseline.stats.worker_panics, resumed.stats.worker_panics);
}

/// The tentpole differential: interrupt at every possible round boundary.
#[test]
fn resume_at_every_round_is_byte_identical() {
    for mode in [ClusterMode::Loose, ClusterMode::Tight] {
        let cfg = config(mode, 300);

        // Uninterrupted baseline with its own registry.
        let baseline_registry = MetricsRegistry::shared();
        let baseline = SixGen::new(
            seeds(),
            Config {
                metrics: Some(Arc::clone(&baseline_registry)),
                ..cfg.clone()
            },
        )
        .run();
        let total_rounds = baseline.stats.rounds;
        assert!(total_rounds > 3, "test needs a multi-round run");

        for k in 0..total_rounds {
            // Segment 1: run k rounds under a registry shared with the
            // resumed segment, then "crash" (drop without finishing).
            let registry = MetricsRegistry::shared();
            let mut session = SixGen::new(
                seeds(),
                Config {
                    metrics: Some(Arc::clone(&registry)),
                    ..cfg.clone()
                },
            )
            .session();
            for _ in 0..k {
                assert_eq!(session.step(), Step::Grew, "boundary {k} not reachable");
            }
            let bytes = session.checkpoint().to_bytes();
            drop(session);

            // Segment 2: decode, resume, run to completion.
            let checkpoint = EngineCheckpoint::from_bytes(&bytes).unwrap();
            let resumed = Session::resume(
                checkpoint,
                Config {
                    metrics: Some(Arc::clone(&registry)),
                    ..cfg.clone()
                },
            )
            .unwrap()
            .run();

            assert_same_logical_run(&baseline, &resumed);
            // Restored caches mean zero replayed work: the shared
            // registry's deterministic section (recompute counters,
            // candidate histograms, run count) matches the uninterrupted
            // run's byte for byte.
            assert_eq!(
                baseline_registry.deterministic_json(),
                registry.deterministic_json(),
                "deterministic metrics diverged at boundary {k} ({mode:?})"
            );
        }
    }
}

/// Resuming under parallel growth evaluation matches a serial baseline.
#[test]
fn resume_is_thread_count_independent() {
    let cfg = config(ClusterMode::Loose, 300);
    let baseline = SixGen::new(seeds(), cfg.clone()).run();
    let checkpoint = checkpoint_after(&cfg, 3);
    let resumed = Session::resume(
        checkpoint,
        Config {
            threads: 4,
            ..cfg
        },
    )
    .unwrap()
    .run();
    assert_same_logical_run(&baseline, &resumed);
}

/// A chain of interruptions (kill, resume, kill again, resume again)
/// still converges to the baseline.
#[test]
fn repeated_interruption_chains_compose() {
    let cfg = config(ClusterMode::Loose, 300);
    let baseline = SixGen::new(seeds(), cfg.clone()).run();

    let mut session = SixGen::new(seeds(), cfg.clone()).session();
    let mut hops = 0;
    let outcome = loop {
        match session.step() {
            Step::Grew => {
                // Kill and resume at every second boundary.
                if session.growths().is_multiple_of(2) {
                    let bytes = session.checkpoint().to_bytes();
                    drop(session);
                    hops += 1;
                    session = Session::resume(
                        EngineCheckpoint::from_bytes(&bytes).unwrap(),
                        cfg.clone(),
                    )
                    .unwrap();
                }
            }
            Step::Done(_) => break session.finish(),
        }
    };
    assert!(hops >= 2, "chain exercised {hops} hops");
    assert_same_logical_run(&baseline, &outcome);
}

/// Budget top-up: a run checkpointed before its small budget mattered,
/// resumed with a larger budget, equals an uninterrupted large-budget run.
#[test]
fn resume_with_topped_up_budget_matches_unbroken_large_budget_run() {
    let small = config(ClusterMode::Loose, 60);
    let large = config(ClusterMode::Loose, 300);
    let baseline = SixGen::new(seeds(), large.clone()).run();

    // Boundary 1: only the seeds and one growth charged — behavior so far
    // is identical under either budget.
    let checkpoint = checkpoint_after(&small, 1);
    assert_eq!(checkpoint.budget, 60);
    let resumed = Session::resume(checkpoint, large).unwrap().run();
    assert_same_logical_run(&baseline, &resumed);
    assert_eq!(resumed.stats.budget, 300);
}

/// Shrinking the budget below what was already generated is refused.
#[test]
fn resume_refuses_budget_below_used() {
    let cfg = config(ClusterMode::Loose, 300);
    let checkpoint = checkpoint_after(&cfg, 2);
    let used = checkpoint.generated.len() as u64;
    assert!(used > 10);
    let err = Session::resume(checkpoint, config(ClusterMode::Loose, 10)).unwrap_err();
    assert_eq!(
        err,
        ResumeError::BudgetBelowUsed {
            used,
            budget: 10
        }
    );
}

/// Every determinism-fingerprint mismatch is refused with a named field.
#[test]
fn resume_refuses_fingerprint_mismatches() {
    let cfg = config(ClusterMode::Loose, 300);
    let checkpoint = checkpoint_after(&cfg, 2);

    let err = Session::resume(checkpoint.clone(), config(ClusterMode::Tight, 300)).unwrap_err();
    assert_eq!(err, ResumeError::ConfigMismatch { field: "mode" });

    let err = Session::resume(
        checkpoint.clone(),
        Config {
            rng_seed: 999,
            ..cfg.clone()
        },
    )
    .unwrap_err();
    assert_eq!(err, ResumeError::ConfigMismatch { field: "rng_seed" });

    let err = Session::resume(
        checkpoint.clone(),
        Config {
            unfused_growth: true,
            ..cfg.clone()
        },
    )
    .unwrap_err();
    assert_eq!(
        err,
        ResumeError::ConfigMismatch {
            field: "unfused_growth"
        }
    );

    // A structurally violated (hand-tampered) checkpoint is refused too.
    let mut tampered = checkpoint;
    tampered.stale.clear();
    assert!(matches!(
        Session::resume(tampered, cfg).unwrap_err(),
        ResumeError::Corrupt(_)
    ));
}

/// A pre-cancelled token stops the run on its first round with a
/// well-formed partial outcome.
#[test]
fn cancel_before_first_round_yields_valid_partial_outcome() {
    let token = CancelToken::new();
    token.cancel();
    let outcome = SixGen::new(
        seeds(),
        Config {
            cancel: Some(token),
            ..config(ClusterMode::Loose, 100_000)
        },
    )
    .run();
    assert_eq!(outcome.stats.termination, Termination::Cancelled);
    assert_eq!(outcome.stats.growths, 0);
    assert_eq!(outcome.stats.rounds, 1, "cancelled during round one");
    for &s in &seeds() {
        assert!(outcome.targets.contains(s), "seed {s} missing from targets");
        assert!(
            outcome.clusters.iter().any(|c| c.range.contains(s)),
            "seed {s} not covered by any cluster"
        );
    }
}

/// Cancel mid-run, checkpoint at the last boundary, resume without the
/// token: the completed run is byte-identical to one never cancelled.
#[test]
fn cancel_then_resume_loses_no_work() {
    let cfg = config(ClusterMode::Loose, 300);
    let baseline = SixGen::new(seeds(), cfg.clone()).run();

    let token = CancelToken::new();
    let mut saved: Option<Vec<u8>> = None;
    let cancelled = SixGen::new(
        seeds(),
        Config {
            cancel: Some(token.clone()),
            ..cfg.clone()
        },
    )
    .session()
    .run_with(|session| {
        if session.growths() == 3 {
            saved = Some(session.checkpoint().to_bytes());
            token.cancel();
        }
    });
    assert_eq!(cancelled.stats.termination, Termination::Cancelled);
    assert_eq!(cancelled.stats.growths, 3);
    // rounds counts the cancelled round too (it started, then stopped).
    assert_eq!(cancelled.stats.rounds, 4);

    let checkpoint = EngineCheckpoint::from_bytes(&saved.expect("hook ran")).unwrap();
    let resumed = Session::resume(checkpoint, cfg).unwrap().run();
    assert_same_logical_run(&baseline, &resumed);
}

/// An uncancelled token perturbs nothing.
#[test]
fn unfired_token_is_invisible() {
    let cfg = config(ClusterMode::Loose, 300);
    let bare = SixGen::new(seeds(), cfg.clone()).run();
    let with_token = SixGen::new(
        seeds(),
        Config {
            cancel: Some(CancelToken::new()),
            ..cfg
        },
    )
    .run();
    assert_same_logical_run(&bare, &with_token);
}

/// Worker-panic recovery composes with resume: a resumed segment whose
/// parallel workers panic (and fail over serially) still reproduces the
/// uninterrupted, uninjected run.
///
/// Parallel evaluation only engages with ≥ 64 stale clusters, which after
/// round one never happens (exactly one cluster goes stale per commit) —
/// so this uses a 90-seed set and resumes at boundary 0, making the
/// resumed segment's first round the parallel, panic-injected one.
#[test]
fn resume_with_injected_worker_panics_still_matches() {
    let big_seeds: Vec<NybbleAddr> = (0..90u32)
        .map(|i| {
            let group = (i / 3 + 1) as u128 * 0x111;
            let host = (i % 3) as u128;
            NybbleAddr::from_bits(0x2001_0db8 << 96 | group << 4 | host)
        })
        .collect();
    let cfg = Config {
        threads: 4,
        ..config(ClusterMode::Loose, 600)
    };
    let baseline = SixGen::new(big_seeds.clone(), cfg.clone()).run();

    let session = SixGen::new(big_seeds, cfg.clone()).session();
    let bytes = session.checkpoint().to_bytes();
    drop(session);
    let resumed = Session::resume(
        EngineCheckpoint::from_bytes(&bytes).unwrap(),
        Config {
            panic_injection: Some(sixgen_core::PanicInjection {
                range_size: 1,
                parallel_only: true,
            }),
            ..cfg
        },
    )
    .unwrap()
    .run();
    assert!(resumed.stats.worker_panics > 0, "injection must have fired");
    assert_eq!(baseline.targets.as_slice(), resumed.targets.as_slice());
    assert_eq!(baseline.stats.growths, resumed.stats.growths);
    assert_eq!(baseline.stats.termination, resumed.stats.termination);
}

/// Seed sets with realistic structure (mirrors the engine proptests).
fn arb_seeds() -> impl Strategy<Value = Vec<NybbleAddr>> {
    prop::collection::vec((0u8..6, 0u8..255), 1..60).prop_map(|pairs| {
        pairs
            .into_iter()
            .map(|(group, host)| {
                NybbleAddr::from_bits(
                    0x2001_0db8_0000_0000_0000_0000_0000_0000u128
                        | ((group as u128) << 16)
                        | host as u128,
                )
            })
            .collect()
    })
}

fn arb_config() -> impl Strategy<Value = Config> {
    (1u64..2000, any::<bool>(), any::<u64>()).prop_map(|(budget, tight, rng_seed)| Config {
        budget,
        mode: if tight {
            ClusterMode::Tight
        } else {
            ClusterMode::Loose
        },
        rng_seed,
        ..Config::default()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Satellite: serialize → restore → re-serialize is byte-identical,
    /// for checkpoints of *real* session states at arbitrary boundaries.
    #[test]
    fn checkpoint_round_trip_is_byte_stable(
        seeds in arb_seeds(),
        config in arb_config(),
        k in 0u64..12,
    ) {
        // Boundaries 0..=growths are reachable without finishing the run;
        // map the raw draw onto that range.
        let growths = SixGen::new(seeds.clone(), config.clone()).run().stats.growths;
        let boundary = k % (growths + 1);
        let mut session = SixGen::new(seeds, config).session();
        for _ in 0..boundary {
            prop_assert_eq!(session.step(), Step::Grew);
        }
        let checkpoint = session.checkpoint();
        let bytes = checkpoint.to_bytes();
        let decoded = EngineCheckpoint::from_bytes(&bytes).unwrap();
        prop_assert_eq!(&decoded, &checkpoint);
        prop_assert_eq!(decoded.to_bytes(), bytes);
    }

    /// Resume from a random boundary reproduces the uninterrupted target
    /// stream for arbitrary seed sets and configs.
    #[test]
    fn resume_matches_baseline_for_arbitrary_runs(
        seeds in arb_seeds(),
        config in arb_config(),
        k in 0u64..12,
    ) {
        let baseline = SixGen::new(seeds.clone(), config.clone()).run();
        // A budget below the seed count finishes the session at birth;
        // there is no round boundary to resume from.
        prop_assume!(baseline.stats.termination != Termination::ExhaustedAtInit);
        let boundary = k % (baseline.stats.growths + 1);
        let mut session = SixGen::new(seeds, config.clone()).session();
        for _ in 0..boundary {
            prop_assert_eq!(session.step(), Step::Grew);
        }
        let bytes = session.checkpoint().to_bytes();
        drop(session);
        let resumed = Session::resume(
            EngineCheckpoint::from_bytes(&bytes).unwrap(),
            config,
        )
        .unwrap()
        .run();
        prop_assert_eq!(baseline.targets.as_slice(), resumed.targets.as_slice());
        prop_assert_eq!(baseline.stats.rounds, resumed.stats.rounds);
        prop_assert_eq!(baseline.stats.growths, resumed.stats.growths);
        prop_assert_eq!(baseline.stats.termination, resumed.stats.termination);
    }
}
