//! Incremental-vs-scan differentials: the incremental round structures
//! (selection tournament tree, min-address subsumption index, event-driven
//! cache refills) must be *observationally invisible*. Every test here
//! runs the same workload twice — once with `Config::scan_round` (the
//! reference full-scan implementations) and once with the incremental
//! default — and asserts byte identity of everything the engine exposes:
//! emitted targets, final clusters, cumulative stats, deterministic
//! metrics, serialized checkpoints at every round boundary (which pins the
//! RNG draw stream: the checkpoint embeds the RNG state), and
//! cross-mode checkpoint/resume in both directions.

use sixgen_addr::NybbleAddr;
use sixgen_core::{ClusterMode, Config, EngineCheckpoint, Outcome, Session, SixGen, Step};
use sixgen_obs::MetricsRegistry;
use std::sync::Arc;

/// Ten dense three-seed groups plus a handful of stragglers: long enough
/// to exercise many rounds, tie-heavy enough that selection draws from
/// the run RNG every round, and with enough subsumption (stragglers get
/// swallowed by grown ranges) to exercise the subsumption index.
fn seeds() -> Vec<NybbleAddr> {
    let mut seeds: Vec<NybbleAddr> = (0..30u32)
        .map(|i| {
            let group = (i / 3 + 1) as u128 * 0x111;
            let host = (i % 3) as u128;
            NybbleAddr::from_bits(0x2001_0db8 << 96 | group << 4 | host)
        })
        .collect();
    // Stragglers one nybble off a group member: subsumed soon after the
    // group's range grows over their position.
    seeds.extend(
        (1..=5u128).map(|g| NybbleAddr::from_bits(0x2001_0db8 << 96 | (g * 0x111) << 4 | 8)),
    );
    seeds
}

fn config(mode: ClusterMode, scan_round: bool) -> Config {
    Config {
        mode,
        budget: 400,
        scan_round,
        ..Config::default()
    }
}

fn assert_same_outcome(scan: &Outcome, incremental: &Outcome, what: &str) {
    assert_eq!(
        scan.targets.as_slice(),
        incremental.targets.as_slice(),
        "{what}: targets diverged"
    );
    assert_eq!(
        scan.clusters.len(),
        incremental.clusters.len(),
        "{what}: cluster count diverged"
    );
    for (s, i) in scan.clusters.iter().zip(&incremental.clusters) {
        assert_eq!(s.range, i.range, "{what}: cluster range diverged");
        assert_eq!(s.seed_count, i.seed_count, "{what}: seed count diverged");
        assert_eq!(s.range_size, i.range_size, "{what}: range size diverged");
    }
    assert_eq!(scan.stats.rounds, incremental.stats.rounds, "{what}: rounds");
    assert_eq!(
        scan.stats.growths, incremental.stats.growths,
        "{what}: growths"
    );
    assert_eq!(
        scan.stats.subsumed, incremental.stats.subsumed,
        "{what}: subsumed"
    );
    assert_eq!(
        scan.stats.budget_used, incremental.stats.budget_used,
        "{what}: budget used"
    );
    assert_eq!(
        scan.stats.termination, incremental.stats.termination,
        "{what}: termination"
    );
}

/// Full-run differential: targets, clusters, stats, and deterministic
/// metrics are byte-identical between the scan and incremental
/// implementations, in both clustering modes.
#[test]
fn scan_and_incremental_outcomes_are_byte_identical() {
    for mode in [ClusterMode::Loose, ClusterMode::Tight] {
        let scan_registry = MetricsRegistry::shared();
        let scan = SixGen::new(
            seeds(),
            Config {
                metrics: Some(Arc::clone(&scan_registry)),
                ..config(mode, true)
            },
        )
        .run();
        let inc_registry = MetricsRegistry::shared();
        let incremental = SixGen::new(
            seeds(),
            Config {
                metrics: Some(Arc::clone(&inc_registry)),
                ..config(mode, false)
            },
        )
        .run();
        assert!(scan.stats.rounds > 5, "workload must be multi-round");
        assert!(scan.stats.subsumed > 0, "workload must exercise subsumption");
        assert_same_outcome(&scan, &incremental, &format!("{mode:?}"));
        assert_eq!(
            scan_registry.deterministic_json(),
            inc_registry.deterministic_json(),
            "{mode:?}: deterministic metrics diverged"
        );
    }
}

/// Lockstep differential: step a scan session and an incremental session
/// side by side and require byte-identical serialized checkpoints at
/// *every* round boundary. The checkpoint embeds the RNG state, so this
/// pins the tie-break draw streams round by round — any divergence in
/// draw count or draw order between the tournament tree's era replay and
/// the reference selection scan would surface at the first boundary it
/// affects, not just in final outputs. The checkpoint's two accumulated
/// timing fields are zeroed before comparison: they record real elapsed
/// time, the one thing two separately-executing runs can never share.
#[test]
fn lockstep_checkpoints_are_byte_identical_every_round() {
    fn timeless_bytes(session: &Session) -> Vec<u8> {
        let mut checkpoint = session.checkpoint();
        checkpoint.cpu_time = std::time::Duration::ZERO;
        checkpoint.wall_time = std::time::Duration::ZERO;
        checkpoint.to_bytes()
    }
    for mode in [ClusterMode::Loose, ClusterMode::Tight] {
        let mut scan = SixGen::new(seeds(), config(mode, true)).session();
        let mut incremental = SixGen::new(seeds(), config(mode, false)).session();
        let mut round = 0u64;
        loop {
            assert_eq!(
                timeless_bytes(&scan),
                timeless_bytes(&incremental),
                "{mode:?}: checkpoints diverged at round boundary {round}"
            );
            let step = scan.step();
            assert_eq!(
                step,
                incremental.step(),
                "{mode:?}: step outcome diverged at round {round}"
            );
            round += 1;
            if matches!(step, Step::Done(_)) {
                break;
            }
        }
        assert!(round > 5, "workload must be multi-round");
    }
}

/// Cross-mode resume: a checkpoint taken under either implementation
/// resumes under the other and still reproduces the uninterrupted run
/// byte for byte. `scan_round` is deliberately not part of the resume
/// fingerprint — the checkpoint format is implementation-agnostic, and
/// the incremental structures rebuild deterministically from it.
#[test]
fn checkpoints_resume_across_implementations() {
    for mode in [ClusterMode::Loose, ClusterMode::Tight] {
        let baseline = SixGen::new(seeds(), config(mode, false)).run();
        let total_rounds = baseline.stats.rounds;
        assert!(total_rounds > 5, "workload must be multi-round");
        // Both handover directions at every boundary: the resumed side
        // must rebuild (or drop) the incremental state mid-run and land
        // on the identical remaining trajectory.
        for (from_scan, to_scan) in [(true, false), (false, true)] {
            for k in (0..total_rounds).step_by(2) {
                let mut session = SixGen::new(seeds(), config(mode, from_scan)).session();
                for _ in 0..k {
                    assert_eq!(session.step(), Step::Grew, "boundary {k} not reachable");
                }
                let bytes = session.checkpoint().to_bytes();
                drop(session);
                let checkpoint = EngineCheckpoint::from_bytes(&bytes).unwrap();
                let resumed = Session::resume(checkpoint, config(mode, to_scan))
                    .unwrap()
                    .run();
                assert_same_outcome(
                    &baseline,
                    &resumed,
                    &format!("{mode:?} scan={from_scan}->{to_scan} @{k}"),
                );
            }
        }
    }
}
