//! Property tests for the scanner-integrated feedback loop.

use proptest::prelude::*;
use sixgen_addr::{NybbleAddr, Prefix};
use sixgen_core::{adaptive_scan, AdaptiveConfig};
use std::cell::RefCell;
use std::collections::HashSet;

/// A deterministic toy responder: hosts plus an optional aliased /96.
#[derive(Debug, Clone)]
struct Toy {
    hosts: HashSet<NybbleAddr>,
    aliased: Option<Prefix>,
}

impl Toy {
    fn responds(&self, a: NybbleAddr) -> bool {
        self.aliased.map(|p| p.contains(a)).unwrap_or(false) || self.hosts.contains(&a)
    }
}

fn arb_world() -> impl Strategy<Value = (Toy, Vec<NybbleAddr>)> {
    (
        prop::collection::vec((0u8..4, 0u16..2048), 2..80),
        any::<bool>(),
    )
        .prop_map(|(pairs, with_alias)| {
            let base = 0x2001_0db8_0000_0000_0000_0000_0000_0000u128;
            let hosts: HashSet<NybbleAddr> = pairs
                .iter()
                .map(|&(subnet, host)| {
                    NybbleAddr::from_bits(base | ((subnet as u128) << 64) | host as u128)
                })
                .collect();
            let aliased = with_alias.then(|| "2001:db8:0:1::/96".parse().unwrap());
            let seeds: Vec<NybbleAddr> = hosts.iter().copied().take(hosts.len() / 2 + 1).collect();
            (Toy { hosts, aliased }, seeds)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn probe_budget_is_exact_upper_bound((toy, seeds) in arb_world(), budget in 1u64..4000) {
        let sent = RefCell::new(0u64);
        let outcome = adaptive_scan(
            seeds,
            &AdaptiveConfig { budget, ..AdaptiveConfig::default() },
            |a| {
                *sent.borrow_mut() += 1;
                toy.responds(a)
            },
        );
        prop_assert_eq!(outcome.probes_used, *sent.borrow());
        prop_assert!(outcome.probes_used <= budget);
    }

    #[test]
    fn no_duplicate_probes((toy, seeds) in arb_world(), budget in 100u64..4000) {
        let seen = RefCell::new(HashSet::new());
        let dupes = RefCell::new(0u64);
        adaptive_scan(
            seeds,
            &AdaptiveConfig { budget, ..AdaptiveConfig::default() },
            |a| {
                if !seen.borrow_mut().insert(a) {
                    *dupes.borrow_mut() += 1;
                }
                toy.responds(a)
            },
        );
        prop_assert_eq!(*dupes.borrow(), 0u64);
    }

    #[test]
    fn hits_are_real_and_unaliased((toy, seeds) in arb_world(), budget in 100u64..4000) {
        let outcome = adaptive_scan(
            seeds,
            &AdaptiveConfig { budget, ..AdaptiveConfig::default() },
            |a| toy.responds(a),
        );
        for hit in &outcome.hits {
            prop_assert!(toy.responds(*hit), "phantom hit {hit}");
        }
        // Hits are unique.
        let uniq: HashSet<_> = outcome.hits.iter().collect();
        prop_assert_eq!(uniq.len(), outcome.hits.len());
        // Region accounting is internally consistent.
        let region_probes: u64 = outcome.regions.iter().map(|r| r.probes).sum();
        prop_assert!(region_probes <= outcome.probes_used);
    }

    #[test]
    fn deterministic_under_fixed_seed((toy, seeds) in arb_world(), budget in 100u64..2000) {
        let run = || {
            adaptive_scan(
                seeds.clone(),
                &AdaptiveConfig { budget, rng_seed: 7, ..AdaptiveConfig::default() },
                |a| toy.responds(a),
            )
        };
        let a = run();
        let b = run();
        prop_assert_eq!(a.hits, b.hits);
        prop_assert_eq!(a.probes_used, b.probes_used);
        prop_assert_eq!(a.growths, b.growths);
    }
}
