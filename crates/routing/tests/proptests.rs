//! Property tests: the trie-based LPM must agree with a naive linear scan.

use proptest::prelude::*;
use sixgen_addr::{NybbleAddr, Prefix};
use sixgen_routing::PrefixTable;

fn arb_prefix() -> impl Strategy<Value = Prefix> {
    (any::<u128>(), 0u8..=128).prop_map(|(bits, len)| Prefix::new(NybbleAddr::from_bits(bits), len))
}

/// Prefixes drawn from a narrow pool so lookups actually hit nested routes.
fn arb_clustered_prefix() -> impl Strategy<Value = Prefix> {
    (0u8..4, 8u8..=64).prop_map(|(net, len)| {
        let bits = 0x2001_0db8_0000_0000_0000_0000_0000_0000u128 | ((net as u128) << 88);
        Prefix::new(NybbleAddr::from_bits(bits), len)
    })
}

fn naive_lpm(routes: &[(Prefix, u32)], addr: NybbleAddr) -> Option<u32> {
    routes
        .iter()
        .filter(|(p, _)| p.contains(addr))
        .max_by_key(|(p, _)| p.len())
        .map(|(_, asn)| *asn)
}

proptest! {
    #[test]
    fn trie_matches_naive_scan(
        routes in prop::collection::vec((arb_clustered_prefix(), any::<u32>()), 0..40),
        probes in prop::collection::vec(any::<u128>(), 0..40),
    ) {
        // Deduplicate prefixes, keeping the *last* origin (insert replaces).
        let mut effective: Vec<(Prefix, u32)> = Vec::new();
        for (p, asn) in &routes {
            if let Some(slot) = effective.iter_mut().find(|(q, _)| q == p) {
                slot.1 = *asn;
            } else {
                effective.push((*p, *asn));
            }
        }
        let table = PrefixTable::from_routes(routes.iter().copied());
        prop_assert_eq!(table.len(), effective.len());
        // Probe clustered addresses (likely hits) and random ones.
        let clustered = probes.iter().map(|&bits| {
            NybbleAddr::from_bits(0x2001_0db8_0000_0000_0000_0000_0000_0000u128 | (bits >> 40))
        });
        let random = probes.iter().map(|&bits| NybbleAddr::from_bits(bits));
        for addr in clustered.chain(random) {
            prop_assert_eq!(
                table.lookup(addr).map(|e| e.asn),
                naive_lpm(&effective, addr),
                "lookup mismatch for {}", addr
            );
        }
    }

    #[test]
    fn random_prefixes_roundtrip_lookup(route in arb_prefix(), asn in any::<u32>()) {
        let mut table = PrefixTable::new();
        table.insert(route, asn);
        // The network address itself always matches its own prefix.
        prop_assert_eq!(table.lookup(route.network()).map(|e| e.asn), Some(asn));
    }

    #[test]
    fn grouping_partitions_input(
        routes in prop::collection::vec((arb_clustered_prefix(), any::<u32>()), 1..20),
        probes in prop::collection::vec(any::<u64>(), 0..60),
    ) {
        let table = PrefixTable::from_routes(routes);
        let addrs: Vec<NybbleAddr> = probes
            .iter()
            .map(|&x| NybbleAddr::from_bits(
                0x2001_0db8_0000_0000_0000_0000_0000_0000u128 | x as u128 | ((x as u128 & 0xF) << 88),
            ))
            .collect();
        let (grouped, unrouted) = table.group_by_prefix(addrs.iter().copied());
        let total: usize = grouped.values().map(|v| v.len()).sum::<usize>() + unrouted.len();
        prop_assert_eq!(total, addrs.len(), "grouping must partition the input");
        for (prefix, members) in &grouped {
            for m in members {
                prop_assert!(prefix.contains(*m));
                // And the prefix is the longest match.
                prop_assert_eq!(table.routed_prefix(*m).unwrap(), *prefix);
            }
        }
        for u in &unrouted {
            prop_assert!(table.lookup(*u).is_none());
        }
    }
}
