//! # sixgen-routing — BGP routed-prefix substrate
//!
//! The paper's experiments operate per *routed prefix*: seeds are grouped
//! "by BGP origin routed prefix" using RouteViews prefix-to-AS mappings
//! (§6.1), and 6Gen runs independently on each group. This crate provides
//! that substrate:
//!
//! * [`PrefixTable`] — a longest-prefix-match table over IPv6 (a binary
//!   trie, bit-granular because announced prefixes are not always /64- or
//!   nybble-aligned, §4.2),
//! * [`RouteEntry`] — one announcement: prefix → origin ASN,
//! * [`AsRegistry`] — ASN → AS-name metadata (for Table 1-style reports),
//! * seed grouping by routed prefix and by origin AS.
//!
//! ```
//! use sixgen_routing::PrefixTable;
//!
//! let mut table = PrefixTable::new();
//! table.insert("2001:db8::/32".parse().unwrap(), 64496);
//! table.insert("2001:db8:f::/48".parse().unwrap(), 64497);
//!
//! let hit = table.lookup("2001:db8:f::1".parse().unwrap()).unwrap();
//! assert_eq!(hit.asn, 64497, "longest match wins");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use sixgen_addr::{NybbleAddr, Prefix};
use std::collections::HashMap;

/// One route announcement: a prefix originated by an AS.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouteEntry {
    /// The announced prefix.
    pub prefix: Prefix,
    /// The origin AS number.
    pub asn: u32,
}

/// A longest-prefix-match table over IPv6 prefixes.
///
/// Implemented as a binary (per-bit) trie: inserts and lookups are O(128)
/// regardless of table size, and arbitrary (non-aligned) prefix lengths are
/// exact. Inserting the same prefix twice replaces the previous entry.
#[derive(Debug, Clone)]
pub struct PrefixTable {
    nodes: Vec<TrieNode>,
    entries: Vec<RouteEntry>,
}

#[derive(Debug, Clone, Default)]
struct TrieNode {
    children: [Option<u32>; 2],
    /// Index into `entries` if a prefix terminates here.
    entry: Option<u32>,
}

impl Default for PrefixTable {
    fn default() -> Self {
        Self::new()
    }
}

impl PrefixTable {
    /// Creates an empty table.
    pub fn new() -> PrefixTable {
        PrefixTable {
            nodes: vec![TrieNode::default()],
            entries: Vec::new(),
        }
    }

    /// Builds a table from `(prefix, asn)` pairs.
    pub fn from_routes(routes: impl IntoIterator<Item = (Prefix, u32)>) -> PrefixTable {
        let mut table = PrefixTable::new();
        for (prefix, asn) in routes {
            table.insert(prefix, asn);
        }
        table
    }

    /// Number of announced prefixes.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if no prefix is announced.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Bit `depth` of `addr` (0 = most significant).
    #[inline]
    fn bit(addr: NybbleAddr, depth: u8) -> usize {
        ((addr.bits() >> (127 - depth as u32)) & 1) as usize
    }

    /// Announces `prefix` with origin `asn`. Returns the previous origin if
    /// the prefix was already announced.
    pub fn insert(&mut self, prefix: Prefix, asn: u32) -> Option<u32> {
        let mut node: u32 = 0;
        for depth in 0..prefix.len() {
            let b = Self::bit(prefix.network(), depth);
            node = match self.nodes[node as usize].children[b] {
                Some(c) => c,
                None => {
                    let id = self.nodes.len() as u32;
                    self.nodes.push(TrieNode::default());
                    self.nodes[node as usize].children[b] = Some(id);
                    id
                }
            };
        }
        match self.nodes[node as usize].entry {
            Some(e) => {
                let old = self.entries[e as usize].asn;
                self.entries[e as usize].asn = asn;
                Some(old)
            }
            None => {
                self.nodes[node as usize].entry = Some(self.entries.len() as u32);
                self.entries.push(RouteEntry { prefix, asn });
                None
            }
        }
    }

    /// Longest-prefix-match lookup.
    pub fn lookup(&self, addr: NybbleAddr) -> Option<&RouteEntry> {
        let mut node: u32 = 0;
        let mut best: Option<&RouteEntry> = None;
        for depth in 0..=128u16 {
            if let Some(e) = self.nodes[node as usize].entry {
                best = Some(&self.entries[e as usize]);
            }
            if depth == 128 {
                break;
            }
            match self.nodes[node as usize].children[Self::bit(addr, depth as u8)] {
                Some(c) => node = c,
                None => break,
            }
        }
        best
    }

    /// The routed prefix containing `addr`, if any.
    pub fn routed_prefix(&self, addr: NybbleAddr) -> Option<Prefix> {
        self.lookup(addr).map(|e| e.prefix)
    }

    /// Iterates all announcements (in insertion order).
    pub fn iter(&self) -> impl Iterator<Item = &RouteEntry> {
        self.entries.iter()
    }

    /// Groups addresses by their routed prefix (§6.1: "We grouped seeds by
    /// BGP origin routed prefix"). Unrouted addresses are returned
    /// separately — a TGA typically skips them.
    pub fn group_by_prefix(
        &self,
        addrs: impl IntoIterator<Item = NybbleAddr>,
    ) -> (HashMap<Prefix, Vec<NybbleAddr>>, Vec<NybbleAddr>) {
        let mut grouped: HashMap<Prefix, Vec<NybbleAddr>> = HashMap::new();
        let mut unrouted = Vec::new();
        for addr in addrs {
            match self.routed_prefix(addr) {
                Some(prefix) => grouped.entry(prefix).or_default().push(addr),
                None => unrouted.push(addr),
            }
        }
        (grouped, unrouted)
    }

    /// Groups addresses by origin AS. Unrouted addresses are dropped.
    pub fn group_by_asn(
        &self,
        addrs: impl IntoIterator<Item = NybbleAddr>,
    ) -> HashMap<u32, Vec<NybbleAddr>> {
        let mut grouped: HashMap<u32, Vec<NybbleAddr>> = HashMap::new();
        for addr in addrs {
            if let Some(entry) = self.lookup(addr) {
                grouped.entry(entry.asn).or_default().push(addr);
            }
        }
        grouped
    }
}

/// AS metadata: number → organization name, for Table 1-style reporting.
#[derive(Debug, Clone, Default)]
pub struct AsRegistry {
    names: HashMap<u32, String>,
}

impl AsRegistry {
    /// Creates an empty registry.
    pub fn new() -> AsRegistry {
        AsRegistry::default()
    }

    /// Builds a registry from `(asn, name)` pairs.
    pub fn from_pairs<N: Into<String>>(pairs: impl IntoIterator<Item = (u32, N)>) -> AsRegistry {
        AsRegistry {
            names: pairs.into_iter().map(|(a, n)| (a, n.into())).collect(),
        }
    }

    /// Registers (or renames) an AS.
    pub fn register(&mut self, asn: u32, name: impl Into<String>) {
        self.names.insert(asn, name.into());
    }

    /// The AS name, or `"AS<asn>"` if unregistered.
    pub fn name(&self, asn: u32) -> String {
        self.names
            .get(&asn)
            .cloned()
            .unwrap_or_else(|| format!("AS{asn}"))
    }

    /// Number of registered ASes.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// `true` if no AS is registered.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(s: &str) -> NybbleAddr {
        s.parse().unwrap()
    }

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    fn table() -> PrefixTable {
        PrefixTable::from_routes([
            (p("2001:db8::/32"), 64496),
            (p("2001:db8:f::/48"), 64497),
            (p("2600::/24"), 64498),
            // Non-aligned and longer-than-64 prefixes (§4.2).
            (p("2a00:8000::/17"), 64499),
            (p("2001:db8:1:2:3::/80"), 64500),
        ])
    }

    #[test]
    fn longest_prefix_match() {
        let t = table();
        assert_eq!(t.lookup(a("2001:db8::1")).unwrap().asn, 64496);
        assert_eq!(t.lookup(a("2001:db8:f::1")).unwrap().asn, 64497);
        assert_eq!(t.lookup(a("2001:db8:1:2:3::9")).unwrap().asn, 64500);
        assert_eq!(t.lookup(a("2001:db8:1:2:4::9")).unwrap().asn, 64496);
        assert_eq!(t.lookup(a("2600::1")).unwrap().asn, 64498);
        assert!(t.lookup(a("fe80::1")).is_none());
    }

    #[test]
    fn non_aligned_prefix_boundaries() {
        let t = table();
        // /17: 2a00:8000::/17 covers 2a00:8000:: .. 2a00:ffff:…
        assert_eq!(t.lookup(a("2a00:8000::1")).unwrap().asn, 64499);
        assert_eq!(t.lookup(a("2a00:ffff::1")).unwrap().asn, 64499);
        assert!(t.lookup(a("2a00:7fff::1")).is_none());
        assert!(t.lookup(a("2a01::1")).is_none());
    }

    #[test]
    fn default_route() {
        let mut t = table();
        t.insert(p("::/0"), 1);
        assert_eq!(t.lookup(a("fe80::1")).unwrap().asn, 1);
        // More specific still wins.
        assert_eq!(t.lookup(a("2001:db8::1")).unwrap().asn, 64496);
    }

    #[test]
    fn reinsert_replaces_and_reports_old() {
        let mut t = table();
        assert_eq!(t.insert(p("2001:db8::/32"), 7), Some(64496));
        assert_eq!(t.lookup(a("2001:db8::1")).unwrap().asn, 7);
        assert_eq!(t.len(), 5, "replacement does not add an entry");
    }

    #[test]
    fn host_route() {
        let mut t = PrefixTable::new();
        t.insert(p("2001:db8::5/128"), 42);
        assert_eq!(t.lookup(a("2001:db8::5")).unwrap().asn, 42);
        assert!(t.lookup(a("2001:db8::6")).is_none());
    }

    #[test]
    fn group_by_prefix_and_unrouted() {
        let t = table();
        let seeds = vec![
            a("2001:db8::1"),
            a("2001:db8::2"),
            a("2001:db8:f::1"),
            a("fe80::1"),
        ];
        let (grouped, unrouted) = t.group_by_prefix(seeds);
        assert_eq!(grouped[&p("2001:db8::/32")].len(), 2);
        assert_eq!(grouped[&p("2001:db8:f::/48")].len(), 1);
        assert_eq!(unrouted, vec![a("fe80::1")]);
    }

    #[test]
    fn group_by_asn() {
        let t = table();
        let grouped = t.group_by_asn([a("2001:db8::1"), a("2001:db8:f::1"), a("fe80::1")]);
        assert_eq!(grouped[&64496].len(), 1);
        assert_eq!(grouped[&64497].len(), 1);
        assert_eq!(grouped.len(), 2);
    }

    #[test]
    fn as_registry_names() {
        let mut reg = AsRegistry::from_pairs([(20940u32, "Akamai"), (16509, "Amazon")]);
        assert_eq!(reg.name(20940), "Akamai");
        assert_eq!(reg.name(99999), "AS99999");
        reg.register(99999, "Example");
        assert_eq!(reg.name(99999), "Example");
        assert_eq!(reg.len(), 3);
        assert!(!reg.is_empty());
    }

    #[test]
    fn empty_table() {
        let t = PrefixTable::new();
        assert!(t.is_empty());
        assert!(t.lookup(a("::1")).is_none());
        let (grouped, unrouted) = t.group_by_prefix([a("::1")]);
        assert!(grouped.is_empty());
        assert_eq!(unrouted.len(), 1);
    }
}
