//! Numeric figure series, printable and exportable as TSV.

use std::io::{self, Write};
use std::path::Path;

/// A named set of columns of equal length — the data behind one figure.
///
/// ```
/// use sixgen_report::Series;
/// let mut s = Series::new("fig4", vec!["budget", "hits", "dealiased"]);
/// s.push(vec![100_000.0, 5.2e6, 4.1e4]);
/// s.push(vec![200_000.0, 9.9e6, 6.0e4]);
/// assert_eq!(s.len(), 2);
/// assert!(s.to_tsv().starts_with("budget\thits\tdealiased\n"));
/// ```
#[derive(Debug, Clone)]
pub struct Series {
    name: String,
    columns: Vec<String>,
    rows: Vec<Vec<f64>>,
}

impl Series {
    /// Creates an empty series with named columns.
    pub fn new(name: impl Into<String>, columns: Vec<impl Into<String>>) -> Series {
        Series {
            name: name.into(),
            columns: columns.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// The series name (used for file naming).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Column labels.
    pub fn columns(&self) -> &[String] {
        &self.columns
    }

    /// Appends one row.
    ///
    /// # Panics
    /// Panics if the value count differs from the column count.
    pub fn push(&mut self, row: Vec<f64>) -> &mut Self {
        assert_eq!(row.len(), self.columns.len(), "row width mismatch");
        self.rows.push(row);
        self
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` if no rows were pushed.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The raw rows.
    pub fn rows(&self) -> &[Vec<f64>] {
        &self.rows
    }

    /// One column's values by label.
    pub fn column(&self, label: &str) -> Option<Vec<f64>> {
        let idx = self.columns.iter().position(|c| c == label)?;
        Some(self.rows.iter().map(|r| r[idx]).collect())
    }

    /// Tab-separated export: a header line then one line per row. Numbers
    /// print in shortest-roundtrip form.
    pub fn to_tsv(&self) -> String {
        let mut out = self.columns.join("\t");
        out.push('\n');
        for row in &self.rows {
            let cells: Vec<String> = row.iter().map(|v| format!("{v}")).collect();
            out.push_str(&cells.join("\t"));
            out.push('\n');
        }
        out
    }

    /// Writes the TSV to a writer.
    pub fn write_tsv<W: Write>(&self, mut writer: W) -> io::Result<()> {
        writer.write_all(self.to_tsv().as_bytes())
    }

    /// Writes `<dir>/<name>.tsv`, creating the directory if needed, and
    /// returns the path written.
    pub fn write_tsv_file(&self, dir: impl AsRef<Path>) -> io::Result<std::path::PathBuf> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.tsv", self.name));
        std::fs::write(&path, self.to_tsv())?;
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tsv_format() {
        let mut s = Series::new("test", vec!["x", "y"]);
        s.push(vec![1.0, 2.5]);
        s.push(vec![3.0, 4.0]);
        assert_eq!(s.to_tsv(), "x\ty\n1\t2.5\n3\t4\n");
        assert_eq!(s.name(), "test");
        assert_eq!(s.columns(), &["x".to_owned(), "y".to_owned()]);
        assert_eq!(s.rows().len(), 2);
        assert!(!s.is_empty());
    }

    #[test]
    fn column_extraction() {
        let mut s = Series::new("t", vec!["a", "b"]);
        s.push(vec![1.0, 10.0]);
        s.push(vec![2.0, 20.0]);
        assert_eq!(s.column("b"), Some(vec![10.0, 20.0]));
        assert_eq!(s.column("missing"), None);
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join(format!("sixgen-series-{}", std::process::id()));
        let mut s = Series::new("fig-test", vec!["x"]);
        s.push(vec![42.0]);
        let path = s.write_tsv_file(&dir).unwrap();
        assert!(path.ends_with("fig-test.tsv"));
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "x\n42\n");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn width_mismatch_rejected() {
        Series::new("t", vec!["a", "b"]).push(vec![1.0]);
    }
}
