//! Empirical CDFs and quantiles.

/// An empirical cumulative distribution over `f64` samples.
#[derive(Debug, Clone)]
pub struct Cdf {
    sorted: Vec<f64>,
}

impl Cdf {
    /// Builds a CDF from samples (NaNs are rejected).
    ///
    /// # Panics
    /// Panics if any sample is NaN.
    pub fn new(mut samples: Vec<f64>) -> Cdf {
        assert!(
            samples.iter().all(|x| !x.is_nan()),
            "CDF samples must not be NaN"
        );
        samples.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        Cdf { sorted: samples }
    }

    /// Builds a CDF from integer counts.
    pub fn from_counts(counts: impl IntoIterator<Item = u64>) -> Cdf {
        Cdf::new(counts.into_iter().map(|c| c as f64).collect())
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// `true` if there are no samples.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// The fraction of samples ≤ `x` (the CDF evaluated at `x`).
    pub fn at(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let count = self.sorted.partition_point(|&v| v <= x);
        count as f64 / self.sorted.len() as f64
    }

    /// The `q`-quantile (0 ≤ q ≤ 1), by the nearest-rank method.
    ///
    /// # Panics
    /// Panics if the CDF is empty or `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!(!self.sorted.is_empty(), "quantile of empty CDF");
        assert!((0.0..=1.0).contains(&q), "quantile order out of range");
        let rank = ((q * self.sorted.len() as f64).ceil() as usize).clamp(1, self.sorted.len());
        self.sorted[rank - 1]
    }

    /// The distinct `(value, cumulative_fraction)` steps — the points to
    /// plot.
    pub fn steps(&self) -> Vec<(f64, f64)> {
        let n = self.sorted.len() as f64;
        let mut out: Vec<(f64, f64)> = Vec::new();
        for (i, &v) in self.sorted.iter().enumerate() {
            let frac = (i + 1) as f64 / n;
            match out.last_mut() {
                Some(last) if last.0 == v => last.1 = frac,
                _ => out.push((v, frac)),
            }
        }
        out
    }
}

/// Nearest-rank quantiles of a `u64` sample set; convenience for
/// distribution rows like Figure 7's. Returns values at the given orders.
pub fn quantiles(samples: &[u64], orders: &[f64]) -> Vec<u64> {
    let cdf = Cdf::from_counts(samples.iter().copied());
    orders.iter().map(|&q| cdf.quantile(q) as u64).collect()
}

/// The median by nearest rank.
pub fn median(samples: &[u64]) -> u64 {
    quantiles(samples, &[0.5])[0]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cdf_at_values() {
        let cdf = Cdf::from_counts([1, 2, 2, 3, 10]);
        assert_eq!(cdf.len(), 5);
        assert_eq!(cdf.at(0.0), 0.0);
        assert_eq!(cdf.at(1.0), 0.2);
        assert_eq!(cdf.at(2.0), 0.6);
        assert_eq!(cdf.at(9.9), 0.8);
        assert_eq!(cdf.at(10.0), 1.0);
        assert_eq!(cdf.at(1e9), 1.0);
    }

    #[test]
    fn cdf_empty() {
        let cdf = Cdf::new(vec![]);
        assert!(cdf.is_empty());
        assert_eq!(cdf.at(5.0), 0.0);
    }

    #[test]
    fn quantiles_nearest_rank() {
        let cdf = Cdf::from_counts(1..=100u64);
        assert_eq!(cdf.quantile(0.5), 50.0);
        assert_eq!(cdf.quantile(0.25), 25.0);
        assert_eq!(cdf.quantile(1.0), 100.0);
        assert_eq!(cdf.quantile(0.0), 1.0);
        assert_eq!(cdf.quantile(0.001), 1.0);
    }

    #[test]
    fn steps_deduplicate_values() {
        let cdf = Cdf::from_counts([5, 5, 5, 7]);
        assert_eq!(cdf.steps(), vec![(5.0, 0.75), (7.0, 1.0)]);
    }

    #[test]
    fn helper_functions() {
        assert_eq!(median(&[9, 1, 5]), 5);
        assert_eq!(quantiles(&[1, 2, 3, 4], &[0.25, 0.5, 0.75, 1.0]), vec![1, 2, 3, 4]);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_rejected() {
        Cdf::new(vec![1.0, f64::NAN]);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn quantile_of_empty_rejected() {
        Cdf::new(vec![]).quantile(0.5);
    }
}
