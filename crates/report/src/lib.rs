//! # sixgen-report — tables, CDFs, buckets, and figure series
//!
//! Every table and figure in the paper's evaluation reduces to one of a
//! few presentation primitives:
//!
//! * [`TextTable`] — aligned monospace tables (Tables 1a–1c, Table 2);
//! * [`Cdf`] — empirical CDFs (Figures 3 and 5);
//! * [`log_bucket`] / [`bucket_label`] — the power-of-ten seed-count
//!   buckets of Figures 5 and 7;
//! * [`Series`] — named-column numeric series, printable and writable as
//!   TSV so each figure's data can be regenerated and re-plotted
//!   (Figures 2, 4, 6, 8, 9);
//! * [`quantiles`] / [`median`] — distribution summaries (Figure 7's
//!   per-bucket distributions).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cdf;
mod series;
mod table;

pub use cdf::{median, quantiles, Cdf};
pub use series::Series;
pub use table::TextTable;

/// The power-of-ten bucket index of `count`: bucket `k` holds counts in
/// `[10^k, 10^(k+1))`, except bucket 0 which holds `[2, 10)` (the paper
/// buckets prefixes with at least two seeds; a prefix with a single seed
/// cannot cluster). Returns `None` for counts below 2.
pub fn log_bucket(count: u64) -> Option<u32> {
    if count < 2 {
        return None;
    }
    Some((count as f64).log10().floor() as u32)
}

/// Human-readable bucket label matching the paper's legends:
/// `[2; 10)`, `[10; 10^2)`, `[10^2; 10^3)`, …
pub fn bucket_label(bucket: u32) -> String {
    match bucket {
        0 => "[2; 10)".to_owned(),
        1 => "[10; 10^2)".to_owned(),
        k => format!("[10^{}; 10^{})", k, k + 1),
    }
}

/// Formats a count with thousands separators (`1 234 567`), as used in the
/// experiment printouts.
pub fn group_digits(n: u64) -> String {
    let digits = n.to_string();
    let mut out = String::with_capacity(digits.len() + digits.len() / 3);
    let first = digits.len() % 3;
    for (i, c) in digits.chars().enumerate() {
        if i != 0 && (i + 3 - first).is_multiple_of(3) {
            out.push(' ');
        }
        out.push(c);
    }
    out
}

/// Formats a ratio as a percentage with one decimal (`42.0%`).
pub fn percent(part: u64, whole: u64) -> String {
    if whole == 0 {
        return "-".to_owned();
    }
    format!("{:.1}%", part as f64 / whole as f64 * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets() {
        assert_eq!(log_bucket(0), None);
        assert_eq!(log_bucket(1), None);
        assert_eq!(log_bucket(2), Some(0));
        assert_eq!(log_bucket(9), Some(0));
        assert_eq!(log_bucket(10), Some(1));
        assert_eq!(log_bucket(99), Some(1));
        assert_eq!(log_bucket(100), Some(2));
        assert_eq!(log_bucket(12_345), Some(4));
        assert_eq!(log_bucket(99_999), Some(4));
        assert_eq!(log_bucket(100_000), Some(5));
    }

    #[test]
    fn bucket_labels() {
        assert_eq!(bucket_label(0), "[2; 10)");
        assert_eq!(bucket_label(1), "[10; 10^2)");
        assert_eq!(bucket_label(3), "[10^3; 10^4)");
    }

    #[test]
    fn digit_grouping() {
        assert_eq!(group_digits(0), "0");
        assert_eq!(group_digits(999), "999");
        assert_eq!(group_digits(1_000), "1 000");
        assert_eq!(group_digits(56_700_000), "56 700 000");
        assert_eq!(group_digits(100), "100");
        assert_eq!(group_digits(1_234_567), "1 234 567");
    }

    #[test]
    fn percent_formatting() {
        assert_eq!(percent(1, 2), "50.0%");
        assert_eq!(percent(999, 1000), "99.9%");
        assert_eq!(percent(0, 10), "0.0%");
        assert_eq!(percent(5, 0), "-");
    }
}
