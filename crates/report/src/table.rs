//! Aligned monospace tables for Tables 1a–1c, Table 2, and experiment
//! summaries.

/// A simple column-aligned text table.
///
/// ```
/// use sixgen_report::TextTable;
/// let mut t = TextTable::new(vec!["AS Name", "ASN", "% Seeds"]);
/// t.row(vec!["Linode".into(), "63949".into(), "8.6%".into()]);
/// let text = t.render();
/// assert!(text.contains("Linode"));
/// ```
#[derive(Debug, Clone)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new(headers: Vec<impl Into<String>>) -> TextTable {
        TextTable {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    /// Panics if the cell count differs from the header count.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match header width"
        );
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` if no data rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders with two-space column gaps and a dashed header rule. The
    /// first column is left-aligned; the rest are right-aligned (numeric
    /// convention).
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let render_row = |cells: &[String]| -> String {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                let pad = widths[i] - cell.chars().count();
                if i == 0 {
                    line.push_str(cell);
                    if i < cols - 1 {
                        line.push_str(&" ".repeat(pad));
                    }
                } else {
                    line.push_str(&" ".repeat(pad));
                    line.push_str(cell);
                }
            }
            line
        };
        let mut out = String::new();
        out.push_str(&render_row(&self.headers));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&render_row(row));
            out.push('\n');
        }
        out
    }
}

impl core::fmt::Display for TextTable {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(vec!["Name", "Count"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["long-name".into(), "12345".into()]);
        let text = t.render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        // All lines the same width.
        let widths: Vec<usize> = lines.iter().map(|l| l.chars().count()).collect();
        assert!(widths.iter().all(|&w| w == widths[0]), "{text}");
        // Numeric column right-aligned: "1" ends at the same column as
        // "12345".
        assert!(lines[2].ends_with("    1"));
        assert!(lines[3].ends_with("12345"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn display_matches_render() {
        let mut t = TextTable::new(vec!["X"]);
        t.row(vec!["y".into()]);
        assert_eq!(t.to_string(), t.render());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_rejected() {
        TextTable::new(vec!["A", "B"]).row(vec!["only-one".into()]);
    }
}
