//! Property tests for dataset generation and I/O.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sixgen_addr::NybbleAddr;
use sixgen_datasets::io::{
    decode_hitlist_binary, encode_hitlist_binary, read_hitlist, write_hitlist,
};
use sixgen_datasets::{downsample, inverse_kfold, split_groups};
use std::collections::HashSet;

fn arb_addrs() -> impl Strategy<Value = Vec<NybbleAddr>> {
    prop::collection::vec(any::<u128>(), 0..200).prop_map(|mut bits| {
        bits.sort_unstable();
        bits.dedup();
        bits.into_iter().map(NybbleAddr::from_bits).collect()
    })
}

proptest! {
    #[test]
    fn text_hitlist_roundtrips(addrs in arb_addrs()) {
        let mut buf = Vec::new();
        write_hitlist(&mut buf, &addrs).unwrap();
        let back = read_hitlist(&buf[..]).unwrap();
        prop_assert_eq!(back, addrs);
    }

    #[test]
    fn binary_hitlist_roundtrips(addrs in arb_addrs()) {
        let encoded = encode_hitlist_binary(&addrs);
        prop_assert_eq!(encoded.len(), 16 + addrs.len() * 16);
        let back = decode_hitlist_binary(encoded).unwrap();
        prop_assert_eq!(back, addrs);
    }

    #[test]
    fn binary_rejects_any_truncation(addrs in arb_addrs(), cut in any::<usize>()) {
        prop_assume!(!addrs.is_empty());
        let encoded = encode_hitlist_binary(&addrs);
        let cut = cut % (encoded.len() - 1) + 1; // 1..len
        let truncated = encoded.slice(0..encoded.len() - cut);
        prop_assert!(decode_hitlist_binary(truncated).is_err());
    }

    #[test]
    fn split_partitions_exactly(addrs in arb_addrs(), k in 1usize..12, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let groups = split_groups(&addrs, k, &mut rng);
        prop_assert_eq!(groups.len(), k);
        let mut all: Vec<NybbleAddr> = groups.iter().flatten().copied().collect();
        all.sort_unstable();
        let mut expect = addrs.clone();
        expect.sort_unstable();
        prop_assert_eq!(all, expect, "partition must preserve the multiset");
        // Sizes balanced within one.
        let sizes: Vec<usize> = groups.iter().map(|g| g.len()).collect();
        let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
        prop_assert!(max - min <= 1, "{sizes:?}");
    }

    #[test]
    fn inverse_kfold_covers_everything(addrs in arb_addrs(), k in 1usize..8, seed in any::<u64>()) {
        prop_assume!(addrs.len() >= k);
        let mut rng = StdRng::seed_from_u64(seed);
        let groups = split_groups(&addrs, k, &mut rng);
        let folds = inverse_kfold(&groups);
        prop_assert_eq!(folds.len(), k);
        for (train, test) in &folds {
            prop_assert_eq!(train.len() + test.len(), addrs.len());
            let train_set: HashSet<_> = train.iter().collect();
            prop_assert!(test.iter().all(|t| !train_set.contains(t)));
        }
    }

    #[test]
    fn downsample_size_and_subset(addrs in arb_addrs(), fraction in 0.0f64..1.5, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let sample = downsample(&addrs, fraction, &mut rng);
        let want = ((addrs.len() as f64 * fraction).round() as usize).min(addrs.len());
        prop_assert_eq!(sample.len(), want);
        let pool: HashSet<_> = addrs.iter().collect();
        prop_assert!(sample.iter().all(|s| pool.contains(s)));
        let uniq: HashSet<_> = sample.iter().collect();
        prop_assert_eq!(uniq.len(), sample.len(), "without replacement");
    }
}
