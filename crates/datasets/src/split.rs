//! Train/test splitting (§7.1) and seed downsampling (§6.7.2).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use sixgen_addr::NybbleAddr;

/// Splits addresses into `k` random groups of (nearly) equal size — the
/// §7.1 procedure: "we split the addresses into 10 groups at random (each
/// with 1 K addresses)". Sizes differ by at most one when `k` does not
/// divide the input.
///
/// # Panics
/// Panics if `k` is zero.
pub fn split_groups(addrs: &[NybbleAddr], k: usize, rng: &mut StdRng) -> Vec<Vec<NybbleAddr>> {
    assert!(k > 0, "cannot split into zero groups");
    let mut shuffled = addrs.to_vec();
    shuffled.shuffle(rng);
    let mut groups: Vec<Vec<NybbleAddr>> = (0..k).map(|_| Vec::new()).collect();
    for (i, addr) in shuffled.into_iter().enumerate() {
        groups[i % k].push(addr);
    }
    groups
}

/// Inverse k-fold iteration (§7.1: "ran both 6Gen and Entropy/IP on each
/// 10 % sample and validated against the remaining 90 %"): for every
/// group, yields `(train, test)` where `train` is that single group and
/// `test` is the concatenation of all others.
pub fn inverse_kfold(groups: &[Vec<NybbleAddr>]) -> Vec<(Vec<NybbleAddr>, Vec<NybbleAddr>)> {
    (0..groups.len())
        .map(|i| {
            let train = groups[i].clone();
            let test: Vec<NybbleAddr> = groups
                .iter()
                .enumerate()
                .filter(|(j, _)| *j != i)
                .flat_map(|(_, g)| g.iter().copied())
                .collect();
            (train, test)
        })
        .collect()
}

/// Uniform random downsampling without replacement (§6.7.2 runs 6Gen on
/// 1 %, 10 %, and 25 % of the full seed dataset). A fraction ≥ 1.0
/// returns a shuffled copy of the input.
pub fn downsample(addrs: &[NybbleAddr], fraction: f64, rng: &mut StdRng) -> Vec<NybbleAddr> {
    assert!(fraction >= 0.0, "negative fraction");
    let want = ((addrs.len() as f64 * fraction).round() as usize).min(addrs.len());
    let mut shuffled = addrs.to_vec();
    shuffled.shuffle(rng);
    shuffled.truncate(want);
    shuffled
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use std::collections::HashSet;

    fn addrs(n: u32) -> Vec<NybbleAddr> {
        (0..n).map(|i| NybbleAddr::from_bits(i as u128)).collect()
    }

    #[test]
    fn split_partitions_evenly() {
        let input = addrs(100);
        let mut rng = StdRng::seed_from_u64(1);
        let groups = split_groups(&input, 10, &mut rng);
        assert_eq!(groups.len(), 10);
        assert!(groups.iter().all(|g| g.len() == 10));
        let all: HashSet<_> = groups.iter().flatten().collect();
        assert_eq!(all.len(), 100, "no address lost or duplicated");
    }

    #[test]
    fn split_uneven_sizes_differ_by_one() {
        let input = addrs(103);
        let mut rng = StdRng::seed_from_u64(1);
        let groups = split_groups(&input, 10, &mut rng);
        let sizes: Vec<usize> = groups.iter().map(|g| g.len()).collect();
        assert!(sizes.iter().all(|&s| s == 10 || s == 11), "{sizes:?}");
        assert_eq!(sizes.iter().sum::<usize>(), 103);
    }

    #[test]
    fn split_is_random_but_deterministic() {
        let input = addrs(50);
        let g1 = split_groups(&input, 5, &mut StdRng::seed_from_u64(7));
        let g2 = split_groups(&input, 5, &mut StdRng::seed_from_u64(7));
        assert_eq!(g1, g2);
        let g3 = split_groups(&input, 5, &mut StdRng::seed_from_u64(8));
        assert_ne!(g1, g3, "different seed, different split");
    }

    #[test]
    fn inverse_kfold_shapes() {
        let input = addrs(100);
        let mut rng = StdRng::seed_from_u64(1);
        let groups = split_groups(&input, 10, &mut rng);
        let folds = inverse_kfold(&groups);
        assert_eq!(folds.len(), 10);
        for (i, (train, test)) in folds.iter().enumerate() {
            assert_eq!(train.len(), 10, "fold {i}");
            assert_eq!(test.len(), 90, "fold {i}");
            let train_set: HashSet<_> = train.iter().collect();
            assert!(test.iter().all(|t| !train_set.contains(t)), "disjoint");
        }
    }

    #[test]
    fn downsample_fractions() {
        let input = addrs(1000);
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(downsample(&input, 0.01, &mut rng).len(), 10);
        assert_eq!(downsample(&input, 0.10, &mut rng).len(), 100);
        assert_eq!(downsample(&input, 0.25, &mut rng).len(), 250);
        assert_eq!(downsample(&input, 1.0, &mut rng).len(), 1000);
        assert_eq!(downsample(&input, 2.0, &mut rng).len(), 1000);
        assert!(downsample(&input, 0.0, &mut rng).is_empty());
    }

    #[test]
    fn downsample_without_replacement() {
        let input = addrs(100);
        let mut rng = StdRng::seed_from_u64(1);
        let sample = downsample(&input, 0.5, &mut rng);
        let uniq: HashSet<_> = sample.iter().collect();
        assert_eq!(uniq.len(), sample.len());
        let input_set: HashSet<_> = input.iter().collect();
        assert!(sample.iter().all(|s| input_set.contains(s)));
    }

    #[test]
    #[should_panic(expected = "zero groups")]
    fn zero_groups_rejected() {
        split_groups(&addrs(10), 0, &mut StdRng::seed_from_u64(1));
    }
}
