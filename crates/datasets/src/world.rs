//! The default simulated Internet: a stand-in for the Rapid7 FDNS corpus'
//! network population (§6.1, Tables 1a–1c).
//!
//! Design targets, from the paper:
//!
//! * seed share skew like Table 1a (Linode 8.6 %, Amazon 8.1 %, HostEurope
//!   6.6 %, … — no AS dominating);
//! * large-scale aliasing concentrated in a few CDN ASes (Table 1b: Akamai
//!   > half the aliased hits, Amazon over a third; Cloudflare and Mittwald
//!   > aliased at /112 rather than /96 granularity; Amazon 16509 containing
//!   > *both* aliased and honest subnets);
//! * dealiased hits dominated by hosting providers with structured
//!   assignment (Table 1c: Amazon, OVH, Hetzner, HostEurope, …);
//! * a long tail of small networks so per-prefix seed counts span the
//!   buckets of Figures 5 and 7 ([2,10) … [10⁴,10⁵));
//! * churned hosts (once-active addresses that linger in DNS, §6.6).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sixgen_addr::Prefix;
use sixgen_simnet::{
    AliasedRegion, HostKind, HostPopulation, HostScheme, Internet, NetworkSpec, SubnetPlan,
};

/// Parameters for world construction.
#[derive(Debug, Clone)]
pub struct WorldConfig {
    /// Multiplies every population count (1.0 ≈ 40 K active hosts). Use
    /// smaller scales for quick tests, larger for stress runs.
    pub scale: f64,
    /// RNG seed for materialization (host placement, random schemes).
    pub rng_seed: u64,
}

impl Default for WorldConfig {
    fn default() -> Self {
        WorldConfig {
            scale: 1.0,
            rng_seed: 0x706,
        }
    }
}

fn p(s: &str) -> Prefix {
    s.parse().expect("static prefix")
}

/// Scales a base count, keeping at least 2.
fn n(base: usize, scale: f64) -> usize {
    ((base as f64 * scale).round() as usize).max(2)
}

/// One population, briefly.
fn pop(
    scheme: HostScheme,
    subnets: SubnetPlan,
    count: usize,
    churned: usize,
    kind: HostKind,
) -> HostPopulation {
    HostPopulation {
        scheme,
        subnets,
        count,
        churned,
        kind,
    }
}

/// Builds the network specifications of the default world.
pub fn world_specs(config: &WorldConfig) -> Vec<NetworkSpec> {
    let s = config.scale;
    let seq = HostScheme::LowByteSequential;
    let mut specs = vec![
        // ------- Hosting providers: structured, discoverable (Table 1c) --
        NetworkSpec {
            prefix: p("2600:3c00::/32"),
            asn: 63949,
            name: "Linode".into(),
            populations: vec![
                pop(seq.clone(), SubnetPlan::Sequential { count: 40 }, n(3400, s), n(400, s), HostKind::Web),
                pop(HostScheme::PortEmbedded { port: 80 }, SubnetPlan::Single(1), n(300, s), 0, HostKind::Web),
            ],
            aliased: vec![],
            ports: vec![80],
        },
        // Amazon 16509: honest subnets *and* aliased subnets (§6.6 notes
        // AS-level alias filtering is too coarse for exactly this reason).
        NetworkSpec {
            prefix: p("2600:9000::/32"),
            asn: 16509,
            name: "Amazon".into(),
            populations: vec![
                // Honest subnets (group 3 values 0..29): Table 1c's
                // dealiased-hit leader.
                pop(HostScheme::Ipv4Embedded { base: [52, 84, 0, 10] }, SubnetPlan::Sequential { count: 30 }, n(2000, s), n(250, s), HostKind::Web),
                // Seeds inside the aliased 2600:9000:a:11xx::/56.
                pop(HostScheme::LowByteRandom { nybbles: 4 }, SubnetPlan::Single(0xa_11a5), n(1200, s), 0, HostKind::Web),
                // Seeds inside the aliased 2600:9000:5300::/48.
                pop(HostScheme::LowByteRandom { nybbles: 4 }, SubnetPlan::Single(0x5300_0000), n(150, s), 0, HostKind::Web),
            ],
            aliased: vec![
                AliasedRegion { prefix: p("2600:9000:a:1100::/56"), ports: vec![80] },
                AliasedRegion { prefix: p("2600:9000:5300::/48"), ports: vec![80] },
            ],
            ports: vec![80],
        },
        // Amazon's second routed prefix: pure CDN-style aliased space, so
        // the AS absorbs nearly two prefixes' budgets in aliased hits
        // (Table 1b: Amazon ≈ 36 %).
        NetworkSpec {
            prefix: p("2600:9001::/32"),
            asn: 16509,
            name: "Amazon".into(),
            populations: vec![pop(HostScheme::LowByteRandom { nybbles: 5 }, SubnetPlan::Sequential { count: 5 }, n(1300, s), 0, HostKind::Web)],
            aliased: vec![AliasedRegion { prefix: p("2600:9001::/48"), ports: vec![80] }],
            ports: vec![80],
        },
        NetworkSpec {
            prefix: p("2600:1f00::/32"),
            asn: 14618,
            name: "Amazon-14618".into(),
            populations: vec![pop(seq.clone(), SubnetPlan::Sequential { count: 60 }, n(1500, s), n(150, s), HostKind::Web)],
            aliased: vec![],
            ports: vec![80],
        },
        NetworkSpec {
            prefix: p("2a01:488::/32"),
            asn: 20773,
            name: "HostEurope".into(),
            populations: vec![pop(seq.clone(), SubnetPlan::Sequential { count: 500 }, n(2700, s), n(300, s), HostKind::Web)],
            aliased: vec![],
            ports: vec![80],
        },
        // DTAG: a big ISP with privacy addresses. Consumer hosts rotate
        // their RFC 4941 identifiers, so most DNS-visible seeds are stale:
        // lots of seeds, almost nothing discoverable or even rediscoverable.
        NetworkSpec {
            prefix: p("2003::/19"),
            asn: 3320,
            name: "DTAG".into(),
            populations: vec![pop(HostScheme::PrivacyRandom, SubnetPlan::RandomSparse { count: 2000 }, n(1200, s), n(3200, s), HostKind::Web)],
            aliased: vec![],
            ports: vec![80],
        },
        NetworkSpec {
            prefix: p("2a02:2f8::/32"),
            asn: 12824,
            name: "home.pl".into(),
            populations: vec![pop(HostScheme::PortEmbedded { port: 80 }, SubnetPlan::Sequential { count: 300 }, n(2200, s), n(200, s), HostKind::Web)],
            aliased: vec![],
            ports: vec![80],
        },
        // Masterhost: mostly honest, small aliased /64 (1% of aliased hits).
        NetworkSpec {
            prefix: p("2a00:15f8::/32"),
            asn: 25532,
            name: "Masterhost".into(),
            populations: vec![
                pop(seq.clone(), SubnetPlan::Sequential { count: 120 }, n(2100, s), n(250, s), HostKind::Web),
                // A handful of seeds inside the one aliased /64 (≈1 % of
                // aliased hits in Table 1b).
                pop(HostScheme::LowByteRandom { nybbles: 4 }, SubnetPlan::Single(0xdead), n(120, s), 0, HostKind::Web),
            ],
            aliased: vec![AliasedRegion { prefix: p("2a00:15f8:0:dead::/64"), ports: vec![80] }],
            ports: vec![80],
        },
        NetworkSpec {
            prefix: p("2001:470::/32"),
            asn: 6939,
            name: "Hurricane".into(),
            populations: vec![
                pop(HostScheme::Eui64 { oui: [0x00, 0x1b, 0x21] }, SubnetPlan::Sequential { count: 800 }, n(1500, s), n(150, s), HostKind::Router),
                pop(HostScheme::Wordy, SubnetPlan::Single(2), n(300, s), 0, HostKind::Web),
            ],
            aliased: vec![],
            ports: vec![80],
        },
        // Cloudflare: aliased at /112 granularity (§6.2's manual finding).
        NetworkSpec {
            prefix: p("2606:4700::/32"),
            asn: 13335,
            name: "Cloudflare".into(),
            populations: vec![pop(HostScheme::LowByteRandom { nybbles: 3 }, SubnetPlan::Single(0), n(1500, s), 0, HostKind::Web)],
            aliased: vec![
                // The population's own /112 plus neighbours: the whole AS
                // aliases at /112 granularity, invisible to the /96 test.
                AliasedRegion { prefix: p("2606:4700::/112"), ports: vec![80] },
                AliasedRegion { prefix: p("2606:4700::1:0/112"), ports: vec![80] },
                AliasedRegion { prefix: p("2606:4700::2:0/112"), ports: vec![80] },
                AliasedRegion { prefix: p("2606:4700::3:0/112"), ports: vec![80] },
            ],
            ports: vec![80],
        },
        NetworkSpec {
            prefix: p("2a03:f80::/32"),
            asn: 47490,
            name: "TuxBox".into(),
            populations: vec![pop(seq.clone(), SubnetPlan::Single(0), n(1200, s), n(100, s), HostKind::Web)],
            aliased: vec![],
            ports: vec![80],
        },
        NetworkSpec {
            prefix: p("2001:8d8::/32"),
            asn: 8560,
            name: "OneAndOne".into(),
            populations: vec![pop(seq.clone(), SubnetPlan::Sequential { count: 250 }, n(1000, s), n(120, s), HostKind::Web)],
            aliased: vec![],
            ports: vec![80],
        },
        NetworkSpec {
            prefix: p("2001:41d0::/32"),
            asn: 16276,
            name: "OVH".into(),
            populations: vec![pop(seq.clone(), SubnetPlan::Strided { count: 300, stride: 0x1_0000 }, n(2300, s), n(200, s), HostKind::Web)],
            aliased: vec![],
            ports: vec![80],
        },
        NetworkSpec {
            prefix: p("2a01:4f8::/32"),
            asn: 24940,
            name: "Hetzner".into(),
            populations: vec![pop(HostScheme::Ipv4Embedded { base: [88, 198, 0, 5] }, SubnetPlan::Strided { count: 200, stride: 0x100 }, n(1900, s), n(150, s), HostKind::Web)],
            aliased: vec![],
            ports: vec![80],
        },
        NetworkSpec {
            prefix: p("2a00:6800::/34"),
            asn: 25560,
            name: "RH-TEC".into(),
            populations: vec![pop(seq.clone(), SubnetPlan::Sequential { count: 90 }, n(1100, s), n(80, s), HostKind::Web)],
            aliased: vec![],
            ports: vec![80],
        },
        NetworkSpec {
            prefix: p("2a02:748::/32"),
            asn: 25234,
            name: "Globe".into(),
            populations: vec![pop(HostScheme::PortEmbedded { port: 443 }, SubnetPlan::Strided { count: 150, stride: 0x10 }, n(950, s), n(60, s), HostKind::Web)],
            aliased: vec![],
            ports: vec![80, 443],
        },
        NetworkSpec {
            prefix: p("2603:5000::/32"),
            asn: 26496,
            name: "GoDaddy".into(),
            populations: vec![pop(seq.clone(), SubnetPlan::Strided { count: 120, stride: 0x1000 }, n(850, s), n(90, s), HostKind::Web)],
            aliased: vec![],
            ports: vec![80],
        },
        NetworkSpec {
            prefix: p("2a00:1158::/32"),
            asn: 58010,
            name: "Uvensys".into(),
            populations: vec![pop(seq.clone(), SubnetPlan::Sequential { count: 60 }, n(800, s), n(70, s), HostKind::Web)],
            aliased: vec![],
            ports: vec![80],
        },
        NetworkSpec {
            prefix: p("2604:a880::/32"),
            asn: 14061,
            name: "DigitalOcean".into(),
            populations: vec![pop(HostScheme::Ipv4Embedded { base: [104, 16, 0, 9] }, SubnetPlan::Sequential { count: 110 }, n(780, s), n(50, s), HostKind::Web)],
            aliased: vec![],
            ports: vec![80],
        },
        // Mittwald: the other /112-granularity aliaser.
        NetworkSpec {
            prefix: p("2a00:1ed0::/32"),
            asn: 15817,
            name: "Mittwald".into(),
            populations: vec![pop(HostScheme::LowByteRandom { nybbles: 3 }, SubnetPlan::Single(0), n(700, s), 0, HostKind::Web)],
            aliased: vec![
                AliasedRegion { prefix: p("2a00:1ed0::/112"), ports: vec![80] },
                AliasedRegion { prefix: p("2a00:1ed0::7:0/112"), ports: vec![80] },
                AliasedRegion { prefix: p("2a00:1ed0::8:0/112"), ports: vec![80] },
            ],
            ports: vec![80],
        },
        // ---------------- CDNs: alias-dominated (Table 1b) ---------------
        NetworkSpec {
            prefix: p("2600:1400::/32"),
            asn: 20940,
            name: "Akamai".into(),
            populations: vec![pop(HostScheme::LowByteRandom { nybbles: 5 }, SubnetPlan::Sequential { count: 6 }, n(1800, s), n(100, s), HostKind::Web)],
            aliased: vec![
                AliasedRegion { prefix: p("2600:1400::/48"), ports: vec![80] },
                AliasedRegion { prefix: p("2600:1400:2::/48"), ports: vec![80] },
                AliasedRegion { prefix: p("2600:1400:4:100::/56"), ports: vec![80] },
            ],
            ports: vec![80],
        },
        NetworkSpec {
            prefix: p("2600:1480::/32"),
            asn: 20940,
            name: "Akamai".into(),
            populations: vec![pop(HostScheme::LowByteRandom { nybbles: 5 }, SubnetPlan::Sequential { count: 4 }, n(1100, s), 0, HostKind::Web)],
            aliased: vec![AliasedRegion { prefix: p("2600:1480::/48"), ports: vec![80] }],
            ports: vec![80],
        },
        NetworkSpec {
            prefix: p("2602::/24"),
            asn: 209,
            name: "CenturyLink".into(),
            populations: vec![pop(HostScheme::LowByteRandom { nybbles: 3 }, SubnetPlan::Single(0x10), n(450, s), 0, HostKind::Web)],
            aliased: vec![AliasedRegion { prefix: p("2602::/56"), ports: vec![80] }],
            ports: vec![80],
        },
        NetworkSpec {
            prefix: p("2001:668::/32"),
            asn: 3257,
            name: "GTT".into(),
            populations: vec![pop(HostScheme::LowByteRandom { nybbles: 3 }, SubnetPlan::Single(0x22), n(420, s), 0, HostKind::Web)],
            aliased: vec![AliasedRegion { prefix: p("2001:668::/56"), ports: vec![80] }],
            ports: vec![80],
        },
        NetworkSpec {
            prefix: p("2a04:4e40::/32"),
            asn: 54113,
            name: "Fastly".into(),
            populations: vec![pop(HostScheme::LowByteRandom { nybbles: 3 }, SubnetPlan::Single(0), n(430, s), 0, HostKind::Web)],
            aliased: vec![AliasedRegion { prefix: p("2a04:4e40::/48"), ports: vec![80] }],
            ports: vec![80],
        },
        NetworkSpec {
            prefix: p("2607:f8b0::/32"),
            asn: 15169,
            name: "Google".into(),
            populations: vec![pop(HostScheme::LowByteRandom { nybbles: 3 }, SubnetPlan::Single(0x4002), n(440, s), 0, HostKind::Web)],
            aliased: vec![AliasedRegion { prefix: p("2607:f8b0:0:4000::/56"), ports: vec![80] }],
            ports: vec![80],
        },
        NetworkSpec {
            prefix: p("2001:748::/32"),
            asn: 2828,
            name: "XO".into(),
            populations: vec![pop(HostScheme::LowByteRandom { nybbles: 3 }, SubnetPlan::Single(1), n(200, s), 0, HostKind::Web)],
            aliased: vec![AliasedRegion { prefix: p("2001:748:0:1::/64"), ports: vec![80] }],
            ports: vec![80],
        },
        NetworkSpec {
            prefix: p("2a00:c38::/32"),
            asn: 13189,
            name: "Lidero".into(),
            populations: vec![pop(HostScheme::LowByteRandom { nybbles: 3 }, SubnetPlan::Single(3), n(160, s), 0, HostKind::Web)],
            aliased: vec![AliasedRegion { prefix: p("2a00:c38:0:3::/64"), ports: vec![80] }],
            ports: vec![80],
        },
        // -------- Name-server population for the §6.7.1 experiment -------
        NetworkSpec {
            prefix: p("2610:a1::/32"),
            asn: 19905,
            name: "NSProvider".into(),
            populations: vec![
                pop(seq.clone(), SubnetPlan::Sequential { count: 30 }, n(900, s), n(60, s), HostKind::NameServer),
                pop(HostScheme::Wordy, SubnetPlan::Single(5), n(350, s), 0, HostKind::Web),
            ],
            aliased: vec![],
            ports: vec![80, 53],
        },
    ];

    // Long tail of small networks: seed counts spanning the [2,10) and
    // [10,100) buckets of Figures 5 and 7.
    let mut tail_rng = StdRng::seed_from_u64(config.rng_seed ^ 0x7a11);
    for i in 0..18u32 {
        let count = match i % 3 {
            0 => n(8, s),
            1 => n(45, s),
            _ => n(180, s),
        };
        let scheme = match i % 4 {
            0 => HostScheme::LowByteSequential,
            1 => HostScheme::Wordy,
            2 => HostScheme::PortEmbedded { port: 80 },
            _ => HostScheme::Eui64 {
                oui: [0x00, 0x50, 0x56],
            },
        };
        let third_group: u16 = tail_rng.gen();
        specs.push(NetworkSpec {
            prefix: format!("2a0c:{:x}:{:x}::/48", 0x100 + i, third_group)
                .parse()
                .expect("tail prefix"),
            asn: 64500 + i,
            name: format!("SmallNet-{i}"),
            populations: vec![pop(
                scheme,
                SubnetPlan::Sequential { count: 4 },
                count,
                count / 8,
                HostKind::Web,
            )],
            aliased: vec![],
            ports: vec![80],
        });
    }
    specs
}

/// Materializes the default world.
pub fn build_world(config: &WorldConfig) -> Internet {
    let mut rng = StdRng::seed_from_u64(config.rng_seed);
    Internet::build(world_specs(config), &mut rng).expect("unique prefixes")
}

#[cfg(test)]
mod tests {
    use super::*;
    use sixgen_simnet::SeedExtraction;

    #[test]
    fn world_builds_and_is_populated() {
        let world = build_world(&WorldConfig {
            scale: 0.1,
            rng_seed: 1,
        });
        assert!(world.networks().len() >= 40);
        assert!(world.active_host_count() > 2000);
        // Multiple prefixes for Akamai, both /112 aliasers present.
        let akamai = world
            .networks()
            .iter()
            .filter(|n| n.spec().asn == 20940)
            .count();
        assert_eq!(akamai, 2);
    }

    #[test]
    fn world_is_deterministic() {
        let cfg = WorldConfig {
            scale: 0.05,
            rng_seed: 9,
        };
        let w1 = build_world(&cfg);
        let w2 = build_world(&cfg);
        assert_eq!(w1.active_host_count(), w2.active_host_count());
        let mut rng1 = StdRng::seed_from_u64(4);
        let mut rng2 = StdRng::seed_from_u64(4);
        let e = SeedExtraction::default();
        assert_eq!(w1.extract_seeds(&e, &mut rng1), w2.extract_seeds(&e, &mut rng2));
    }

    #[test]
    fn aliased_regions_respond_and_honest_do_not() {
        let world = build_world(&WorldConfig {
            scale: 0.05,
            rng_seed: 1,
        });
        // Any random address inside the Akamai aliased /48 responds.
        assert!(world.is_responsive("2600:1400::dead:beef:1:2".parse().unwrap(), 80));
        // Cloudflare /112 aliasing: inside responds, outside does not.
        assert!(world.is_responsive("2606:4700::1:abcd".parse().unwrap(), 80));
        assert!(!world.is_responsive("2606:4700::4:abcd".parse().unwrap(), 80));
        // A random address in an honest hosting network does not respond.
        assert!(!world.is_responsive("2600:3c00::dead:beef".parse().unwrap(), 80));
    }

    #[test]
    fn seed_extraction_covers_many_prefixes() {
        let world = build_world(&WorldConfig {
            scale: 0.1,
            rng_seed: 1,
        });
        let mut rng = StdRng::seed_from_u64(2);
        let seeds = world.extract_seeds(&SeedExtraction::default(), &mut rng);
        assert!(seeds.len() > 1500, "got {}", seeds.len());
        let (grouped, unrouted) =
            world.table().group_by_prefix(seeds.iter().map(|s| s.addr));
        assert!(unrouted.is_empty(), "all seeds lie in routed prefixes");
        assert!(grouped.len() >= 30, "got {} prefixes", grouped.len());
        // Name-server seeds exist for the §6.7.1 experiment.
        assert!(seeds
            .iter()
            .any(|s| s.kind == sixgen_simnet::HostKind::NameServer));
    }

    #[test]
    fn scale_controls_population() {
        let small = build_world(&WorldConfig { scale: 0.05, rng_seed: 1 });
        let large = build_world(&WorldConfig { scale: 0.5, rng_seed: 1 });
        assert!(large.active_host_count() > 5 * small.active_host_count());
    }
}
