//! Hitlist file I/O.
//!
//! Public IPv6 hitlists (Gasser et al.'s collection, Rapid7 exports) are
//! one-address-per-line text files; large intermediate artifacts are better
//! stored in a fixed-width binary form. Both formats are supported, with
//! `#` comments and blank-line tolerance on the text side.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use sixgen_addr::NybbleAddr;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::path::Path;

/// Magic header of the binary hitlist format ("6GENHL1\n").
const MAGIC: &[u8; 8] = b"6GENHL1\n";

/// Writes addresses as text, one per line, in RFC 5952 form.
pub fn write_hitlist<W: Write>(mut writer: W, addrs: &[NybbleAddr]) -> io::Result<()> {
    for addr in addrs {
        writeln!(writer, "{addr}")?;
    }
    Ok(())
}

/// Writes a text hitlist file.
pub fn write_hitlist_file(path: impl AsRef<Path>, addrs: &[NybbleAddr]) -> io::Result<()> {
    let file = std::fs::File::create(path)?;
    let mut buffered = io::BufWriter::new(file);
    write_hitlist(&mut buffered, addrs)?;
    buffered.flush()
}

/// Reads a text hitlist: one address per line; blank lines and lines
/// starting with `#` are skipped. Malformed lines are an error carrying
/// the 1-based line number.
pub fn read_hitlist<R: Read>(reader: R) -> io::Result<Vec<NybbleAddr>> {
    let mut out = Vec::new();
    for (lineno, line) in BufReader::new(reader).lines().enumerate() {
        let line = line?;
        let text = line.trim();
        if text.is_empty() || text.starts_with('#') {
            continue;
        }
        let addr: NybbleAddr = text.parse().map_err(|e| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("line {}: {e}", lineno + 1),
            )
        })?;
        out.push(addr);
    }
    Ok(out)
}

/// Reads a text hitlist file.
pub fn read_hitlist_file(path: impl AsRef<Path>) -> io::Result<Vec<NybbleAddr>> {
    read_hitlist(std::fs::File::open(path)?)
}

/// Encodes addresses in the compact binary format: an 8-byte magic, a
/// little-endian u64 count, then 16 network-order bytes per address.
pub fn encode_hitlist_binary(addrs: &[NybbleAddr]) -> Bytes {
    let mut buf = BytesMut::with_capacity(16 + addrs.len() * 16);
    buf.put_slice(MAGIC);
    buf.put_u64_le(addrs.len() as u64);
    for addr in addrs {
        buf.put_u128(addr.bits());
    }
    buf.freeze()
}

/// Decodes the binary format produced by [`encode_hitlist_binary`].
pub fn decode_hitlist_binary(mut data: Bytes) -> io::Result<Vec<NybbleAddr>> {
    let bad = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, msg.to_owned());
    if data.remaining() < MAGIC.len() + 8 {
        return Err(bad("truncated header"));
    }
    let mut magic = [0u8; 8];
    data.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(bad("bad magic"));
    }
    let count = data.get_u64_le() as usize;
    if data.remaining() != count * 16 {
        return Err(bad("length mismatch"));
    }
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        out.push(NybbleAddr::from_bits(data.get_u128()));
    }
    Ok(out)
}

/// Writes a binary hitlist file.
pub fn write_hitlist_binary_file(path: impl AsRef<Path>, addrs: &[NybbleAddr]) -> io::Result<()> {
    std::fs::write(path, encode_hitlist_binary(addrs))
}

/// Reads a binary hitlist file.
pub fn read_hitlist_binary_file(path: impl AsRef<Path>) -> io::Result<Vec<NybbleAddr>> {
    decode_hitlist_binary(Bytes::from(std::fs::read(path)?))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addrs() -> Vec<NybbleAddr> {
        ["2001:db8::1", "::", "fe80::dead:beef", "2600:9000:a:11a5::42"]
            .iter()
            .map(|s| s.parse().unwrap())
            .collect()
    }

    #[test]
    fn text_roundtrip() {
        let mut buf = Vec::new();
        write_hitlist(&mut buf, &addrs()).unwrap();
        let text = String::from_utf8(buf.clone()).unwrap();
        assert!(text.contains("2001:db8::1\n"));
        assert_eq!(read_hitlist(&buf[..]).unwrap(), addrs());
    }

    #[test]
    fn text_skips_comments_and_blanks() {
        let text = "# a comment\n\n2001:db8::1\n   \n# another\n::2\n";
        let got = read_hitlist(text.as_bytes()).unwrap();
        assert_eq!(got.len(), 2);
        assert_eq!(got[0], "2001:db8::1".parse().unwrap());
    }

    #[test]
    fn text_reports_malformed_line_number() {
        let text = "2001:db8::1\nnot-an-address\n";
        let err = read_hitlist(text.as_bytes()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("line 2"), "{err}");
    }

    #[test]
    fn binary_roundtrip() {
        let encoded = encode_hitlist_binary(&addrs());
        assert_eq!(encoded.len(), 16 + 4 * 16);
        assert_eq!(decode_hitlist_binary(encoded).unwrap(), addrs());
        // Empty list round-trips too.
        let empty = encode_hitlist_binary(&[]);
        assert_eq!(decode_hitlist_binary(empty).unwrap(), Vec::new());
    }

    #[test]
    fn binary_rejects_corruption() {
        let encoded = encode_hitlist_binary(&addrs());
        // Truncated.
        let truncated = encoded.slice(0..encoded.len() - 1);
        assert!(decode_hitlist_binary(truncated).is_err());
        // Bad magic.
        let mut bad = BytesMut::from(&encoded[..]);
        bad[0] ^= 0xFF;
        assert!(decode_hitlist_binary(bad.freeze()).is_err());
        // Too short for a header.
        assert!(decode_hitlist_binary(Bytes::from_static(b"xx")).is_err());
    }

    #[test]
    fn file_roundtrips() {
        let dir = std::env::temp_dir().join(format!("sixgen-io-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let text_path = dir.join("hits.txt");
        let bin_path = dir.join("hits.bin");
        write_hitlist_file(&text_path, &addrs()).unwrap();
        write_hitlist_binary_file(&bin_path, &addrs()).unwrap();
        assert_eq!(read_hitlist_file(&text_path).unwrap(), addrs());
        assert_eq!(read_hitlist_binary_file(&bin_path).unwrap(), addrs());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
