//! The five CDN-style datasets of §7.
//!
//! The paper compares 6Gen against Entropy/IP on "a random sample of 10 K
//! addresses collected from five content distribution networks (labeled as
//! CDNs 1–5) used in the original Entropy/IP evaluation". Those datasets
//! are private; these generators span the same difficulty spectrum the
//! published curves exhibit:
//!
//! | CDN | Structure | Published outcome (Figures 8–9) |
//! |-----|-----------|-------------------------------|
//! | 1 | privacy-random identifiers | both algorithms find almost nothing |
//! | 2 | sparse random subnets, small random IIDs | both < 3 % recovery; hard |
//! | 3 | embedded IPv4 over sequential subnets + random tail | mid recovery; 6Gen well ahead |
//! | 4 | dense sequential low-byte, few subnets, **heavily aliased** | > 88 % recovery, 6Gen > 99 %; elided post-filter |
//! | 5 | hex-word identifiers, few subnets | both high and similar |

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use sixgen_addr::NybbleAddr;
use sixgen_simnet::{
    AliasedRegion, HostKind, HostPopulation, HostScheme, Internet, NetworkSpec, SubnetPlan,
};

/// The five CDN datasets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Cdn {
    /// Unpredictable: privacy-random identifiers.
    One,
    /// Sparse structure: random /64s with small random identifiers.
    Two,
    /// Mid structure: embedded IPv4 across sequential subnets.
    Three,
    /// Dense structure, heavily aliased.
    Four,
    /// Hex-word identifiers.
    Five,
}

impl Cdn {
    /// All five, in order.
    pub const ALL: [Cdn; 5] = [Cdn::One, Cdn::Two, Cdn::Three, Cdn::Four, Cdn::Five];

    /// Display label matching the paper ("CDN 1" … "CDN 5").
    pub fn label(self) -> &'static str {
        match self {
            Cdn::One => "CDN 1",
            Cdn::Two => "CDN 2",
            Cdn::Three => "CDN 3",
            Cdn::Four => "CDN 4",
            Cdn::Five => "CDN 5",
        }
    }

    /// The network spec for this CDN. `host_count` controls the active
    /// population (the original datasets sample 10 K from larger
    /// populations; use ≥ 20 000 for faithful train/test ratios).
    pub fn spec(self, host_count: usize) -> NetworkSpec {
        let pop = |scheme, subnets, count| HostPopulation {
            scheme,
            subnets,
            count,
            churned: 0,
            kind: HostKind::Web,
        };
        match self {
            Cdn::One => NetworkSpec {
                prefix: "2a07:1000::/32".parse().unwrap(),
                asn: 65101,
                name: "CDN1".into(),
                populations: vec![pop(
                    HostScheme::PrivacyRandom,
                    SubnetPlan::RandomSparse { count: 512 },
                    host_count,
                )],
                aliased: vec![],
                ports: vec![80],
            },
            Cdn::Two => NetworkSpec {
                prefix: "2a07:2000::/32".parse().unwrap(),
                asn: 65102,
                name: "CDN2".into(),
                populations: vec![
                    // Most hosts: random /64s, 5 random nybbles of IID —
                    // each subnet holds a few seeds in a 1M-address space.
                    pop(
                        HostScheme::LowByteRandom { nybbles: 5 },
                        SubnetPlan::RandomSparse { count: 2048 },
                        host_count * 19 / 20,
                    ),
                    // A thin predictable sliver keeps recovery non-zero
                    // (the published CDN 2 curves top out below ~3 %).
                    pop(
                        HostScheme::LowByteSequential,
                        SubnetPlan::RandomSparse { count: 16 },
                        host_count / 20,
                    ),
                ],
                aliased: vec![],
                ports: vec![80],
            },
            Cdn::Three => NetworkSpec {
                prefix: "2a07:3000::/32".parse().unwrap(),
                asn: 65103,
                name: "CDN3".into(),
                populations: vec![
                    pop(
                        HostScheme::Ipv4Embedded {
                            base: [203, 0, 113, 1],
                        },
                        SubnetPlan::Sequential { count: 64 },
                        host_count * 3 / 5,
                    ),
                    pop(
                        HostScheme::LowByteRandom { nybbles: 6 },
                        SubnetPlan::Sequential { count: 64 },
                        host_count * 2 / 5,
                    ),
                ],
                aliased: vec![],
                ports: vec![80],
            },
            Cdn::Four => NetworkSpec {
                prefix: "2a07:4000::/32".parse().unwrap(),
                asn: 65104,
                name: "CDN4".into(),
                populations: vec![
                    pop(
                        HostScheme::LowByteSequential,
                        SubnetPlan::Sequential { count: 12 },
                        host_count * 99 / 100,
                    ),
                    // A sliver of unstructured hosts: realistic, and keeps
                    // the all-seeds stopping rule from halting exploration
                    // of the dense region before it is fully covered.
                    pop(
                        HostScheme::PrivacyRandom,
                        SubnetPlan::RandomSparse { count: 16 },
                        host_count / 100,
                    ),
                ],
                // Extensively aliased: the host subnets themselves answer
                // everywhere (why CDN 4 is elided from the post-filter
                // comparison in Figure 9b).
                aliased: vec![AliasedRegion {
                    prefix: "2a07:4000::/56".parse().unwrap(),
                    ports: vec![80],
                }],
                ports: vec![80],
            },
            Cdn::Five => NetworkSpec {
                prefix: "2a07:5000::/32".parse().unwrap(),
                asn: 65105,
                name: "CDN5".into(),
                populations: vec![pop(
                    HostScheme::Wordy,
                    SubnetPlan::Sequential { count: 8 },
                    host_count,
                )],
                aliased: vec![],
                ports: vec![80],
            },
        }
    }
}

/// Materializes one CDN as a standalone simulated Internet.
pub fn cdn_internet(cdn: Cdn, host_count: usize, rng_seed: u64) -> Internet {
    let mut rng = StdRng::seed_from_u64(rng_seed);
    Internet::build(vec![cdn.spec(host_count)], &mut rng).expect("unique prefixes")
}

/// Draws the §7 dataset: a uniform random sample of `n` active addresses
/// (without replacement). Panics if the CDN has fewer than `n` hosts.
pub fn cdn_seed_sample(internet: &Internet, n: usize, rng: &mut StdRng) -> Vec<NybbleAddr> {
    let network = &internet.networks()[0];
    let mut addrs: Vec<NybbleAddr> = network.active().keys().copied().collect();
    assert!(
        addrs.len() >= n,
        "CDN has {} hosts, cannot sample {n}",
        addrs.len()
    );
    addrs.sort_unstable();
    addrs.shuffle(rng);
    addrs.truncate(n);
    addrs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_cdns_build() {
        for cdn in Cdn::ALL {
            let internet = cdn_internet(cdn, 2000, 1);
            // Population arithmetic (3/5 + 2/5 etc.) may round down.
            let count = internet.active_host_count();
            assert!(
                (1990..=2000).contains(&count),
                "{}: {count} hosts",
                cdn.label()
            );
            assert_eq!(internet.networks().len(), 1);
        }
    }

    #[test]
    fn labels() {
        assert_eq!(Cdn::One.label(), "CDN 1");
        assert_eq!(Cdn::Five.label(), "CDN 5");
    }

    #[test]
    fn sample_is_without_replacement_and_active() {
        let internet = cdn_internet(Cdn::Four, 3000, 2);
        let mut rng = StdRng::seed_from_u64(3);
        let sample = cdn_seed_sample(&internet, 1000, &mut rng);
        assert_eq!(sample.len(), 1000);
        let uniq: std::collections::HashSet<_> = sample.iter().collect();
        assert_eq!(uniq.len(), 1000);
        for s in &sample {
            assert!(internet.is_responsive(*s, 80));
        }
    }

    #[test]
    fn sample_deterministic() {
        let internet = cdn_internet(Cdn::Three, 3000, 2);
        let s1 = cdn_seed_sample(&internet, 500, &mut StdRng::seed_from_u64(9));
        let s2 = cdn_seed_sample(&internet, 500, &mut StdRng::seed_from_u64(9));
        assert_eq!(s1, s2);
    }

    #[test]
    fn cdn4_is_aliased_cdn5_is_not() {
        let four = cdn_internet(Cdn::Four, 1000, 1);
        assert!(four.is_responsive("2a07:4000::dead:beef".parse().unwrap(), 80));
        let five = cdn_internet(Cdn::Five, 1000, 1);
        assert!(!five.is_responsive("2a07:5000::1234:5678".parse().unwrap(), 80));
    }

    #[test]
    #[should_panic(expected = "cannot sample")]
    fn oversample_rejected() {
        let internet = cdn_internet(Cdn::One, 100, 1);
        cdn_seed_sample(&internet, 1000, &mut StdRng::seed_from_u64(1));
    }
}
