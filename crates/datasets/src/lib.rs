//! # sixgen-datasets — workloads for the reproduction
//!
//! The paper's experiments consume two proprietary corpora that cannot be
//! redistributed: the Rapid7 Forward DNS ANY snapshot (2.96 M addresses in
//! 10,038 routed prefixes, §6.1) and the Entropy/IP authors' five 10 K CDN
//! datasets (§7). This crate generates synthetic equivalents with the same
//! *distributional* properties — per-prefix seed counts, AS-level skew,
//! address-structure classes, churn, and aliasing — on top of
//! [`sixgen_simnet`]:
//!
//! * [`world`] — a multi-AS Internet model whose seed/alias/hit skew
//!   mirrors Tables 1a–1c (Linode/Amazon/… seed shares; Akamai/Amazon
//!   alias dominance; hosting-provider dealiased hits).
//! * [`cdn`] — five CDN-style networks spanning the difficulty spectrum of
//!   the original Entropy/IP evaluation (CDN 1 unpredictable … CDN 4/5
//!   highly structured, CDN 4 heavily aliased).
//! * [`split`] — the §7.1 train-and-test machinery (10 random groups of
//!   1 K, train on one, test on the rest) and §6.7.2 downsampling.
//! * [`io`] — hitlist files: one-address-per-line text (the format of
//!   public IPv6 hitlists) and a compact binary format.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cdn;
pub mod io;
pub mod split;
pub mod world;

pub use cdn::{cdn_internet, cdn_seed_sample, Cdn};
pub use split::{downsample, inverse_kfold, split_groups};
pub use world::{build_world, world_specs, WorldConfig};
