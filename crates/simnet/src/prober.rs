//! [`Prober`]: a ZMap-like scanner over the simulated Internet.
//!
//! The paper probed generated targets with TCP/80 SYNs at 100 K packets per
//! second (§6). The prober reproduces the observable behaviour of that
//! pipeline: per-probe hit/miss answers from ground truth, packet and
//! response accounting, optional probabilistic packet loss with retries
//! (fault injection, in the tradition of the smoltcp examples'
//! `--drop-chance`), randomized probe order, and a simulated scan duration
//! derived from the configured packet rate.

use crate::internet::Internet;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use sixgen_addr::NybbleAddr;
use std::time::Duration;

/// Prober configuration.
#[derive(Debug, Clone)]
pub struct ProbeConfig {
    /// Probability that any single probe (or its response) is lost in
    /// transit. `0.0` disables fault injection.
    pub loss: f64,
    /// Additional attempts after a lost probe (a responsive host is
    /// reported unresponsive only if all `1 + retries` probes are lost).
    pub retries: u8,
    /// Modeled transmit rate in packets per second (the paper used
    /// 100 Kpps); drives [`Prober::simulated_duration`].
    pub rate_pps: u64,
    /// RNG seed for loss draws and probe-order shuffling.
    pub rng_seed: u64,
}

impl Default for ProbeConfig {
    fn default() -> Self {
        ProbeConfig {
            loss: 0.0,
            retries: 0,
            rate_pps: 100_000,
            rng_seed: 0x5CA7,
        }
    }
}

/// Cumulative packet accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProbeStats {
    /// Probe packets transmitted (including retries).
    pub packets_sent: u64,
    /// Responses received.
    pub responses: u64,
}

/// Result of scanning a target list on one port.
#[derive(Debug, Clone)]
pub struct ScanResult {
    /// Responsive target addresses, deduplicated, in the (shuffled) probe
    /// order.
    pub hits: Vec<NybbleAddr>,
    /// Number of distinct targets probed.
    pub targets: u64,
    /// Probe packets this scan transmitted.
    pub probes: u64,
}

impl ScanResult {
    /// Hit rate: responsive targets ÷ probed targets.
    pub fn hit_rate(&self) -> f64 {
        if self.targets == 0 {
            0.0
        } else {
            self.hits.len() as f64 / self.targets as f64
        }
    }
}

/// A scanner bound to a simulated Internet.
#[derive(Debug)]
pub struct Prober<'a> {
    internet: &'a Internet,
    config: ProbeConfig,
    rng: StdRng,
    stats: ProbeStats,
}

impl<'a> Prober<'a> {
    /// Creates a prober with the given fault/rate model.
    pub fn new(internet: &'a Internet, config: ProbeConfig) -> Prober<'a> {
        let rng = StdRng::seed_from_u64(config.rng_seed);
        Prober {
            internet,
            config,
            rng,
            stats: ProbeStats::default(),
        }
    }

    /// Probes one address once (plus configured retries). Returns whether a
    /// response was received.
    pub fn probe(&mut self, addr: NybbleAddr, port: u16) -> bool {
        self.probe_attempts(addr, port, 1 + self.config.retries as u32)
    }

    /// Probes one address with an explicit attempt count (the §6.2 alias
    /// test sends exactly three SYNs per address regardless of the scan's
    /// retry setting).
    pub fn probe_attempts(&mut self, addr: NybbleAddr, port: u16, attempts: u32) -> bool {
        let responsive = self.internet.is_responsive(addr, port);
        for _ in 0..attempts.max(1) {
            self.stats.packets_sent += 1;
            if responsive && (self.config.loss == 0.0 || !self.rng.gen_bool(self.config.loss)) {
                self.stats.responses += 1;
                return true;
            }
            if !responsive {
                // An unresponsive address never answers; remaining retries
                // are still transmitted by a real scanner.
                continue;
            }
        }
        false
    }

    /// Scans a target list on `port`: deduplicates, randomizes probe order
    /// ("We randomized the order of the destination hosts", §6), probes
    /// each target once (plus retries), and returns the hits.
    pub fn scan(&mut self, targets: impl IntoIterator<Item = NybbleAddr>, port: u16) -> ScanResult {
        let mut list: Vec<NybbleAddr> = targets.into_iter().collect();
        list.sort_unstable();
        list.dedup();
        list.shuffle(&mut self.rng);
        let before = self.stats.packets_sent;
        let mut hits = Vec::new();
        for addr in &list {
            if self.probe(*addr, port) {
                hits.push(*addr);
            }
        }
        ScanResult {
            targets: list.len() as u64,
            probes: self.stats.packets_sent - before,
            hits,
        }
    }

    /// Cumulative packet statistics.
    pub fn stats(&self) -> ProbeStats {
        self.stats
    }

    /// The wall-clock time a real scanner would have needed to transmit
    /// every packet sent so far, at the configured rate.
    pub fn simulated_duration(&self) -> Duration {
        Duration::from_secs_f64(self.stats.packets_sent as f64 / self.config.rate_pps as f64)
    }

    /// The underlying ground-truth model.
    pub fn internet(&self) -> &'a Internet {
        self.internet
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::NetworkSpec;
    use crate::scheme::HostScheme;

    fn internet() -> Internet {
        let mut rng = StdRng::seed_from_u64(2);
        Internet::build(
            vec![NetworkSpec::simple(
                "2001:db8::/32".parse().unwrap(),
                64496,
                "Example",
                HostScheme::LowByteSequential,
                50,
            )],
            &mut rng,
        )
    }

    fn a(s: &str) -> NybbleAddr {
        s.parse().unwrap()
    }

    #[test]
    fn probe_counts_packets() {
        let net = internet();
        let mut p = Prober::new(&net, ProbeConfig::default());
        assert!(p.probe(a("2001:db8::1"), 80));
        assert!(!p.probe(a("2001:db8::1234"), 80));
        assert_eq!(p.stats(), ProbeStats { packets_sent: 2, responses: 1 });
    }

    #[test]
    fn scan_finds_exactly_the_active_hosts() {
        let net = internet();
        let mut p = Prober::new(&net, ProbeConfig::default());
        let targets: Vec<NybbleAddr> = (0..100u32)
            .map(|i| NybbleAddr::from_bits(0x2001_0db8u128 << 96 | i as u128))
            .collect();
        let result = p.scan(targets, 80);
        assert_eq!(result.hits.len(), 50, "hosts ::1..=::32 respond");
        assert_eq!(result.targets, 100);
        assert_eq!(result.probes, 100);
        assert!((result.hit_rate() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn scan_deduplicates_targets() {
        let net = internet();
        let mut p = Prober::new(&net, ProbeConfig::default());
        let result = p.scan(vec![a("2001:db8::1"), a("2001:db8::1")], 80);
        assert_eq!(result.targets, 1);
        assert_eq!(result.probes, 1);
        assert_eq!(result.hits, vec![a("2001:db8::1")]);
    }

    #[test]
    fn loss_with_retries_recovers_hosts() {
        let net = internet();
        // 50% loss, no retries: roughly half the hits are missed.
        let mut lossy = Prober::new(
            &net,
            ProbeConfig {
                loss: 0.5,
                retries: 0,
                ..ProbeConfig::default()
            },
        );
        let targets: Vec<NybbleAddr> = (1..=50u32)
            .map(|i| NybbleAddr::from_bits(0x2001_0db8u128 << 96 | i as u128))
            .collect();
        let r = lossy.scan(targets.clone(), 80);
        assert!(r.hits.len() < 45, "lost some: {}", r.hits.len());
        // 50% loss but 7 retries: virtually every host answers.
        let mut retried = Prober::new(
            &net,
            ProbeConfig {
                loss: 0.5,
                retries: 7,
                ..ProbeConfig::default()
            },
        );
        let r = retried.scan(targets, 80);
        assert_eq!(r.hits.len(), 50);
        // Retries cost packets: more than one per target on average.
        assert!(r.probes > 50);
    }

    #[test]
    fn lossless_probe_sends_single_packet_even_with_retries() {
        let net = internet();
        let mut p = Prober::new(
            &net,
            ProbeConfig {
                retries: 3,
                ..ProbeConfig::default()
            },
        );
        assert!(p.probe(a("2001:db8::1"), 80));
        assert_eq!(p.stats().packets_sent, 1, "responsive host answers first probe");
        // Unresponsive host consumes all attempts.
        assert!(!p.probe(a("2001:db8::999"), 80));
        assert_eq!(p.stats().packets_sent, 1 + 4);
    }

    #[test]
    fn simulated_duration_follows_rate() {
        let net = internet();
        let mut p = Prober::new(
            &net,
            ProbeConfig {
                rate_pps: 10,
                ..ProbeConfig::default()
            },
        );
        for i in 0..20u32 {
            p.probe(
                NybbleAddr::from_bits(0x2001_0db8u128 << 96 | i as u128),
                80,
            );
        }
        assert_eq!(p.simulated_duration(), Duration::from_secs(2));
    }

    #[test]
    fn scans_are_deterministic() {
        let net = internet();
        let targets: Vec<NybbleAddr> = (0..60u32)
            .map(|i| NybbleAddr::from_bits(0x2001_0db8u128 << 96 | i as u128))
            .collect();
        let r1 = Prober::new(&net, ProbeConfig { loss: 0.3, ..Default::default() })
            .scan(targets.clone(), 80);
        let r2 = Prober::new(&net, ProbeConfig { loss: 0.3, ..Default::default() })
            .scan(targets, 80);
        assert_eq!(r1.hits, r2.hits);
        assert_eq!(r1.probes, r2.probes);
    }
}
