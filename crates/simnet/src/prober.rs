//! [`Prober`]: a ZMap-like scanner over the simulated Internet.
//!
//! The paper probed generated targets with TCP/80 SYNs at 100 K packets per
//! second (§6). The prober reproduces the observable behaviour of that
//! pipeline: per-probe hit/miss answers from ground truth, packet and
//! response accounting, a composable [fault stack](crate::faults) (uniform
//! and bursty loss, per-prefix rate limiting, blackholed and aliased
//! regions), retransmissions with an optional exponential-backoff policy
//! and a ZMap-style total retransmit budget, randomized probe order, and a
//! simulated scan duration derived from the configured packet rate plus
//! accumulated backoff waits.

use crate::faults::{FaultAction, FaultConfigError, FaultModel, ProbeContext, UniformLoss};
use crate::internet::Internet;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use sixgen_addr::NybbleAddr;
use sixgen_obs::{maybe_span, Counter, MetricsRegistry, SpanId, TraceSink};
use std::sync::Arc;
use std::time::Duration;

const NANOS_PER_SEC: u64 = 1_000_000_000;

/// When and how lost probes are retransmitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RetryPolicy {
    /// Retransmissions follow the original probe back-to-back, spaced only
    /// by the packet rate (ZMap's behaviour).
    #[default]
    Immediate,
    /// Adaptive retry: before retransmission `n` (1-based), the virtual
    /// clock advances by `base × 2^(n-1)`, capped at `cap`. Time-dependent
    /// faults (loss bursts, rate-limit buckets) see the delay, so spaced
    /// retries recover responses an immediate volley would lose.
    ExponentialBackoff {
        /// Wait before the first retransmission.
        base: Duration,
        /// Upper bound on a single wait.
        cap: Duration,
    },
}

/// Prober configuration.
///
/// Validated by [`Prober::new`]; see [`ProbeConfig::validate`].
#[derive(Debug, Clone)]
pub struct ProbeConfig {
    /// Probability that any single probe (or its response) is lost in
    /// transit, independently per packet. `0.0` disables it. Shorthand for
    /// pushing a [`UniformLoss`] onto `faults`.
    pub loss: f64,
    /// Additional attempts after a lost probe (a responsive host is
    /// reported unresponsive only if all `1 + retries` probes are lost).
    pub retries: u8,
    /// Modeled transmit rate in packets per second (the paper used
    /// 100 Kpps); drives [`Prober::simulated_duration`].
    pub rate_pps: u64,
    /// RNG seed for loss draws and probe-order shuffling.
    pub rng_seed: u64,
    /// Additional fault models, consulted for every packet in order after
    /// the `loss` shorthand. Verdicts combine with Drop > Answer > Pass
    /// precedence.
    pub faults: Vec<Box<dyn FaultModel>>,
    /// Retransmission timing policy.
    pub retry: RetryPolicy,
    /// ZMap-style cap on the *total* number of retransmissions across the
    /// prober's lifetime; once spent, lost probes are not retried. `None`
    /// means unbounded.
    pub retransmit_budget: Option<u64>,
    /// Optional metrics registry. When set, the prober records packet,
    /// response, retransmission, and virtual-backoff counters plus a
    /// per-fault-model action breakdown under `prober/*` names. All prober
    /// metrics are virtual-time quantities and therefore deterministic.
    pub metrics: Option<Arc<MetricsRegistry>>,
    /// Optional trace sink. When set, every [`Prober::scan`] records one
    /// `prober/scan` span carrying target, probe, retransmit, and hit
    /// counts. Tracing only observes — traced and bare scans return
    /// identical results.
    pub trace: Option<Arc<TraceSink>>,
}

impl Default for ProbeConfig {
    fn default() -> Self {
        ProbeConfig {
            loss: 0.0,
            retries: 0,
            rate_pps: 100_000,
            rng_seed: 0x5CA7,
            faults: Vec::new(),
            retry: RetryPolicy::Immediate,
            retransmit_budget: None,
            metrics: None,
            trace: None,
        }
    }
}

impl ProbeConfig {
    /// Checks the configuration: `loss ∈ [0, 1]`, `rate_pps > 0`, and a
    /// non-zero backoff base when exponential backoff is selected.
    /// (Out-of-range loss used to panic deep inside the RNG on the first
    /// probe; now it is a typed error at construction.)
    pub fn validate(&self) -> Result<(), FaultConfigError> {
        if !(0.0..=1.0).contains(&self.loss) {
            return Err(FaultConfigError::ProbabilityOutOfRange {
                what: "loss",
                value: self.loss,
            });
        }
        if self.rate_pps == 0 {
            return Err(FaultConfigError::NonPositive { what: "rate_pps" });
        }
        if let RetryPolicy::ExponentialBackoff { base, .. } = self.retry {
            if base.is_zero() {
                return Err(FaultConfigError::NonPositive {
                    what: "backoff base",
                });
            }
        }
        Ok(())
    }
}

/// Cumulative packet accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProbeStats {
    /// Probe packets transmitted (including retransmissions).
    pub packets_sent: u64,
    /// Responses received.
    pub responses: u64,
    /// Retransmissions sent (counts against
    /// [`ProbeConfig::retransmit_budget`]).
    pub retransmits: u64,
}

/// Result of scanning a target list on one port.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScanResult {
    /// Responsive target addresses, deduplicated, in the (shuffled) probe
    /// order.
    pub hits: Vec<NybbleAddr>,
    /// Number of distinct targets probed.
    pub targets: u64,
    /// Probe packets this scan transmitted.
    pub probes: u64,
}

impl ScanResult {
    /// Hit rate: responsive targets ÷ probed targets.
    pub fn hit_rate(&self) -> f64 {
        if self.targets == 0 {
            0.0
        } else {
            self.hits.len() as f64 / self.targets as f64
        }
    }
}

/// Pre-registered metric handles for one prober (see
/// [`ProbeConfig::metrics`]). `fault_actions[i]` holds the
/// `[pass, answer, drop]` counters for `faults[i]`.
#[derive(Debug)]
struct ProbeMetrics {
    packets_sent: Arc<Counter>,
    responses: Arc<Counter>,
    retransmits: Arc<Counter>,
    backoff_ns: Arc<Counter>,
    fault_actions: Vec<[Arc<Counter>; 3]>,
}

impl ProbeMetrics {
    fn new(registry: &MetricsRegistry, faults: &[Box<dyn FaultModel>]) -> ProbeMetrics {
        ProbeMetrics {
            packets_sent: registry.counter("prober/packets_sent"),
            responses: registry.counter("prober/responses"),
            retransmits: registry.counter("prober/retransmits"),
            backoff_ns: registry.counter("prober/backoff_ns"),
            fault_actions: faults
                .iter()
                .map(|model| {
                    let name = model.name();
                    [
                        registry.counter(&format!("prober/fault/{name}/pass")),
                        registry.counter(&format!("prober/fault/{name}/answer")),
                        registry.counter(&format!("prober/fault/{name}/drop")),
                    ]
                })
                .collect(),
        }
    }

    fn record_action(&self, model_index: usize, action: FaultAction) {
        let slot = match action {
            FaultAction::Pass => 0,
            FaultAction::Answer => 1,
            FaultAction::Drop => 2,
        };
        self.fault_actions[model_index][slot].inc();
    }
}

/// A scanner bound to a simulated Internet.
#[derive(Debug)]
pub struct Prober<'a> {
    internet: &'a Internet,
    config: ProbeConfig,
    /// Compiled fault stack: the `loss` shorthand (if any) followed by
    /// `config.faults` (moved out of the stored config).
    faults: Vec<Box<dyn FaultModel>>,
    rng: StdRng,
    stats: ProbeStats,
    /// Accumulated transmit time: exactly `floor(packets_sent × 10⁹ /
    /// rate_pps)` nanoseconds, maintained incrementally in integers so the
    /// virtual clock never drifts (the old per-probe
    /// `packets_sent as f64 / rate_pps` recomputation accumulated f64
    /// rounding error on long scans and paid a division per packet).
    transmit: Duration,
    /// Sub-nanosecond remainder of the transmit clock, in units of
    /// `1/rate_pps` ns. Invariant: `transmit_rem < rate_pps`.
    transmit_rem: u64,
    /// Whole nanoseconds each packet adds to the clock
    /// (`10⁹ / rate_pps`).
    nanos_per_packet: u64,
    /// Remainder each packet adds to `transmit_rem`
    /// (`10⁹ mod rate_pps`).
    nanos_rem_per_packet: u64,
    /// Accumulated virtual backoff waits.
    backoff: Duration,
    metrics: Option<ProbeMetrics>,
}

impl<'a> Prober<'a> {
    /// Creates a prober with the given fault/rate model. Returns a typed
    /// error for invalid configurations (e.g. `loss` outside `[0, 1]`,
    /// which formerly panicked inside the RNG on the first lossy probe).
    pub fn new(
        internet: &'a Internet,
        mut config: ProbeConfig,
    ) -> Result<Prober<'a>, FaultConfigError> {
        config.validate()?;
        let mut faults: Vec<Box<dyn FaultModel>> = Vec::with_capacity(1 + config.faults.len());
        if config.loss > 0.0 {
            faults.push(Box::new(UniformLoss::new(config.loss)?));
        }
        faults.append(&mut config.faults);
        let rng = StdRng::seed_from_u64(config.rng_seed);
        let metrics = config
            .metrics
            .as_deref()
            .map(|registry| ProbeMetrics::new(registry, &faults));
        let nanos_per_packet = NANOS_PER_SEC / config.rate_pps;
        let nanos_rem_per_packet = NANOS_PER_SEC % config.rate_pps;
        Ok(Prober {
            internet,
            config,
            faults,
            rng,
            stats: ProbeStats::default(),
            transmit: Duration::ZERO,
            transmit_rem: 0,
            nanos_per_packet,
            nanos_rem_per_packet,
            backoff: Duration::ZERO,
            metrics,
        })
    }

    /// The prober's virtual clock: transmit time of everything sent so far
    /// at the configured rate, plus accumulated backoff waits. Fault models
    /// see this as [`ProbeContext::send_time`].
    fn virtual_now(&self) -> Duration {
        self.transmit + self.backoff
    }

    /// Advances the transmit clock by one packet at the configured rate,
    /// exactly: after `n` packets, `transmit == floor(n × 10⁹ / rate_pps)`
    /// nanoseconds.
    fn advance_transmit_clock(&mut self) {
        self.transmit += Duration::from_nanos(self.nanos_per_packet);
        self.transmit_rem += self.nanos_rem_per_packet;
        if self.transmit_rem >= self.config.rate_pps {
            // Both addends are < rate_pps, so a single carry suffices.
            self.transmit_rem -= self.config.rate_pps;
            self.transmit += Duration::from_nanos(1);
        }
    }

    /// Probes one address once (plus configured retries). Returns whether a
    /// response was received.
    pub fn probe(&mut self, addr: NybbleAddr, port: u16) -> bool {
        self.probe_attempts(addr, port, 1 + self.config.retries as u32)
    }

    /// Probes one address with an explicit attempt count (the §6.2 alias
    /// test sends exactly three SYNs per address regardless of the scan's
    /// retry setting).
    pub fn probe_attempts(&mut self, addr: NybbleAddr, port: u16, attempts: u32) -> bool {
        let responsive = self.internet.is_responsive(addr, port);
        for attempt in 0..attempts.max(1) {
            if attempt > 0 {
                if let Some(budget) = self.config.retransmit_budget {
                    if self.stats.retransmits >= budget {
                        return false;
                    }
                }
                self.stats.retransmits += 1;
                if let Some(m) = &self.metrics {
                    m.retransmits.inc();
                }
                if let RetryPolicy::ExponentialBackoff { base, cap } = self.config.retry {
                    let doubling = (attempt - 1).min(20);
                    let wait = base.saturating_mul(1 << doubling).min(cap);
                    self.backoff += wait;
                    if let Some(m) = &self.metrics {
                        m.backoff_ns
                            .add(u64::try_from(wait.as_nanos()).unwrap_or(u64::MAX));
                    }
                }
            }
            let ctx = ProbeContext {
                addr,
                port,
                packet_index: self.stats.packets_sent,
                send_time: self.virtual_now(),
                attempt,
                responsive,
            };
            self.stats.packets_sent += 1;
            self.advance_transmit_clock();
            if let Some(m) = &self.metrics {
                m.packets_sent.inc();
            }
            let mut action = FaultAction::Pass;
            for (index, model) in self.faults.iter_mut().enumerate() {
                let verdict = model.apply(&ctx, &mut self.rng);
                if let Some(m) = &self.metrics {
                    m.record_action(index, verdict);
                }
                action = action.combine(verdict);
            }
            match action {
                FaultAction::Drop => continue,
                FaultAction::Answer => {
                    self.stats.responses += 1;
                    if let Some(m) = &self.metrics {
                        m.responses.inc();
                    }
                    return true;
                }
                FaultAction::Pass => {
                    if responsive {
                        self.stats.responses += 1;
                        if let Some(m) = &self.metrics {
                            m.responses.inc();
                        }
                        return true;
                    }
                    // An unresponsive address never answers; remaining
                    // retries are still transmitted by a real scanner.
                }
            }
        }
        false
    }

    /// Scans a target list on `port`: deduplicates, randomizes probe order
    /// ("We randomized the order of the destination hosts", §6), probes
    /// each target once (plus retries), and returns the hits.
    pub fn scan(&mut self, targets: impl IntoIterator<Item = NybbleAddr>, port: u16) -> ScanResult {
        // Clone the sink handle up front: the span must not borrow `self`
        // across the `&mut self` probe loop.
        let trace = self.config.trace.clone();
        let mut span = maybe_span(trace.as_deref(), "prober", "scan", SpanId::NONE);
        let mut list: Vec<NybbleAddr> = targets.into_iter().collect();
        list.sort_unstable();
        list.dedup();
        list.shuffle(&mut self.rng);
        let before = self.stats.packets_sent;
        let retransmits_before = self.stats.retransmits;
        let mut hits = Vec::new();
        for addr in &list {
            if self.probe(*addr, port) {
                hits.push(*addr);
            }
        }
        span.attr("targets", list.len() as u64);
        span.attr("probes", self.stats.packets_sent - before);
        span.attr("retransmits", self.stats.retransmits - retransmits_before);
        span.attr("hits", hits.len() as u64);
        ScanResult {
            targets: list.len() as u64,
            probes: self.stats.packets_sent - before,
            hits,
        }
    }

    /// Cumulative packet statistics.
    pub fn stats(&self) -> ProbeStats {
        self.stats
    }

    /// The wall-clock time a real scanner would have needed for everything
    /// sent so far: transmit time at the configured rate plus accumulated
    /// retransmission backoff waits.
    pub fn simulated_duration(&self) -> Duration {
        self.virtual_now()
    }

    /// The underlying ground-truth model.
    pub fn internet(&self) -> &'a Internet {
        self.internet
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::{AliasedResponder, Blackhole, GilbertElliott, GilbertElliottConfig, IcmpRateLimit};
    use crate::network::NetworkSpec;
    use crate::scheme::HostScheme;

    fn internet() -> Internet {
        let mut rng = StdRng::seed_from_u64(2);
        Internet::build(
            vec![NetworkSpec::simple(
                "2001:db8::/32".parse().unwrap(),
                64496,
                "Example",
                HostScheme::LowByteSequential,
                50,
            )],
            &mut rng,
        )
        .expect("unique prefixes")
    }

    fn a(s: &str) -> NybbleAddr {
        s.parse().unwrap()
    }

    fn prober(net: &Internet, config: ProbeConfig) -> Prober<'_> {
        Prober::new(net, config).expect("valid probe config")
    }

    #[test]
    fn probe_counts_packets() {
        let net = internet();
        let mut p = prober(&net, ProbeConfig::default());
        assert!(p.probe(a("2001:db8::1"), 80));
        assert!(!p.probe(a("2001:db8::1234"), 80));
        assert_eq!(
            p.stats(),
            ProbeStats {
                packets_sent: 2,
                responses: 1,
                retransmits: 0,
            }
        );
    }

    #[test]
    fn invalid_configs_are_typed_errors() {
        let net = internet();
        let bad_loss = Prober::new(
            &net,
            ProbeConfig {
                loss: 1.5,
                ..ProbeConfig::default()
            },
        );
        assert!(matches!(
            bad_loss,
            Err(FaultConfigError::ProbabilityOutOfRange { what: "loss", .. })
        ));
        assert!(Prober::new(
            &net,
            ProbeConfig {
                loss: f64::NAN,
                ..ProbeConfig::default()
            },
        )
        .is_err());
        assert!(matches!(
            Prober::new(
                &net,
                ProbeConfig {
                    rate_pps: 0,
                    ..ProbeConfig::default()
                },
            ),
            Err(FaultConfigError::NonPositive { what: "rate_pps" })
        ));
        assert!(Prober::new(
            &net,
            ProbeConfig {
                retry: RetryPolicy::ExponentialBackoff {
                    base: Duration::ZERO,
                    cap: Duration::from_secs(1),
                },
                ..ProbeConfig::default()
            },
        )
        .is_err());
    }

    #[test]
    fn scan_finds_exactly_the_active_hosts() {
        let net = internet();
        let mut p = prober(&net, ProbeConfig::default());
        let targets: Vec<NybbleAddr> = (0..100u32)
            .map(|i| NybbleAddr::from_bits(0x2001_0db8u128 << 96 | i as u128))
            .collect();
        let result = p.scan(targets, 80);
        assert_eq!(result.hits.len(), 50, "hosts ::1..=::32 respond");
        assert_eq!(result.targets, 100);
        assert_eq!(result.probes, 100);
        assert!((result.hit_rate() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn scan_deduplicates_targets() {
        let net = internet();
        let mut p = prober(&net, ProbeConfig::default());
        let result = p.scan(vec![a("2001:db8::1"), a("2001:db8::1")], 80);
        assert_eq!(result.targets, 1);
        assert_eq!(result.probes, 1);
        assert_eq!(result.hits, vec![a("2001:db8::1")]);
    }

    #[test]
    fn loss_with_retries_recovers_hosts() {
        let net = internet();
        // 50% loss, no retries: roughly half the hits are missed.
        let mut lossy = prober(
            &net,
            ProbeConfig {
                loss: 0.5,
                retries: 0,
                ..ProbeConfig::default()
            },
        );
        let targets: Vec<NybbleAddr> = (1..=50u32)
            .map(|i| NybbleAddr::from_bits(0x2001_0db8u128 << 96 | i as u128))
            .collect();
        let r = lossy.scan(targets.clone(), 80);
        assert!(r.hits.len() < 45, "lost some: {}", r.hits.len());
        // 50% loss but 9 retries: virtually every host answers.
        let mut retried = prober(
            &net,
            ProbeConfig {
                loss: 0.5,
                retries: 9,
                ..ProbeConfig::default()
            },
        );
        let r = retried.scan(targets, 80);
        assert_eq!(r.hits.len(), 50);
        // Retries cost packets: more than one per target on average.
        assert!(r.probes > 50);
    }

    #[test]
    fn total_loss_with_max_retries_terminates_with_zero_hits() {
        // Edge case: loss = 1.0 drops every packet; retries = u8::MAX must
        // still terminate (50 targets × 256 attempts) with no hits.
        let net = internet();
        let mut p = prober(
            &net,
            ProbeConfig {
                loss: 1.0,
                retries: u8::MAX,
                ..ProbeConfig::default()
            },
        );
        let targets: Vec<NybbleAddr> = (1..=50u32)
            .map(|i| NybbleAddr::from_bits(0x2001_0db8u128 << 96 | i as u128))
            .collect();
        let r = p.scan(targets, 80);
        assert!(r.hits.is_empty());
        assert_eq!(r.probes, 50 * 256);
        assert_eq!(p.stats().retransmits, 50 * 255);
    }

    #[test]
    fn retransmit_budget_caps_retries() {
        let net = internet();
        let mut p = prober(
            &net,
            ProbeConfig {
                loss: 1.0,
                retries: 10,
                retransmit_budget: Some(7),
                ..ProbeConfig::default()
            },
        );
        let targets: Vec<NybbleAddr> = (1..=50u32)
            .map(|i| NybbleAddr::from_bits(0x2001_0db8u128 << 96 | i as u128))
            .collect();
        let r = p.scan(targets, 80);
        // 50 first transmissions plus exactly 7 retransmissions.
        assert_eq!(r.probes, 50 + 7);
        assert_eq!(p.stats().retransmits, 7);
    }

    #[test]
    fn lossless_probe_sends_single_packet_even_with_retries() {
        let net = internet();
        let mut p = prober(
            &net,
            ProbeConfig {
                retries: 3,
                ..ProbeConfig::default()
            },
        );
        assert!(p.probe(a("2001:db8::1"), 80));
        assert_eq!(p.stats().packets_sent, 1, "responsive host answers first probe");
        // Unresponsive host consumes all attempts.
        assert!(!p.probe(a("2001:db8::999"), 80));
        assert_eq!(p.stats().packets_sent, 1 + 4);
    }

    #[test]
    fn simulated_duration_follows_rate() {
        let net = internet();
        let mut p = prober(
            &net,
            ProbeConfig {
                rate_pps: 10,
                ..ProbeConfig::default()
            },
        );
        for i in 0..20u32 {
            p.probe(
                NybbleAddr::from_bits(0x2001_0db8u128 << 96 | i as u128),
                80,
            );
        }
        assert_eq!(p.simulated_duration(), Duration::from_secs(2));
    }

    #[test]
    fn virtual_clock_is_exact_at_large_packet_counts() {
        // rate 3 pps: 10⁹/3 ns per packet does not divide evenly, the case
        // where the old f64 clock (packets_sent / rate_pps recomputed per
        // probe) drifted. The integer clock must be exactly
        // floor(n × 10⁹ / 3) ns at every checkpoint.
        let net = internet();
        let mut p = prober(
            &net,
            ProbeConfig {
                rate_pps: 3,
                ..ProbeConfig::default()
            },
        );
        let dead = a("2001:db8::dead");
        let mut sent: u128 = 0;
        for checkpoint in [1u64, 2, 3, 100, 9999, 100_000, 250_000] {
            while sent < checkpoint as u128 {
                p.probe(dead, 80);
                sent += 1;
            }
            let expected = Duration::from_nanos(((sent * 1_000_000_000) / 3) as u64);
            assert_eq!(
                p.simulated_duration(),
                expected,
                "drift after {sent} packets"
            );
        }
    }

    #[test]
    fn virtual_clock_carry_rollover() {
        // rate 7 pps: remainder accumulation must carry a whole nanosecond
        // exactly when it crosses the rate, never sooner or later.
        let net = internet();
        let mut p = prober(
            &net,
            ProbeConfig {
                rate_pps: 7,
                ..ProbeConfig::default()
            },
        );
        for n in 1u64..=1000 {
            p.probe(a("2001:db8::dead"), 80);
            let expected = Duration::from_nanos(n * 1_000_000_000 / 7);
            assert_eq!(p.simulated_duration(), expected, "after {n} packets");
        }
    }

    #[test]
    fn metrics_record_packets_and_fault_actions() {
        let net = internet();
        let registry = MetricsRegistry::shared();
        let mut p = prober(
            &net,
            ProbeConfig {
                retries: 3,
                faults: vec![Box::new(Blackhole::new(vec![
                    "2001:db8::/127".parse().unwrap() // covers ::0 and ::1 only
                ]))],
                retry: RetryPolicy::ExponentialBackoff {
                    base: Duration::from_millis(100),
                    cap: Duration::from_secs(1),
                },
                metrics: Some(Arc::clone(&registry)),
                ..ProbeConfig::default()
            },
        );
        // Live host inside the blackhole: all 4 attempts dropped.
        assert!(!p.probe(a("2001:db8::1"), 80));
        // Live host outside: answered on the first attempt.
        assert!(p.probe(a("2001:db8::2"), 80));
        let stats = p.stats();
        assert_eq!(registry.counter("prober/packets_sent").get(), stats.packets_sent);
        assert_eq!(registry.counter("prober/responses").get(), stats.responses);
        assert_eq!(registry.counter("prober/retransmits").get(), stats.retransmits);
        assert_eq!(registry.counter("prober/fault/blackhole/drop").get(), 4);
        assert_eq!(registry.counter("prober/fault/blackhole/pass").get(), 1);
        assert_eq!(registry.counter("prober/fault/blackhole/answer").get(), 0);
        // Backoff counter equals the virtual waits: 100 + 200 + 400 ms.
        assert_eq!(
            registry.counter("prober/backoff_ns").get(),
            Duration::from_millis(700).as_nanos() as u64
        );
    }

    #[test]
    fn metrics_do_not_perturb_scans() {
        let net = internet();
        let targets: Vec<NybbleAddr> = (0..60u32)
            .map(|i| NybbleAddr::from_bits(0x2001_0db8u128 << 96 | i as u128))
            .collect();
        let run = |metrics: Option<Arc<MetricsRegistry>>| {
            let mut p = prober(
                &net,
                ProbeConfig {
                    loss: 0.3,
                    retries: 1,
                    faults: bursty_stack(),
                    metrics,
                    ..ProbeConfig::default()
                },
            );
            p.scan(targets.clone(), 80)
        };
        let registry = MetricsRegistry::shared();
        assert_eq!(run(None), run(Some(Arc::clone(&registry))));
        // And the deterministic export is identical across repeat runs.
        let again = MetricsRegistry::shared();
        run(Some(Arc::clone(&again)));
        assert_eq!(registry.deterministic_json(), again.deterministic_json());
    }

    #[test]
    fn scan_records_trace_span_with_packet_attrs() {
        let net = internet();
        let sink = TraceSink::shared();
        let mut p = prober(
            &net,
            ProbeConfig {
                loss: 0.5,
                retries: 2,
                trace: Some(Arc::clone(&sink)),
                ..ProbeConfig::default()
            },
        );
        let targets: Vec<NybbleAddr> = (0..20u32)
            .map(|i| NybbleAddr::from_bits(0x2001_0db8u128 << 96 | i as u128))
            .collect();
        let r = p.scan(targets, 80);
        let spans = sink.snapshot();
        let span = spans
            .iter()
            .find(|s| s.category == "prober" && s.name == "scan")
            .expect("scan span");
        let attr = |key: &str| {
            span.attrs()
                .iter()
                .find(|(k, _)| *k == key)
                .map(|&(_, v)| v)
                .expect("attr present")
        };
        assert_eq!(attr("targets"), 20);
        assert_eq!(attr("probes"), r.probes);
        assert_eq!(attr("hits"), r.hits.len() as u64);
        assert_eq!(attr("retransmits"), p.stats().retransmits);
    }

    #[test]
    fn backoff_waits_count_toward_simulated_duration() {
        let net = internet();
        let mut p = prober(
            &net,
            ProbeConfig {
                loss: 1.0,
                retries: 3,
                rate_pps: 1_000_000,
                retry: RetryPolicy::ExponentialBackoff {
                    base: Duration::from_millis(100),
                    cap: Duration::from_secs(10),
                },
                ..ProbeConfig::default()
            },
        );
        assert!(!p.probe(a("2001:db8::1"), 80));
        // 4 packets of transmit time (4µs) plus 100 + 200 + 400 ms backoff.
        let expected = Duration::from_millis(700);
        let got = p.simulated_duration();
        assert!(
            got >= expected && got < expected + Duration::from_millis(1),
            "duration {got:?}"
        );
    }

    #[test]
    fn scans_are_deterministic() {
        let net = internet();
        let targets: Vec<NybbleAddr> = (0..60u32)
            .map(|i| NybbleAddr::from_bits(0x2001_0db8u128 << 96 | i as u128))
            .collect();
        let r1 = prober(&net, ProbeConfig { loss: 0.3, ..Default::default() })
            .scan(targets.clone(), 80);
        let r2 = prober(&net, ProbeConfig { loss: 0.3, ..Default::default() })
            .scan(targets, 80);
        assert_eq!(r1.hits, r2.hits);
        assert_eq!(r1.probes, r2.probes);
    }

    fn bursty_stack() -> Vec<Box<dyn FaultModel>> {
        vec![
            Box::new(
                GilbertElliott::new(GilbertElliottConfig {
                    mean_good: Duration::from_millis(400),
                    mean_bad: Duration::from_millis(200),
                    loss_good: 0.01,
                    loss_bad: 0.95,
                })
                .unwrap(),
            ),
            Box::new(IcmpRateLimit::new(48, 200.0, 50.0).unwrap()),
        ]
    }

    #[test]
    fn fault_stacks_are_deterministic() {
        // Identical rng_seed + identical fault stack ⇒ identical ScanResult,
        // even with stateful time-driven models in the stack.
        let net = internet();
        let targets: Vec<NybbleAddr> = (0..80u32)
            .map(|i| NybbleAddr::from_bits(0x2001_0db8u128 << 96 | i as u128))
            .collect();
        let run = || {
            let mut p = prober(
                &net,
                ProbeConfig {
                    retries: 2,
                    rate_pps: 500,
                    faults: bursty_stack(),
                    retry: RetryPolicy::ExponentialBackoff {
                        base: Duration::from_millis(50),
                        cap: Duration::from_secs(2),
                    },
                    rng_seed: 0xFA_17,
                    ..ProbeConfig::default()
                },
            );
            p.scan(targets.clone(), 80)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn backoff_beats_immediate_retries_under_bursty_loss() {
        // Same retransmit allowance, same fault stack: spacing retries out
        // lets the Gilbert–Elliott channel leave its burst and the rate
        // limiter refill, so the adaptive prober's hit rate must be at
        // least the immediate prober's.
        let net = internet();
        let targets: Vec<NybbleAddr> = (1..=50u32)
            .map(|i| NybbleAddr::from_bits(0x2001_0db8u128 << 96 | i as u128))
            .collect();
        let run = |retry: RetryPolicy| {
            let mut p = prober(
                &net,
                ProbeConfig {
                    retries: 3,
                    rate_pps: 100,
                    faults: bursty_stack(),
                    retry,
                    ..ProbeConfig::default()
                },
            );
            p.scan(targets.clone(), 80).hit_rate()
        };
        let immediate = run(RetryPolicy::Immediate);
        let adaptive = run(RetryPolicy::ExponentialBackoff {
            base: Duration::from_millis(250),
            cap: Duration::from_secs(4),
        });
        assert!(
            adaptive >= immediate,
            "adaptive {adaptive} < immediate {immediate}"
        );
        assert!(adaptive > 0.8, "adaptive recovered only {adaptive}");
    }

    #[test]
    fn blackhole_and_aliased_fault_regions_shape_scans() {
        let net = internet();
        let mut p = prober(
            &net,
            ProbeConfig {
                faults: vec![
                    Box::new(Blackhole::new(vec!["2001:db8::/112".parse().unwrap()])),
                    Box::new(AliasedResponder::new(vec![
                        "2001:db8:aaaa::/48".parse().unwrap()
                    ])),
                ],
                ..ProbeConfig::default()
            },
        );
        // Live host inside the blackhole: unreachable.
        assert!(!p.probe(a("2001:db8::1"), 80));
        // Dead address inside the aliased fault region: answers anyway.
        assert!(p.probe(a("2001:db8:aaaa::1234"), 80));
        // Unaffected dead address: still dead.
        assert!(!p.probe(a("2001:db8:1::1"), 80));
    }
}
