//! [`Internet`]: the assembled ground-truth model — networks, routing, and
//! seed extraction.

use crate::network::{HostKind, Network, NetworkSpec};
use rand::rngs::StdRng;
use rand::Rng;
use sixgen_addr::{NybbleAddr, Prefix};
use sixgen_routing::{AsRegistry, PrefixTable};
use std::collections::HashMap;
use std::fmt;

/// Why an [`Internet`] could not be assembled from its specs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// Two specs announced the same routed prefix.
    DuplicatePrefix(Prefix),
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::DuplicatePrefix(prefix) => {
                write!(f, "duplicate routed prefix {prefix}")
            }
        }
    }
}

impl std::error::Error for BuildError {}

/// One seed address as extracted from a (simulated) DNS corpus: the address
/// plus the record kind it came from, enabling host-type experiments
/// (§6.7.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeedRecord {
    /// The seed address.
    pub addr: NybbleAddr,
    /// The service kind of the host the record points at.
    pub kind: HostKind,
}

/// How seeds are extracted from the ground truth, modeling a DNS-derived
/// corpus like the Rapid7 Forward DNS ANY dataset (§6.1).
#[derive(Debug, Clone)]
pub struct SeedExtraction {
    /// Fraction of each network's *active* hosts that appear in the corpus
    /// (DNS never sees every host).
    pub visibility: f64,
    /// Fraction of each network's *churned* hosts that (still) appear in
    /// the corpus — stale records pointing at now-dead addresses (§6.6).
    pub stale_visibility: f64,
}

impl Default for SeedExtraction {
    fn default() -> Self {
        SeedExtraction {
            visibility: 0.5,
            stale_visibility: 0.8,
        }
    }
}

/// The simulated IPv6 Internet: materialized networks plus the BGP view.
///
/// ```
/// use sixgen_simnet::{HostScheme, Internet, NetworkSpec};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(7);
/// let internet = Internet::build(
///     vec![NetworkSpec::simple(
///         "2001:db8::/32".parse().unwrap(),
///         64496,
///         "Example",
///         HostScheme::LowByteSequential,
///         100,
///     )],
///     &mut rng,
/// )
/// .expect("unique prefixes");
/// assert!(internet.is_responsive("2001:db8::42".parse().unwrap(), 80));
/// assert!(!internet.is_responsive("2001:db8::4242".parse().unwrap(), 80));
/// ```
#[derive(Debug)]
pub struct Internet {
    networks: Vec<Network>,
    table: PrefixTable,
    registry: AsRegistry,
    /// Routed prefix → index into `networks`.
    by_prefix: HashMap<Prefix, usize>,
}

impl Internet {
    /// Materializes all specs into ground truth and builds the routing
    /// view. Deterministic for a given RNG state. Two specs announcing the
    /// same prefix is a [`BuildError`] (it used to be a panic).
    pub fn build(specs: Vec<NetworkSpec>, rng: &mut StdRng) -> Result<Internet, BuildError> {
        let mut table = PrefixTable::new();
        let mut registry = AsRegistry::new();
        let mut by_prefix = HashMap::new();
        let mut networks = Vec::with_capacity(specs.len());
        for spec in specs {
            if table.insert(spec.prefix, spec.asn).is_some() {
                return Err(BuildError::DuplicatePrefix(spec.prefix));
            }
            registry.register(spec.asn, spec.name.clone());
            by_prefix.insert(spec.prefix, networks.len());
            networks.push(Network::materialize(spec, rng));
        }
        Ok(Internet {
            networks,
            table,
            registry,
            by_prefix,
        })
    }

    /// The network owning `addr`, by longest-prefix match.
    pub fn network_of(&self, addr: NybbleAddr) -> Option<&Network> {
        let prefix = self.table.routed_prefix(addr)?;
        self.by_prefix.get(&prefix).map(|&i| &self.networks[i])
    }

    /// Ground truth: does `addr` respond on `port`?
    pub fn is_responsive(&self, addr: NybbleAddr, port: u16) -> bool {
        self.network_of(addr)
            .is_some_and(|n| n.is_responsive(addr, port))
    }

    /// All materialized networks.
    pub fn networks(&self) -> &[Network] {
        &self.networks
    }

    /// The BGP prefix table.
    pub fn table(&self) -> &PrefixTable {
        &self.table
    }

    /// AS metadata.
    pub fn registry(&self) -> &AsRegistry {
        &self.registry
    }

    /// Total number of active hosts across all networks (aliased regions
    /// excluded — they are unbounded).
    pub fn active_host_count(&self) -> usize {
        self.networks.iter().map(|n| n.active_count()).sum()
    }

    /// Extracts a seed corpus: a deterministic sample of active (and stale)
    /// host addresses with their record kinds, across every network.
    pub fn extract_seeds(&self, extraction: &SeedExtraction, rng: &mut StdRng) -> Vec<SeedRecord> {
        let mut seeds = Vec::new();
        for network in &self.networks {
            // Iterate in sorted order for determinism (HashMap order is
            // randomized between runs).
            let mut active: Vec<(&NybbleAddr, &HostKind)> = network.active().iter().collect();
            active.sort_by_key(|(a, _)| **a);
            for (addr, kind) in active {
                if rng.gen_bool(extraction.visibility) {
                    seeds.push(SeedRecord {
                        addr: *addr,
                        kind: *kind,
                    });
                }
            }
            let mut churned: Vec<(&NybbleAddr, &HostKind)> = network.churned().iter().collect();
            churned.sort_by_key(|(a, _)| **a);
            for (addr, kind) in churned {
                if rng.gen_bool(extraction.stale_visibility) {
                    seeds.push(SeedRecord {
                        addr: *addr,
                        kind: *kind,
                    });
                }
            }
        }
        seeds
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::{HostPopulation, SubnetPlan};
    use crate::scheme::HostScheme;
    use rand::SeedableRng;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    fn build() -> Internet {
        let mut rng = StdRng::seed_from_u64(11);
        Internet::build(
            vec![
                NetworkSpec::simple(
                    p("2001:db8::/32"),
                    64496,
                    "Alpha",
                    HostScheme::LowByteSequential,
                    20,
                ),
                NetworkSpec {
                    prefix: p("2620:100::/40"),
                    asn: 64497,
                    name: "Beta".into(),
                    populations: vec![HostPopulation {
                        scheme: HostScheme::Wordy,
                        subnets: SubnetPlan::Single(3),
                        count: 10,
                        churned: 4,
                        kind: HostKind::NameServer,
                    }],
                    aliased: Vec::new(),
                    ports: vec![80, 53],
                },
            ],
            &mut rng,
        )
        .expect("unique prefixes")
    }

    #[test]
    fn responsiveness_respects_routing() {
        let net = build();
        assert!(net.is_responsive("2001:db8::5".parse().unwrap(), 80));
        assert!(!net.is_responsive("2001:db9::5".parse().unwrap(), 80), "unrouted");
        assert_eq!(net.active_host_count(), 30);
    }

    #[test]
    fn network_of_uses_lpm() {
        let net = build();
        assert_eq!(net.network_of("2001:db8::1".parse().unwrap()).unwrap().spec().asn, 64496);
        assert_eq!(net.network_of("2620:100::1".parse().unwrap()).unwrap().spec().asn, 64497);
        assert!(net.network_of("fe80::1".parse().unwrap()).is_none());
    }

    #[test]
    fn seed_extraction_is_deterministic_and_tagged() {
        let net = build();
        let extraction = SeedExtraction {
            visibility: 1.0,
            stale_visibility: 1.0,
        };
        let mut r1 = StdRng::seed_from_u64(3);
        let mut r2 = StdRng::seed_from_u64(3);
        let s1 = net.extract_seeds(&extraction, &mut r1);
        let s2 = net.extract_seeds(&extraction, &mut r2);
        assert_eq!(s1, s2);
        assert_eq!(s1.len(), 34, "20 active + 10 active + 4 stale");
        let ns = s1.iter().filter(|s| s.kind == HostKind::NameServer).count();
        assert_eq!(ns, 14);
    }

    #[test]
    fn seed_extraction_visibility_subsamples() {
        let net = build();
        let mut rng = StdRng::seed_from_u64(3);
        let all = net.extract_seeds(
            &SeedExtraction { visibility: 1.0, stale_visibility: 0.0 },
            &mut rng,
        );
        assert_eq!(all.len(), 30);
        let mut rng = StdRng::seed_from_u64(3);
        let half = net.extract_seeds(
            &SeedExtraction { visibility: 0.5, stale_visibility: 0.0 },
            &mut rng,
        );
        assert!(half.len() < 30 && !half.is_empty());
        // Seeds point at actual (current or former) hosts.
        for s in &half {
            assert!(net.network_of(s.addr).is_some());
        }
    }

    #[test]
    fn duplicate_prefix_rejected() {
        let mut rng = StdRng::seed_from_u64(1);
        let err = Internet::build(
            vec![
                NetworkSpec::simple(p("2001:db8::/32"), 1, "A", HostScheme::LowByteSequential, 1),
                NetworkSpec::simple(p("2001:db8::/32"), 2, "B", HostScheme::LowByteSequential, 1),
            ],
            &mut rng,
        )
        .unwrap_err();
        assert_eq!(err, BuildError::DuplicatePrefix(p("2001:db8::/32")));
        assert_eq!(err.to_string(), "duplicate routed prefix 2001:db8::/32");
    }
}
