//! Composable fault models for the simulated scanner.
//!
//! Real Internet-wide scans do not observe clean ground truth: packets are
//! lost independently and in bursts, routers rate-limit their responses,
//! and whole regions are blackholed or answer for every address (§6.2's
//! aliased prefixes). Each phenomenon is a [`FaultModel`]; a
//! [`Prober`](crate::Prober) carries a stack of them and consults every
//! model for every probe packet.
//!
//! Models are *stateful* (a Gilbert–Elliott channel remembers its state, a
//! token bucket its fill level) and *virtual-time driven*: they see the
//! probe's [`send_time`](ProbeContext::send_time) on the prober's simulated
//! clock, so time-dependent behaviour (burst decay, bucket refill) reacts
//! to retransmission backoff exactly as it would on the wire. Everything is
//! deterministic given the prober's RNG seed.
//!
//! Verdicts combine across the stack with precedence
//! [`Drop`](FaultAction::Drop) > [`Answer`](FaultAction::Answer) >
//! [`Pass`](FaultAction::Pass): a lost packet is lost no matter what an
//! aliased region would have said.

use rand::rngs::StdRng;
use rand::Rng;
use sixgen_addr::{NybbleAddr, Prefix};
use std::collections::HashMap;
use std::fmt;
use std::time::Duration;

/// Everything a fault model may observe about one probe packet.
#[derive(Debug, Clone, Copy)]
pub struct ProbeContext {
    /// Target address.
    pub addr: NybbleAddr,
    /// Target port.
    pub port: u16,
    /// Index of this packet in the prober's lifetime (0-based).
    pub packet_index: u64,
    /// Virtual send time on the prober's simulated clock (transmit time at
    /// the configured rate plus accumulated retransmission backoff).
    pub send_time: Duration,
    /// Attempt number for this target within the current probe call
    /// (0 = first transmission).
    pub attempt: u32,
    /// Whether ground truth says the target would answer.
    pub responsive: bool,
}

/// A fault model's verdict for one probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FaultAction {
    /// No opinion: ground truth decides.
    #[default]
    Pass,
    /// The probe is answered regardless of ground truth (aliased or
    /// middlebox-answered space).
    Answer,
    /// The probe (or its response) is lost.
    Drop,
}

impl FaultAction {
    /// Combines two verdicts with `Drop > Answer > Pass` precedence.
    pub fn combine(self, other: FaultAction) -> FaultAction {
        use FaultAction::*;
        match (self, other) {
            (Drop, _) | (_, Drop) => Drop,
            (Answer, _) | (_, Answer) => Answer,
            (Pass, Pass) => Pass,
        }
    }
}

/// A composable network fault.
///
/// Implementations must be deterministic functions of their configuration,
/// their accumulated state, the probe context, and the supplied RNG — the
/// prober's reproducibility guarantee rests on it.
pub trait FaultModel: fmt::Debug + Send {
    /// Judges one probe packet. Called exactly once per transmitted packet,
    /// in transmission order, with monotonically non-decreasing
    /// [`send_time`](ProbeContext::send_time).
    fn apply(&mut self, ctx: &ProbeContext, rng: &mut StdRng) -> FaultAction;

    /// Clones the model into a fresh box (object-safe `Clone`).
    fn clone_box(&self) -> Box<dyn FaultModel>;

    /// Stable short name for metrics keys (`prober/fault/<name>/...`).
    /// Two models with the same name in one stack share counters.
    fn name(&self) -> &'static str {
        "fault"
    }
}

impl Clone for Box<dyn FaultModel> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// An invalid fault-model (or prober) configuration.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultConfigError {
    /// A probability parameter is outside `[0, 1]` (or not a number).
    ProbabilityOutOfRange {
        /// Which parameter.
        what: &'static str,
        /// The offending value.
        value: f64,
    },
    /// A duration or rate parameter must be positive and finite.
    NonPositive {
        /// Which parameter.
        what: &'static str,
    },
    /// A prefix length exceeds 128 bits.
    PrefixTooLong {
        /// The offending length.
        len: u8,
    },
}

impl fmt::Display for FaultConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultConfigError::ProbabilityOutOfRange { what, value } => {
                write!(f, "{what} = {value} is outside [0, 1]")
            }
            FaultConfigError::NonPositive { what } => {
                write!(f, "{what} must be positive and finite")
            }
            FaultConfigError::PrefixTooLong { len } => {
                write!(f, "prefix length {len} exceeds 128")
            }
        }
    }
}

impl std::error::Error for FaultConfigError {}

fn check_probability(what: &'static str, value: f64) -> Result<f64, FaultConfigError> {
    if (0.0..=1.0).contains(&value) {
        Ok(value)
    } else {
        Err(FaultConfigError::ProbabilityOutOfRange { what, value })
    }
}

/// Independent (i.i.d.) packet loss: every packet is dropped with the same
/// probability. Subsumes the prober's legacy `loss` field.
#[derive(Debug, Clone)]
pub struct UniformLoss {
    loss: f64,
}

impl UniformLoss {
    /// Validates `loss ∈ [0, 1]`.
    pub fn new(loss: f64) -> Result<UniformLoss, FaultConfigError> {
        Ok(UniformLoss {
            loss: check_probability("loss", loss)?,
        })
    }

    /// The configured loss probability.
    pub fn loss(&self) -> f64 {
        self.loss
    }
}

impl FaultModel for UniformLoss {
    fn apply(&mut self, _ctx: &ProbeContext, rng: &mut StdRng) -> FaultAction {
        if self.loss > 0.0 && rng.gen_bool(self.loss) {
            FaultAction::Drop
        } else {
            FaultAction::Pass
        }
    }

    fn clone_box(&self) -> Box<dyn FaultModel> {
        Box::new(self.clone())
    }

    fn name(&self) -> &'static str {
        "uniform_loss"
    }
}

/// Parameters for the [`GilbertElliott`] bursty-loss channel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GilbertElliottConfig {
    /// Mean sojourn time in the good state.
    pub mean_good: Duration,
    /// Mean sojourn time in the bad (burst) state.
    pub mean_bad: Duration,
    /// Loss probability while the channel is good.
    pub loss_good: f64,
    /// Loss probability while the channel is bad.
    pub loss_bad: f64,
}

impl Default for GilbertElliottConfig {
    fn default() -> Self {
        GilbertElliottConfig {
            mean_good: Duration::from_secs(2),
            mean_bad: Duration::from_millis(200),
            loss_good: 0.005,
            loss_bad: 0.9,
        }
    }
}

/// Bursty packet loss: a continuous-time Gilbert–Elliott channel.
///
/// The channel alternates between a *good* and a *bad* state with
/// exponentially distributed sojourn times, advanced along the prober's
/// virtual clock. Packets sent back-to-back therefore share channel state
/// (a burst eats a whole retry volley), while a retransmission delayed by
/// backoff sees the channel with a fresh chance of having recovered — the
/// mechanism that lets adaptive retries outperform immediate ones.
#[derive(Debug, Clone)]
pub struct GilbertElliott {
    config: GilbertElliottConfig,
    in_bad: bool,
    /// Virtual time up to which the chain has been advanced.
    clock: Duration,
}

impl GilbertElliott {
    /// Validates probabilities and sojourn times.
    pub fn new(config: GilbertElliottConfig) -> Result<GilbertElliott, FaultConfigError> {
        check_probability("loss_good", config.loss_good)?;
        check_probability("loss_bad", config.loss_bad)?;
        if config.mean_good.is_zero() {
            return Err(FaultConfigError::NonPositive { what: "mean_good" });
        }
        if config.mean_bad.is_zero() {
            return Err(FaultConfigError::NonPositive { what: "mean_bad" });
        }
        Ok(GilbertElliott {
            config,
            in_bad: false,
            clock: Duration::ZERO,
        })
    }

    /// Whether the channel is currently in the bad (burst) state.
    pub fn in_bad_state(&self) -> bool {
        self.in_bad
    }

    /// Advances the two-state chain to virtual time `until`. Sojourn times
    /// are exponential, so stopping mid-sojourn and resampling later is
    /// distribution-preserving (memorylessness).
    fn advance(&mut self, until: Duration, rng: &mut StdRng) {
        while self.clock < until {
            let mean = if self.in_bad {
                self.config.mean_bad
            } else {
                self.config.mean_good
            };
            let dwell = exp_sample(mean, rng);
            if self.clock + dwell >= until {
                self.clock = until;
                return;
            }
            self.clock += dwell;
            self.in_bad = !self.in_bad;
        }
    }
}

/// An exponentially distributed duration with the given mean.
fn exp_sample(mean: Duration, rng: &mut StdRng) -> Duration {
    let u: f64 = rng.gen();
    // 1 - u ∈ (0, 1] keeps ln() finite.
    Duration::from_secs_f64(-(1.0 - u).ln() * mean.as_secs_f64())
}

impl FaultModel for GilbertElliott {
    fn apply(&mut self, ctx: &ProbeContext, rng: &mut StdRng) -> FaultAction {
        self.advance(ctx.send_time, rng);
        let loss = if self.in_bad {
            self.config.loss_bad
        } else {
            self.config.loss_good
        };
        if loss > 0.0 && rng.gen_bool(loss) {
            FaultAction::Drop
        } else {
            FaultAction::Pass
        }
    }

    fn clone_box(&self) -> Box<dyn FaultModel> {
        Box::new(self.clone())
    }

    fn name(&self) -> &'static str {
        "gilbert_elliott"
    }
}

#[derive(Debug, Clone, Copy)]
struct TokenBucket {
    tokens: f64,
    refilled_at: Duration,
}

/// Per-prefix response rate limiting, as routers apply to ICMPv6 (and some
/// stacks to SYN/ACK generation): each covering prefix of the configured
/// length owns a token bucket; a response is only delivered when a token is
/// available. Buckets refill along the prober's virtual clock, so spacing
/// retransmissions out (backoff) recovers responses that an immediate retry
/// volley would lose.
///
/// Probes to unresponsive space pass through untouched — there is no
/// response to suppress.
#[derive(Debug, Clone)]
pub struct IcmpRateLimit {
    prefix_len: u8,
    rate_per_sec: f64,
    burst: f64,
    buckets: HashMap<u128, TokenBucket>,
}

impl IcmpRateLimit {
    /// A limiter granting `rate_per_sec` responses per second with bucket
    /// capacity `burst`, per prefix of length `prefix_len`.
    pub fn new(
        prefix_len: u8,
        rate_per_sec: f64,
        burst: f64,
    ) -> Result<IcmpRateLimit, FaultConfigError> {
        if prefix_len > 128 {
            return Err(FaultConfigError::PrefixTooLong { len: prefix_len });
        }
        if !(rate_per_sec.is_finite() && rate_per_sec > 0.0) {
            return Err(FaultConfigError::NonPositive {
                what: "rate_per_sec",
            });
        }
        if !(burst.is_finite() && burst >= 1.0) {
            return Err(FaultConfigError::NonPositive { what: "burst" });
        }
        Ok(IcmpRateLimit {
            prefix_len,
            rate_per_sec,
            burst,
            buckets: HashMap::new(),
        })
    }

    fn key(&self, addr: NybbleAddr) -> u128 {
        if self.prefix_len == 0 {
            0
        } else {
            addr.bits() >> (128 - self.prefix_len as u32)
        }
    }
}

impl FaultModel for IcmpRateLimit {
    fn apply(&mut self, ctx: &ProbeContext, _rng: &mut StdRng) -> FaultAction {
        if !ctx.responsive {
            return FaultAction::Pass;
        }
        let key = self.key(ctx.addr);
        let bucket = self.buckets.entry(key).or_insert(TokenBucket {
            tokens: self.burst,
            refilled_at: ctx.send_time,
        });
        let elapsed = ctx.send_time.saturating_sub(bucket.refilled_at);
        bucket.tokens = (bucket.tokens + elapsed.as_secs_f64() * self.rate_per_sec).min(self.burst);
        bucket.refilled_at = ctx.send_time;
        if bucket.tokens >= 1.0 {
            bucket.tokens -= 1.0;
            FaultAction::Pass
        } else {
            FaultAction::Drop
        }
    }

    fn clone_box(&self) -> Box<dyn FaultModel> {
        Box::new(self.clone())
    }

    fn name(&self) -> &'static str {
        "icmp_rate_limit"
    }
}

/// Blackholed regions: every probe into a listed prefix vanishes (filtered
/// or unrouted space that silently discards traffic).
#[derive(Debug, Clone)]
pub struct Blackhole {
    prefixes: Vec<Prefix>,
}

impl Blackhole {
    /// Blackholes the given prefixes.
    pub fn new(prefixes: Vec<Prefix>) -> Blackhole {
        Blackhole { prefixes }
    }
}

impl FaultModel for Blackhole {
    fn apply(&mut self, ctx: &ProbeContext, _rng: &mut StdRng) -> FaultAction {
        if self.prefixes.iter().any(|p| p.contains(ctx.addr)) {
            FaultAction::Drop
        } else {
            FaultAction::Pass
        }
    }

    fn clone_box(&self) -> Box<dyn FaultModel> {
        Box::new(self.clone())
    }

    fn name(&self) -> &'static str {
        "blackhole"
    }
}

/// Aliased regions injected at the network layer: every probe into a listed
/// prefix is answered regardless of ground truth (§6.2's fully responsive
/// prefixes, as a fault rather than a property of a
/// [`NetworkSpec`](crate::NetworkSpec)).
#[derive(Debug, Clone)]
pub struct AliasedResponder {
    prefixes: Vec<Prefix>,
}

impl AliasedResponder {
    /// Makes the given prefixes answer every probe.
    pub fn new(prefixes: Vec<Prefix>) -> AliasedResponder {
        AliasedResponder { prefixes }
    }
}

impl FaultModel for AliasedResponder {
    fn apply(&mut self, ctx: &ProbeContext, _rng: &mut StdRng) -> FaultAction {
        if self.prefixes.iter().any(|p| p.contains(ctx.addr)) {
            FaultAction::Answer
        } else {
            FaultAction::Pass
        }
    }

    fn clone_box(&self) -> Box<dyn FaultModel> {
        Box::new(self.clone())
    }

    fn name(&self) -> &'static str {
        "aliased_responder"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn ctx(addr: &str, t_ms: u64, responsive: bool) -> ProbeContext {
        ProbeContext {
            addr: addr.parse().unwrap(),
            port: 80,
            packet_index: 0,
            send_time: Duration::from_millis(t_ms),
            attempt: 0,
            responsive,
        }
    }

    #[test]
    fn action_precedence() {
        use FaultAction::*;
        assert_eq!(Pass.combine(Pass), Pass);
        assert_eq!(Pass.combine(Answer), Answer);
        assert_eq!(Answer.combine(Drop), Drop);
        assert_eq!(Drop.combine(Answer), Drop);
        assert_eq!(Drop.combine(Pass), Drop);
    }

    #[test]
    fn uniform_loss_validates() {
        assert!(UniformLoss::new(0.0).is_ok());
        assert!(UniformLoss::new(1.0).is_ok());
        assert!(matches!(
            UniformLoss::new(-0.1),
            Err(FaultConfigError::ProbabilityOutOfRange { what: "loss", .. })
        ));
        assert!(UniformLoss::new(1.5).is_err());
        assert!(UniformLoss::new(f64::NAN).is_err());
    }

    #[test]
    fn uniform_loss_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut all = UniformLoss::new(1.0).unwrap();
        let mut none = UniformLoss::new(0.0).unwrap();
        for i in 0..50 {
            assert_eq!(all.apply(&ctx("2001:db8::1", i, true), &mut rng), FaultAction::Drop);
            assert_eq!(none.apply(&ctx("2001:db8::1", i, true), &mut rng), FaultAction::Pass);
        }
    }

    #[test]
    fn gilbert_elliott_validates() {
        let ok = GilbertElliottConfig::default();
        assert!(GilbertElliott::new(ok).is_ok());
        assert!(GilbertElliott::new(GilbertElliottConfig {
            loss_bad: 1.2,
            ..ok
        })
        .is_err());
        assert!(GilbertElliott::new(GilbertElliottConfig {
            mean_good: Duration::ZERO,
            ..ok
        })
        .is_err());
    }

    #[test]
    fn gilbert_elliott_loses_in_bursts() {
        // All-or-nothing states make the burst structure visible: loss
        // only happens in the bad state, and the observed loss fraction
        // must sit strictly between the two state probabilities.
        let mut ge = GilbertElliott::new(GilbertElliottConfig {
            mean_good: Duration::from_millis(100),
            mean_bad: Duration::from_millis(100),
            loss_good: 0.0,
            loss_bad: 1.0,
        })
        .unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let mut dropped = 0u32;
        let total = 2_000u32;
        for i in 0..total {
            // One packet per millisecond of virtual time.
            if ge.apply(&ctx("2001:db8::1", i as u64, true), &mut rng) == FaultAction::Drop {
                dropped += 1;
            }
        }
        let fraction = dropped as f64 / total as f64;
        assert!(
            (0.2..=0.8).contains(&fraction),
            "loss fraction {fraction} not near the 0.5 stationary share"
        );
    }

    #[test]
    fn gilbert_elliott_is_deterministic() {
        let config = GilbertElliottConfig::default();
        let run = || {
            let mut ge = GilbertElliott::new(config).unwrap();
            let mut rng = StdRng::seed_from_u64(3);
            (0..500u64)
                .map(|i| ge.apply(&ctx("2001:db8::1", i, true), &mut rng))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn rate_limit_validates() {
        assert!(IcmpRateLimit::new(64, 10.0, 5.0).is_ok());
        assert!(IcmpRateLimit::new(129, 10.0, 5.0).is_err());
        assert!(IcmpRateLimit::new(64, 0.0, 5.0).is_err());
        assert!(IcmpRateLimit::new(64, 10.0, 0.5).is_err());
    }

    #[test]
    fn rate_limit_exhausts_burst_and_refills() {
        // 1 token/sec, burst 3, one /64 bucket.
        let mut rl = IcmpRateLimit::new(64, 1.0, 3.0).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        // Back-to-back packets at t=0: first 3 pass, rest drop.
        for i in 0..5 {
            let expected = if i < 3 { FaultAction::Pass } else { FaultAction::Drop };
            assert_eq!(rl.apply(&ctx("2001:db8::1", 0, true), &mut rng), expected, "packet {i}");
        }
        // 2 seconds later: 2 tokens refilled.
        assert_eq!(rl.apply(&ctx("2001:db8::2", 2_000, true), &mut rng), FaultAction::Pass);
        assert_eq!(rl.apply(&ctx("2001:db8::3", 2_000, true), &mut rng), FaultAction::Pass);
        assert_eq!(rl.apply(&ctx("2001:db8::4", 2_000, true), &mut rng), FaultAction::Drop);
        // A different /64 has its own untouched bucket.
        assert_eq!(
            rl.apply(&ctx("2001:db8:0:1::1", 2_000, true), &mut rng),
            FaultAction::Pass
        );
    }

    #[test]
    fn rate_limit_ignores_unresponsive_targets() {
        let mut rl = IcmpRateLimit::new(64, 1.0, 1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        // Unresponsive probes neither consume tokens nor get dropped.
        for _ in 0..10 {
            assert_eq!(rl.apply(&ctx("2001:db8::9", 0, false), &mut rng), FaultAction::Pass);
        }
        assert_eq!(rl.apply(&ctx("2001:db8::1", 0, true), &mut rng), FaultAction::Pass);
        assert_eq!(rl.apply(&ctx("2001:db8::1", 0, true), &mut rng), FaultAction::Drop);
    }

    #[test]
    fn blackhole_and_aliased_regions() {
        let inside = "2001:db8:dead::1";
        let outside = "2001:db8::1";
        let prefix: Prefix = "2001:db8:dead::/48".parse().unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let mut bh = Blackhole::new(vec![prefix]);
        assert_eq!(bh.apply(&ctx(inside, 0, true), &mut rng), FaultAction::Drop);
        assert_eq!(bh.apply(&ctx(outside, 0, true), &mut rng), FaultAction::Pass);
        let mut al = AliasedResponder::new(vec![prefix]);
        assert_eq!(al.apply(&ctx(inside, 0, false), &mut rng), FaultAction::Answer);
        assert_eq!(al.apply(&ctx(outside, 0, false), &mut rng), FaultAction::Pass);
    }

    #[test]
    fn boxed_models_clone() {
        let stack: Vec<Box<dyn FaultModel>> = vec![
            Box::new(UniformLoss::new(0.1).unwrap()),
            Box::new(GilbertElliott::new(GilbertElliottConfig::default()).unwrap()),
            Box::new(IcmpRateLimit::new(64, 10.0, 5.0).unwrap()),
        ];
        let cloned = stack.clone();
        assert_eq!(cloned.len(), 3);
    }
}
