//! Alias detection (§6.2 of the paper).
//!
//! The paper discovered that in many networks *every* address of a large
//! prefix responds (e.g. an Akamai /56 fully responsive on TCP/80), so raw
//! hit counts wildly overstate the number of distinct hosts. Its
//! best-effort detector: for each /96 prefix containing at least one hit,
//! probe **three random addresses** with **three TCP SYNs each**; if all
//! three addresses respond at least once, classify the prefix aliased. The
//! probability of falsely flagging a non-aliased /96 — even one with a
//! million responsive addresses — is below 10⁻¹⁰.
//!
//! This module implements that detector at any prefix granularity (the
//! paper also manually inspected /112s for two ASes), plus hit filtering.

use crate::network::random_addr_in_prefix;
use crate::prober::Prober;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sixgen_addr::{NybbleAddr, Prefix};
use std::collections::{BTreeMap, HashSet};

/// Alias-detection parameters. Defaults follow §6.2 exactly.
#[derive(Debug, Clone)]
pub struct DealiasConfig {
    /// Granularity: prefixes of this length are tested (96 in the paper;
    /// 112 for the per-AS refinement).
    pub prefix_len: u8,
    /// Random addresses drawn per prefix (3 in the paper).
    pub addresses_per_prefix: u32,
    /// Probes sent to each drawn address (3 in the paper).
    pub probes_per_address: u32,
    /// RNG seed for address draws.
    pub rng_seed: u64,
}

impl Default for DealiasConfig {
    fn default() -> Self {
        DealiasConfig {
            prefix_len: 96,
            addresses_per_prefix: 3,
            probes_per_address: 3,
            rng_seed: 0xA11A5,
        }
    }
}

/// Outcome of an alias-detection pass.
#[derive(Debug, Clone)]
pub struct AliasReport {
    /// Prefixes (at the configured granularity) classified aliased.
    pub aliased: HashSet<Prefix>,
    /// Number of prefixes tested (every prefix that contained a hit).
    pub tested: u64,
    /// Probe packets spent on detection.
    pub probes: u64,
    /// The granularity used.
    pub prefix_len: u8,
}

impl AliasReport {
    /// `true` if `addr` lies in a prefix classified aliased.
    pub fn is_aliased(&self, addr: NybbleAddr) -> bool {
        self.aliased.contains(&Prefix::of(addr, self.prefix_len))
    }

    /// Splits hits into `(non_aliased, aliased)` per this report.
    pub fn split<'a>(
        &self,
        hits: impl IntoIterator<Item = &'a NybbleAddr>,
    ) -> (Vec<NybbleAddr>, Vec<NybbleAddr>) {
        let mut non_aliased = Vec::new();
        let mut aliased = Vec::new();
        for &hit in hits {
            if self.is_aliased(hit) {
                aliased.push(hit);
            } else {
                non_aliased.push(hit);
            }
        }
        (non_aliased, aliased)
    }
}

/// Runs the §6.2 detector over a hit list: every `cfg.prefix_len` prefix
/// containing at least one hit is actively tested through `prober`.
pub fn detect_aliased(
    prober: &mut Prober<'_>,
    hits: &[NybbleAddr],
    port: u16,
    cfg: &DealiasConfig,
) -> AliasReport {
    // BTreeMap for deterministic iteration order.
    let mut prefixes: BTreeMap<Prefix, ()> = BTreeMap::new();
    for &hit in hits {
        prefixes.insert(Prefix::of(hit, cfg.prefix_len), ());
    }
    let mut rng = StdRng::seed_from_u64(cfg.rng_seed);
    let mut aliased = HashSet::new();
    let before = prober.stats().packets_sent;
    for (&prefix, _) in prefixes.iter() {
        let mut all_responded = true;
        for _ in 0..cfg.addresses_per_prefix {
            let addr = random_addr_in_prefix(prefix, &mut rng);
            if !prober.probe_attempts(addr, port, cfg.probes_per_address) {
                all_responded = false;
                // A real pipeline still probes the remaining addresses of a
                // batch; we can short-circuit, as the classification is
                // already decided. Packet counts therefore form a lower
                // bound, as in any early-terminating scanner.
                break;
            }
        }
        if all_responded {
            aliased.insert(prefix);
        }
    }
    AliasReport {
        aliased,
        tested: prefixes.len() as u64,
        probes: prober.stats().packets_sent - before,
        prefix_len: cfg.prefix_len,
    }
}

/// Convenience wrapper: detect at /96, split the hits, and return
/// `(report, non_aliased_hits, aliased_hits)`.
pub fn dealias_hits(
    prober: &mut Prober<'_>,
    hits: &[NybbleAddr],
    port: u16,
    cfg: &DealiasConfig,
) -> (AliasReport, Vec<NybbleAddr>, Vec<NybbleAddr>) {
    let report = detect_aliased(prober, hits, port, cfg);
    let (non_aliased, aliased) = report.split(hits.iter());
    (report, non_aliased, aliased)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::internet::Internet;
    use crate::network::{AliasedRegion, NetworkSpec};
    use crate::prober::ProbeConfig;
    use crate::scheme::HostScheme;

    fn a(s: &str) -> NybbleAddr {
        s.parse().unwrap()
    }

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    /// One honest network plus one CDN with a fully-aliased /64.
    fn internet() -> Internet {
        let mut rng = StdRng::seed_from_u64(4);
        Internet::build(
            vec![
                NetworkSpec::simple(
                    p("2001:db8::/32"),
                    64496,
                    "Honest",
                    HostScheme::LowByteSequential,
                    100,
                ),
                NetworkSpec {
                    prefix: p("2600:aaaa::/32"),
                    asn: 20940,
                    name: "CdnLike".into(),
                    populations: vec![],
                    aliased: vec![AliasedRegion {
                        prefix: p("2600:aaaa:1::/64"),
                        ports: vec![80],
                    }],
                    ports: vec![80],
                },
            ],
            &mut rng,
        )
        .expect("unique prefixes")
    }

    #[test]
    fn detects_planted_aliased_region() {
        let net = internet();
        let mut prober = Prober::new(&net, ProbeConfig::default()).expect("valid probe config");
        let hits = vec![
            a("2001:db8::1"),
            a("2001:db8::2"),
            a("2600:aaaa:1:0:aa::beef"),
            a("2600:aaaa:1:0:bb::1"),
        ];
        let (report, non_aliased, aliased) =
            dealias_hits(&mut prober, &hits, 80, &DealiasConfig::default());
        // The two CDN hits sit in two different /96s, both aliased.
        assert_eq!(report.tested, 3, "two CDN /96s plus one honest /96");
        assert_eq!(report.aliased.len(), 2);
        assert_eq!(non_aliased, vec![a("2001:db8::1"), a("2001:db8::2")]);
        assert_eq!(aliased.len(), 2);
        // Any address within a tested-aliased /96 is classified aliased.
        assert!(report.is_aliased(a("2600:aaaa:1:0:aa::9999")));
        assert!(!report.is_aliased(a("2001:db8::7")));
    }

    #[test]
    fn honest_dense_prefix_not_flagged() {
        // Even 100 real hosts in one /96: the probability that a random
        // /96 address hits one is ~100/2^32 — the detector must not flag.
        let net = internet();
        let mut prober = Prober::new(&net, ProbeConfig::default()).expect("valid probe config");
        let hits: Vec<NybbleAddr> = (1..=100u32)
            .map(|i| NybbleAddr::from_bits(0x2001_0db8u128 << 96 | i as u128))
            .collect();
        let report = detect_aliased(&mut prober, &hits, 80, &DealiasConfig::default());
        assert_eq!(report.tested, 1);
        assert!(report.aliased.is_empty());
    }

    #[test]
    fn finer_granularity_at_112() {
        let net = internet();
        let mut prober = Prober::new(&net, ProbeConfig::default()).expect("valid probe config");
        let hits = vec![a("2600:aaaa:1::1"), a("2001:db8::1")];
        let cfg = DealiasConfig {
            prefix_len: 112,
            ..DealiasConfig::default()
        };
        let report = detect_aliased(&mut prober, &hits, 80, &cfg);
        assert!(report.is_aliased(a("2600:aaaa:1::ffff")));
        assert!(!report.is_aliased(a("2600:aaaa:1::1:0")), "different /112 not flagged");
        assert!(!report.is_aliased(a("2001:db8::2")));
    }

    #[test]
    fn empty_hits_tests_nothing() {
        let net = internet();
        let mut prober = Prober::new(&net, ProbeConfig::default()).expect("valid probe config");
        let report = detect_aliased(&mut prober, &[], 80, &DealiasConfig::default());
        assert_eq!(report.tested, 0);
        assert_eq!(report.probes, 0);
        assert!(report.aliased.is_empty());
    }

    #[test]
    fn probe_accounting() {
        let net = internet();
        let mut prober = Prober::new(&net, ProbeConfig::default()).expect("valid probe config");
        let hits = vec![a("2600:aaaa:1::1")];
        let report = detect_aliased(&mut prober, &hits, 80, &DealiasConfig::default());
        // Aliased prefix: 3 addresses, each answers on the first probe.
        assert_eq!(report.probes, 3);
        let hits = vec![a("2001:db8::1")];
        let report = detect_aliased(&mut prober, &hits, 80, &DealiasConfig::default());
        // Non-aliased: first random address eats all 3 probes, then we
        // short-circuit.
        assert_eq!(report.probes, 3);
    }

    #[test]
    fn detection_survives_packet_loss_with_probing_redundancy() {
        let net = internet();
        // 30% loss: three probes per address still see the aliased region
        // with probability (1 - 0.3^3)^3 ≈ 0.92; the fixed seed makes the
        // outcome stable.
        let mut prober = Prober::new(
            &net,
            ProbeConfig {
                loss: 0.3,
                ..ProbeConfig::default()
            },
        )
        .expect("valid probe config");
        let hits = vec![a("2600:aaaa:1::1")];
        let report = detect_aliased(&mut prober, &hits, 80, &DealiasConfig::default());
        assert!(report.is_aliased(a("2600:aaaa:1::1")));
    }
}
