//! # sixgen-simnet — a simulated IPv6 Internet and scanner
//!
//! The paper evaluates 6Gen by actively scanning the real IPv6 Internet on
//! TCP/80 with a ZMap extension (§6). A reproduction cannot (and should
//! not) probe the Internet, so this crate supplies the closest synthetic
//! equivalent that exercises the same code paths:
//!
//! * [`HostScheme`] — address-assignment practices from RFC 7707 and §3.2
//!   of the paper (low-byte, EUI-64/SLAAC, privacy-random, embedded text,
//!   embedded IPv4/port, structured subnets). Ground-truth host
//!   populations are generated from these schemes, so the *structure* a
//!   TGA must discover matches what operators deploy.
//! * [`NetworkSpec`] / [`Network`] — a routed prefix with an origin AS,
//!   host populations, optional *aliased regions* (prefixes in which every
//!   address responds, §6.2), and *churned* hosts (addresses that were
//!   once active — and appear in seed data — but no longer respond, §6.6).
//! * [`Internet`] — a collection of networks with its BGP
//!   [`PrefixTable`](sixgen_routing::PrefixTable) and
//!   [`AsRegistry`](sixgen_routing::AsRegistry); answers "is this address
//!   responsive on this port?"
//! * [`faults`] — composable fault models ([`FaultModel`]): uniform loss,
//!   Gilbert–Elliott bursty loss, per-prefix ICMP-style rate limiting, and
//!   blackholed/aliased regions, all driven by the prober's virtual clock.
//! * [`Prober`] — a budget- and packet-counting scanner with a validated
//!   configuration, a [`faults`] stack, retransmissions under an optional
//!   exponential-backoff [`RetryPolicy`] and ZMap-style total retransmit
//!   budget, and a probe-rate model for simulated scan durations
//!   (including backoff waits).
//! * [`dealias`] — the paper's §6.2 alias detection: probe three random
//!   addresses per /96 (three probes each); if all three respond the
//!   prefix is classified aliased.
//!
//! Everything is deterministic given an RNG seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dealias;
pub mod faults;
mod internet;
mod network;
mod prober;
mod scheme;

pub use faults::{FaultAction, FaultConfigError, FaultModel, ProbeContext};
pub use internet::{BuildError, Internet, SeedExtraction, SeedRecord};
pub use network::{AliasedRegion, HostKind, HostPopulation, Network, NetworkSpec, SubnetPlan};
pub use prober::{ProbeConfig, Prober, ProbeStats, RetryPolicy, ScanResult};
pub use scheme::HostScheme;
