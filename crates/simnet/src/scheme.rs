//! Address-assignment schemes: how operators pick interface identifiers.
//!
//! RFC 7707 (cited as the paper's §3.2 background) catalogs real-world IPv6
//! assignment practices: low-byte addresses, embedded human-readable hex
//! text (`DEADBEEF`), embedded IPv4 addresses or service ports, SLAAC
//! EUI-64 identifiers derived from MAC addresses, and fully random privacy
//! addresses. Ground-truth hosts in the simulated Internet are generated
//! from these schemes so that target generation algorithms face the same
//! structure classes they would on the real Internet.

use rand::rngs::StdRng;
use rand::Rng;

/// Hex "words" used by operators for memorable addresses (RFC 7707 §4.1.2).
const HEX_WORDS: [u16; 8] = [
    0xdead, 0xbeef, 0xcafe, 0xbabe, 0xface, 0xf00d, 0xc0de, 0xd00d,
];

/// A policy for generating the interface-identifier (low 64 bits) of host
/// addresses.
///
/// [`HostScheme::iid`] maps a host index to an identifier; schemes that
/// model random assignment also draw from the supplied RNG (determinism
/// comes from seeding the RNG).
#[derive(Debug, Clone, PartialEq)]
pub enum HostScheme {
    /// Sequentially assigned low-byte addresses: `::1`, `::2`, … — the
    /// single most common practice for servers and routers (RFC 7707
    /// §4.1.1; §3.2 of the paper: 80% of routers had non-zero values only
    /// in the low 16 bits of the IID).
    LowByteSequential,
    /// Random values confined to the low `nybbles` nybbles, modeling
    /// operators who assign small but non-sequential host numbers.
    LowByteRandom {
        /// Number of low nybbles that vary (1..=16).
        nybbles: u8,
    },
    /// SLAAC EUI-64 identifiers: `oui | ff:fe | NIC`, with the
    /// universal/local bit inverted per RFC 4291. Host `index` becomes the
    /// 24-bit NIC-specific part, modeling one vendor's contiguous MAC
    /// block.
    Eui64 {
        /// The 24-bit Organizationally Unique Identifier of the modeled
        /// NIC vendor.
        oui: [u8; 3],
    },
    /// RFC 4941 privacy addresses: uniformly random 64-bit identifiers.
    /// Essentially undiscoverable by any TGA — included to model the
    /// unpredictable population (e.g. the paper's CDN 1, where both
    /// algorithms find almost nothing).
    PrivacyRandom,
    /// Human-memorable hex words (`dead:beef::…`) with a sequential
    /// suffix.
    Wordy,
    /// The host's IPv4 address embedded in the IID as four hex groups
    /// (`::192:168:1:42` style). `base` is the first host's IPv4 address;
    /// `index` increments the final octet (wrapping into the third).
    Ipv4Embedded {
        /// IPv4 address of host index 0.
        base: [u8; 4],
    },
    /// A service port embedded in the low 16 bits (`2001:db8::…:80`),
    /// with the host index above it.
    PortEmbedded {
        /// The embedded service port, stored verbatim in the low 16 bits.
        port: u16,
    },
}

impl HostScheme {
    /// Generates the interface identifier for host `index`.
    pub fn iid(&self, index: u64, rng: &mut StdRng) -> u64 {
        match self {
            HostScheme::LowByteSequential => index + 1,
            HostScheme::LowByteRandom { nybbles } => {
                let n = (*nybbles).clamp(1, 16) as u32;
                if n == 16 {
                    rng.gen::<u64>()
                } else {
                    rng.gen_range(0..1u64 << (4 * n))
                }
            }
            HostScheme::Eui64 { oui } => {
                // Invert the universal/local bit of the first OUI octet.
                let flipped = (oui[0] ^ 0x02) as u64;
                let nic = index & 0xFF_FFFF;
                (flipped << 56)
                    | ((oui[1] as u64) << 48)
                    | ((oui[2] as u64) << 40)
                    | (0xFFFEu64 << 24)
                    | nic
            }
            HostScheme::PrivacyRandom => rng.gen::<u64>(),
            HostScheme::Wordy => {
                let w1 = HEX_WORDS[(index / 256 % 8) as usize] as u64;
                let w2 = HEX_WORDS[(index / 2048 % 8) as usize] as u64;
                (w1 << 48) | (w2 << 32) | (index % 256 + 1)
            }
            HostScheme::Ipv4Embedded { base } => {
                let v4 = u32::from_be_bytes(*base) as u64 + index;
                let (a, b, c, d) = (
                    (v4 >> 24) & 0xFF,
                    (v4 >> 16) & 0xFF,
                    (v4 >> 8) & 0xFF,
                    v4 & 0xFF,
                );
                (a << 48) | (b << 32) | (c << 16) | d
            }
            HostScheme::PortEmbedded { port } => ((index + 1) << 16) | *port as u64,
        }
    }

    /// `true` if the scheme produces identifiers with no learnable
    /// structure (a TGA is not expected to predict them).
    pub fn is_unpredictable(&self) -> bool {
        matches!(
            self,
            HostScheme::PrivacyRandom | HostScheme::LowByteRandom { nybbles: 15.. }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(1)
    }

    #[test]
    fn low_byte_sequential() {
        let s = HostScheme::LowByteSequential;
        assert_eq!(s.iid(0, &mut rng()), 1);
        assert_eq!(s.iid(41, &mut rng()), 42);
    }

    #[test]
    fn low_byte_random_is_bounded() {
        let s = HostScheme::LowByteRandom { nybbles: 2 };
        let mut r = rng();
        for i in 0..100 {
            assert!(s.iid(i, &mut r) < 256);
        }
        let wide = HostScheme::LowByteRandom { nybbles: 16 };
        // Full width must not panic and should exceed 32 bits eventually.
        let mut r = rng();
        assert!((0..20).any(|i| wide.iid(i, &mut r) > u32::MAX as u64));
    }

    #[test]
    fn eui64_layout() {
        let s = HostScheme::Eui64 {
            oui: [0x00, 0x1b, 0x21],
        };
        let iid = s.iid(0x123456, &mut rng());
        // 02:1b:21 ff:fe 12:34:56
        assert_eq!(iid, 0x021b_21ff_fe12_3456);
        // Universal/local bit flipped: 0x00 -> 0x02.
        assert_eq!(iid >> 56, 0x02);
        // ff:fe marker in the middle.
        assert_eq!((iid >> 24) & 0xFFFF, 0xFFFE);
    }

    #[test]
    fn eui64_nic_wraps_at_24_bits() {
        let s = HostScheme::Eui64 {
            oui: [0x00, 0x1b, 0x21],
        };
        assert_eq!(
            s.iid(0x1_000_001, &mut rng()) & 0xFF_FFFF,
            0x000_001,
            "NIC part is 24 bits"
        );
    }

    #[test]
    fn wordy_uses_hex_words() {
        let s = HostScheme::Wordy;
        let iid = s.iid(0, &mut rng());
        assert_eq!(iid >> 48, 0xdead);
        assert_eq!((iid >> 32) & 0xFFFF, 0xdead);
        assert_eq!(iid & 0xFFFF_FFFF, 1);
        // Index 256 rolls to the next word in the high slot.
        assert_eq!(s.iid(256, &mut rng()) >> 48, 0xbeef);
    }

    #[test]
    fn ipv4_embedded_groups() {
        let s = HostScheme::Ipv4Embedded {
            base: [192, 168, 1, 10],
        };
        let iid = s.iid(0, &mut rng());
        // ::192:168:1:10 → groups 00c0:00a8:0001:000a.
        assert_eq!(iid, 0x00c0_00a8_0001_000a);
        // Index 250 carries into the third octet: 192.168.2.4.
        let iid = s.iid(250, &mut rng());
        assert_eq!(iid, 0x00c0_00a8_0002_0004);
    }

    #[test]
    fn port_embedded() {
        let s = HostScheme::PortEmbedded { port: 80 };
        assert_eq!(s.iid(0, &mut rng()), 0x1_0050);
        assert_eq!(s.iid(0, &mut rng()) & 0xFFFF, 80);
        assert_eq!(s.iid(9, &mut rng()) >> 16, 10);
    }

    #[test]
    fn privacy_random_varies_and_is_deterministic_per_rng() {
        let s = HostScheme::PrivacyRandom;
        let mut r1 = rng();
        let mut r2 = rng();
        let a: Vec<u64> = (0..5).map(|i| s.iid(i, &mut r1)).collect();
        let b: Vec<u64> = (0..5).map(|i| s.iid(i, &mut r2)).collect();
        assert_eq!(a, b, "same RNG seed, same identifiers");
        let distinct: std::collections::HashSet<_> = a.iter().collect();
        assert_eq!(distinct.len(), 5);
        assert!(s.is_unpredictable());
        assert!(!HostScheme::LowByteSequential.is_unpredictable());
    }
}
